//! The Buffer Manager: lease-based zero-copy buffer placement (§4.4.3).
//!
//! The paper's final shm ablation step removes the last `memcpy` by
//! *co-designing the application with the fabric*: instead of handing the
//! transport a private buffer to copy into a slot, the application asks
//! the Buffer Manager for a buffer that already **is** a slot of the
//! shared double-buffer region. [`BufferManager`] implements that
//! allocator over one direction's [`SlotRing`]:
//!
//! * slots are handed out round-robin within the I/O depth (§4.4.1) —
//!   with the queue depth bounded by the ring depth, the next
//!   round-robin slot is drained by the time it comes around again, so
//!   allocation is a single uncontended CAS in the steady state;
//! * when the ring is *not* drained in order (a slow reader, mixed I/O
//!   sizes), the manager probes forward up to `depth` slots before
//!   reporting exhaustion, so one straggler slot cannot wedge the pool;
//! * every lease is RAII: an unpublished [`SlotLease`] returns its slot
//!   to `Free` on drop, and the manager's occupancy gauge tracks live
//!   leases (with a lifetime high-water mark);
//! * in debug builds a per-slot ledger asserts no two live leases ever
//!   alias the same slot — belt and braces over the state-machine CAS.
//!
//! The lease records `zero_copy_bytes` and `copies_avoided` at publish
//! time: each published lease is one application-side `memcpy` that the
//! step-2 one-copy path would have performed and this path did not.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use oaf_telemetry::{Counter, Gauge, Scope};

use crate::slot::{SlotRing, WriteGuard};
use crate::ShmError;

/// Telemetry bundle for one [`BufferManager`] (detached until
/// [`BufStats::register`]ed, like every bundle in this workspace).
#[derive(Default, Debug)]
pub struct BufStats {
    /// Leases successfully handed out.
    pub leases: Counter,
    /// Lease requests denied because every slot was occupied after a
    /// full round-robin probe.
    pub lease_denied: Counter,
    /// Leases dropped without being published (slot returned to the
    /// pool unused).
    pub lease_aborted: Counter,
    /// Payload bytes published without an application-side copy.
    pub zero_copy_bytes: Counter,
    /// Published leases — each one is a `memcpy` the one-copy path
    /// would have performed and this path did not.
    pub copies_avoided: Counter,
    /// Live (unpublished, undropped) leases right now; `hwm()` is the
    /// deepest the pool has ever been.
    pub leases_live: Gauge,
    /// Slots forced back to `Free` by a reclamation sweep after the
    /// channel was quarantined (lost-peer recovery).
    pub slots_reclaimed: Counter,
}

impl BufStats {
    /// Fresh, detached bundle.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Publish every metric of this bundle into `scope`.
    pub fn register(&self, scope: &Scope) {
        scope.adopt_counter("leases", &self.leases);
        scope.adopt_counter("lease_denied", &self.lease_denied);
        scope.adopt_counter("lease_aborted", &self.lease_aborted);
        scope.adopt_counter("zero_copy_bytes", &self.zero_copy_bytes);
        scope.adopt_counter("copies_avoided", &self.copies_avoided);
        scope.adopt_gauge("leases_live", &self.leases_live);
        scope.adopt_counter("slots_reclaimed", &self.slots_reclaimed);
    }
}

struct MgrInner {
    ring: SlotRing,
    /// First slot of this manager's partition (absolute ring index).
    part_start: usize,
    /// Slots in this manager's partition. Probing wraps *within* the
    /// partition — a manager can exhaust its own slots but never leases
    /// (or reclaims) a neighbor partition's slot, which is what lets a
    /// sharded runtime carve one ring into per-shard pools with no
    /// cross-shard coordination.
    part_len: usize,
    /// Per-manager round-robin cursor (partition-relative). The ring's
    /// own cursor is shared by every handle; partitioned managers must
    /// not advance it or they would perturb their neighbors' probes.
    cursor: std::sync::atomic::AtomicUsize,
    stats: Arc<BufStats>,
    /// No-aliasing ledger: one flag per slot, set while a manager lease
    /// holds the slot. The slot state machine already guarantees
    /// exclusivity; beyond the debug-build double-issue asserts, the
    /// reclamation sweep needs it in every build so a forced reclaim
    /// never frees a slot a live local lease still points into.
    live: Box<[std::sync::atomic::AtomicBool]>,
    /// Once set, the pool refuses new leases: the peer is gone (or the
    /// channel is being torn down) and handing out more shared slots
    /// would only grow the set the sweep has to claw back.
    quarantined: std::sync::atomic::AtomicBool,
}

impl MgrInner {
    #[inline]
    fn on_issue(&self, slot: usize) {
        self.stats.leases.inc();
        self.stats.leases_live.add(1);
        let was = self.live[slot].swap(true, std::sync::atomic::Ordering::AcqRel);
        debug_assert!(!was, "buffer manager issued slot {slot} twice");
    }

    #[inline]
    fn on_release(&self, slot: usize) {
        self.stats.leases_live.sub(1);
        let was = self.live[slot].swap(false, std::sync::atomic::Ordering::AcqRel);
        debug_assert!(was, "buffer manager released slot {slot} it never issued");
    }
}

/// Lease-based allocator over one direction's slot ring. Cloning shares
/// the pool (and its stats); leases stay valid across clones.
#[derive(Clone)]
pub struct BufferManager {
    inner: Arc<MgrInner>,
}

impl BufferManager {
    /// Builds a manager over the whole of `ring`. The ring handle is
    /// cloned; the manager shares slot state with every other handle to
    /// the ring.
    pub fn new(ring: SlotRing) -> Self {
        let depth = ring.depth();
        Self::with_partition(ring, 0, depth)
    }

    /// Builds a manager over the `len` slots starting at `start` —
    /// a *partition* of the ring. Leasing, probing and reclamation all
    /// stay inside `[start, start + len)`; slots outside the partition
    /// are invisible to this manager. Panics on an empty or
    /// out-of-range partition.
    pub fn with_partition(ring: SlotRing, start: usize, len: usize) -> Self {
        assert!(len > 0, "buffer manager partition must be non-empty");
        assert!(
            start
                .checked_add(len)
                .is_some_and(|end| end <= ring.depth()),
            "partition [{start}, {start}+{len}) exceeds ring depth {}",
            ring.depth()
        );
        let live = (0..ring.depth())
            .map(|_| std::sync::atomic::AtomicBool::new(false))
            .collect();
        BufferManager {
            inner: Arc::new(MgrInner {
                ring,
                part_start: start,
                part_len: len,
                cursor: std::sync::atomic::AtomicUsize::new(0),
                stats: BufStats::new(),
                live,
                quarantined: std::sync::atomic::AtomicBool::new(false),
            }),
        }
    }

    /// Carves `ring` into `n` contiguous partitions (near-equal sizes;
    /// the first `depth % n` partitions get one extra slot) and returns
    /// one manager per partition. Panics if `n` is zero or exceeds the
    /// ring depth.
    pub fn partitions(ring: SlotRing, n: usize) -> Vec<BufferManager> {
        assert!(n > 0, "cannot carve a ring into zero partitions");
        let depth = ring.depth();
        assert!(
            n <= depth,
            "cannot carve {depth} slots into {n} non-empty partitions"
        );
        let base = depth / n;
        let extra = depth % n;
        let mut start = 0;
        (0..n)
            .map(|i| {
                let len = base + usize::from(i < extra);
                let mgr = BufferManager::with_partition(ring.clone(), start, len);
                start += len;
                mgr
            })
            .collect()
    }

    /// Slots in this manager's partition.
    pub fn depth(&self) -> usize {
        self.inner.part_len
    }

    /// The partition as `(first_slot, slot_count)` in absolute ring
    /// indices.
    pub fn partition(&self) -> (usize, usize) {
        (self.inner.part_start, self.inner.part_len)
    }

    /// Capacity of each buffer in bytes.
    pub fn slot_size(&self) -> usize {
        self.inner.ring.slot_size()
    }

    /// The manager's telemetry bundle.
    pub fn stats(&self) -> &Arc<BufStats> {
        &self.inner.stats
    }

    /// Leases an application buffer of `len` logical bytes living
    /// directly in the shared region. Probes round-robin through up to
    /// `depth` slots (§4.4.1); [`ShmError::NoFreeSlot`] means the whole
    /// pool is genuinely occupied.
    pub fn lease(&self, len: usize) -> Result<SlotLease, ShmError> {
        if self
            .inner
            .quarantined
            .load(std::sync::atomic::Ordering::Acquire)
        {
            // The pool is being reclaimed after a peer failure; deny
            // leases outright (reported like exhaustion — the caller's
            // fallback path is identical either way).
            self.inner.stats.lease_denied.inc();
            return Err(ShmError::NoFreeSlot);
        }
        if len > self.slot_size() {
            return Err(ShmError::PayloadTooLarge {
                len,
                slot_size: self.slot_size(),
            });
        }
        // The per-manager cursor advances on every probe, so consecutive
        // attempts walk consecutive partition slots — and wrap *within*
        // the partition, never into a neighbor's slots.
        for _ in 0..self.depth() {
            let rel = self
                .inner
                .cursor
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                % self.inner.part_len;
            let slot = self.inner.part_start + rel;
            match self.inner.ring.begin_write_slot(slot) {
                Ok(guard) => {
                    self.inner.on_issue(guard.slot());
                    return Ok(SlotLease {
                        guard: Some(guard),
                        len,
                        inner: Arc::clone(&self.inner),
                    });
                }
                Err(ShmError::NoFreeSlot) => continue,
                Err(e) => return Err(e),
            }
        }
        self.inner.stats.lease_denied.inc();
        Err(ShmError::NoFreeSlot)
    }

    /// Stops handing out leases. Call when the peer sharing the region
    /// has died or the channel is degrading to an inline path; follow
    /// with [`BufferManager::reclaim`] once in-flight commands that
    /// reference published slots have been retired.
    pub fn quarantine(&self) {
        self.inner
            .quarantined
            .store(true, std::sync::atomic::Ordering::Release);
    }

    /// Whether [`BufferManager::quarantine`] has been called.
    pub fn is_quarantined(&self) -> bool {
        self.inner
            .quarantined
            .load(std::sync::atomic::Ordering::Acquire)
    }

    /// Sweeps every slot not held by a live local lease back to `Free`,
    /// returning how many were reclaimed.
    ///
    /// Safety contract (not memory-unsafe, but protocol-critical): only
    /// call after [`BufferManager::quarantine`] and after retiring every
    /// in-flight command whose payload lives in a published slot — a
    /// reclaimed slot's bytes may be reused immediately.
    pub fn reclaim(&self) -> usize {
        let (start, len) = self.partition();
        let mut freed = 0;
        for slot in start..start + len {
            if self.inner.live[slot].load(std::sync::atomic::Ordering::Acquire) {
                continue; // a live local lease still points into this slot
            }
            if self.inner.ring.force_reclaim(slot).unwrap_or(false) {
                freed += 1;
            }
        }
        if freed > 0 {
            self.inner.stats.slots_reclaimed.add(freed as u64);
        }
        freed
    }

    /// Forces one slot (absolute ring index) back to `Free` (same
    /// contract as [`BufferManager::reclaim`]); returns whether the slot
    /// was actually occupied. Slots outside this manager's partition or
    /// held by live local leases are refused.
    pub fn reclaim_slot(&self, slot: usize) -> bool {
        let (start, len) = self.partition();
        if slot < start
            || slot >= start + len
            || self.inner.live[slot].load(std::sync::atomic::Ordering::Acquire)
        {
            return false;
        }
        let freed = self.inner.ring.force_reclaim(slot).unwrap_or(false);
        if freed {
            self.inner.stats.slots_reclaimed.inc();
        }
        freed
    }
}

/// An RAII application buffer living directly in shared memory.
///
/// Filling it *is* filling the slot; [`SlotLease::publish`] flips the
/// slot `Ready` with no copy. Dropping an unpublished lease returns the
/// slot to the pool.
pub struct SlotLease {
    guard: Option<WriteGuard>,
    len: usize,
    inner: Arc<MgrInner>,
}

impl SlotLease {
    fn guard(&self) -> &WriteGuard {
        self.guard
            .as_ref()
            .expect("lease guard present until consumed")
    }

    /// The slot this lease occupies.
    pub fn slot(&self) -> usize {
        self.guard().slot()
    }

    /// Logical length of the buffer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Shrinks (or re-grows, up to the slot size) the logical length.
    pub fn set_len(&mut self, len: usize) -> Result<(), ShmError> {
        let slot_size = self.inner.ring.slot_size();
        if len > slot_size {
            return Err(ShmError::PayloadTooLarge { len, slot_size });
        }
        self.len = len;
        Ok(())
    }

    /// Publishes the buffer without copying; returns `(slot, len)` for
    /// the out-of-band notification. Records the avoided copy.
    pub fn publish(mut self) -> (usize, usize) {
        let mut guard = self.guard.take().expect("publish consumes the guard once");
        guard
            .set_len(self.len)
            .expect("len validated at lease time");
        self.inner.on_release(guard.slot());
        self.inner.stats.zero_copy_bytes.add(self.len as u64);
        self.inner.stats.copies_avoided.inc();
        guard.publish()
    }
}

impl Drop for SlotLease {
    fn drop(&mut self) {
        if let Some(guard) = self.guard.take() {
            self.inner.on_release(guard.slot());
            self.inner.stats.lease_aborted.inc();
            // WriteGuard::drop returns the slot to Free.
        }
    }
}

impl Deref for SlotLease {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.guard().as_slice()[..self.len]
    }
}

impl DerefMut for SlotLease {
    fn deref_mut(&mut self) -> &mut [u8] {
        let len = self.len;
        let guard = self
            .guard
            .as_mut()
            .expect("lease guard present until consumed");
        &mut guard.as_mut_slice()[..len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Dir, DoubleBufferLayout};
    use crate::region::ShmRegion;
    use crate::slot::SlotState;
    use oaf_telemetry::Registry;

    fn mgr(depth: usize, slot_size: usize) -> (BufferManager, SlotRing) {
        let layout = DoubleBufferLayout::new(depth, slot_size);
        let region = Arc::new(ShmRegion::new(layout.total()));
        let ring = SlotRing::new(region, layout, Dir::ToTarget).unwrap();
        (BufferManager::new(ring.clone()), ring)
    }

    #[test]
    fn lease_fill_publish_consume() {
        let (m, ring) = mgr(4, 4096);
        let mut lease = m.lease(8).unwrap();
        lease.copy_from_slice(b"zerocopy");
        let (slot, len) = lease.publish();
        let rd = ring.begin_read(slot, len).unwrap();
        assert_eq!(rd.as_slice(), b"zerocopy");
        drop(rd);
        assert_eq!(ring.state(slot).unwrap(), SlotState::Free);
        assert_eq!(m.stats().zero_copy_bytes.get(), 8);
        assert_eq!(m.stats().copies_avoided.get(), 1);
    }

    #[test]
    fn probe_skips_straggler_slot() {
        // Occupy slot 0, then lease depth-1 more times: the manager must
        // skip the straggler instead of failing at `next % depth`.
        let (m, _ring) = mgr(4, 64);
        let straggler = m.lease(1).unwrap();
        assert_eq!(straggler.slot(), 0);
        let mut got = Vec::new();
        let leases: Vec<_> = (0..3).map(|_| m.lease(1).unwrap()).collect();
        for l in &leases {
            got.push(l.slot());
        }
        assert_eq!(got, vec![1, 2, 3]);
        // Pool genuinely exhausted now.
        assert!(matches!(m.lease(1), Err(ShmError::NoFreeSlot)));
        assert_eq!(m.stats().lease_denied.get(), 1);
        drop(straggler);
        // Freed slot becomes leasable again after a full probe.
        assert_eq!(m.lease(1).unwrap().slot(), 0);
    }

    #[test]
    fn drop_returns_slot_to_pool() {
        let (m, ring) = mgr(2, 64);
        let slot = {
            let lease = m.lease(16).unwrap();
            lease.slot()
        };
        assert_eq!(ring.state(slot).unwrap(), SlotState::Free);
        assert_eq!(m.stats().lease_aborted.get(), 1);
        assert_eq!(m.stats().leases_live.get(), 0);
    }

    #[test]
    fn occupancy_gauge_tracks_live_leases_with_hwm() {
        let (m, _ring) = mgr(4, 64);
        let a = m.lease(1).unwrap();
        let b = m.lease(1).unwrap();
        let c = m.lease(1).unwrap();
        assert_eq!(m.stats().leases_live.get(), 3);
        drop(a);
        let _ = b.publish();
        assert_eq!(m.stats().leases_live.get(), 1);
        drop(c);
        assert_eq!(m.stats().leases_live.get(), 0);
        assert_eq!(m.stats().leases_live.hwm(), 3);
    }

    #[test]
    fn oversized_lease_rejected() {
        let (m, _ring) = mgr(2, 32);
        assert!(matches!(m.lease(33), Err(ShmError::PayloadTooLarge { .. })));
    }

    #[test]
    fn set_len_shrinks_published_length() {
        let (m, ring) = mgr(2, 64);
        let mut lease = m.lease(64).unwrap();
        lease[..3].copy_from_slice(b"abc");
        lease.set_len(3).unwrap();
        assert!(lease.set_len(65).is_err());
        let (slot, len) = lease.publish();
        assert_eq!(len, 3);
        assert_eq!(ring.begin_read(slot, len).unwrap().as_slice(), b"abc");
    }

    #[test]
    fn quarantine_denies_new_leases() {
        let (m, _ring) = mgr(4, 64);
        assert!(!m.is_quarantined());
        m.quarantine();
        assert!(m.is_quarantined());
        assert!(matches!(m.lease(1), Err(ShmError::NoFreeSlot)));
        assert_eq!(m.stats().lease_denied.get(), 1);
    }

    #[test]
    fn reclaim_frees_published_but_not_live_slots() {
        let (m, ring) = mgr(4, 64);
        // Slot 0: published (Ready) — a dead peer would never drain it.
        let lease = m.lease(4).unwrap();
        let (published, _) = lease.publish();
        // Slot 1: a live local lease — must survive the sweep.
        let held = m.lease(4).unwrap();
        let held_slot = held.slot();
        m.quarantine();
        let freed = m.reclaim();
        assert_eq!(freed, 1);
        assert_eq!(ring.state(published).unwrap(), SlotState::Free);
        assert_ne!(ring.state(held_slot).unwrap(), SlotState::Free);
        assert_eq!(m.stats().slots_reclaimed.get(), 1);
        drop(held);
        // Now the straggler can be swept too.
        assert_eq!(m.reclaim(), 0); // drop already returned it to Free
        assert_eq!(ring.state(held_slot).unwrap(), SlotState::Free);
    }

    #[test]
    fn reclaim_slot_targets_one_slot() {
        let (m, ring) = mgr(4, 64);
        let (published, _) = m.lease(4).unwrap().publish();
        let held = m.lease(4).unwrap();
        assert!(!m.reclaim_slot(held.slot())); // live lease: refused
        assert!(m.reclaim_slot(published));
        assert!(!m.reclaim_slot(published)); // already free
        assert!(!m.reclaim_slot(99)); // out of range
        assert_eq!(ring.state(published).unwrap(), SlotState::Free);
        drop(held);
    }

    #[test]
    fn partitions_cover_ring_without_overlap() {
        let (_m, ring) = mgr(10, 64);
        let parts = BufferManager::partitions(ring, 3);
        // 10 slots over 3 partitions: 4 + 3 + 3, contiguous, disjoint.
        assert_eq!(parts[0].partition(), (0, 4));
        assert_eq!(parts[1].partition(), (4, 3));
        assert_eq!(parts[2].partition(), (7, 3));
        assert_eq!(parts.iter().map(|p| p.depth()).sum::<usize>(), 10);
    }

    #[test]
    fn exhausted_partition_never_probes_neighbor() {
        // Satellite regression: exhausting one partition must deny the
        // lease rather than wrap into the neighbor's slots.
        let (_m, ring) = mgr(8, 64);
        let parts = BufferManager::partitions(ring.clone(), 2);
        let (a, b) = (&parts[0], &parts[1]);
        let held: Vec<_> = (0..4).map(|_| a.lease(1).unwrap()).collect();
        assert!(held.iter().all(|l| l.slot() < 4));
        // Partition A is full: deny, do not steal from B.
        assert!(matches!(a.lease(1), Err(ShmError::NoFreeSlot)));
        assert_eq!(a.stats().lease_denied.get(), 1);
        for slot in 4..8 {
            assert_eq!(ring.state(slot).unwrap(), SlotState::Free);
        }
        // B is entirely unaffected: all four of its slots lease fine,
        // all inside [4, 8).
        let b_leases: Vec<_> = (0..4).map(|_| b.lease(1).unwrap()).collect();
        assert!(b_leases.iter().all(|l| (4..8).contains(&l.slot())));
        assert_eq!(b.stats().lease_denied.get(), 0);
        drop(held);
        // A recovers once its own slots free up.
        assert!(a.lease(1).unwrap().slot() < 4);
    }

    #[test]
    fn partition_probe_wraps_within_partition() {
        let (_m, ring) = mgr(6, 64);
        let parts = BufferManager::partitions(ring, 2);
        let b = &parts[1]; // slots [3, 6)
        for _ in 0..10 {
            let lease = b.lease(1).unwrap();
            assert!((3..6).contains(&lease.slot()));
            let (slot, len) = lease.publish();
            drop(b.inner.ring.begin_read(slot, len).unwrap());
        }
    }

    #[test]
    fn partition_reclaim_stays_local() {
        let (_m, ring) = mgr(8, 64);
        let parts = BufferManager::partitions(ring.clone(), 2);
        let (a, b) = (&parts[0], &parts[1]);
        // Publish one slot in each partition (simulating a dead peer
        // that never drains them).
        let (slot_a, _) = a.lease(4).unwrap().publish();
        let (slot_b, _) = b.lease(4).unwrap().publish();
        a.quarantine();
        // A's sweep reclaims its own published slot but not B's.
        assert_eq!(a.reclaim(), 1);
        assert_eq!(ring.state(slot_a).unwrap(), SlotState::Free);
        assert_eq!(ring.state(slot_b).unwrap(), SlotState::Ready);
        // Targeted reclaim refuses out-of-partition slots too.
        assert!(!a.reclaim_slot(slot_b));
        assert_eq!(ring.state(slot_b).unwrap(), SlotState::Ready);
        assert!(b.reclaim_slot(slot_b));
    }

    #[test]
    #[should_panic(expected = "exceeds ring depth")]
    fn out_of_range_partition_panics() {
        let (_m, ring) = mgr(4, 64);
        let _ = BufferManager::with_partition(ring, 2, 3);
    }

    #[test]
    fn stats_register_into_scope() {
        let (m, ring) = mgr(2, 64);
        let registry = Registry::new();
        m.stats().register(&registry.scope("bufmgr"));
        let lease = m.lease(4).unwrap();
        let (slot, len) = lease.publish();
        drop(ring.begin_read(slot, len).unwrap());
        let snap = registry.snapshot();
        assert_eq!(snap.counter("bufmgr", "leases"), 1);
        assert_eq!(snap.counter("bufmgr", "zero_copy_bytes"), 4);
        assert_eq!(snap.counter("bufmgr", "copies_avoided"), 1);
    }
}
