//! Shared-memory channel substrate for NVMe-oAF.
//!
//! In the paper, co-located client and target VMs/containers communicate
//! through an IVSHMEM/ICSHMEM region hot-plugged by a helper process
//! (§4.2). This crate implements that region and every algorithm the paper
//! layers on it, for real — threads, atomics and `memcpy`, not a model:
//!
//! * [`region::ShmRegion`] — a 64-byte-aligned shared segment with raw
//!   read/write primitives (the IVSHMEM BAR analog),
//! * [`layout::DoubleBufferLayout`] — the lock-free *double buffer* split:
//!   one half per direction, each divided into `queue_depth` slots of the
//!   I/O size (§4.4.1),
//! * [`slot::SlotRing`] — round-robin slot selection with a per-slot
//!   atomic state machine providing release/acquire publication,
//! * [`ring::NotifyRing`] — a lock-free SPSC notification ring living
//!   inside the region, and [`byte_ring::ByteRing`] — its variable-size
//!   sibling, carrying whole control PDUs for the fully in-region
//!   control path (the paper's §5.5 future-work direction),
//! * [`flag::FlagPage`] — the pre-reserved page the helper process uses to
//!   announce locality (§4.2),
//! * [`lease::ZcBuf`] — zero-copy buffer leases: the application's buffer
//!   *is* a slot in the region (§4.4.3),
//! * [`bufmgr::BufferManager`] — the Buffer Manager proper: a round-robin
//!   lease pool over one direction's slots, with RAII [`bufmgr::SlotLease`]s,
//!   forward-probing allocation, and zero-copy telemetry (§4.4.3),
//! * [`locked::LockedShm`] — the mutex-guarded "SHM-baseline" variant kept
//!   for the Fig. 8 ablation.
//!
//! # Safety architecture
//!
//! All `unsafe` lives in [`region`]. Exclusive access to slot byte ranges
//! is guaranteed by the [`slot::SlotRing`] state machine (`Free →
//! Writing → Ready → Reading → Free`, release/acquire ordered), never by
//! locks; the module-level tests include multi-threaded stress tests that
//! check for torn reads.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod bufmgr;
pub mod byte_ring;
pub mod channel;
pub mod flag;
pub mod layout;
pub mod lease;
pub mod locked;
pub mod region;
pub mod ring;
pub mod slot;
pub mod stats;

pub use bufmgr::{BufStats, BufferManager, SlotLease};
pub use channel::ShmChannel;
pub use layout::DoubleBufferLayout;
pub use region::ShmRegion;
pub use slot::{SlotRing, SlotState};
pub use stats::RingStats;

/// Errors surfaced by the shared-memory substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShmError {
    /// All slots in the ring are occupied (producer outran the consumer
    /// beyond the queue depth).
    NoFreeSlot,
    /// A slot index outside the ring was referenced.
    BadSlot(usize),
    /// The slot was not in the state the operation requires.
    WrongState {
        /// Slot index.
        slot: usize,
        /// State found.
        found: slot::SlotState,
        /// State required.
        expected: slot::SlotState,
    },
    /// Payload larger than the slot size.
    PayloadTooLarge {
        /// Payload length.
        len: usize,
        /// Slot capacity.
        slot_size: usize,
    },
    /// The notification ring is full.
    RingFull,
    /// The region is too small for the requested layout.
    RegionTooSmall {
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        have: usize,
    },
}

impl std::fmt::Display for ShmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShmError::NoFreeSlot => write!(f, "no free slot in shared-memory ring"),
            ShmError::BadSlot(i) => write!(f, "slot index {i} out of range"),
            ShmError::WrongState {
                slot,
                found,
                expected,
            } => {
                write!(f, "slot {slot} in state {found:?}, expected {expected:?}")
            }
            ShmError::PayloadTooLarge { len, slot_size } => {
                write!(f, "payload of {len} bytes exceeds slot size {slot_size}")
            }
            ShmError::RingFull => write!(f, "notification ring full"),
            ShmError::RegionTooSmall { needed, have } => {
                write!(f, "region too small: need {needed} bytes, have {have}")
            }
        }
    }
}

impl std::error::Error for ShmError {}
