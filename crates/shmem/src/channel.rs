//! The assembled bidirectional shared-memory channel.
//!
//! [`ShmChannel`] pairs two [`SlotRing`]s — one per direction of the
//! double buffer — over a single region, and exposes the endpoint views
//! the NVMe-oAF runtime uses: the client sends write payloads
//! `ToTarget` and receives read payloads `ToClient`; the target does the
//! mirror image. Out-of-band `(slot, len)` notifications travel over the
//! control path (TCP in the paper); the channel itself never blocks.

use std::sync::Arc;

use crate::bufmgr::{BufferManager, SlotLease};
use crate::layout::{Dir, DoubleBufferLayout};
use crate::lease::ZcBuf;
use crate::region::ShmRegion;
use crate::slot::{ReadGuard, SlotRing, WriteGuard};
use crate::ShmError;

/// Which endpoint of the channel a handle represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// The NVMe-oF client / initiator.
    Client,
    /// The NVMe-oF target / storage service.
    Target,
}

impl Side {
    /// Direction this side *sends* payloads in.
    pub fn tx_dir(self) -> Dir {
        match self {
            Side::Client => Dir::ToTarget,
            Side::Target => Dir::ToClient,
        }
    }

    /// Direction this side *receives* payloads from.
    pub fn rx_dir(self) -> Dir {
        self.tx_dir().flip()
    }
}

/// A bidirectional lock-free shared-memory channel.
///
/// ```
/// use oaf_shmem::channel::Side;
/// use oaf_shmem::ShmChannel;
///
/// // 8 slots of 4 KiB per direction — sized to queue depth and I/O size.
/// let ch = ShmChannel::allocate(8, 4096);
/// let client = ch.endpoint(Side::Client);
/// let target = ch.endpoint(Side::Target);
///
/// // One-copy path: copy a payload into the next round-robin slot…
/// let (slot, len) = client.send(b"write payload").unwrap();
/// // …the (slot, len) pair travels out-of-band (over TCP in the paper);
/// // the target drains the slot and frees it on guard drop.
/// assert_eq!(target.recv(slot, len).unwrap().as_slice(), b"write payload");
///
/// // Zero-copy path: the application buffer *is* the slot.
/// let mut lease = client.lease(5).unwrap();
/// lease.copy_from_slice(b"hello");
/// let (slot, len) = lease.publish();
/// assert_eq!(target.recv(slot, len).unwrap().as_slice(), b"hello");
/// ```
#[derive(Clone)]
pub struct ShmChannel {
    region: Arc<ShmRegion>,
    layout: DoubleBufferLayout,
    to_target: SlotRing,
    to_client: SlotRing,
    to_target_mgr: BufferManager,
    to_client_mgr: BufferManager,
}

impl ShmChannel {
    /// Allocates a fresh region sized for `depth` slots of `slot_size`
    /// bytes per direction and builds the channel over it.
    pub fn allocate(depth: usize, slot_size: usize) -> Self {
        let layout = DoubleBufferLayout::new(depth, slot_size);
        let region = Arc::new(ShmRegion::new(layout.total()));
        Self::over_region(region, layout).expect("layout sized to region")
    }

    /// Builds the channel over an existing (hot-plugged) region.
    pub fn over_region(
        region: Arc<ShmRegion>,
        layout: DoubleBufferLayout,
    ) -> Result<Self, ShmError> {
        layout.check_fits(region.len())?;
        let to_target = SlotRing::new(region.clone(), layout, Dir::ToTarget)?;
        let to_client = SlotRing::new(region.clone(), layout, Dir::ToClient)?;
        Ok(ShmChannel {
            to_target_mgr: BufferManager::new(to_target.clone()),
            to_client_mgr: BufferManager::new(to_client.clone()),
            to_target,
            to_client,
            region,
            layout,
        })
    }

    /// The endpoint view for `side`.
    pub fn endpoint(&self, side: Side) -> ShmEndpoint {
        ShmEndpoint {
            channel: self.clone(),
            side,
        }
    }

    /// Slots per direction.
    pub fn depth(&self) -> usize {
        self.layout.depth
    }

    /// Slot capacity in bytes.
    pub fn slot_size(&self) -> usize {
        self.layout.slot_size
    }

    /// Total region size in bytes.
    pub fn region_len(&self) -> usize {
        self.region.len()
    }

    fn ring(&self, dir: Dir) -> &SlotRing {
        match dir {
            Dir::ToTarget => &self.to_target,
            Dir::ToClient => &self.to_client,
        }
    }

    /// The Buffer Manager pooling direction `dir`'s slots. Shared across
    /// channel clones, so every handle sees one consistent lease ledger.
    pub fn buffer_manager(&self, dir: Dir) -> &BufferManager {
        match dir {
            Dir::ToTarget => &self.to_target_mgr,
            Dir::ToClient => &self.to_client_mgr,
        }
    }
}

/// One side's view of a [`ShmChannel`].
#[derive(Clone)]
pub struct ShmEndpoint {
    channel: ShmChannel,
    side: Side,
}

impl ShmEndpoint {
    /// Which side this endpoint is.
    pub fn side(&self) -> Side {
        self.side
    }

    /// The channel this endpoint belongs to.
    pub fn channel(&self) -> &ShmChannel {
        &self.channel
    }

    /// Sends `payload` by copying it into the next transmit slot
    /// (one-copy path). Returns `(slot, len)` for the out-of-band
    /// notification.
    pub fn send(&self, payload: &[u8]) -> Result<(usize, usize), ShmError> {
        let mut guard = self.begin_send()?;
        guard.fill(payload)?;
        Ok(guard.publish())
    }

    /// Claims the next transmit slot for manual filling.
    pub fn begin_send(&self) -> Result<WriteGuard, ShmError> {
        self.channel.ring(self.side.tx_dir()).begin_write()
    }

    /// Leases a zero-copy application buffer of `len` bytes in the
    /// transmit direction (§4.4.3).
    pub fn lease(&self, len: usize) -> Result<ZcBuf, ShmError> {
        ZcBuf::lease(self.channel.ring(self.side.tx_dir()), len)
    }

    /// The Buffer Manager pooling this side's *transmit* slots: managed
    /// RAII leases with forward probing and zero-copy telemetry.
    pub fn buffer_manager(&self) -> &BufferManager {
        self.channel.buffer_manager(self.side.tx_dir())
    }

    /// Leases a managed transmit buffer through the Buffer Manager.
    pub fn lease_managed(&self, len: usize) -> Result<SlotLease, ShmError> {
        self.buffer_manager().lease(len)
    }

    /// Receives the payload published at `slot` (learned out-of-band).
    /// The guard frees the slot on drop.
    pub fn recv(&self, slot: usize, len: usize) -> Result<ReadGuard, ShmError> {
        self.channel.ring(self.side.rx_dir()).begin_read(slot, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_to_target_and_back() {
        let ch = ShmChannel::allocate(4, 1024);
        let client = ch.endpoint(Side::Client);
        let target = ch.endpoint(Side::Target);

        let (slot, len) = client.send(b"write payload").unwrap();
        assert_eq!(target.recv(slot, len).unwrap().as_slice(), b"write payload");

        let (slot, len) = target.send(b"read payload").unwrap();
        assert_eq!(client.recv(slot, len).unwrap().as_slice(), b"read payload");
    }

    #[test]
    fn sides_map_to_directions() {
        assert_eq!(Side::Client.tx_dir(), Dir::ToTarget);
        assert_eq!(Side::Client.rx_dir(), Dir::ToClient);
        assert_eq!(Side::Target.tx_dir(), Dir::ToClient);
        assert_eq!(Side::Target.rx_dir(), Dir::ToTarget);
    }

    #[test]
    fn recv_from_own_tx_direction_fails() {
        let ch = ShmChannel::allocate(2, 64);
        let client = ch.endpoint(Side::Client);
        let (slot, len) = client.send(b"x").unwrap();
        // Client must not consume its own transmit slot.
        assert!(client.recv(slot, len).is_err());
    }

    #[test]
    fn zero_copy_lease_through_endpoint() {
        let ch = ShmChannel::allocate(2, 256);
        let target = ch.endpoint(Side::Target);
        let client = ch.endpoint(Side::Client);
        let mut buf = target.lease(6).unwrap();
        buf.copy_from_slice(b"zcopy!");
        let (slot, len) = buf.publish();
        assert_eq!(client.recv(slot, len).unwrap().as_slice(), b"zcopy!");
    }

    #[test]
    fn full_duplex_stress() {
        let ch = ShmChannel::allocate(8, 4096);
        let client = ch.endpoint(Side::Client);
        let target = ch.endpoint(Side::Target);
        let (c2t_tx, c2t_rx) = std::sync::mpsc::channel::<(usize, usize)>();
        let (t2c_tx, t2c_rx) = std::sync::mpsc::channel::<(usize, usize)>();

        let client_thread = std::thread::spawn(move || {
            let mut buf = vec![0u8; 4096];
            for i in 0..1_000u32 {
                let body = vec![(i % 255) as u8; 2048];
                loop {
                    match client.send(&body) {
                        Ok(pair) => {
                            c2t_tx.send(pair).unwrap();
                            break;
                        }
                        Err(ShmError::NoFreeSlot) => std::hint::spin_loop(),
                        Err(e) => panic!("{e}"),
                    }
                }
                if let Ok((slot, len)) = t2c_rx.try_recv() {
                    let g = loop {
                        match client.recv(slot, len) {
                            Ok(g) => break g,
                            Err(_) => std::hint::spin_loop(),
                        }
                    };
                    g.copy_to(&mut buf[..len]);
                }
            }
            drop(c2t_tx);
            // Drain remaining target->client notifications.
            while let Ok((slot, len)) = t2c_rx.recv() {
                if let Ok(g) = client.recv(slot, len) {
                    g.copy_to(&mut buf[..len]);
                }
            }
        });

        let mut buf = vec![0u8; 4096];
        let mut received = 0u32;
        while let Ok((slot, len)) = c2t_rx.recv() {
            let g = loop {
                match target.recv(slot, len) {
                    Ok(g) => break g,
                    Err(_) => std::hint::spin_loop(),
                }
            };
            g.copy_to(&mut buf[..len]);
            let stamp = buf[0];
            assert!(buf[..len].iter().all(|&b| b == stamp), "torn read");
            received += 1;
            // Echo back occasionally to exercise the other direction.
            // Best-effort: skipping on NoFreeSlot avoids a two-sided
            // spin deadlock when the client is busy producing.
            if received.is_multiple_of(4) {
                match target.send(&buf[..64]) {
                    Ok(pair) => {
                        let _ = t2c_tx.send(pair);
                    }
                    Err(ShmError::NoFreeSlot) => {}
                    Err(e) => panic!("{e}"),
                }
            }
        }
        drop(t2c_tx);
        assert_eq!(received, 1_000);
        client_thread.join().unwrap();
    }
}
