//! The lock-free double-buffer layout (§4.4.1).
//!
//! The paper logically partitions the shared region into two buffers — one
//! written by the client, one by the target — so pure and mixed workloads
//! never contend on bytes. Each half is divided into `depth` slots of the
//! I/O size; slot choice is round-robin with respect to the application's
//! queue depth, so with `queue_depth <= depth` a slot has always been
//! drained by the time it is reused.
//!
//! Layout (offsets grow downward):
//!
//! ```text
//! +----------------------------+  0
//! | slot states, ToTarget dir  |  depth bytes, padded to a cache line
//! +----------------------------+
//! | slot states, ToClient dir  |  depth bytes, padded to a cache line
//! +----------------------------+
//! | data slots, ToTarget dir   |  depth * slot_size
//! +----------------------------+
//! | data slots, ToClient dir   |  depth * slot_size
//! +----------------------------+  total()
//! ```

use crate::region::CACHE_LINE;
use crate::ShmError;

/// Direction of a transfer through the double buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Client writes, target reads (write-I/O payloads, H2C).
    ToTarget,
    /// Target writes, client reads (read-I/O payloads, C2H).
    ToClient,
}

impl Dir {
    /// The opposite direction.
    pub fn flip(self) -> Dir {
        match self {
            Dir::ToTarget => Dir::ToClient,
            Dir::ToClient => Dir::ToTarget,
        }
    }
}

/// Computed offsets of the double-buffer layout within a region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DoubleBufferLayout {
    /// Slots per direction; sized to the application queue depth.
    pub depth: usize,
    /// Bytes per slot; sized to the workload I/O size.
    pub slot_size: usize,
    states_to_target: usize,
    states_to_client: usize,
    data_to_target: usize,
    data_to_client: usize,
    total: usize,
}

fn round_up(x: usize, to: usize) -> usize {
    x.div_ceil(to) * to
}

impl DoubleBufferLayout {
    /// Computes a layout for `depth` slots of `slot_size` bytes per
    /// direction.
    pub fn new(depth: usize, slot_size: usize) -> Self {
        assert!(depth > 0, "depth must be nonzero");
        assert!(slot_size > 0, "slot size must be nonzero");
        let states_to_target = 0;
        let states_to_client = round_up(depth, CACHE_LINE);
        let header_end = states_to_client + round_up(depth, CACHE_LINE);
        let data_to_target = round_up(header_end, CACHE_LINE);
        let data_to_client = data_to_target + depth * slot_size;
        let total = data_to_client + depth * slot_size;
        DoubleBufferLayout {
            depth,
            slot_size,
            states_to_target,
            states_to_client,
            data_to_target,
            data_to_client,
            total,
        }
    }

    /// Total region bytes the layout needs.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Verifies the layout fits a region of `region_len` bytes.
    pub fn check_fits(&self, region_len: usize) -> Result<(), ShmError> {
        if self.total <= region_len {
            Ok(())
        } else {
            Err(ShmError::RegionTooSmall {
                needed: self.total,
                have: region_len,
            })
        }
    }

    /// Offset of the state byte for `slot` in direction `dir`.
    pub fn state_offset(&self, dir: Dir, slot: usize) -> usize {
        debug_assert!(slot < self.depth);
        match dir {
            Dir::ToTarget => self.states_to_target + slot,
            Dir::ToClient => self.states_to_client + slot,
        }
    }

    /// Offset of the data bytes for `slot` in direction `dir`.
    pub fn slot_offset(&self, dir: Dir, slot: usize) -> usize {
        debug_assert!(slot < self.depth);
        let base = match dir {
            Dir::ToTarget => self.data_to_target,
            Dir::ToClient => self.data_to_client,
        };
        base + slot * self.slot_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_do_not_overlap_across_directions() {
        let l = DoubleBufferLayout::new(8, 4096);
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        for dir in [Dir::ToTarget, Dir::ToClient] {
            for s in 0..8 {
                ranges.push((l.slot_offset(dir, s), l.slot_offset(dir, s) + 4096));
            }
        }
        ranges.sort();
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0, "slots overlap: {w:?}");
        }
        assert!(ranges.last().unwrap().1 <= l.total());
    }

    #[test]
    fn state_bytes_distinct_and_inside_header() {
        let l = DoubleBufferLayout::new(130, 512);
        let mut seen = std::collections::HashSet::new();
        for dir in [Dir::ToTarget, Dir::ToClient] {
            for s in 0..130 {
                assert!(seen.insert(l.state_offset(dir, s)));
                assert!(l.state_offset(dir, s) < l.slot_offset(Dir::ToTarget, 0));
            }
        }
    }

    #[test]
    fn data_is_cache_line_aligned() {
        for depth in [1usize, 3, 64, 128, 129] {
            let l = DoubleBufferLayout::new(depth, 4096);
            assert_eq!(
                l.slot_offset(Dir::ToTarget, 0) % CACHE_LINE,
                0,
                "depth {depth}"
            );
        }
    }

    #[test]
    fn fits_check() {
        let l = DoubleBufferLayout::new(4, 1024);
        assert!(l.check_fits(l.total()).is_ok());
        assert!(matches!(
            l.check_fits(l.total() - 1),
            Err(ShmError::RegionTooSmall { .. })
        ));
    }

    #[test]
    fn total_accounts_everything() {
        let l = DoubleBufferLayout::new(128, 128 * 1024);
        // Two halves of 128 slots * 128K = 32 MiB + small header.
        let data = 2 * 128 * 128 * 1024;
        assert!(l.total() >= data);
        assert!(l.total() < data + 4096);
    }

    #[test]
    fn dir_flip() {
        assert_eq!(Dir::ToTarget.flip(), Dir::ToClient);
        assert_eq!(Dir::ToClient.flip(), Dir::ToTarget);
    }
}
