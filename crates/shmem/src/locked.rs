//! The mutex-guarded "SHM-baseline" variant (§4.4.4, Fig. 8).
//!
//! The paper's ablation starts from a naive shared-memory design that
//! "uses locks as a way to access the shared memory region". This module
//! keeps that design alive so the ablation benchmark can measure exactly
//! what the lock-free double buffer buys: a single mutex serializes every
//! producer *and* consumer access to the region, collapsing the
//! bidirectional concurrency the slot ring provides.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::layout::{Dir, DoubleBufferLayout};
use crate::region::ShmRegion;
use crate::ShmError;

struct Inner {
    region: Arc<ShmRegion>,
    layout: DoubleBufferLayout,
    next: [usize; 2],
    occupied: Vec<bool>, // [dir][slot] flattened
    lens: Vec<usize>,
}

/// Lock-guarded shared-memory channel (baseline ablation variant).
#[derive(Clone)]
pub struct LockedShm {
    inner: Arc<Mutex<Inner>>,
}

fn dir_idx(dir: Dir) -> usize {
    match dir {
        Dir::ToTarget => 0,
        Dir::ToClient => 1,
    }
}

impl LockedShm {
    /// Creates a locked channel over its own region.
    pub fn allocate(depth: usize, slot_size: usize) -> Self {
        let layout = DoubleBufferLayout::new(depth, slot_size);
        let region = Arc::new(ShmRegion::new(layout.total()));
        LockedShm {
            inner: Arc::new(Mutex::new(Inner {
                region,
                layout,
                next: [0, 0],
                occupied: vec![false; 2 * depth],
                lens: vec![0; 2 * depth],
            })),
        }
    }

    /// Copies `payload` into the next round-robin slot of `dir`, holding
    /// the channel lock for the full duration of the copy (that is the
    /// point of the baseline). Returns the slot index.
    pub fn send(&self, dir: Dir, payload: &[u8]) -> Result<usize, ShmError> {
        let mut g = self.inner.lock();
        if payload.len() > g.layout.slot_size {
            return Err(ShmError::PayloadTooLarge {
                len: payload.len(),
                slot_size: g.layout.slot_size,
            });
        }
        let d = dir_idx(dir);
        let depth = g.layout.depth;
        let slot = g.next[d] % depth;
        if g.occupied[d * depth + slot] {
            return Err(ShmError::NoFreeSlot);
        }
        g.next[d] += 1;
        let off = g.layout.slot_offset(dir, slot);
        // SAFETY: the channel mutex serializes all region access.
        unsafe { g.region.write_at(off, payload) };
        g.occupied[d * depth + slot] = true;
        g.lens[d * depth + slot] = payload.len();
        Ok(slot)
    }

    /// Copies the payload of `slot` in `dir` into `buf`, freeing the slot.
    /// Returns the payload length.
    pub fn recv(&self, dir: Dir, slot: usize, buf: &mut [u8]) -> Result<usize, ShmError> {
        let mut g = self.inner.lock();
        let depth = g.layout.depth;
        if slot >= depth {
            return Err(ShmError::BadSlot(slot));
        }
        let d = dir_idx(dir);
        if !g.occupied[d * depth + slot] {
            return Err(ShmError::WrongState {
                slot,
                found: crate::slot::SlotState::Free,
                expected: crate::slot::SlotState::Ready,
            });
        }
        let len = g.lens[d * depth + slot];
        assert!(buf.len() >= len, "destination too small");
        let off = g.layout.slot_offset(dir, slot);
        // SAFETY: the channel mutex serializes all region access.
        unsafe { g.region.read_into(off, &mut buf[..len]) };
        g.occupied[d * depth + slot] = false;
        Ok(len)
    }

    /// Slot capacity in bytes.
    pub fn slot_size(&self) -> usize {
        self.inner.lock().layout.slot_size
    }

    /// Slots per direction.
    pub fn depth(&self) -> usize {
        self.inner.lock().layout.depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_roundtrip() {
        let ch = LockedShm::allocate(4, 1024);
        let slot = ch.send(Dir::ToTarget, b"payload").unwrap();
        let mut buf = vec![0u8; 1024];
        let n = ch.recv(Dir::ToTarget, slot, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"payload");
    }

    #[test]
    fn occupied_slot_blocks_reuse() {
        let ch = LockedShm::allocate(1, 64);
        ch.send(Dir::ToTarget, b"a").unwrap();
        assert_eq!(ch.send(Dir::ToTarget, b"b"), Err(ShmError::NoFreeSlot));
        let mut buf = [0u8; 64];
        ch.recv(Dir::ToTarget, 0, &mut buf).unwrap();
        assert!(ch.send(Dir::ToTarget, b"b").is_ok());
    }

    #[test]
    fn directions_have_separate_slots() {
        let ch = LockedShm::allocate(2, 64);
        let s1 = ch.send(Dir::ToTarget, b"t").unwrap();
        let s2 = ch.send(Dir::ToClient, b"c").unwrap();
        assert_eq!((s1, s2), (0, 0));
        let mut buf = [0u8; 64];
        assert_eq!(ch.recv(Dir::ToClient, 0, &mut buf).unwrap(), 1);
        assert_eq!(buf[0], b'c');
    }

    #[test]
    fn recv_of_free_slot_fails() {
        let ch = LockedShm::allocate(2, 64);
        let mut buf = [0u8; 64];
        assert!(matches!(
            ch.recv(Dir::ToTarget, 0, &mut buf),
            Err(ShmError::WrongState { .. })
        ));
        assert!(matches!(
            ch.recv(Dir::ToTarget, 5, &mut buf),
            Err(ShmError::BadSlot(5))
        ));
    }

    #[test]
    fn concurrent_senders_on_opposite_directions_work() {
        let ch = LockedShm::allocate(8, 4096);
        let a = {
            let ch = ch.clone();
            std::thread::spawn(move || {
                for _ in 0..200 {
                    loop {
                        match ch.send(Dir::ToTarget, &[1u8; 4096]) {
                            Ok(slot) => {
                                let mut b = vec![0u8; 4096];
                                ch.recv(Dir::ToTarget, slot, &mut b).unwrap();
                                assert!(b.iter().all(|&x| x == 1));
                                break;
                            }
                            Err(ShmError::NoFreeSlot) => std::thread::yield_now(),
                            Err(e) => panic!("{e}"),
                        }
                    }
                }
            })
        };
        for _ in 0..200 {
            loop {
                match ch.send(Dir::ToClient, &[2u8; 4096]) {
                    Ok(slot) => {
                        let mut b = vec![0u8; 4096];
                        ch.recv(Dir::ToClient, slot, &mut b).unwrap();
                        assert!(b.iter().all(|&x| x == 2));
                        break;
                    }
                    Err(ShmError::NoFreeSlot) => std::thread::yield_now(),
                    Err(e) => panic!("{e}"),
                }
            }
        }
        a.join().unwrap();
    }
}
