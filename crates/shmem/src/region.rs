//! The shared-memory region itself.
//!
//! [`ShmRegion`] stands in for the IVSHMEM PCI BAR / ICSHMEM mapping the
//! paper's helper process hot-plugs into both endpoints (§2.3, §4.2): a
//! fixed-size, cache-line-aligned byte segment visible to both sides. In
//! this reproduction both "sides" are threads of one process sharing an
//! `Arc<ShmRegion>`; the access discipline is identical to the
//! cross-process case because nothing in the region relies on process-local
//! pointers.
//!
//! # Safety model
//!
//! The region itself imposes no synchronization — just like real shared
//! memory. Concurrent writers to *overlapping* ranges are a data race, so
//! the raw accessors are `unsafe` with an exclusivity contract. The safe
//! layers above ([`crate::slot::SlotRing`]) provide that exclusivity via a
//! per-slot atomic state machine, and atomics *inside* the region (slot
//! states, ring indices) are accessed through [`ShmRegion::atomic_u8`] /
//! [`ShmRegion::atomic_u64`], which is sound because the backing memory is
//! never accessed non-atomically at those offsets.

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::sync::atomic::{AtomicU64, AtomicU8};

/// Cache-line size assumed for alignment and false-sharing padding.
pub const CACHE_LINE: usize = 64;

/// A fixed-size, 64-byte-aligned shared memory segment.
pub struct ShmRegion {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: the region is a raw byte segment; all concurrent-access
// discipline is delegated to callers per the `unsafe` contracts below,
// exactly as with a real memory mapping shared between processes.
unsafe impl Send for ShmRegion {}
unsafe impl Sync for ShmRegion {}

impl ShmRegion {
    /// Allocates a zeroed region of `len` bytes (rounded up to a whole
    /// number of cache lines).
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "region must be non-empty");
        let len = len.div_ceil(CACHE_LINE) * CACHE_LINE;
        let layout = Layout::from_size_align(len, CACHE_LINE).expect("valid layout");
        // SAFETY: layout has nonzero size (len > 0 asserted above).
        let ptr = unsafe { alloc_zeroed(layout) };
        assert!(!ptr.is_null(), "shared region allocation failed");
        ShmRegion { ptr, len }
    }

    /// Region length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the region is empty (never true; kept for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn check(&self, offset: usize, len: usize) {
        assert!(
            offset.checked_add(len).is_some_and(|end| end <= self.len),
            "region access [{offset}, {offset}+{len}) out of bounds (len {})",
            self.len
        );
    }

    /// Copies `src` into the region at `offset`.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that no other thread concurrently reads or
    /// writes any byte in `[offset, offset + src.len())` (slot-state
    /// exclusivity in the layers above).
    pub unsafe fn write_at(&self, offset: usize, src: &[u8]) {
        self.check(offset, src.len());
        // SAFETY: bounds checked; exclusivity guaranteed by caller.
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.ptr.add(offset), src.len());
        }
    }

    /// Copies `dst.len()` bytes from the region at `offset` into `dst`.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that no other thread concurrently writes
    /// any byte in `[offset, offset + dst.len())`.
    pub unsafe fn read_into(&self, offset: usize, dst: &mut [u8]) {
        self.check(offset, dst.len());
        // SAFETY: bounds checked; exclusivity guaranteed by caller.
        unsafe {
            std::ptr::copy_nonoverlapping(self.ptr.add(offset), dst.as_mut_ptr(), dst.len());
        }
    }

    /// Returns a mutable slice over `[offset, offset + len)`.
    ///
    /// # Safety
    ///
    /// The caller must guarantee exclusive access to the range for the
    /// lifetime of the returned slice (no aliasing reads or writes).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, offset: usize, len: usize) -> &mut [u8] {
        self.check(offset, len);
        // SAFETY: bounds checked; exclusivity guaranteed by caller.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(offset), len) }
    }

    /// Returns a shared slice over `[offset, offset + len)`.
    ///
    /// # Safety
    ///
    /// The caller must guarantee no concurrent writes to the range for the
    /// lifetime of the returned slice.
    pub unsafe fn slice(&self, offset: usize, len: usize) -> &[u8] {
        self.check(offset, len);
        // SAFETY: bounds checked; absence of writers guaranteed by caller.
        unsafe { std::slice::from_raw_parts(self.ptr.add(offset), len) }
    }

    /// Views the byte at `offset` as an `AtomicU8`.
    ///
    /// Sound as long as the byte is *only ever* accessed atomically, which
    /// the layout modules guarantee by reserving header areas for atomics.
    pub fn atomic_u8(&self, offset: usize) -> &AtomicU8 {
        self.check(offset, 1);
        // SAFETY: in-bounds; AtomicU8 has size/align 1; the region outlives
        // the reference (tied to &self).
        unsafe { &*(self.ptr.add(offset) as *const AtomicU8) }
    }

    /// Views the 8 bytes at `offset` (must be 8-aligned) as an `AtomicU64`.
    pub fn atomic_u64(&self, offset: usize) -> &AtomicU64 {
        self.check(offset, 8);
        assert_eq!(offset % 8, 0, "atomic u64 offset must be 8-aligned");
        // SAFETY: in-bounds and aligned; region memory is never accessed
        // non-atomically at header offsets per the layout contract.
        unsafe { &*(self.ptr.add(offset) as *const AtomicU64) }
    }
}

impl Drop for ShmRegion {
    fn drop(&mut self) {
        let layout = Layout::from_size_align(self.len, CACHE_LINE).expect("valid layout");
        // SAFETY: ptr was allocated with exactly this layout in `new`.
        unsafe { dealloc(self.ptr, layout) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    #[test]
    fn region_is_zeroed_and_rounded() {
        let r = ShmRegion::new(100);
        assert_eq!(r.len(), 128); // rounded to cache lines
        let mut buf = vec![0xaa; 128];
        unsafe { r.read_into(0, &mut buf) };
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn write_then_read_roundtrip() {
        let r = ShmRegion::new(4096);
        let data: Vec<u8> = (0..256).map(|i| i as u8).collect();
        unsafe { r.write_at(1024, &data) };
        let mut out = vec![0u8; 256];
        unsafe { r.read_into(1024, &mut out) };
        assert_eq!(out, data);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_write_panics() {
        let r = ShmRegion::new(64);
        unsafe { r.write_at(60, &[0u8; 8]) };
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn overflowing_offset_panics() {
        let r = ShmRegion::new(64);
        let mut b = [0u8; 1];
        unsafe { r.read_into(usize::MAX, &mut b) };
    }

    #[test]
    fn atomics_are_shared_across_threads() {
        let r = Arc::new(ShmRegion::new(4096));
        let r2 = r.clone();
        let h = std::thread::spawn(move || {
            r2.atomic_u64(8).store(0xdead_beef, Ordering::Release);
        });
        h.join().unwrap();
        assert_eq!(r.atomic_u64(8).load(Ordering::Acquire), 0xdead_beef);
    }

    #[test]
    #[should_panic(expected = "8-aligned")]
    fn misaligned_atomic_u64_panics() {
        let r = ShmRegion::new(64);
        let _ = r.atomic_u64(4);
    }

    #[test]
    fn slices_view_written_bytes() {
        let r = ShmRegion::new(256);
        unsafe {
            r.slice_mut(64, 4).copy_from_slice(&[1, 2, 3, 4]);
            assert_eq!(r.slice(64, 4), &[1, 2, 3, 4]);
        }
    }

    #[test]
    fn disjoint_ranges_can_be_written_concurrently() {
        let r = Arc::new(ShmRegion::new(1 << 20));
        let threads: Vec<_> = (0..8usize)
            .map(|t| {
                let r = r.clone();
                std::thread::spawn(move || {
                    let off = t * (128 << 10);
                    let pattern = vec![t as u8 + 1; 128 << 10];
                    for _ in 0..16 {
                        unsafe { r.write_at(off, &pattern) };
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        for t in 0..8usize {
            let mut buf = vec![0u8; 128 << 10];
            unsafe { r.read_into(t * (128 << 10), &mut buf) };
            assert!(buf.iter().all(|&b| b == t as u8 + 1), "lane {t} torn");
        }
    }
}
