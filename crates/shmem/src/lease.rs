//! Zero-copy buffer leases (§4.4.3).
//!
//! The paper's zero-copy transport works by *co-designing the application*
//! with the fabric: the Buffer Manager hands the application a buffer that
//! already lives inside the shared region, so publishing it requires no
//! copy at all. [`ZcBuf`] is that application-facing buffer: it dereferences
//! to a byte slice the app fills in place, tracks the logical length, and
//! converts into a published `(slot, len)` pair.

use std::ops::{Deref, DerefMut};

use crate::slot::{SlotRing, WriteGuard};
use crate::ShmError;

/// An application buffer living directly in shared memory.
pub struct ZcBuf {
    guard: WriteGuard,
    len: usize,
}

impl ZcBuf {
    /// Leases the next round-robin slot of `ring` as an application buffer
    /// of `len` logical bytes (≤ slot size).
    pub fn lease(ring: &SlotRing, len: usize) -> Result<ZcBuf, ShmError> {
        if len > ring.slot_size() {
            return Err(ShmError::PayloadTooLarge {
                len,
                slot_size: ring.slot_size(),
            });
        }
        let guard = ring.begin_write()?;
        Ok(ZcBuf { guard, len })
    }

    /// Logical length of the buffer.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The slot this buffer occupies.
    pub fn slot(&self) -> usize {
        self.guard.slot()
    }

    /// Publishes the buffer without copying; returns `(slot, len)` for the
    /// out-of-band notification.
    pub fn publish(mut self) -> (usize, usize) {
        self.guard
            .set_len(self.len)
            .expect("len validated at lease time");
        self.guard.publish()
    }
}

impl Deref for ZcBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.guard.as_slice()[..self.len]
    }
}

impl DerefMut for ZcBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        let len = self.len;
        &mut self.guard.as_mut_slice()[..len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{Dir, DoubleBufferLayout};
    use crate::region::ShmRegion;
    use std::sync::Arc;

    fn ring() -> SlotRing {
        let layout = DoubleBufferLayout::new(4, 4096);
        let region = Arc::new(ShmRegion::new(layout.total()));
        SlotRing::new(region, layout, Dir::ToTarget).unwrap()
    }

    #[test]
    fn lease_fill_publish_read() {
        let r = ring();
        let mut buf = ZcBuf::lease(&r, 8).unwrap();
        buf.copy_from_slice(b"abcd1234");
        let slot = buf.slot();
        let (s, len) = buf.publish();
        assert_eq!((s, len), (slot, 8));
        let rd = r.begin_read(s, len).unwrap();
        assert_eq!(rd.as_slice(), b"abcd1234");
    }

    #[test]
    fn lease_too_large_rejected() {
        let r = ring();
        assert!(matches!(
            ZcBuf::lease(&r, 4097),
            Err(ShmError::PayloadTooLarge { .. })
        ));
    }

    #[test]
    fn dropping_lease_frees_slot() {
        let r = ring();
        let first_slot;
        {
            let buf = ZcBuf::lease(&r, 16).unwrap();
            first_slot = buf.slot();
        }
        assert_eq!(r.state(first_slot).unwrap(), crate::slot::SlotState::Free);
    }

    #[test]
    fn deref_views_match() {
        let r = ring();
        let mut buf = ZcBuf::lease(&r, 4).unwrap();
        buf[0] = 9;
        buf[3] = 7;
        assert_eq!(buf.len(), 4);
        assert_eq!(buf[0], 9);
        assert_eq!(&buf[..], &[9, 0, 0, 7]);
    }

    #[test]
    fn leases_cycle_through_slots() {
        let r = ring();
        let mut slots = Vec::new();
        for _ in 0..4 {
            let buf = ZcBuf::lease(&r, 1).unwrap();
            slots.push(buf.slot());
            let (s, l) = buf.publish();
            drop(r.begin_read(s, l).unwrap());
        }
        assert_eq!(slots, vec![0, 1, 2, 3]);
    }
}
