//! The pre-reserved locality flag page (§4.2).
//!
//! When the helper process (Kubernetes/OpenStack/SLURM in the paper) hot-
//! plugs a shared-memory region between a client and a storage service, it
//! announces the fact through a *pre-reserved* page both endpoints poll.
//! The announcement carries the host identity and the region identity so
//! the Connection Manager can match a TCP connection to its shared-memory
//! channel during locality checking (§4.1–4.2).
//!
//! Publication uses a seqlock: the writer bumps a generation counter to an
//! odd value, writes the record, then bumps it to even with `Release`;
//! readers retry until they observe a stable even generation.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::region::{ShmRegion, CACHE_LINE};

/// Locality announcement read from a flag page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Announcement {
    /// Identifier of the physical host both endpoints share.
    pub host_id: u64,
    /// Identifier of the hot-plugged data region.
    pub region_id: u64,
    /// Generation of the announcement (even, monotonically increasing).
    pub generation: u64,
}

/// A flag page at a fixed offset within a pre-reserved region.
///
/// Layout: one cache line: `[gen: u64][host_id: u64][region_id: u64]`.
#[derive(Clone)]
pub struct FlagPage {
    region: Arc<ShmRegion>,
    base: usize,
}

impl FlagPage {
    /// Bytes a flag page occupies.
    pub const LEN: usize = CACHE_LINE;

    /// Creates a view of the flag page at `base` (cache-line aligned).
    pub fn new(region: Arc<ShmRegion>, base: usize) -> Self {
        assert_eq!(base % CACHE_LINE, 0, "flag page must be cache-line aligned");
        assert!(base + Self::LEN <= region.len(), "flag page out of bounds");
        FlagPage { region, base }
    }

    /// Helper-process side: announces a hot-plugged region.
    pub fn announce(&self, host_id: u64, region_id: u64) {
        let gen = self.region.atomic_u64(self.base);
        let g0 = gen.load(Ordering::Relaxed);
        gen.store(g0 | 1, Ordering::Relaxed); // odd: write in progress
                                              // The two data words are written "non-atomically" with respect to
                                              // readers; the seqlock generations make that safe to observe.
        self.region
            .atomic_u64(self.base + 8)
            .store(host_id, Ordering::Relaxed);
        self.region
            .atomic_u64(self.base + 16)
            .store(region_id, Ordering::Relaxed);
        gen.store((g0 | 1).wrapping_add(1), Ordering::Release); // even: done
    }

    /// Endpoint side: polls for an announcement. Returns `None` when no
    /// announcement has ever been made, or when a writer is mid-update.
    pub fn poll(&self) -> Option<Announcement> {
        let gen = self.region.atomic_u64(self.base);
        for _ in 0..64 {
            let g1 = gen.load(Ordering::Acquire);
            if g1 == 0 || g1 % 2 == 1 {
                return None; // nothing published / writer active
            }
            let host_id = self
                .region
                .atomic_u64(self.base + 8)
                .load(Ordering::Relaxed);
            let region_id = self
                .region
                .atomic_u64(self.base + 16)
                .load(Ordering::Relaxed);
            // Re-check generation: if unchanged, the snapshot is coherent.
            if gen.load(Ordering::Acquire) == g1 {
                return Some(Announcement {
                    host_id,
                    region_id,
                    generation: g1,
                });
            }
            std::hint::spin_loop();
        }
        None
    }

    /// Clears the page (hot-unplug).
    pub fn clear(&self) {
        let gen = self.region.atomic_u64(self.base);
        let g0 = gen.load(Ordering::Relaxed);
        gen.store(g0 | 1, Ordering::Relaxed);
        self.region
            .atomic_u64(self.base + 8)
            .store(0, Ordering::Relaxed);
        self.region
            .atomic_u64(self.base + 16)
            .store(0, Ordering::Relaxed);
        gen.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> FlagPage {
        FlagPage::new(Arc::new(ShmRegion::new(FlagPage::LEN)), 0)
    }

    #[test]
    fn unannounced_page_polls_none() {
        assert_eq!(page().poll(), None);
    }

    #[test]
    fn announce_then_poll() {
        let p = page();
        p.announce(0xaaa, 0xbbb);
        let a = p.poll().unwrap();
        assert_eq!(a.host_id, 0xaaa);
        assert_eq!(a.region_id, 0xbbb);
        assert_eq!(a.generation % 2, 0);
    }

    #[test]
    fn reannouncement_bumps_generation() {
        let p = page();
        p.announce(1, 1);
        let g1 = p.poll().unwrap().generation;
        p.announce(2, 2);
        let a = p.poll().unwrap();
        assert!(a.generation > g1);
        assert_eq!(a.host_id, 2);
    }

    #[test]
    fn clear_hides_announcement() {
        let p = page();
        p.announce(7, 8);
        assert!(p.poll().is_some());
        p.clear();
        assert_eq!(p.poll(), None);
    }

    #[test]
    fn concurrent_announce_poll_never_tears() {
        let p = page();
        let writer = {
            let p = p.clone();
            std::thread::spawn(move || {
                for i in 1..20_000u64 {
                    // host_id and region_id are kept equal so any torn
                    // read is detectable.
                    p.announce(i, i);
                }
            })
        };
        let reader = std::thread::spawn(move || {
            for _ in 0..20_000 {
                if let Some(a) = p.poll() {
                    assert_eq!(a.host_id, a.region_id, "torn seqlock read");
                }
            }
        });
        writer.join().unwrap();
        reader.join().unwrap();
    }
}
