//! Kernel TCP/IP transport model.
//!
//! Models the path a NVMe/TCP PDU takes between two VMs: sender CPU
//! (protocol stack + payload copy-out), wire serialization on the shared
//! NIC, propagation, receiver CPU (protocol stack + payload copy-in), and
//! finally the receiver *wake-up* — either an interrupt (stock NVMe/TCP,
//! which the paper notes conflicts with SPDK's polled design, §2.2) or a
//! busy-polled socket with a configurable budget (§4.5).
//!
//! Large transfers are split into application-level chunks
//! (`ceil(len / chunk_size)` messages, §4.5); each chunk pays the per-chunk
//! CPU cost, which is exactly why the chunk-size sweep of Fig. 9 has an
//! interior optimum: small chunks multiply per-chunk overhead, huge chunks
//! bloat target-side buffer pools (modelled as a memory-pressure penalty).

use crate::copy::CopyEngine;
use crate::link::{Direction, Wire};
use crate::server::FifoServer;
use crate::time::{SimDuration, SimTime};

/// How a receiver learns that data arrived on a socket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WakePolicy {
    /// Interrupt-driven (stock kernel TCP): pay the interrupt+softirq+
    /// context-switch latency on every message, no CPU spin cost.
    Interrupt,
    /// Busy-poll with a spin budget: if the message arrives within the
    /// budget the wake is nearly free, otherwise fall back to an interrupt
    /// after burning the whole budget.
    BusyPoll {
        /// Maximum spin time per wait.
        budget: SimDuration,
    },
}

/// Cost breakdown of one receiver wake-up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WakeCost {
    /// Latency added between data arrival and the application seeing it.
    pub extra_latency: SimDuration,
    /// CPU time the receiving core burned spinning (charged to that core,
    /// displacing useful protocol work at high queue depth).
    pub cpu_spin: SimDuration,
}

/// Static parameters of the TCP model.
#[derive(Clone, Copy, Debug)]
pub struct TcpParams {
    /// Fixed protocol-stack CPU cost per chunk per side (segmentation,
    /// checksum setup, socket bookkeeping, syscall amortization).
    pub per_chunk_cpu: SimDuration,
    /// Copy engine for payload copies (user↔kernel) on each side.
    pub copy: CopyEngine,
    /// Payload copies performed by the sender (1 for stock TCP copy-out).
    pub tx_copies: u32,
    /// Payload copies performed by the receiver (1 for stock TCP copy-in).
    pub rx_copies: u32,
    /// Interrupt + softirq + context switch latency for interrupt wakes.
    pub interrupt_delay: SimDuration,
    /// Wake latency when busy-polling catches the arrival.
    pub fast_wake: SimDuration,
    /// Fraction of the spin budget wasted on sockets with nothing pending
    /// when the poll loop multiplexes many queues (makes oversized budgets
    /// costly — the Fig. 10 read-throughput dip at 100 µs).
    pub spin_waste_frac: f64,
    /// Protocol header bytes added to every chunk on the wire.
    pub header_bytes: u64,
    /// Application-level chunk size (stock NVMe/TCP: 128 KiB, §4.5).
    pub chunk_size: u64,
    /// Receiver wake policy.
    pub wake: WakePolicy,
}

impl TcpParams {
    /// CPU demand to emit or absorb one chunk of `bytes` payload.
    fn chunk_cpu(&self, bytes: u64, copies: u32) -> SimDuration {
        self.per_chunk_cpu + self.copy.copies_time(bytes, copies)
    }

    /// Computes the wake cost for a wait of length `wait` under the
    /// configured policy.
    pub fn wake_cost(&self, wait: SimDuration) -> WakeCost {
        match self.wake {
            WakePolicy::Interrupt => WakeCost {
                extra_latency: self.interrupt_delay,
                cpu_spin: SimDuration::ZERO,
            },
            WakePolicy::BusyPoll { budget } => {
                let waste = SimDuration::from_secs_f64(budget.as_secs_f64() * self.spin_waste_frac);
                if wait <= budget {
                    WakeCost {
                        extra_latency: self.fast_wake,
                        cpu_spin: wait + waste,
                    }
                } else {
                    WakeCost {
                        extra_latency: self.interrupt_delay,
                        cpu_spin: budget + waste,
                    }
                }
            }
        }
    }
}

/// Outcome of pushing a message through the TCP path.
#[derive(Clone, Copy, Debug)]
pub struct TcpDelivery {
    /// Time the last chunk has been absorbed by the receiver's stack
    /// (before any wake-up latency).
    pub arrived: SimTime,
    /// Number of wire chunks the message was split into.
    pub chunks: u64,
}

/// The TCP transport model. Stateless itself; all contended state lives in
/// the [`Wire`] and per-core [`FifoServer`]s owned by the experiment world,
/// so several connections can share a NIC while keeping their own cores
/// (the paper pins each client and target to separate cores, §5.1).
#[derive(Clone, Copy, Debug)]
pub struct TcpModel {
    /// Model parameters.
    pub params: TcpParams,
}

impl TcpModel {
    /// Creates a model from parameters.
    pub fn new(params: TcpParams) -> Self {
        TcpModel { params }
    }

    /// Sends `bytes` of payload from the `src_cpu` side to the `dst_cpu`
    /// side over `wire` in direction `dir`, splitting at the configured
    /// chunk size. Returns the delivery record.
    pub fn send(
        &self,
        now: SimTime,
        bytes: u64,
        wire: &mut Wire,
        dir: Direction,
        src_cpu: &mut FifoServer,
        dst_cpu: &mut FifoServer,
    ) -> TcpDelivery {
        self.send_chunked(
            now,
            bytes,
            self.params.chunk_size,
            wire,
            dir,
            src_cpu,
            dst_cpu,
        )
    }

    /// Like [`TcpModel::send`] but with an explicit chunk size (used by the
    /// chunk-size sweep of Fig. 9 and by the adaptive chunk selector).
    #[allow(clippy::too_many_arguments)]
    pub fn send_chunked(
        &self,
        now: SimTime,
        bytes: u64,
        chunk_size: u64,
        wire: &mut Wire,
        dir: Direction,
        src_cpu: &mut FifoServer,
        dst_cpu: &mut FifoServer,
    ) -> TcpDelivery {
        let p = &self.params;
        let chunks = crate::units::chunks_for(bytes, chunk_size);
        let mut remaining = bytes;
        let mut arrived = now;
        for _ in 0..chunks {
            let piece = remaining.min(chunk_size).max(1);
            remaining = remaining.saturating_sub(piece);
            // Sender stack + copy-out.
            let (_, sent) = src_cpu.submit(now, p.chunk_cpu(piece, p.tx_copies));
            // Wire serialization (+ headers) and propagation.
            let landed = wire.transmit(sent, dir, piece + p.header_bytes);
            // Receiver stack + copy-in.
            let (_, absorbed) = dst_cpu.submit(landed, p.chunk_cpu(piece, p.rx_copies));
            arrived = arrived.max(absorbed);
        }
        TcpDelivery { arrived, chunks }
    }

    /// Sends a small control PDU (no payload copies, single chunk).
    pub fn send_control(
        &self,
        now: SimTime,
        pdu_bytes: u64,
        wire: &mut Wire,
        dir: Direction,
        src_cpu: &mut FifoServer,
        dst_cpu: &mut FifoServer,
    ) -> SimTime {
        let p = &self.params;
        let (_, sent) = src_cpu.submit(now, p.per_chunk_cpu);
        let landed = wire.transmit(sent, dir, pdu_bytes + p.header_bytes);
        let (_, absorbed) = dst_cpu.submit(landed, p.per_chunk_cpu);
        absorbed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::WireParams;
    use crate::units::{Rate, KIB, MIB};

    fn params(wake: WakePolicy) -> TcpParams {
        TcpParams {
            per_chunk_cpu: SimDuration::from_micros(4),
            copy: CopyEngine::new(Rate::gib_per_sec(6.0), SimDuration::from_nanos(300)),
            tx_copies: 1,
            rx_copies: 1,
            interrupt_delay: SimDuration::from_micros(15),
            fast_wake: SimDuration::from_micros(1),
            spin_waste_frac: 0.15,
            header_bytes: 128,
            chunk_size: 128 * KIB,
            wake,
        }
    }

    fn wire(gbps: f64) -> Wire {
        Wire::new(WireParams {
            rate: Rate::gbps(gbps),
            efficiency: 0.94,
            propagation: SimDuration::from_micros(2),
        })
    }

    #[test]
    fn message_is_chunked() {
        let m = TcpModel::new(params(WakePolicy::Interrupt));
        let mut w = wire(25.0);
        let (mut c, mut t) = (FifoServer::new(), FifoServer::new());
        let d = m.send(SimTime::ZERO, MIB, &mut w, Direction::H2C, &mut c, &mut t);
        assert_eq!(d.chunks, 8); // 1 MiB / 128 KiB
        let d2 = m.send_chunked(
            SimTime::ZERO,
            MIB,
            512 * KIB,
            &mut w,
            Direction::H2C,
            &mut c,
            &mut t,
        );
        assert_eq!(d2.chunks, 2);
    }

    #[test]
    fn faster_wire_delivers_sooner() {
        let m = TcpModel::new(params(WakePolicy::Interrupt));
        let mut w10 = wire(10.0);
        let mut w100 = wire(100.0);
        let (mut c1, mut t1) = (FifoServer::new(), FifoServer::new());
        let (mut c2, mut t2) = (FifoServer::new(), FifoServer::new());
        let d10 = m.send(
            SimTime::ZERO,
            MIB,
            &mut w10,
            Direction::H2C,
            &mut c1,
            &mut t1,
        );
        let d100 = m.send(
            SimTime::ZERO,
            MIB,
            &mut w100,
            Direction::H2C,
            &mut c2,
            &mut t2,
        );
        assert!(d100.arrived < d10.arrived);
    }

    #[test]
    fn wire_is_the_bottleneck_at_10g() {
        // Sustained throughput through the pipeline should approach wire
        // goodput for a slow wire: send many chunks, check spacing.
        let m = TcpModel::new(params(WakePolicy::Interrupt));
        let mut w = wire(10.0);
        let (mut c, mut t) = (FifoServer::new(), FifoServer::new());
        let n = 64u64;
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            last = m
                .send(
                    SimTime::ZERO,
                    128 * KIB,
                    &mut w,
                    Direction::H2C,
                    &mut c,
                    &mut t,
                )
                .arrived;
        }
        let total_bytes = n * 128 * KIB;
        let rate = total_bytes as f64 / last.as_secs_f64();
        let goodput = w.goodput().as_bytes_per_sec();
        assert!(rate <= goodput * 1.001, "rate {rate} > goodput {goodput}");
        assert!(
            rate >= goodput * 0.90,
            "rate {rate} far below goodput {goodput}"
        );
    }

    #[test]
    fn interrupt_wake_costs_latency_not_cpu() {
        let p = params(WakePolicy::Interrupt);
        let c = p.wake_cost(SimDuration::from_micros(40));
        assert_eq!(c.extra_latency, SimDuration::from_micros(15));
        assert_eq!(c.cpu_spin, SimDuration::ZERO);
    }

    #[test]
    fn busy_poll_catches_short_waits() {
        let p = params(WakePolicy::BusyPoll {
            budget: SimDuration::from_micros(50),
        });
        let c = p.wake_cost(SimDuration::from_micros(30));
        assert_eq!(c.extra_latency, SimDuration::from_micros(1));
        // Spin = wait (30us) + 15% of the 50us budget wasted (7.5us).
        assert_eq!(c.cpu_spin, SimDuration::from_nanos(37_500));
    }

    #[test]
    fn busy_poll_misses_long_waits_and_pays_double() {
        let p = params(WakePolicy::BusyPoll {
            budget: SimDuration::from_micros(25),
        });
        let c = p.wake_cost(SimDuration::from_micros(80));
        // Burned the budget AND still paid the interrupt.
        assert_eq!(c.extra_latency, SimDuration::from_micros(15));
        assert!(c.cpu_spin >= SimDuration::from_micros(25));
    }

    #[test]
    fn control_pdu_is_cheap_and_uncopied() {
        let m = TcpModel::new(params(WakePolicy::Interrupt));
        let mut w = wire(25.0);
        let (mut c, mut t) = (FifoServer::new(), FifoServer::new());
        let done = m.send_control(SimTime::ZERO, 72, &mut w, Direction::H2C, &mut c, &mut t);
        // 4us + wire(200B) + 2us prop + 4us ≈ 10us.
        assert!(done.as_micros_f64() < 12.0, "{done:?}");
    }

    #[test]
    fn smaller_chunks_cost_more_cpu() {
        let m = TcpModel::new(params(WakePolicy::Interrupt));
        let mut w = wire(100.0);
        let (mut c1, mut t1) = (FifoServer::new(), FifoServer::new());
        let (mut c2, mut t2) = (FifoServer::new(), FifoServer::new());
        m.send_chunked(
            SimTime::ZERO,
            2 * MIB,
            16 * KIB,
            &mut w,
            Direction::H2C,
            &mut c1,
            &mut t1,
        );
        let mut w2 = wire(100.0);
        m.send_chunked(
            SimTime::ZERO,
            2 * MIB,
            512 * KIB,
            &mut w2,
            Direction::H2C,
            &mut c2,
            &mut t2,
        );
        assert!(c1.busy_time() > c2.busy_time());
    }
}
