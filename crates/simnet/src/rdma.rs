//! RDMA (InfiniBand / RoCE) transport model.
//!
//! RDMA gives the paper its "fast but cumbersome" comparison point: one-digit
//! microsecond message latency, near-wire bandwidth, no payload copies — but
//! memory-registration overhead that inflates tail latency for short-running
//! workloads (§5.4: the paper re-ran Fig. 13 with a 3–4× longer duration and
//! watched the RDMA tail drop below NVMe-oAF's).
//!
//! The memory-registration model is mechanistic: a connection starts with a
//! cold buffer pool, so each of the first `pool_buffers` I/Os pins and
//! registers its buffer (`reg_cost` each); afterwards a small invalidation
//! probability models pool churn/remapping. Short runs therefore see a
//! higher *fraction* of registration-delayed I/Os than long runs — exactly
//! the amortization effect the paper describes.

use crate::link::{Direction, Wire};
use crate::rng::SimRng;
use crate::server::FifoServer;
use crate::time::{SimDuration, SimTime};

/// Static parameters of the RDMA model.
#[derive(Clone, Copy, Debug)]
pub struct RdmaParams {
    /// CPU cost to post a work request and reap its completion.
    pub per_msg_cpu: SimDuration,
    /// Header bytes per message on the wire.
    pub header_bytes: u64,
    /// Cost to register (pin + map) one buffer with the NIC.
    pub reg_cost: SimDuration,
    /// Number of distinct buffers the application pool cycles through
    /// (cold-start registrations).
    pub pool_buffers: u64,
    /// Probability an I/O's buffer was invalidated (remapped/compacted)
    /// since last use and must be re-registered.
    pub invalidation_prob: f64,
}

/// Per-connection memory-registration cache state.
#[derive(Clone, Debug)]
pub struct MrCache {
    registered: u64,
    params: RdmaParams,
    hits: u64,
    misses: u64,
}

impl MrCache {
    /// A cold cache for a new connection.
    pub fn new(params: RdmaParams) -> Self {
        MrCache {
            registered: 0,
            params,
            hits: 0,
            misses: 0,
        }
    }

    /// Charges the registration cost for the buffer used by the next I/O,
    /// if any. Deterministic cold misses first, then stochastic churn.
    pub fn charge(&mut self, rng: &mut SimRng) -> SimDuration {
        if self.registered < self.params.pool_buffers {
            self.registered += 1;
            self.misses += 1;
            return self.params.reg_cost;
        }
        if rng.chance(self.params.invalidation_prob) {
            self.misses += 1;
            self.params.reg_cost
        } else {
            self.hits += 1;
            SimDuration::ZERO
        }
    }

    /// Registration misses so far (cold + churn).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }
}

/// The RDMA transport model (stateless; contended state lives in [`Wire`]
/// and caller-owned CPU servers / [`MrCache`]).
#[derive(Clone, Copy, Debug)]
pub struct RdmaModel {
    /// Model parameters.
    pub params: RdmaParams,
}

impl RdmaModel {
    /// Creates a model from parameters.
    pub fn new(params: RdmaParams) -> Self {
        RdmaModel { params }
    }

    /// One-sided data transfer of `bytes` (RDMA READ/WRITE executed by the
    /// NIC): initiator CPU posts the work request, the wire moves the data,
    /// no CPU on the passive side. Returns completion-visible time at the
    /// initiator (after completion-queue reap).
    pub fn transfer(
        &self,
        now: SimTime,
        bytes: u64,
        wire: &mut Wire,
        dir: Direction,
        initiator_cpu: &mut FifoServer,
    ) -> SimTime {
        let (_, posted) = initiator_cpu.submit(now, self.params.per_msg_cpu);
        let landed = wire.transmit(posted, dir, bytes + self.params.header_bytes);
        // Completion reap back on the initiator core.
        let (_, reaped) = initiator_cpu.submit(landed, self.params.per_msg_cpu);
        reaped
    }

    /// Two-sided send of a small message (command/completion capsules over
    /// RDMA SEND): CPU on both sides.
    pub fn send_msg(
        &self,
        now: SimTime,
        bytes: u64,
        wire: &mut Wire,
        dir: Direction,
        src_cpu: &mut FifoServer,
        dst_cpu: &mut FifoServer,
    ) -> SimTime {
        let (_, posted) = src_cpu.submit(now, self.params.per_msg_cpu);
        let landed = wire.transmit(posted, dir, bytes + self.params.header_bytes);
        let (_, recv) = dst_cpu.submit(landed, self.params.per_msg_cpu);
        recv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::WireParams;
    use crate::units::{Rate, KIB};

    fn params() -> RdmaParams {
        RdmaParams {
            per_msg_cpu: SimDuration::from_nanos(700),
            header_bytes: 64,
            reg_cost: SimDuration::from_micros(250),
            pool_buffers: 64,
            invalidation_prob: 1e-4,
        }
    }

    fn wire() -> Wire {
        Wire::new(WireParams {
            rate: Rate::gbps(56.0),
            efficiency: 0.95,
            propagation: SimDuration::from_micros(1),
        })
    }

    #[test]
    fn small_message_latency_is_single_digit_us() {
        let m = RdmaModel::new(params());
        let mut w = wire();
        let mut cpu = FifoServer::new();
        let done = m.transfer(SimTime::ZERO, 4 * KIB, &mut w, Direction::C2H, &mut cpu);
        assert!(done.as_micros_f64() < 5.0, "{done:?}");
    }

    #[test]
    fn cold_pool_pays_registration_for_first_buffers() {
        let mut cache = MrCache::new(params());
        let mut rng = SimRng::seed_from_u64(1);
        let mut cold = 0;
        for _ in 0..64 {
            if cache.charge(&mut rng) > SimDuration::ZERO {
                cold += 1;
            }
        }
        assert_eq!(cold, 64);
        assert_eq!(cache.misses(), 64);
    }

    #[test]
    fn warm_pool_mostly_hits() {
        let mut cache = MrCache::new(params());
        let mut rng = SimRng::seed_from_u64(2);
        for _ in 0..64 {
            cache.charge(&mut rng);
        }
        let mut miss = 0u64;
        let n = 100_000;
        for _ in 0..n {
            if cache.charge(&mut rng) > SimDuration::ZERO {
                miss += 1;
            }
        }
        let rate = miss as f64 / n as f64;
        assert!(rate < 5e-4, "churn miss rate {rate}");
        assert!(cache.hits() > 0);
    }

    #[test]
    fn short_runs_have_higher_miss_fraction_than_long_runs() {
        let run = |n: u64| {
            let mut cache = MrCache::new(params());
            let mut rng = SimRng::seed_from_u64(3);
            let mut miss = 0u64;
            for _ in 0..n {
                if cache.charge(&mut rng) > SimDuration::ZERO {
                    miss += 1;
                }
            }
            miss as f64 / n as f64
        };
        assert!(run(1_000) > run(100_000) * 5.0);
    }

    #[test]
    fn transfer_beats_tcp_style_copies() {
        // RDMA 128KB at 56G: ~21us serialization + ~2us overhead.
        let m = RdmaModel::new(params());
        let mut w = wire();
        let mut cpu = FifoServer::new();
        let done = m.transfer(SimTime::ZERO, 128 * KIB, &mut w, Direction::C2H, &mut cpu);
        let us = done.as_micros_f64();
        assert!(us > 15.0 && us < 30.0, "got {us}us");
    }
}
