//! Virtual time for the discrete-event simulator.
//!
//! [`SimTime`] is a monotonically increasing instant measured in integer
//! nanoseconds since the start of the simulation. Using integers keeps the
//! event queue total-ordered and the simulation bit-for-bit reproducible;
//! floating point would make event ordering depend on accumulation order.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time expressed in (fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating difference `self - earlier`, zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// Negative and non-finite inputs clamp to zero: model arithmetic can
    /// transiently produce `-0.0`-ish values and a panic here would make
    /// every model site defensive instead.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Creates a duration from fractional microseconds (clamping like
    /// [`SimDuration::from_secs_f64`]).
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us / 1e6)
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration in (fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Duration in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by an integer factor.
    #[inline]
    pub fn mul_u64(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// The longer of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(
            self.0 >= rhs.0,
            "SimTime subtraction underflow: {self:?} - {rhs:?}"
        );
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}us", self.as_micros_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_micros(7).as_micros_f64(), 7.0);
    }

    #[test]
    fn time_plus_duration_is_monotone() {
        let t = SimTime::from_micros(10);
        let d = SimDuration::from_micros(3);
        assert_eq!((t + d).as_nanos(), 13_000);
        assert!(t + d > t);
    }

    #[test]
    fn subtraction_gives_duration() {
        let a = SimTime::from_micros(12);
        let b = SimTime::from_micros(4);
        assert_eq!(a - b, SimDuration::from_micros(8));
        assert_eq!(b.saturating_since(a), SimDuration::ZERO);
    }

    #[test]
    fn from_secs_f64_clamps_garbage() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e-9).as_nanos(), 1);
    }

    #[test]
    fn saturating_add_does_not_wrap() {
        let t = SimTime::MAX;
        assert_eq!(t + SimDuration::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_micros(3)), "3.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(3)), "3.000s");
    }

    #[test]
    fn min_max() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(
            SimDuration::from_nanos(5).max(SimDuration::from_nanos(9)),
            SimDuration::from_nanos(9)
        );
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
    }
}
