//! The discrete-event simulator core.
//!
//! [`Simulator`] owns a virtual clock and a priority queue of events. An
//! event is an arbitrary closure receiving `&mut Simulator<W>`, so handlers
//! can inspect/mutate the shared world state `W` and schedule follow-up
//! events. Ties in time are broken by insertion sequence number, which makes
//! runs deterministic regardless of the heap's internal ordering.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// Event payload: a one-shot closure run when its time arrives.
type Action<W> = Box<dyn FnOnce(&mut Simulator<W>)>;

struct Entry<W> {
    at: SimTime,
    seq: u64,
    action: Action<W>,
}

impl<W> PartialEq for Entry<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Entry<W> {}
impl<W> PartialOrd for Entry<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Entry<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // and break ties by insertion order for determinism.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event simulator over a world state `W`.
///
/// ```
/// use oaf_simnet::sim::Simulator;
/// use oaf_simnet::time::{SimDuration, SimTime};
///
/// let mut sim = Simulator::new(0u64); // the world: a counter
/// sim.schedule_at(SimTime::from_micros(10), |s| {
///     s.world += 1;
///     // Handlers schedule follow-ups relative to virtual "now".
///     s.schedule_in(SimDuration::from_micros(5), |s| s.world += 10);
/// });
/// sim.run();
/// assert_eq!(sim.world, 11);
/// assert_eq!(sim.now(), SimTime::from_micros(15));
/// ```
pub struct Simulator<W> {
    now: SimTime,
    seq: u64,
    executed: u64,
    queue: BinaryHeap<Entry<W>>,
    /// The simulated world, freely accessible to event handlers.
    pub world: W,
}

impl<W> Simulator<W> {
    /// Creates a simulator at `t = 0` around the given world state.
    pub fn new(world: W) -> Self {
        Simulator {
            now: SimTime::ZERO,
            seq: 0,
            executed: 0,
            queue: BinaryHeap::new(),
            world,
        }
    }

    /// The current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    #[inline]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending.
    #[inline]
    pub fn events_pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `action` to run at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error; the event is clamped to
    /// "now" in release builds and panics in debug builds.
    pub fn schedule_at<F>(&mut self, at: SimTime, action: F)
    where
        F: FnOnce(&mut Simulator<W>) + 'static,
    {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < {:?}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Entry {
            at,
            seq,
            action: Box::new(action),
        });
    }

    /// Schedules `action` to run `delay` after the current time.
    pub fn schedule_in<F>(&mut self, delay: SimDuration, action: F)
    where
        F: FnOnce(&mut Simulator<W>) + 'static,
    {
        let at = self.now + delay;
        self.schedule_at(at, action);
    }

    /// Runs a single event, advancing the clock to its timestamp.
    ///
    /// Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        let Some(entry) = self.queue.pop() else {
            return false;
        };
        debug_assert!(entry.at >= self.now, "clock went backwards");
        self.now = entry.at;
        self.executed += 1;
        (entry.action)(self);
        true
    }

    /// Runs events until the queue drains.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs events with timestamps `<= horizon`, then sets the clock to
    /// `horizon` (if it has not already passed it).
    pub fn run_until(&mut self, horizon: SimTime) {
        loop {
            match self.queue.peek() {
                Some(e) if e.at <= horizon => {
                    self.step();
                }
                _ => break,
            }
        }
        self.now = self.now.max(horizon);
    }

    /// Runs until either the queue drains or `max_events` more events have
    /// executed. Returns the number of events executed by this call.
    pub fn run_bounded(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_run_in_time_order() {
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        let mut sim = Simulator::new(());
        for (t, id) in [(30u64, 3u32), (10, 1), (20, 2)] {
            let log = log.clone();
            sim.schedule_at(SimTime::from_micros(t), move |_| log.borrow_mut().push(id));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_micros(30));
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        let mut sim = Simulator::new(());
        for id in 0..16u32 {
            let log = log.clone();
            sim.schedule_at(SimTime::from_micros(5), move |_| log.borrow_mut().push(id));
        }
        sim.run();
        assert_eq!(*log.borrow(), (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut sim = Simulator::new(0u64);
        fn tick(sim: &mut Simulator<u64>) {
            sim.world += 1;
            if sim.world < 5 {
                sim.schedule_in(SimDuration::from_micros(2), tick);
            }
        }
        sim.schedule_at(SimTime::ZERO, tick);
        sim.run();
        assert_eq!(sim.world, 5);
        assert_eq!(sim.now(), SimTime::from_micros(8));
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim = Simulator::new(Vec::<u64>::new());
        for t in [1u64, 2, 3, 4, 5] {
            sim.schedule_at(SimTime::from_secs(t), move |s| s.world.push(t));
        }
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.world, vec![1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_secs(3));
        assert_eq!(sim.events_pending(), 2);
        sim.run();
        assert_eq!(sim.world, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn run_until_advances_clock_even_when_idle() {
        let mut sim = Simulator::new(());
        sim.run_until(SimTime::from_secs(9));
        assert_eq!(sim.now(), SimTime::from_secs(9));
    }

    #[test]
    fn run_bounded_counts_events() {
        let mut sim = Simulator::new(());
        for t in 0..10u64 {
            sim.schedule_at(SimTime::from_micros(t), |_| {});
        }
        assert_eq!(sim.run_bounded(4), 4);
        assert_eq!(sim.events_pending(), 6);
        assert_eq!(sim.run_bounded(100), 6);
    }

    #[test]
    fn step_on_empty_returns_false() {
        let mut sim = Simulator::new(());
        assert!(!sim.step());
    }
}
