//! CPU memory-copy engine model.
//!
//! Payload copies dominate the CPU cost of kernel TCP at large I/O sizes
//! (§3.2 of the paper: write "other" time is buffer fill + copy-out), and
//! eliminating one copy is the whole point of the zero-copy design
//! (§4.4.3). The model is a rate plus a fixed per-call setup cost, which
//! captures both the bandwidth-bound large-copy regime and the
//! latency-bound small-copy regime.

use crate::time::SimDuration;
use crate::units::Rate;

/// A memcpy-like engine with fixed setup cost and finite bandwidth.
#[derive(Clone, Copy, Debug)]
pub struct CopyEngine {
    /// Sustained copy bandwidth (cache-cold, single core).
    pub rate: Rate,
    /// Fixed per-call overhead (function call, cache warmup, loop setup).
    pub setup: SimDuration,
}

impl CopyEngine {
    /// A copy engine with the given sustained rate and setup cost.
    pub fn new(rate: Rate, setup: SimDuration) -> Self {
        CopyEngine { rate, setup }
    }

    /// Time to copy `bytes` once.
    pub fn copy_time(&self, bytes: u64) -> SimDuration {
        self.setup + SimDuration::from_secs_f64(self.rate.transfer_secs(bytes))
    }

    /// Time to copy `bytes` `n` times (e.g. once per side of a TCP
    /// transfer). `n` may be zero for zero-copy paths.
    pub fn copies_time(&self, bytes: u64, n: u32) -> SimDuration {
        self.copy_time(bytes).mul_u64(u64::from(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::KIB;

    #[test]
    fn copy_time_scales_linearly_past_setup() {
        let eng = CopyEngine::new(Rate::gib_per_sec(10.0), SimDuration::from_nanos(200));
        let t1 = eng.copy_time(128 * KIB);
        let t2 = eng.copy_time(256 * KIB);
        // Doubling the size should roughly double the bandwidth-bound part.
        let bw1 = t1.saturating_sub(eng.setup).as_nanos();
        let bw2 = t2.saturating_sub(eng.setup).as_nanos();
        assert!((bw2 as f64 / bw1 as f64 - 2.0).abs() < 0.01);
    }

    #[test]
    fn ten_gib_per_sec_moves_128k_in_about_12us() {
        let eng = CopyEngine::new(Rate::gib_per_sec(10.0), SimDuration::ZERO);
        let t = eng.copy_time(128 * KIB);
        let us = t.as_micros_f64();
        assert!((us - 12.2).abs() < 0.3, "got {us}us");
    }

    #[test]
    fn zero_copies_cost_nothing() {
        let eng = CopyEngine::new(Rate::gib_per_sec(5.0), SimDuration::from_nanos(500));
        assert_eq!(eng.copies_time(1 << 20, 0), SimDuration::ZERO);
        assert_eq!(
            eng.copies_time(1 << 20, 2).as_nanos(),
            eng.copy_time(1 << 20).as_nanos() * 2
        );
    }
}
