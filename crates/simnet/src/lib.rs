//! Discrete-event simulation engine and network models for the NVMe-oAF
//! reproduction.
//!
//! This crate provides the substrate every simulated experiment in the
//! workspace runs on:
//!
//! * a deterministic [`sim::Simulator`] with a virtual [`time::SimTime`]
//!   clock and a stable-order event queue,
//! * analytic queueing primitives ([`server::FifoServer`],
//!   [`server::MultiServer`], [`server::Pipeline`]) used to model NICs, CPU
//!   copy engines and SSD channels without per-byte events,
//! * calibrated link models for kernel TCP ([`tcp::TcpModel`]) and RDMA
//!   ([`rdma::RdmaModel`]) transports, including busy-poll behaviour and
//!   memory-registration tail effects, and
//! * measurement utilities: streaming statistics and a log-bucketed
//!   latency histogram ([`stats`]).
//!
//! The models are deliberately parametric: all constants live in the
//! per-model `*Params` structs so that the benchmark harness can publish the
//! calibration next to the reproduced figures.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod calendar;
pub mod copy;
pub mod link;
pub mod rdma;
pub mod rng;
pub mod server;
pub mod sim;
pub mod stats;
pub mod tcp;
pub mod time;
pub mod units;

pub use sim::Simulator;
pub use time::SimTime;
