//! Generic point-to-point wire model shared by the TCP and RDMA links.
//!
//! A [`Wire`] is a full-duplex Ethernet/InfiniBand cable: one FIFO
//! serialization server per direction plus a fixed propagation delay. All
//! flows sharing a NIC share the same `Wire`, which is how the models
//! capture aggregate-bandwidth ceilings (four streams on one 10 Gbps NIC
//! cannot exceed 1.25 GB/s combined, Fig. 2).

use crate::calendar::CalendarServer;
use crate::time::{SimDuration, SimTime};
use crate::units::Rate;

/// Direction of travel on a full-duplex wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Client/initiator to target (host-to-controller).
    H2C,
    /// Target to client/initiator (controller-to-host).
    C2H,
}

/// Static parameters of a wire.
#[derive(Clone, Copy, Debug)]
pub struct WireParams {
    /// Raw signalling rate (e.g. `Rate::gbps(25.0)`).
    pub rate: Rate,
    /// Fraction of the raw rate usable by payload after frame/IP/transport
    /// headers (≈0.94 for Ethernet at MTU 1500, ≈0.97 with jumbo frames).
    pub efficiency: f64,
    /// One-way propagation + switching delay.
    pub propagation: SimDuration,
}

impl WireParams {
    /// Effective payload rate.
    pub fn goodput(&self) -> Rate {
        self.rate.scaled(self.efficiency)
    }

    /// Serialization time for `bytes` of payload.
    pub fn serialize_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.goodput().transfer_secs(bytes))
    }
}

/// A full-duplex wire with per-direction FIFO serialization.
#[derive(Clone, Debug)]
pub struct Wire {
    /// Static parameters.
    pub params: WireParams,
    h2c: CalendarServer,
    c2h: CalendarServer,
}

impl Wire {
    /// Creates an idle wire.
    pub fn new(params: WireParams) -> Self {
        Wire {
            params,
            h2c: CalendarServer::new(),
            c2h: CalendarServer::new(),
        }
    }

    /// Transmits `bytes` in `dir` starting no earlier than `now`; returns
    /// the time the last bit arrives at the far end.
    pub fn transmit(&mut self, now: SimTime, dir: Direction, bytes: u64) -> SimTime {
        let service = self.params.serialize_time(bytes);
        let server = match dir {
            Direction::H2C => &mut self.h2c,
            Direction::C2H => &mut self.c2h,
        };
        let (_, done) = server.submit(now, service);
        done + self.params.propagation
    }

    /// Transmits `bytes` as a latency-only message: the sender sees the
    /// serialization + propagation delay, but no wire capacity is
    /// reserved. Use for small control PDUs whose occupancy (hundreds of
    /// bytes) is negligible next to bulk data; reserving slots for them
    /// would fragment the schedule the bulk jobs need.
    pub fn transmit_latency_only(&self, now: SimTime, bytes: u64) -> SimTime {
        now + self.params.serialize_time(bytes) + self.params.propagation
    }

    /// Bytes-per-second actually achievable in one direction.
    pub fn goodput(&self) -> Rate {
        self.params.goodput()
    }

    /// Utilization of one direction over `[0, horizon]`.
    pub fn utilization(&self, dir: Direction, horizon: SimTime) -> f64 {
        match dir {
            Direction::H2C => self.h2c.utilization(horizon),
            Direction::C2H => self.c2h.utilization(horizon),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{KIB, MIB};

    fn wire(gbps: f64) -> Wire {
        Wire::new(WireParams {
            rate: Rate::gbps(gbps),
            efficiency: 0.94,
            propagation: SimDuration::from_micros(2),
        })
    }

    #[test]
    fn serialization_time_matches_rate() {
        let w = wire(10.0);
        // 1 MiB at 10Gbps*0.94 ≈ 0.89ms.
        let t = w.params.serialize_time(MIB);
        assert!((t.as_micros_f64() - 892.0).abs() < 5.0, "{t:?}");
    }

    #[test]
    fn directions_do_not_contend() {
        let mut w = wire(10.0);
        let a = w.transmit(SimTime::ZERO, Direction::H2C, 128 * KIB);
        let b = w.transmit(SimTime::ZERO, Direction::C2H, 128 * KIB);
        // Full duplex: both finish at serialization + propagation.
        assert_eq!(a, b);
    }

    #[test]
    fn same_direction_serializes() {
        let mut w = wire(10.0);
        let a = w.transmit(SimTime::ZERO, Direction::H2C, 128 * KIB);
        let b = w.transmit(SimTime::ZERO, Direction::H2C, 128 * KIB);
        let ser = w.params.serialize_time(128 * KIB);
        assert_eq!(b.saturating_since(a), ser);
    }

    #[test]
    fn faster_wire_is_faster() {
        let mut w10 = wire(10.0);
        let mut w100 = wire(100.0);
        let a = w10.transmit(SimTime::ZERO, Direction::H2C, MIB);
        let b = w100.transmit(SimTime::ZERO, Direction::H2C, MIB);
        assert!(b < a);
    }

    #[test]
    fn utilization_accounts_per_direction() {
        let mut w = wire(10.0);
        let done = w.transmit(SimTime::ZERO, Direction::H2C, MIB);
        let horizon = done;
        assert!(w.utilization(Direction::H2C, horizon) > 0.9);
        assert_eq!(w.utilization(Direction::C2H, horizon), 0.0);
    }
}
