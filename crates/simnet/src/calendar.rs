//! Order-insensitive single-resource scheduling: the calendar server.
//!
//! [`crate::server::FifoServer`] assumes jobs are *submitted* in
//! non-decreasing time order. Experiment drivers that simulate one I/O's
//! whole phase chain eagerly violate that: I/O *k*'s early phases are
//! submitted to a resource after I/O *k−1*'s late phases, even though
//! they happen earlier in virtual time — a FIFO server would serialize
//! the pipeline.
//!
//! [`CalendarServer`] fixes this by keeping the resource's actual busy
//! schedule (a set of disjoint busy intervals) and placing each job in
//! the earliest gap at or after its arrival. Submission order no longer
//! matters: capacity-1 contention is still exact, and for in-order
//! arrivals the result coincides with the FIFO server.

use std::collections::BTreeMap;

use crate::time::{SimDuration, SimTime};

/// How far behind the latest activity intervals are retained. Jobs
/// arriving more than this window in the past are clamped forward; in a
/// closed-loop experiment arrivals never regress anywhere near this far.
const PRUNE_WINDOW: SimDuration = SimDuration::from_secs(2);

/// A capacity-1 resource scheduled by earliest-gap placement.
#[derive(Clone, Debug, Default)]
pub struct CalendarServer {
    /// Busy intervals `start → end`, disjoint and non-adjacent.
    busy: BTreeMap<u64, u64>,
    busy_total: SimDuration,
    jobs: u64,
    horizon: u64, // latest interval end
    floor: u64,   // nothing may be scheduled before this (pruned region)
}

impl CalendarServer {
    /// An idle server.
    pub fn new() -> Self {
        CalendarServer::default()
    }

    /// Schedules a job arriving at `now` needing `service`; returns
    /// `(start, completion)` with `start >= now` placed in the earliest
    /// gap.
    pub fn submit(&mut self, now: SimTime, service: SimDuration) -> (SimTime, SimTime) {
        self.jobs += 1;
        self.busy_total += service;
        let dur = service.as_nanos();
        let arrival = now.as_nanos().max(self.floor);
        if dur == 0 {
            return (SimTime::from_nanos(arrival), SimTime::from_nanos(arrival));
        }
        // Find the earliest gap of length `dur` starting at or after
        // `arrival`. Candidate start: `arrival`, pushed forward past any
        // interval overlapping [cand, cand + dur). Intervals are disjoint
        // and non-adjacent, so only the predecessor can straddle the
        // initial candidate; afterwards the candidate always sits at an
        // interval end, and only successors matter.
        let mut cand = arrival;
        if let Some((_, &e)) = self.busy.range(..=cand).next_back() {
            if e > cand {
                cand = e;
            }
        }
        while let Some((&s, &e)) = self.busy.range(cand..).next() {
            if s >= cand.saturating_add(dur) {
                break; // the gap before this interval fits
            }
            cand = e;
        }
        let start = cand;
        let end = start + dur;
        self.insert(start, end);
        self.prune();
        (SimTime::from_nanos(start), SimTime::from_nanos(end))
    }

    fn insert(&mut self, mut start: u64, mut end: u64) {
        // Merge with an adjacent/overlapping predecessor.
        if let Some((&ps, &pe)) = self.busy.range(..=start).next_back() {
            debug_assert!(pe <= start, "overlapping schedule insert");
            if pe == start {
                self.busy.remove(&ps);
                start = ps;
            }
        }
        // Merge with an adjacent successor.
        if let Some((&ns, &ne)) = self.busy.range(end..).next() {
            debug_assert!(ns >= end, "overlapping schedule insert");
            if ns == end {
                self.busy.remove(&ns);
                end = ne;
            }
        }
        self.busy.insert(start, end);
        self.horizon = self.horizon.max(end);
    }

    fn prune(&mut self) {
        let cutoff = self.horizon.saturating_sub(PRUNE_WINDOW.as_nanos());
        if cutoff <= self.floor {
            return;
        }
        // Drop intervals entirely before the cutoff; the floor guarantees
        // no job is later placed into the forgotten region.
        let keep: Vec<u64> = self
            .busy
            .range(..cutoff)
            .filter(|&(_, &e)| e <= cutoff)
            .map(|(&s, _)| s)
            .collect();
        for s in keep {
            self.busy.remove(&s);
        }
        self.floor = self.floor.max(cutoff);
    }

    /// End of the currently known schedule (the analog of
    /// `FifoServer::next_free` for in-order workloads).
    pub fn next_free(&self) -> SimTime {
        SimTime::from_nanos(self.horizon)
    }

    /// Total service time dispensed.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_total
    }

    /// Jobs scheduled.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        self.busy_total.as_secs_f64() / horizon.as_secs_f64()
    }
}

/// `k` calendar lanes fed by earliest-gap selection (the order-
/// insensitive analog of [`crate::server::MultiServer`]).
#[derive(Clone, Debug)]
pub struct CalendarMulti {
    lanes: Vec<CalendarServer>,
}

impl CalendarMulti {
    /// Creates `k` idle lanes.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "CalendarMulti needs at least one lane");
        CalendarMulti {
            lanes: vec![CalendarServer::new(); k],
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Submits one job to the lane that can start it earliest.
    pub fn submit(&mut self, now: SimTime, service: SimDuration) -> (SimTime, SimTime) {
        let lane = self.best_lane(now);
        self.lanes[lane].submit(now, service)
    }

    /// Stripes `pieces` equal units over the lanes; completes with the
    /// last piece.
    pub fn submit_striped(
        &mut self,
        now: SimTime,
        pieces: u64,
        unit_service: SimDuration,
    ) -> (SimTime, SimTime) {
        assert!(pieces > 0);
        let mut first = SimTime::MAX;
        let mut last = SimTime::ZERO;
        for _ in 0..pieces {
            let (s, d) = self.submit(now, unit_service);
            first = first.min(s);
            last = last.max(d);
        }
        (first, last)
    }

    /// Total jobs scheduled.
    pub fn jobs(&self) -> u64 {
        self.lanes.iter().map(CalendarServer::jobs).sum()
    }

    /// Aggregate utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        let busy: SimDuration = self.lanes.iter().map(CalendarServer::busy_time).sum();
        busy.as_secs_f64() / (horizon.as_secs_f64() * self.lanes.len() as f64)
    }

    fn best_lane(&self, _now: SimTime) -> usize {
        // Earliest schedule end is a good proxy for "can start earliest";
        // exact gap search per lane would be quadratic for little gain.
        let mut best = 0;
        let mut best_t = self.lanes[0].next_free();
        for (i, lane) in self.lanes.iter().enumerate().skip(1) {
            let t = lane.next_free();
            if t < best_t {
                best = i;
                best_t = t;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(x: u64) -> SimDuration {
        SimDuration::from_micros(x)
    }
    fn at(x: u64) -> SimTime {
        SimTime::from_micros(x)
    }

    #[test]
    fn in_order_arrivals_match_fifo() {
        let mut cal = CalendarServer::new();
        let mut fifo = crate::server::FifoServer::new();
        let jobs = [(0u64, 10u64), (0, 10), (5, 3), (40, 8), (41, 8)];
        for &(t, s) in &jobs {
            let a = cal.submit(at(t), us(s));
            let b = fifo.submit(at(t), us(s));
            assert_eq!(a, b, "job at t={t}");
        }
    }

    #[test]
    fn out_of_order_job_fills_gap() {
        let mut cal = CalendarServer::new();
        // A long job far in the future...
        let (s1, e1) = cal.submit(at(100), us(50));
        assert_eq!((s1, e1), (at(100), at(150)));
        // ...must not delay an earlier short job.
        let (s2, e2) = cal.submit(at(0), us(10));
        assert_eq!((s2, e2), (at(0), at(10)));
        // A job that fits exactly in the remaining gap.
        let (s3, e3) = cal.submit(at(0), us(90));
        assert_eq!((s3, e3), (at(10), at(100)));
        // Next job has no gap until 150.
        let (s4, _) = cal.submit(at(0), us(1));
        assert_eq!(s4, at(150));
    }

    #[test]
    fn overlapping_candidate_pushed_past_interval() {
        let mut cal = CalendarServer::new();
        cal.submit(at(10), us(10)); // busy 10..20
        let (s, e) = cal.submit(at(15), us(5));
        assert_eq!((s, e), (at(20), at(25)));
    }

    #[test]
    fn gap_too_small_is_skipped() {
        let mut cal = CalendarServer::new();
        cal.submit(at(0), us(10)); // 0..10
        cal.submit(at(15), us(10)); // 15..25
                                    // 5us gap at 10..15 cannot fit 7us.
        let (s, _) = cal.submit(at(8), us(7));
        assert_eq!(s, at(25));
        // But 4us fits.
        let (s, e) = cal.submit(at(8), us(4));
        assert_eq!((s, e), (at(10), at(14)));
    }

    #[test]
    fn zero_service_jobs_cost_nothing() {
        let mut cal = CalendarServer::new();
        cal.submit(at(0), us(100));
        let (s, e) = cal.submit(at(50), SimDuration::ZERO);
        assert_eq!(s, e);
        assert_eq!(s, at(50));
    }

    #[test]
    fn accounting() {
        let mut cal = CalendarServer::new();
        cal.submit(at(0), us(10));
        cal.submit(at(0), us(10));
        assert_eq!(cal.jobs(), 2);
        assert_eq!(cal.busy_time(), us(20));
        assert_eq!(cal.next_free(), at(20));
        assert!((cal.utilization(at(40)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merging_keeps_map_small_under_saturation() {
        let mut cal = CalendarServer::new();
        for _ in 0..10_000 {
            cal.submit(SimTime::ZERO, us(3));
        }
        assert!(cal.busy.len() <= 4, "intervals: {}", cal.busy.len());
        assert_eq!(cal.next_free(), at(30_000));
    }

    #[test]
    fn pruning_does_not_create_false_gaps() {
        let mut cal = CalendarServer::new();
        // Fill 0..3s solid (beyond the prune window).
        for _ in 0..30 {
            cal.submit(SimTime::ZERO, SimDuration::from_millis(100));
        }
        assert_eq!(cal.next_free(), SimTime::from_secs(3));
        // A very late arrival followed by an early one: the early one
        // must not be scheduled into the pruned region.
        cal.submit(SimTime::from_secs(10), us(1));
        let (s, _) = cal.submit(SimTime::ZERO, us(1));
        assert!(
            s >= SimTime::from_secs(3),
            "scheduled into pruned region at {s:?}"
        );
    }

    #[test]
    fn multi_parallelizes() {
        let mut m = CalendarMulti::new(4);
        let mut dones = Vec::new();
        for _ in 0..4 {
            dones.push(m.submit(at(0), us(10)).1);
        }
        assert!(dones.iter().all(|&d| d == at(10)));
        let (_, d5) = m.submit(at(0), us(10));
        assert_eq!(d5, at(20));
        assert_eq!(m.jobs(), 5);
    }

    #[test]
    fn multi_striping() {
        let mut m = CalendarMulti::new(4);
        let (s, d) = m.submit_striped(at(0), 8, us(10));
        assert_eq!((s, d), (at(0), at(20)));
    }

    #[test]
    fn pipelined_eager_simulation_overlaps() {
        // The exact pattern that broke the FIFO server in the experiment
        // driver: IO1's late phase lands at t=300 on the core, then IO2's
        // early phase arrives "later" (in submission order) at t=0.
        let mut core = CalendarServer::new();
        let (_, io1_late) = core.submit(at(300), us(5));
        assert_eq!(io1_late, at(305));
        let (s, _) = core.submit(at(0), us(5));
        assert_eq!(s, at(0), "early phase must not queue behind late one");
    }
}
