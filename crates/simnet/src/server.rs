//! Analytic queueing primitives.
//!
//! The transport and device models represent contended resources — a NIC's
//! wire, a CPU core running a protocol stack, an SSD channel — as FIFO
//! servers. Instead of simulating every byte, an arrival at time `t`
//! demanding `s` seconds of service is assigned the interval
//! `[max(t, next_free), max(t, next_free) + s)`; the server remembers only
//! `next_free`. This is exact for work-conserving FIFO resources and keeps
//! experiment runtime proportional to the number of I/Os, not bytes.

use crate::time::{SimDuration, SimTime};

/// A single work-conserving FIFO server.
#[derive(Clone, Debug)]
pub struct FifoServer {
    next_free: SimTime,
    busy: SimDuration,
    jobs: u64,
}

impl FifoServer {
    /// Creates an idle server.
    pub fn new() -> Self {
        FifoServer {
            next_free: SimTime::ZERO,
            busy: SimDuration::ZERO,
            jobs: 0,
        }
    }

    /// Enqueues a job arriving at `now` that needs `service` time.
    /// Returns `(start, completion)` times.
    pub fn submit(&mut self, now: SimTime, service: SimDuration) -> (SimTime, SimTime) {
        let start = self.next_free.max(now);
        let done = start + service;
        self.next_free = done;
        self.busy += service;
        self.jobs += 1;
        (start, done)
    }

    /// The earliest time a new arrival could start service.
    #[inline]
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Queueing delay a job arriving `now` would experience before service.
    #[inline]
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.next_free.saturating_since(now)
    }

    /// Total service time dispensed (for utilization accounting).
    #[inline]
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Number of jobs served.
    #[inline]
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Utilization over the window `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        self.busy.as_secs_f64() / horizon.as_secs_f64()
    }
}

impl Default for FifoServer {
    fn default() -> Self {
        Self::new()
    }
}

/// `k` identical FIFO servers fed by a single queue (an M/G/k-style
/// resource): each job goes to the server that frees up first. Models SSD
/// internal channels and multi-core protocol processing.
#[derive(Clone, Debug)]
pub struct MultiServer {
    lanes: Vec<FifoServer>,
}

impl MultiServer {
    /// Creates `k` idle lanes. `k` must be nonzero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "MultiServer needs at least one lane");
        MultiServer {
            lanes: vec![FifoServer::new(); k],
        }
    }

    /// Number of lanes.
    #[inline]
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Submits a job at `now` needing `service`; it is placed on the lane
    /// that can start it earliest. Returns `(start, completion)`.
    pub fn submit(&mut self, now: SimTime, service: SimDuration) -> (SimTime, SimTime) {
        let lane = self.earliest_lane();
        self.lanes[lane].submit(now, service)
    }

    /// Submits a job striped across lanes as `pieces` equal units each
    /// needing `unit_service`. The job completes when its last piece does.
    /// This models an SSD splitting a large I/O into pages spread over
    /// channels: small I/Os use one lane, large I/Os recruit them all.
    pub fn submit_striped(
        &mut self,
        now: SimTime,
        pieces: u64,
        unit_service: SimDuration,
    ) -> (SimTime, SimTime) {
        assert!(pieces > 0);
        let mut first_start = SimTime::MAX;
        let mut last_done = SimTime::ZERO;
        for _ in 0..pieces {
            let lane = self.earliest_lane();
            let (s, d) = self.lanes[lane].submit(now, unit_service);
            first_start = first_start.min(s);
            last_done = last_done.max(d);
        }
        (first_start, last_done)
    }

    /// Earliest time any lane frees up.
    pub fn next_free(&self) -> SimTime {
        self.lanes
            .iter()
            .map(FifoServer::next_free)
            .min()
            .expect("at least one lane")
    }

    /// Total jobs served across lanes.
    pub fn jobs(&self) -> u64 {
        self.lanes.iter().map(FifoServer::jobs).sum()
    }

    /// Aggregate utilization over `[0, horizon]` (1.0 = all lanes busy).
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        let busy: SimDuration = self.lanes.iter().map(FifoServer::busy_time).sum();
        busy.as_secs_f64() / (horizon.as_secs_f64() * self.lanes.len() as f64)
    }

    fn earliest_lane(&self) -> usize {
        let mut best = 0;
        let mut best_t = self.lanes[0].next_free();
        for (i, lane) in self.lanes.iter().enumerate().skip(1) {
            let t = lane.next_free();
            if t < best_t {
                best = i;
                best_t = t;
            }
        }
        best
    }
}

/// A linear pipeline of FIFO stages. A job entering at `now` passes through
/// each stage in order, queueing at every stage. Models the
/// client-CPU → wire → target-CPU journey of a TCP chunk: the result is the
/// classic store-and-forward pipeline where sustained throughput equals the
/// slowest stage's rate while latency is the sum of stage times.
#[derive(Clone, Debug)]
pub struct Pipeline {
    stages: Vec<FifoServer>,
}

impl Pipeline {
    /// Creates a pipeline with `n` idle stages.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "pipeline needs at least one stage");
        Pipeline {
            stages: vec![FifoServer::new(); n],
        }
    }

    /// Number of stages.
    #[inline]
    pub fn stages(&self) -> usize {
        self.stages.len()
    }

    /// Pushes a job through all stages; `services[i]` is the demand at stage
    /// `i`. Returns the final completion time.
    pub fn submit(&mut self, now: SimTime, services: &[SimDuration]) -> SimTime {
        assert_eq!(
            services.len(),
            self.stages.len(),
            "one service time per stage"
        );
        let mut t = now;
        for (stage, &s) in self.stages.iter_mut().zip(services) {
            let (_, done) = stage.submit(t, s);
            t = done;
        }
        t
    }

    /// Direct access to a stage server (e.g. to share the wire stage between
    /// several flows).
    pub fn stage_mut(&mut self, i: usize) -> &mut FifoServer {
        &mut self.stages[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(x: u64) -> SimDuration {
        SimDuration::from_micros(x)
    }
    fn at(x: u64) -> SimTime {
        SimTime::from_micros(x)
    }

    #[test]
    fn fifo_serializes_back_to_back_jobs() {
        let mut s = FifoServer::new();
        let (s1, d1) = s.submit(at(0), us(10));
        let (s2, d2) = s.submit(at(0), us(10));
        assert_eq!((s1, d1), (at(0), at(10)));
        assert_eq!((s2, d2), (at(10), at(20)));
        assert_eq!(s.jobs(), 2);
        assert_eq!(s.busy_time(), us(20));
    }

    #[test]
    fn fifo_idles_between_sparse_arrivals() {
        let mut s = FifoServer::new();
        s.submit(at(0), us(5));
        let (start, done) = s.submit(at(100), us(5));
        assert_eq!(start, at(100));
        assert_eq!(done, at(105));
        assert!((s.utilization(at(105)) - 10.0 / 105.0).abs() < 1e-12);
    }

    #[test]
    fn fifo_backlog_reports_queueing_delay() {
        let mut s = FifoServer::new();
        s.submit(at(0), us(50));
        assert_eq!(s.backlog(at(10)), us(40));
        assert_eq!(s.backlog(at(60)), SimDuration::ZERO);
    }

    #[test]
    fn multiserver_runs_k_jobs_in_parallel() {
        let mut m = MultiServer::new(4);
        let mut dones = Vec::new();
        for _ in 0..4 {
            let (_, d) = m.submit(at(0), us(10));
            dones.push(d);
        }
        assert!(dones.iter().all(|&d| d == at(10)));
        // A fifth job queues behind one of them.
        let (_, d5) = m.submit(at(0), us(10));
        assert_eq!(d5, at(20));
        assert_eq!(m.jobs(), 5);
    }

    #[test]
    fn striped_job_finishes_with_last_piece() {
        let mut m = MultiServer::new(4);
        // 8 pieces over 4 lanes at 10us each -> 2 rounds -> done at 20us.
        let (start, done) = m.submit_striped(at(0), 8, us(10));
        assert_eq!(start, at(0));
        assert_eq!(done, at(20));
        // 1 piece only occupies one lane.
        let (_, done2) = m.submit_striped(at(100), 1, us(10));
        assert_eq!(done2, at(110));
    }

    #[test]
    fn striped_small_jobs_interleave_across_lanes() {
        let mut m = MultiServer::new(2);
        let (_, d1) = m.submit_striped(at(0), 1, us(10));
        let (_, d2) = m.submit_striped(at(0), 1, us(10));
        let (_, d3) = m.submit_striped(at(0), 1, us(10));
        assert_eq!(d1, at(10));
        assert_eq!(d2, at(10)); // second lane
        assert_eq!(d3, at(20)); // queues
    }

    #[test]
    fn pipeline_latency_is_sum_throughput_is_bottleneck() {
        let mut p = Pipeline::new(3);
        let svc = [us(5), us(20), us(5)];
        let d1 = p.submit(at(0), &svc);
        assert_eq!(d1, at(30)); // 5 + 20 + 5
        let d2 = p.submit(at(0), &svc);
        // Second job: stage0 at 5..10, stage1 waits until 25..45, stage2 45..50.
        assert_eq!(d2, at(50));
        // Sustained spacing equals the bottleneck stage (20us).
        let d3 = p.submit(at(0), &svc);
        assert_eq!(d3 - d2, us(20));
    }

    #[test]
    fn multiserver_utilization() {
        let mut m = MultiServer::new(2);
        m.submit(at(0), us(10));
        m.submit(at(0), us(10));
        assert!((m.utilization(at(10)) - 1.0).abs() < 1e-12);
        assert!((m.utilization(at(20)) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        let _ = MultiServer::new(0);
    }
}
