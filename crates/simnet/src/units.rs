//! Size and rate units used throughout the models.

/// One kibibyte.
pub const KIB: u64 = 1024;
/// One mebibyte.
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte.
pub const GIB: u64 = 1024 * MIB;

/// A data rate in bytes per second.
///
/// Network links are conventionally quoted in decimal gigabits per second
/// (`10 Gbps == 1.25e9 B/s`), memory systems in binary gigabytes per second;
/// both constructors are provided so call sites stay honest about which
/// convention they mean.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug)]
pub struct Rate(f64);

impl Rate {
    /// Constructs a rate from bytes per second.
    #[inline]
    pub fn bytes_per_sec(bps: f64) -> Rate {
        assert!(
            bps > 0.0 && bps.is_finite(),
            "rate must be positive, got {bps}"
        );
        Rate(bps)
    }

    /// Constructs a rate from decimal gigabits per second (networking
    /// convention: 1 Gbps = 1e9 bits/s).
    #[inline]
    pub fn gbps(g: f64) -> Rate {
        Rate::bytes_per_sec(g * 1e9 / 8.0)
    }

    /// Constructs a rate from binary gibibytes per second (memory
    /// convention).
    #[inline]
    pub fn gib_per_sec(g: f64) -> Rate {
        Rate::bytes_per_sec(g * GIB as f64)
    }

    /// Constructs a rate from binary mebibytes per second.
    #[inline]
    pub fn mib_per_sec(m: f64) -> Rate {
        Rate::bytes_per_sec(m * MIB as f64)
    }

    /// The rate in bytes per second.
    #[inline]
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// The rate in binary mebibytes per second (how the paper's figures
    /// report bandwidth).
    #[inline]
    pub fn as_mib_per_sec(self) -> f64 {
        self.0 / MIB as f64
    }

    /// Time to move `bytes` at this rate, in seconds.
    #[inline]
    pub fn transfer_secs(self, bytes: u64) -> f64 {
        bytes as f64 / self.0
    }

    /// Scales the rate by a dimensionless efficiency factor in `(0, 1]`.
    #[inline]
    pub fn scaled(self, factor: f64) -> Rate {
        Rate::bytes_per_sec(self.0 * factor)
    }
}

/// Ceiling division for chunk counting: the number of `chunk`-sized pieces
/// needed to cover `len` bytes. Zero-length transfers still occupy one
/// protocol message, so `chunks_for(0, c) == 1`.
#[inline]
pub fn chunks_for(len: u64, chunk: u64) -> u64 {
    assert!(chunk > 0, "chunk size must be nonzero");
    if len == 0 {
        1
    } else {
        len.div_ceil(chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbps_matches_networking_convention() {
        // 10 Gbps = 1.25 GB/s decimal.
        let r = Rate::gbps(10.0);
        assert!((r.as_bytes_per_sec() - 1.25e9).abs() < 1.0);
    }

    #[test]
    fn gib_per_sec_is_binary() {
        let r = Rate::gib_per_sec(1.0);
        assert_eq!(r.as_bytes_per_sec(), GIB as f64);
        assert!((r.as_mib_per_sec() - 1024.0).abs() < 1e-9);
    }

    #[test]
    fn transfer_time() {
        let r = Rate::bytes_per_sec(1e9);
        assert!((r.transfer_secs(500_000_000) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        let _ = Rate::bytes_per_sec(0.0);
    }

    #[test]
    fn chunk_counting() {
        assert_eq!(chunks_for(0, 128 * KIB), 1);
        assert_eq!(chunks_for(1, 128 * KIB), 1);
        assert_eq!(chunks_for(128 * KIB, 128 * KIB), 1);
        assert_eq!(chunks_for(128 * KIB + 1, 128 * KIB), 2);
        assert_eq!(chunks_for(2 * MIB, 512 * KIB), 4);
    }

    #[test]
    fn scaled_rate() {
        let r = Rate::gbps(100.0).scaled(0.5);
        assert!((r.as_bytes_per_sec() - 6.25e9).abs() < 1.0);
    }
}
