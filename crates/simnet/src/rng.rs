//! Deterministic random variates for the models.
//!
//! Every stochastic element of the simulation draws from a [`SimRng`] seeded
//! by the experiment harness, so a given (seed, parameters) pair reproduces
//! the same figure rows bit-for-bit. Distribution sampling is implemented by
//! inverse transform on top of `rand`'s uniform generator to avoid pulling
//! in a separate distributions crate.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A small, fast, seedable RNG used by all models.
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child RNG; used to give each stream / device
    /// its own stochastic sequence so adding streams does not perturb
    /// existing ones.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.inner.next_u64() ^ salt.rotate_left(17) ^ 0x9e37_79b9_7f4a_7c15;
        SimRng::seed_from_u64(s)
    }

    /// Uniform sample in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform sample in `[lo, hi)`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer in `[0, n)`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.inner.gen_range(0..n)
    }

    /// Exponential sample with the given mean (inverse-transform).
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Guard the log: unit() can return exactly 0.0.
        let u = (1.0 - self.unit()).max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Standard normal sample via Box-Muller.
    #[inline]
    pub fn std_normal(&mut self) -> f64 {
        let u1 = self.unit().max(f64::MIN_POSITIVE);
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Lognormal sample parameterized by the *median* and the shape `sigma`
    /// (the log-space standard deviation). Device latency jitter in the
    /// models is lognormal: strictly positive with a long right tail.
    #[inline]
    pub fn lognormal_median(&mut self, median: f64, sigma: f64) -> f64 {
        debug_assert!(median > 0.0 && sigma >= 0.0);
        median * (sigma * self.std_normal()).exp()
    }

    /// Bernoulli trial.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.unit().to_bits(), b.unit().to_bits());
        }
    }

    #[test]
    fn forks_are_decorrelated_from_parent_continuation() {
        let mut parent = SimRng::seed_from_u64(7);
        let mut child = parent.fork(1);
        let a: Vec<u64> = (0..8).map(|_| (parent.unit() * 1e9) as u64).collect();
        let b: Vec<u64> = (0..8).map(|_| (child.unit() * 1e9) as u64).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = SimRng::seed_from_u64(3);
        let n = 20_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let emp = sum / n as f64;
        assert!((emp - mean).abs() < 0.2, "empirical mean {emp}");
    }

    #[test]
    fn lognormal_median_converges() {
        let mut rng = SimRng::seed_from_u64(9);
        let n = 20_001;
        let mut xs: Vec<f64> = (0..n).map(|_| rng.lognormal_median(10.0, 0.5)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = xs[n / 2];
        assert!((med - 10.0).abs() < 0.5, "empirical median {med}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
            let k = rng.below(10);
            assert!(k < 10);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(1);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
