//! Measurement utilities: streaming summary statistics and a log-bucketed
//! latency histogram.
//!
//! The histogram follows the HDR-histogram idea — exponential major buckets
//! each split into linear sub-buckets — giving a bounded relative error
//! (~1.6% with 32 sub-buckets) over the full `u64` nanosecond range while
//! using a fixed, small amount of memory. The paper reports p99.99 tails
//! (Fig. 8, Fig. 13), which reservoir sampling would estimate poorly.

use crate::time::SimDuration;

/// Number of linear sub-buckets per power-of-two major bucket.
const SUB_BUCKETS: usize = 32;
const SUB_BITS: u32 = 5; // log2(SUB_BUCKETS)

/// Streaming count/mean/min/max accumulator.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Log-bucketed histogram over `u64` values (nanoseconds by convention).
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max_value: u64,
    min_value: u64,
}

impl LatencyHistogram {
    /// Creates an empty histogram covering the full `u64` range.
    pub fn new() -> Self {
        // Major buckets for each leading-bit position above SUB_BITS, plus
        // one linear region for values < SUB_BUCKETS.
        let majors = 64 - SUB_BITS as usize;
        LatencyHistogram {
            counts: vec![0; (majors + 1) * SUB_BUCKETS],
            total: 0,
            max_value: 0,
            min_value: u64::MAX,
        }
    }

    fn index_of(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros(); // >= SUB_BITS
        let major = (msb - SUB_BITS + 1) as usize;
        let shift = msb - SUB_BITS;
        let sub = ((value >> shift) - SUB_BUCKETS as u64) as usize; // 0..SUB_BUCKETS
        major * SUB_BUCKETS + sub
    }

    /// Upper bound of the bucket containing `value` (the value reported for
    /// quantiles falling in that bucket).
    fn bucket_upper(index: usize) -> u64 {
        let major = index / SUB_BUCKETS;
        let sub = (index % SUB_BUCKETS) as u64;
        if major == 0 {
            return sub;
        }
        let shift = (major - 1) as u32;
        ((SUB_BUCKETS as u64 + sub + 1) << shift) - 1
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let idx = Self::index_of(value);
        self.counts[idx] += 1;
        self.total += 1;
        self.max_value = self.max_value.max(value);
        self.min_value = self.min_value.min(value);
    }

    /// Records a duration in nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact maximum recorded value.
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max_value)
    }

    /// Exact minimum recorded value.
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min_value)
    }

    /// Mean of bucket-quantized values.
    pub fn mean_approx(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let mut sum = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                sum += Self::bucket_upper(i) as f64 * c as f64;
            }
        }
        Some(sum / self.total as f64)
    }

    /// Value at quantile `q` in `[0, 1]`, with the histogram's relative
    /// error. Returns `None` when empty.
    pub fn value_at_quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_upper(i).min(self.max_value));
            }
        }
        Some(self.max_value)
    }

    /// Convenience: quantile as a [`SimDuration`].
    pub fn duration_at_quantile(&self, q: f64) -> Option<SimDuration> {
        self.value_at_quantile(q).map(SimDuration::from_nanos)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        debug_assert_eq!(self.counts.len(), other.counts.len());
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        if other.total > 0 {
            self.max_value = self.max_value.max(other.max_value);
            self.min_value = self.min_value.min(other.min_value);
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// The tail percentiles the paper reports, extracted in one shot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
    /// 99.99th percentile (the paper's headline tail metric).
    pub p9999: f64,
}

impl Percentiles {
    /// Reads the standard percentile set from a histogram, in microseconds.
    /// Returns `None` if the histogram is empty.
    pub fn from_histogram_us(h: &LatencyHistogram) -> Option<Percentiles> {
        let q = |q: f64| h.value_at_quantile(q).map(|ns| ns as f64 / 1_000.0);
        Some(Percentiles {
            p50: q(0.50)?,
            p90: q(0.90)?,
            p99: q(0.99)?,
            p999: q(0.999)?,
            p9999: q(0.9999)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), None);
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), Some(2.5));
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(4.0));
    }

    #[test]
    fn summary_merge() {
        let mut a = Summary::new();
        let mut b = Summary::new();
        a.record(1.0);
        b.record(9.0);
        b.record(5.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), Some(9.0));
        assert_eq!(a.mean(), Some(5.0));
        let empty = Summary::new();
        a.merge(&empty);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn histogram_small_values_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(31));
        // Values below SUB_BUCKETS land in exact buckets.
        assert_eq!(h.value_at_quantile(1.0 / 32.0), Some(0));
        assert_eq!(h.value_at_quantile(1.0), Some(31));
    }

    #[test]
    fn histogram_relative_error_bounded() {
        let mut h = LatencyHistogram::new();
        let vals = [
            1_000u64,
            25_000,
            130_000,
            999_999,
            5_000_000,
            123_456_789,
            u64::from(u32::MAX) * 7,
        ];
        for &v in &vals {
            let mut solo = LatencyHistogram::new();
            solo.record(v);
            let est = solo.value_at_quantile(0.5).unwrap();
            let rel = (est as f64 - v as f64).abs() / v as f64;
            assert!(rel < 0.04, "value {v} estimated {est} rel err {rel}");
            h.record(v);
        }
        assert_eq!(h.count(), vals.len() as u64);
    }

    #[test]
    fn histogram_quantiles_ordered() {
        let mut h = LatencyHistogram::new();
        for i in 1..=100_000u64 {
            h.record(i * 10);
        }
        let p = Percentiles::from_histogram_us(&h).unwrap();
        assert!(p.p50 <= p.p90 && p.p90 <= p.p99 && p.p99 <= p.p999 && p.p999 <= p.p9999);
        // p50 of 10..1_000_000 uniform should be near 500_000ns = 500us.
        assert!((p.p50 - 500.0).abs() / 500.0 < 0.05, "p50={}", p.p50);
        assert!(
            (p.p99 - 9_900.0 / 10.0).abs() / 990.0 < 0.05,
            "p99={}",
            p.p99
        );
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut c = LatencyHistogram::new();
        for i in 0..1000u64 {
            let v = i * i + 17;
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            };
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        for q in [0.1, 0.5, 0.9, 0.99, 0.9999] {
            assert_eq!(a.value_at_quantile(q), c.value_at_quantile(q));
        }
        assert_eq!(a.max(), c.max());
    }

    #[test]
    fn empty_histogram_returns_none() {
        let h = LatencyHistogram::new();
        assert_eq!(h.value_at_quantile(0.5), None);
        assert_eq!(h.max(), None);
        assert!(Percentiles::from_histogram_us(&h).is_none());
        assert_eq!(h.mean_approx(), None);
    }

    #[test]
    fn quantile_never_exceeds_true_max() {
        let mut h = LatencyHistogram::new();
        h.record(1_000_003);
        assert_eq!(h.value_at_quantile(1.0), Some(1_000_003));
        assert!(h.value_at_quantile(0.5).unwrap() <= 1_000_003);
    }

    #[test]
    fn mean_approx_tracks_true_mean() {
        let mut h = LatencyHistogram::new();
        let mut sum = 0u64;
        for i in 1..=10_000u64 {
            let v = i * 37;
            h.record(v);
            sum += v;
        }
        let true_mean = sum as f64 / 10_000.0;
        let approx = h.mean_approx().unwrap();
        assert!(
            (approx - true_mean).abs() / true_mean < 0.03,
            "approx {approx} true {true_mean}"
        );
    }
}
