//! NVMe-oF discovery service.
//!
//! NVMe-oF initiators find subsystems by querying a *discovery
//! controller* for its log page of subsystem records (transport type,
//! address, subsystem NQN — §2.1's "collection of controllers used to
//! access namespaces"). The paper's deployments assume this machinery
//! exists under the resource manager; the adaptive fabric adds one twist,
//! reproduced here: a discovery record can advertise *shared-memory
//! reachability* so a client knows before connecting that the adaptive
//! channel is available on this host.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::NvmeofError;

/// Transport kinds a discovery record can advertise.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TransportKind {
    /// NVMe/TCP.
    Tcp = 1,
    /// NVMe/RDMA.
    Rdma = 2,
    /// The adaptive fabric's shared-memory channel (co-located hosts
    /// only).
    Shm = 3,
}

impl TransportKind {
    fn from_u8(v: u8) -> Result<Self, NvmeofError> {
        Ok(match v {
            1 => TransportKind::Tcp,
            2 => TransportKind::Rdma,
            3 => TransportKind::Shm,
            other => {
                return Err(NvmeofError::Codec(format!(
                    "unknown transport kind {other}"
                )))
            }
        })
    }
}

/// One subsystem entry in the discovery log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiscoveryRecord {
    /// Subsystem NVMe Qualified Name.
    pub subnqn: String,
    /// Transport the subsystem is reachable over.
    pub transport: TransportKind,
    /// Transport address (host id for shm, "ip:port" for tcp/rdma).
    pub address: String,
    /// Host identity of the machine the target runs on (locality
    /// matching, §4.2).
    pub host_id: u64,
}

const MAX_STR: usize = 223; // NQN maximum length per spec

fn put_str(dst: &mut BytesMut, s: &str) {
    debug_assert!(s.len() <= MAX_STR);
    dst.put_u8(s.len() as u8);
    dst.put_slice(s.as_bytes());
}

fn get_str(src: &mut Bytes) -> Result<String, NvmeofError> {
    if src.remaining() < 1 {
        return Err(NvmeofError::Codec("string length missing".into()));
    }
    let len = src.get_u8() as usize;
    if src.remaining() < len {
        return Err(NvmeofError::Codec("string truncated".into()));
    }
    let raw = src.split_to(len);
    String::from_utf8(raw.to_vec()).map_err(|_| NvmeofError::Codec("string not UTF-8".into()))
}

impl DiscoveryRecord {
    /// Creates a record, validating field lengths.
    pub fn new(
        subnqn: impl Into<String>,
        transport: TransportKind,
        address: impl Into<String>,
        host_id: u64,
    ) -> Result<Self, NvmeofError> {
        let subnqn = subnqn.into();
        let address = address.into();
        if subnqn.is_empty() || subnqn.len() > MAX_STR {
            return Err(NvmeofError::Protocol(format!(
                "invalid NQN length {}",
                subnqn.len()
            )));
        }
        if address.len() > MAX_STR {
            return Err(NvmeofError::Protocol("address too long".into()));
        }
        Ok(DiscoveryRecord {
            subnqn,
            transport,
            address,
            host_id,
        })
    }

    fn encode(&self, dst: &mut BytesMut) {
        put_str(dst, &self.subnqn);
        dst.put_u8(self.transport as u8);
        put_str(dst, &self.address);
        dst.put_u64_le(self.host_id);
    }

    fn decode(src: &mut Bytes) -> Result<Self, NvmeofError> {
        let subnqn = get_str(src)?;
        if src.remaining() < 1 {
            return Err(NvmeofError::Codec("transport kind missing".into()));
        }
        let transport = TransportKind::from_u8(src.get_u8())?;
        let address = get_str(src)?;
        if src.remaining() < 8 {
            return Err(NvmeofError::Codec("host id missing".into()));
        }
        let host_id = src.get_u64_le();
        Ok(DiscoveryRecord {
            subnqn,
            transport,
            address,
            host_id,
        })
    }
}

/// The discovery log page: a generation counter plus the records.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DiscoveryLog {
    /// Bumped on every registry change, so initiators can detect staleness.
    pub generation: u64,
    /// The advertised subsystems.
    pub records: Vec<DiscoveryRecord>,
}

impl DiscoveryLog {
    /// Serializes the log page.
    pub fn encode(&self) -> Bytes {
        let mut dst = BytesMut::new();
        dst.put_u64_le(self.generation);
        dst.put_u32_le(self.records.len() as u32);
        for r in &self.records {
            r.encode(&mut dst);
        }
        dst.freeze()
    }

    /// Deserializes a log page.
    pub fn decode(mut src: Bytes) -> Result<Self, NvmeofError> {
        if src.remaining() < 12 {
            return Err(NvmeofError::Codec("log header truncated".into()));
        }
        let generation = src.get_u64_le();
        let count = src.get_u32_le();
        if count as usize > 4096 {
            return Err(NvmeofError::Codec(format!("absurd record count {count}")));
        }
        let mut records = Vec::with_capacity(count as usize);
        for _ in 0..count {
            records.push(DiscoveryRecord::decode(&mut src)?);
        }
        if src.has_remaining() {
            return Err(NvmeofError::Codec("trailing bytes after log".into()));
        }
        Ok(DiscoveryLog {
            generation,
            records,
        })
    }
}

/// The discovery controller: subsystems register; initiators query.
#[derive(Default)]
pub struct DiscoveryController {
    log: parking_lot::RwLock<DiscoveryLog>,
}

impl DiscoveryController {
    /// An empty controller.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-registers) a subsystem record. Replaces any
    /// existing record with the same `(subnqn, transport)` pair.
    pub fn register(&self, record: DiscoveryRecord) {
        let mut log = self.log.write();
        log.records
            .retain(|r| !(r.subnqn == record.subnqn && r.transport == record.transport));
        log.records.push(record);
        log.generation += 1;
    }

    /// Removes every record of a subsystem.
    pub fn unregister(&self, subnqn: &str) {
        let mut log = self.log.write();
        let before = log.records.len();
        log.records.retain(|r| r.subnqn != subnqn);
        if log.records.len() != before {
            log.generation += 1;
        }
    }

    /// The current log page (what a Get Log Page command returns).
    pub fn log_page(&self) -> DiscoveryLog {
        self.log.read().clone()
    }

    /// Initiator-side helper: the best record for reaching `subnqn` from
    /// a client on `client_host` — the adaptive choice prefers the
    /// shared-memory transport when co-located, mirroring the fabric's
    /// channel selection (§4.2).
    pub fn select(&self, subnqn: &str, client_host: u64) -> Option<DiscoveryRecord> {
        let log = self.log.read();
        let candidates: Vec<&DiscoveryRecord> =
            log.records.iter().filter(|r| r.subnqn == subnqn).collect();
        candidates
            .iter()
            .find(|r| r.transport == TransportKind::Shm && r.host_id == client_host)
            .or_else(|| {
                candidates
                    .iter()
                    .find(|r| r.transport == TransportKind::Rdma)
            })
            .or_else(|| candidates.first())
            .map(|r| (*r).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(nqn: &str, t: TransportKind, host: u64) -> DiscoveryRecord {
        DiscoveryRecord::new(nqn, t, format!("addr-of-{nqn}"), host).unwrap()
    }

    #[test]
    fn log_page_roundtrips() {
        let log = DiscoveryLog {
            generation: 7,
            records: vec![
                rec("nqn.2026-07.io.oaf:ssd1", TransportKind::Tcp, 1),
                rec("nqn.2026-07.io.oaf:ssd1", TransportKind::Shm, 1),
                rec("nqn.2026-07.io.oaf:ssd2", TransportKind::Rdma, 2),
            ],
        };
        let back = DiscoveryLog::decode(log.encode()).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn truncated_log_rejected() {
        let log = DiscoveryLog {
            generation: 1,
            records: vec![rec("nqn.x", TransportKind::Tcp, 1)],
        };
        let full = log.encode();
        for cut in [0, 4, 11, full.len() - 1] {
            assert!(
                DiscoveryLog::decode(full.slice(0..cut)).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn registration_bumps_generation_and_replaces() {
        let dc = DiscoveryController::new();
        dc.register(rec("nqn.a", TransportKind::Tcp, 1));
        let g1 = dc.log_page().generation;
        // Same (nqn, transport): replace, not duplicate.
        dc.register(rec("nqn.a", TransportKind::Tcp, 9));
        let log = dc.log_page();
        assert_eq!(log.records.len(), 1);
        assert_eq!(log.records[0].host_id, 9);
        assert!(log.generation > g1);
    }

    #[test]
    fn unregister_removes_all_transports() {
        let dc = DiscoveryController::new();
        dc.register(rec("nqn.a", TransportKind::Tcp, 1));
        dc.register(rec("nqn.a", TransportKind::Shm, 1));
        dc.register(rec("nqn.b", TransportKind::Tcp, 2));
        dc.unregister("nqn.a");
        let log = dc.log_page();
        assert_eq!(log.records.len(), 1);
        assert_eq!(log.records[0].subnqn, "nqn.b");
        // Unregistering a missing NQN does not bump the generation.
        let g = dc.log_page().generation;
        dc.unregister("nqn.zzz");
        assert_eq!(dc.log_page().generation, g);
    }

    #[test]
    fn selection_prefers_local_shm_then_rdma_then_anything() {
        let dc = DiscoveryController::new();
        dc.register(rec("nqn.a", TransportKind::Tcp, 1));
        dc.register(rec("nqn.a", TransportKind::Rdma, 1));
        dc.register(rec("nqn.a", TransportKind::Shm, 1));

        // Co-located client: the adaptive fabric's shm channel.
        let local = dc.select("nqn.a", 1).unwrap();
        assert_eq!(local.transport, TransportKind::Shm);
        // Remote client: shm unreachable, prefer RDMA.
        let remote = dc.select("nqn.a", 2).unwrap();
        assert_eq!(remote.transport, TransportKind::Rdma);

        // TCP-only subsystem: take what exists.
        dc.register(rec("nqn.tcp-only", TransportKind::Tcp, 3));
        assert_eq!(
            dc.select("nqn.tcp-only", 4).unwrap().transport,
            TransportKind::Tcp
        );
        assert!(dc.select("nqn.missing", 1).is_none());
    }

    #[test]
    fn invalid_records_rejected() {
        assert!(DiscoveryRecord::new("", TransportKind::Tcp, "a", 1).is_err());
        let long = "x".repeat(MAX_STR + 1);
        assert!(DiscoveryRecord::new(long.clone(), TransportKind::Tcp, "a", 1).is_err());
        assert!(DiscoveryRecord::new("nqn.ok", TransportKind::Tcp, long, 1).is_err());
    }
}
