//! Error types for the NVMe-oF stack.

use crate::nvme::completion::Status;

/// Errors surfaced by the NVMe-oF target, initiator and codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NvmeofError {
    /// Malformed or truncated PDU bytes.
    Codec(String),
    /// The peer hung up or the transport failed.
    TransportClosed,
    /// The peer violated the protocol state machine.
    Protocol(String),
    /// The device returned a non-success NVMe status.
    Nvme(Status),
    /// Shared-memory payload channel failure.
    Payload(String),
    /// A ring-based transport stayed full past its backoff budget —
    /// congestion (or a stalled peer), not corruption. Retryable.
    RingFull,
    /// A blocking operation timed out.
    Timeout,
}

impl std::fmt::Display for NvmeofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NvmeofError::Codec(m) => write!(f, "codec error: {m}"),
            NvmeofError::TransportClosed => write!(f, "transport closed"),
            NvmeofError::Protocol(m) => write!(f, "protocol violation: {m}"),
            NvmeofError::Nvme(s) => write!(f, "nvme status: {s:?}"),
            NvmeofError::Payload(m) => write!(f, "payload channel: {m}"),
            NvmeofError::RingFull => write!(f, "transport ring full (congestion)"),
            NvmeofError::Timeout => write!(f, "operation timed out"),
        }
    }
}

impl std::error::Error for NvmeofError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NvmeofError::Codec("short header".into());
        assert!(e.to_string().contains("short header"));
        assert!(NvmeofError::Timeout.to_string().contains("timed out"));
        assert!(NvmeofError::Nvme(Status::LbaOutOfRange)
            .to_string()
            .contains("LbaOutOfRange"));
    }
}
