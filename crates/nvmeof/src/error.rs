//! Error types for the NVMe-oF stack.

use crate::nvme::completion::Status;

/// Errors surfaced by the NVMe-oF target, initiator and codec.
///
/// Marked `#[non_exhaustive]`: downstream matches must keep a catch-all
/// arm so new fault classes (the robustness work keeps finding them) can
/// be added without breaking callers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NvmeofError {
    /// Malformed or truncated PDU bytes.
    Codec(String),
    /// The peer hung up or the transport failed.
    TransportClosed,
    /// The peer violated the protocol state machine.
    Protocol(String),
    /// The device returned a non-success NVMe status.
    Nvme(Status),
    /// Shared-memory payload channel failure.
    Payload(String),
    /// A ring-based transport stayed full past its backoff budget —
    /// congestion (or a stalled peer), not corruption. Retryable.
    RingFull,
    /// A blocking operation timed out. Carries the command identifier
    /// when the timeout belongs to a specific in-flight command (its
    /// retry budget ran out); `None` for connection-level waits such as
    /// the handshake.
    Timeout {
        /// The command that exhausted its deadline, if any.
        cid: Option<u16>,
    },
    /// A received frame failed its CRC — bit damage on the fabric, not
    /// a protocol violation. Droppable: the sender's deadline/retry
    /// machinery re-covers the loss.
    CorruptFrame,
    /// The peer stopped responding to keep-alives past the grace
    /// period; the connection is unusable.
    PeerDead,
}

impl std::fmt::Display for NvmeofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NvmeofError::Codec(m) => write!(f, "codec error: {m}"),
            NvmeofError::TransportClosed => write!(f, "transport closed"),
            NvmeofError::Protocol(m) => write!(f, "protocol violation: {m}"),
            NvmeofError::Nvme(s) => write!(f, "nvme status: {s:?}"),
            NvmeofError::Payload(m) => write!(f, "payload channel: {m}"),
            NvmeofError::RingFull => write!(f, "transport ring full (congestion)"),
            NvmeofError::Timeout { cid: Some(cid) } => {
                write!(f, "command {cid} timed out (retry budget exhausted)")
            }
            NvmeofError::Timeout { cid: None } => write!(f, "operation timed out"),
            NvmeofError::CorruptFrame => write!(f, "frame failed CRC (corrupt)"),
            NvmeofError::PeerDead => write!(f, "peer declared dead (keep-alive misses)"),
        }
    }
}

impl NvmeofError {
    /// A connection-level timeout (no specific command).
    pub fn timeout() -> Self {
        NvmeofError::Timeout { cid: None }
    }
}

impl std::error::Error for NvmeofError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NvmeofError::Codec("short header".into());
        assert!(e.to_string().contains("short header"));
        assert!(NvmeofError::timeout().to_string().contains("timed out"));
        assert!(NvmeofError::Timeout { cid: Some(17) }
            .to_string()
            .contains("17"));
        assert!(NvmeofError::CorruptFrame.to_string().contains("CRC"));
        assert!(NvmeofError::PeerDead.to_string().contains("dead"));
        assert!(NvmeofError::Nvme(Status::LbaOutOfRange)
            .to_string()
            .contains("LbaOutOfRange"));
    }
}
