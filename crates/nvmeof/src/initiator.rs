//! The NVMe-oF initiator (client).
//!
//! Implements the client half of the flows in Figs. 5–7: ICReq/ICResp
//! handshake with adaptive-fabric capability negotiation, asynchronous
//! command submission with completion polling (the SPDK-perf usage
//! pattern: a queue depth of in-flight commands serviced by one polling
//! thread), and all three write flow-control paths — inline in-capsule,
//! conservative R2T, and shared-memory in-capsule (§4.4.2).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::{Bytes, BytesMut};

use crate::error::NvmeofError;
use crate::metrics::InitiatorMetrics;
use crate::nvme::command::{NvmeCommand, Opcode};
use crate::nvme::completion::{NvmeCompletion, Status};
use crate::nvme::controller::IdentifyInfo;
use crate::payload::{PayloadChannel, WriteLease};
use crate::pdu::{Abort, CapsuleCmd, DataPdu, DataRef, Degrade, ICReq, KeepAlive, Pdu, AF_CAP_SHM};
use crate::transport::{BackoffConfig, Frame, Transport, WaitLadder, WaitStep};
use crate::tune::{BusyPollController, PollClass};
use crate::FlowMode;

/// Keep-alive tuning: how long a connection may stay silent before the
/// initiator probes it, and how long before the peer is declared dead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeepAliveConfig {
    /// Quiet time after which a heartbeat is sent (and re-sent).
    pub interval: Duration,
    /// Total silence after which the peer is declared dead and
    /// [`NvmeofError::PeerDead`] surfaces from `poll`/`wait`.
    pub grace: Duration,
}

impl KeepAliveConfig {
    /// An interval with the conventional 3× grace period.
    pub fn with_interval(interval: Duration) -> Self {
        KeepAliveConfig {
            interval,
            grace: interval * 3,
        }
    }
}

/// Client-side connection options.
#[derive(Clone)]
pub struct InitiatorOptions {
    /// Host identity sent in the ICReq (locality matching, §4.2).
    pub host_id: u64,
    /// Adaptive-fabric capabilities requested.
    pub af_caps: u32,
    /// Write flow-control regime to use once shared memory is active.
    pub flow: FlowMode,
    /// Maximum R2Ts (informational).
    pub maxr2t: u32,
    /// Per-command deadline. When set, a command that has not completed
    /// by its deadline is retried (reads resubmit directly; writes only
    /// after an abort round-trip) up to [`max_retries`] times, then
    /// surfaced as [`NvmeofError::Timeout`]. `None` disables all
    /// deadline bookkeeping.
    ///
    /// [`max_retries`]: InitiatorOptions::max_retries
    pub cmd_deadline: Option<Duration>,
    /// Retry budget per command once `cmd_deadline` is set.
    pub max_retries: u32,
    /// Base of the exponential retry backoff added to each retry's
    /// deadline (`cmd_deadline + retry_backoff * 2^attempt`).
    pub retry_backoff: Duration,
    /// Keep-alive probing; `None` disables heartbeats and peer-death
    /// detection.
    pub keepalive: Option<KeepAliveConfig>,
    /// Spin→yield→sleep ladder tuning for the blocking waits
    /// (`connect`, `wait`) — the same knob the ring transports use.
    pub backoff: BackoffConfig,
    /// Application-level chunk size for inline H2C transfers (§4.5,
    /// Fig. 9): an R2T-granted payload larger than this is shipped as
    /// `ceil(len / write_chunk)` pipelined sub-requests. `0` disables
    /// chunking. The connection manager sizes this with the runtime
    /// [`crate::tune::ChunkSelector`] when the link is a real socket.
    pub write_chunk: usize,
}

impl Default for InitiatorOptions {
    fn default() -> Self {
        InitiatorOptions {
            host_id: 0x4846_u64, // "HF": host-fabric default identity
            af_caps: 0,
            flow: FlowMode::Conservative,
            maxr2t: 16,
            cmd_deadline: None,
            max_retries: 3,
            retry_backoff: Duration::from_millis(2),
            keepalive: None,
            backoff: BackoffConfig::default(),
            // Fig. 9's optimum for the paper's 25 Gbps testbed; payloads
            // at or below this are untouched.
            write_chunk: 512 * 1024,
        }
    }
}

struct PendingIo {
    /// The command as last sent on the wire (`cmd.cid` is the *wire*
    /// cid, which diverges from [`user_cid`] after a retry).
    ///
    /// [`user_cid`]: PendingIo::user_cid
    cmd: NvmeCommand,
    /// The cid handed to the caller at submit time; completions are
    /// reported under it no matter how many wire cids retries burned.
    user_cid: u16,
    read_buf: Vec<u8>,
    stashed_write: Option<Bytes>,
    /// Borrowed read (§4.4.3): leave shm payloads in the region and hand
    /// the `(slot, len)` reference to the caller instead of copying out.
    borrow: bool,
    /// Unconsumed shm payload reference for a borrowed read.
    shm_data: Option<(u32, u32)>,
    /// Contiguous prefix of the read buffer filled by C2H data. A chunk
    /// landing past the watermark does not advance it, so `got` never
    /// overstates what has arrived; a gap left by a dropped chunk keeps
    /// the command held until the deadline re-fetches it.
    got: usize,
    /// A success completion that arrived before the data it vouches for
    /// (a reordering fabric can do that). Held until the last byte
    /// lands, then resolved exactly as if it had arrived in order.
    early_completion: Option<NvmeCompletion>,
    submitted_at: Instant,
    /// Retained write/compare payload (a refcount clone, no copy) so a
    /// lost command can be replayed — including over TCP after a shm
    /// degradation. `None` for zero-copy published writes, which cannot
    /// be replayed.
    retry_payload: Option<Bytes>,
    /// Slot the original submission published over shm, if any, so a
    /// retry or abort can free it instead of leaking it.
    published_slot: Option<(u32, u32)>,
    /// When the command times out and becomes eligible for retry.
    deadline: Option<Instant>,
    /// Retries consumed (0 = first flight).
    attempts: u32,
    /// A write-class retry is waiting on its abort round-trip.
    awaiting_abort: bool,
}

impl PendingIo {
    /// Whether the opcode may be resubmitted without an abort
    /// round-trip. Delegates to [`Opcode::retries_freely`] — the single
    /// classification the target's dispatch also derives from.
    fn retries_freely(&self) -> bool {
        self.cmd.opcode.retries_freely()
    }
}

/// Outcome of a completed I/O.
#[derive(Debug, PartialEq, Eq)]
pub struct IoResult {
    /// Command identifier.
    pub cid: u16,
    /// NVMe status.
    pub status: Status,
    /// Read data (empty for writes/flushes — and for borrowed reads
    /// whose payload is still parked in shared memory, see
    /// [`IoResult::shm`]).
    pub data: Vec<u8>,
    /// For borrowed reads over a shared-memory channel: the `(slot,
    /// len)` reference of the payload, still unconsumed in the region.
    /// Pass the result to [`Initiator::consume_read_with`] to borrow the
    /// bytes in place and free the slot.
    pub shm: Option<(u32, u32)>,
}

/// Recently-retired wire cids remembered for stale-frame tolerance:
/// late duplicates, completions that raced a retry, and frames for
/// aborted commands are dropped (and counted) instead of erroring the
/// connection. Sized far above any sane queue depth.
const RETIRED_RING: usize = 256;

/// Per-connection client state, split from the transport so the batched
/// receive path can borrow the two disjointly: `recv_batch` holds the
/// transport shared while the frame callback mutates the state.
struct ClientState {
    payload: Option<Arc<dyn PayloadChannel>>,
    opts: InitiatorOptions,
    shm_active: bool,
    in_capsule_max: usize,
    next_cid: u16,
    pending: HashMap<u16, PendingIo>,
    completed: Vec<IoResult>,
    /// Reusable encode scratch: every control PDU is encoded here and
    /// handed to [`Transport::send_frame`], so the steady state
    /// allocates nothing on the send side.
    scratch: BytesMut,
    metrics: Arc<InitiatorMetrics>,
    /// Ring of recently-retired wire cids (0 = empty; cid 0 is never
    /// allocated). Fixed-size so stale-frame tolerance costs no heap.
    retired: [u16; RETIRED_RING],
    retired_at: usize,
    /// User cids whose retry budget ran out; `wait` surfaces them as
    /// [`NvmeofError::Timeout`].
    timed_out: Vec<u16>,
    /// Earliest pending deadline, tracked as a scalar so the steady
    /// state pays one comparison per poll, not a map scan.
    next_deadline: Option<Instant>,
    /// Reusable scratch for the (cold) deadline sweep.
    expired_scratch: Vec<u16>,
    /// Keep-alive bookkeeping.
    last_rx: Instant,
    last_ka_tx: Instant,
    ka_seq: u64,
    ka_outstanding: bool,
    /// The shm payload path has been abandoned mid-flight.
    degraded: bool,
    /// Workload-adaptive busy-poll budgets (§4.5, Fig. 10): observed
    /// wait times feed per-direction EWMAs; [`Initiator::wait`] spins
    /// for the chosen budget before descending to yields and sleeps.
    poller: BusyPollController,
}

/// An NVMe-oF initiator over a transport.
pub struct Initiator<T: Transport> {
    transport: T,
    state: ClientState,
}

impl ClientState {
    fn alloc_cid(&mut self) -> u16 {
        // Linear probe around the u16 space; QD is far below 65k.
        loop {
            let cid = self.next_cid;
            self.next_cid = self.next_cid.wrapping_add(1).max(1);
            if !self.pending.contains_key(&cid) {
                return cid;
            }
        }
    }

    /// Registers a new in-flight command and bumps the queue-depth
    /// telemetry (the map insert reuses freed capacity in steady state).
    fn track(&mut self, cmd: NvmeCommand, read_buf: Vec<u8>, stashed_write: Option<Bytes>) {
        let now = Instant::now();
        let deadline = self.arm_deadline(now, 0);
        self.pending.insert(
            cmd.cid,
            PendingIo {
                cmd,
                user_cid: cmd.cid,
                read_buf,
                stashed_write,
                borrow: false,
                shm_data: None,
                got: 0,
                early_completion: None,
                submitted_at: now,
                retry_payload: None,
                published_slot: None,
                deadline,
                attempts: 0,
                awaiting_abort: false,
            },
        );
        self.metrics.submitted.inc();
        self.metrics.inflight.add(1);
    }

    /// Computes a command deadline for retry round `attempts` and folds
    /// it into the scalar next-deadline watermark.
    fn arm_deadline(&mut self, now: Instant, attempts: u32) -> Option<Instant> {
        let base = self.opts.cmd_deadline?;
        let backoff = self.opts.retry_backoff * (1u32 << attempts.min(6));
        let deadline = now + base + backoff;
        self.next_deadline = Some(match self.next_deadline {
            Some(d) if d <= deadline => d,
            _ => deadline,
        });
        Some(deadline)
    }

    /// Remembers a wire cid as retired so late frames for it are
    /// tolerated instead of erroring the connection.
    fn retire_cid(&mut self, cid: u16) {
        self.retired[self.retired_at] = cid;
        self.retired_at = (self.retired_at + 1) % RETIRED_RING;
    }

    fn is_retired(&self, cid: u16) -> bool {
        self.retired.contains(&cid)
    }

    /// Encodes `pdu` into the connection scratch and sends the borrowed
    /// slice — the zero-allocation send path.
    fn send_pdu<T: Transport + ?Sized>(
        &mut self,
        transport: &T,
        pdu: &Pdu,
    ) -> Result<(), NvmeofError> {
        self.scratch.clear();
        pdu.encode_into(&mut self.scratch);
        transport.send_frame(&self.scratch)
    }

    /// Feeds one completed wait into the adaptive busy-poll controller
    /// and publishes the refreshed per-direction budgets as gauges.
    /// Waits that ran into retries or stalls are clamped so a single
    /// outlier can't blow the EWMA past the ladder.
    fn observe_wait(&mut self, class: PollClass, elapsed: Duration) {
        const CLAMP: Duration = Duration::from_millis(1);
        self.poller.observe(class, elapsed.min(CLAMP));
        self.metrics
            .busy_poll_read_us
            .set(self.poller.budget(PollClass::Read).as_micros() as i64);
        self.metrics
            .busy_poll_write_us
            .set(self.poller.budget(PollClass::Write).as_micros() as i64);
    }

    /// Sends a data-bearing PDU, preferring the transport's vectored
    /// `[prefix, payload]` path when it has one (the socket transport's
    /// `write_vectored`, which skips the payload coalescing copy);
    /// everything else takes the ordinary scratch-encode path.
    fn send_pdu_data<T: Transport + ?Sized>(
        &mut self,
        transport: &T,
        pdu: &Pdu,
    ) -> Result<(), NvmeofError> {
        if transport.prefers_split() {
            self.scratch.clear();
            if let Some(payload) = pdu.encode_split_into(&mut self.scratch) {
                return transport.send_split(&self.scratch, payload);
            }
        }
        self.send_pdu(transport, pdu)
    }

    /// Like [`send_pdu`], but treats ring congestion as transient: the
    /// recovery machinery's own traffic (aborts, heartbeats, degrade
    /// notices) must never escalate a full ring into a dead connection —
    /// the next deadline sweep simply tries again.
    ///
    /// [`send_pdu`]: ClientState::send_pdu
    fn send_pdu_lossy<T: Transport + ?Sized>(
        &mut self,
        transport: &T,
        pdu: &Pdu,
    ) -> Result<(), NvmeofError> {
        match self.send_pdu(transport, pdu) {
            Err(NvmeofError::RingFull) => Ok(()),
            other => other,
        }
    }

    /// Abandons the shared-memory payload path mid-flight: quarantines
    /// the channel, notifies the target, replays every in-flight
    /// shm-published command over the TCP control path (writes with a
    /// retained payload resubmit under a fresh cid; zero-copy writes go
    /// through the abort round-trip), and sweeps the slot region.
    fn degrade<T: Transport + ?Sized>(&mut self, transport: &T) -> Result<(), NvmeofError> {
        if self.degraded {
            return Ok(());
        }
        self.degraded = true;
        self.shm_active = false;
        self.metrics.degradations.inc();
        self.send_pdu_lossy(transport, &Pdu::Degrade(Degrade { reason: 1 }))?;
        // Replay in-flight commands whose payload (or expected payload)
        // was parked in the now-dead region. Collect first: resubmission
        // mutates the pending map.
        self.expired_scratch.clear();
        for (&cid, io) in self.pending.iter() {
            if io.published_slot.is_some() {
                self.expired_scratch.push(cid);
            }
        }
        let stranded = std::mem::take(&mut self.expired_scratch);
        for cid in &stranded {
            self.retry_command(transport, *cid)?;
        }
        self.expired_scratch = stranded;
        self.expired_scratch.clear();
        // Quarantine + sweep: no new leases succeed, and published-but-
        // unconsumed slots return to the pool (counted by the channel's
        // own `slots_reclaimed` stat).
        if let Some(ch) = self.payload.as_ref() {
            ch.quarantine();
            ch.reclaim();
        }
        Ok(())
    }

    /// One retry step for wire cid `cid`: reads (and other freely
    /// retryable opcodes) resubmit under a fresh wire cid; write-class
    /// commands first run the abort round-trip so a retry can never
    /// double-apply. Exhausted budgets surface the command on the
    /// timed-out list.
    fn retry_command<T: Transport + ?Sized>(
        &mut self,
        transport: &T,
        cid: u16,
    ) -> Result<(), NvmeofError> {
        let Some(io) = self.pending.get(&cid) else {
            return Ok(());
        };
        if io.attempts >= self.opts.max_retries {
            return self.give_up(cid);
        }
        if io.retries_freely() {
            self.resubmit(transport, cid)
        } else {
            // Write-class: (re-)request the abort round-trip. The ack
            // tells us whether the original applied (complete with its
            // status) or not (safe to resubmit under a fresh cid).
            let now = Instant::now();
            let io = self.pending.get_mut(&cid).expect("checked above");
            io.attempts += 1;
            io.awaiting_abort = true;
            let attempts = io.attempts;
            io.deadline = None; // re-armed below so the watermark updates
            let deadline = self.arm_deadline(now, attempts);
            self.pending.get_mut(&cid).expect("still pending").deadline = deadline;
            self.metrics.retries.inc();
            self.metrics.aborts_sent.inc();
            self.send_pdu_lossy(transport, &Pdu::Abort(Abort { cid }))
        }
    }

    /// Resubmits `cid` under a fresh wire cid (the old one is retired so
    /// its late frames are tolerated). The payload, if any, replays from
    /// the retained clone — over the control path, since retries prefer
    /// the conservative route.
    fn resubmit<T: Transport + ?Sized>(
        &mut self,
        transport: &T,
        cid: u16,
    ) -> Result<(), NvmeofError> {
        let Some(mut io) = self.pending.remove(&cid) else {
            return Ok(());
        };
        self.retire_cid(cid);
        // Free the slot the original submission published: the target
        // has provably not consumed it (abort said not-applied, or the
        // channel is quarantined and swept anyway).
        if let Some((slot, _len)) = io.published_slot.take() {
            if let Some(ch) = self.payload.as_ref() {
                ch.reclaim_slot(slot);
            }
        }
        let new_cid = self.alloc_cid();
        let now = Instant::now();
        io.cmd.cid = new_cid;
        if !io.awaiting_abort {
            // An abort round-trip already charged this retry round.
            io.attempts += 1;
        }
        io.awaiting_abort = false;
        // The fresh attempt refills the buffer from byte zero, and any
        // completion held for the old attempt vouches for nothing now.
        io.got = 0;
        io.early_completion = None;
        io.deadline = self.arm_deadline(now, io.attempts);
        let data = match io.retry_payload.clone() {
            Some(data) if data.len() <= self.in_capsule_max => Some(DataRef::Inline(data)),
            Some(data) => {
                io.stashed_write = Some(data);
                None
            }
            None => None,
        };
        let cmd = io.cmd;
        self.pending.insert(new_cid, io);
        self.metrics.retries.inc();
        self.send_pdu_lossy(transport, &Pdu::CapsuleCmd(CapsuleCmd { cmd, data }))
    }

    /// Retires `cid` as timed out: its retry budget is spent.
    fn give_up(&mut self, cid: u16) -> Result<(), NvmeofError> {
        let Some(mut io) = self.pending.remove(&cid) else {
            return Ok(());
        };
        self.retire_cid(cid);
        if let Some((slot, _len)) = io.published_slot.take() {
            if let Some(ch) = self.payload.as_ref() {
                ch.reclaim_slot(slot);
            }
        }
        self.timed_out.push(io.user_cid);
        self.metrics.timeouts.inc();
        self.metrics.inflight.sub(1);
        Ok(())
    }

    /// Whether `io` still owes the caller payload bytes — completing it
    /// now would hand back a partially-filled (or untouched) read
    /// buffer. True exactly when a success completion must be held
    /// because it overtook its own C2H data on a reordering fabric.
    fn awaiting_read_data(io: &PendingIo) -> bool {
        match io.cmd.opcode {
            Opcode::Read => {
                if io.borrow {
                    // Borrowed reads park a shm reference (or fall back
                    // to an inline copy, which advances `got`).
                    io.shm_data.is_none() && io.got == 0
                } else {
                    io.got < io.read_buf.len()
                }
            }
            // Identify data arrives as one inline chunk of unpredictable
            // size; any arrival marks it complete.
            Opcode::Identify => io.got == 0,
            _ => false,
        }
    }

    /// Resolves wire cid `cid` with `completion`: retires the cid,
    /// settles telemetry and queues the [`IoResult`] under the user cid.
    /// Shared by the in-order path, the held-completion release in the
    /// C2H data handler, and the abort-ack "already applied" path.
    fn finish_command(&mut self, cid: u16, completion: NvmeCompletion) {
        let Some(mut pending) = self.pending.remove(&cid) else {
            return;
        };
        self.retire_cid(cid);
        self.metrics.completions.inc();
        self.metrics.inflight.sub(1);
        if !completion.status.is_ok() {
            self.metrics.errors.inc();
        }
        self.metrics
            .latency(pending.cmd.opcode)
            .record_nanos(pending.submitted_at.elapsed());
        if let Some((_, len)) = pending.shm_data {
            self.metrics.zero_copy_bytes.add(u64::from(len));
            self.metrics.copies_avoided.inc();
        }
        self.completed.push(IoResult {
            cid: pending.user_cid,
            status: completion.status,
            data: std::mem::take(&mut pending.read_buf),
            shm: pending.shm_data.take(),
        });
    }

    /// Deadline + keep-alive pass, run once per poll. Costs one
    /// `Instant::now()` when either feature is enabled and nothing when
    /// both are off; the deadline sweep itself only runs when the scalar
    /// watermark has actually expired.
    fn tick<T: Transport + ?Sized>(&mut self, transport: &T) -> Result<(), NvmeofError> {
        let deadlines = self.opts.cmd_deadline.is_some();
        let keepalive = self.opts.keepalive.is_some();
        if !deadlines && !keepalive {
            return Ok(());
        }
        let now = Instant::now();
        if deadlines {
            self.sweep_deadlines(transport, now)?;
        }
        if keepalive {
            self.check_keepalive(transport, now)?;
        }
        Ok(())
    }

    fn sweep_deadlines<T: Transport + ?Sized>(
        &mut self,
        transport: &T,
        now: Instant,
    ) -> Result<(), NvmeofError> {
        if self.next_deadline.is_none_or(|d| now < d) {
            return Ok(());
        }
        // Cold path: something actually expired (or the watermark is
        // stale after a completion). Sweep, collect, recompute.
        self.next_deadline = None;
        let mut expired = std::mem::take(&mut self.expired_scratch);
        expired.clear();
        for (&cid, io) in self.pending.iter() {
            match io.deadline {
                Some(d) if now >= d => expired.push(cid),
                Some(d) => {
                    self.next_deadline = Some(match self.next_deadline {
                        Some(cur) if cur <= d => cur,
                        _ => d,
                    });
                }
                None => {}
            }
        }
        for cid in &expired {
            self.retry_command(transport, *cid)?;
        }
        expired.clear();
        self.expired_scratch = expired;
        Ok(())
    }

    fn check_keepalive<T: Transport + ?Sized>(
        &mut self,
        transport: &T,
        now: Instant,
    ) -> Result<(), NvmeofError> {
        let ka = self.opts.keepalive.expect("caller checked");
        let quiet = now.duration_since(self.last_rx);
        if quiet >= ka.grace {
            self.metrics.keepalive_misses.inc();
            return Err(NvmeofError::PeerDead);
        }
        if quiet >= ka.interval && now.duration_since(self.last_ka_tx) >= ka.interval {
            if self.ka_outstanding {
                self.metrics.keepalive_misses.inc();
            }
            self.ka_seq += 1;
            let seq = self.ka_seq;
            self.last_ka_tx = now;
            self.ka_outstanding = true;
            self.send_pdu_lossy(transport, &Pdu::KeepAlive(KeepAlive { seq }))?;
        }
        Ok(())
    }
}

impl<T: Transport> Initiator<T> {
    /// Connects: performs the ICReq/ICResp handshake of Fig. 5. `payload`
    /// is the hot-plugged shared-memory channel, if locality detection
    /// found one.
    pub fn connect(
        transport: T,
        opts: InitiatorOptions,
        payload: Option<Arc<dyn PayloadChannel>>,
        timeout: Duration,
    ) -> Result<Self, NvmeofError> {
        let icreq = Pdu::ICReq(ICReq {
            pfv: 1,
            maxr2t: opts.maxr2t,
            af_caps: opts.af_caps,
            host_id: opts.host_id,
        });
        transport.send(icreq.encode())?;
        let deadline = Instant::now() + timeout;
        let mut ladder = WaitLadder::until(deadline, &opts.backoff);
        let resp = loop {
            let frame = match transport.try_recv()? {
                Some(frame) => Some(frame),
                None => match ladder.step() {
                    WaitStep::Expired => return Err(NvmeofError::timeout()),
                    WaitStep::Again => None,
                    WaitStep::Sleep(d) => transport.recv_timeout(d)?,
                },
            };
            let Some(frame) = frame else { continue };
            match Pdu::decode(frame) {
                Ok(Pdu::ICResp(r)) => break r,
                Ok(other) => {
                    return Err(NvmeofError::Protocol(format!(
                        "expected ICResp, got {other:?}"
                    )))
                }
                // A damaged handshake frame is dropped and the (idempotent)
                // ICReq re-asked; the target answers duplicates with the
                // same grant.
                Err(NvmeofError::CorruptFrame) | Err(NvmeofError::Codec(_)) => {
                    transport.send(icreq.encode())?;
                }
                Err(e) => return Err(e),
            }
        };
        let shm_active = resp.af_caps & AF_CAP_SHM != 0 && payload.is_some();
        let now = Instant::now();
        Ok(Initiator {
            transport,
            state: ClientState {
                payload,
                opts,
                shm_active,
                in_capsule_max: resp.ioccsz as usize,
                next_cid: 1,
                pending: HashMap::new(),
                completed: Vec::new(),
                // Control PDUs top out well under this; sized so the
                // steady state never regrows it.
                scratch: BytesMut::with_capacity(256),
                metrics: InitiatorMetrics::new(),
                retired: [0u16; RETIRED_RING],
                retired_at: 0,
                timed_out: Vec::new(),
                next_deadline: None,
                expired_scratch: Vec::new(),
                last_rx: now,
                last_ka_tx: now,
                ka_seq: 0,
                ka_outstanding: false,
                degraded: false,
                poller: BusyPollController::new(),
            },
        })
    }

    /// Whether the shared-memory data path was negotiated (§4.2).
    pub fn shm_active(&self) -> bool {
        self.state.shm_active
    }

    /// Negotiated in-capsule data limit.
    pub fn in_capsule_max(&self) -> usize {
        self.state.in_capsule_max
    }

    /// Number of commands in flight.
    pub fn inflight(&self) -> usize {
        self.state.pending.len()
    }

    /// This connection's metric bundle (detached until registered into
    /// a [`oaf_telemetry::Registry`] scope).
    pub fn metrics(&self) -> &Arc<InitiatorMetrics> {
        &self.state.metrics
    }

    /// The current workload-adaptive busy-poll budget for `class` waits
    /// (§4.5, Fig. 10).
    pub fn busy_poll_budget(&self, class: PollClass) -> Duration {
        self.state.poller.budget(class)
    }

    /// Feeds one measured wait into the busy-poll controller, exactly as
    /// a live [`wait`](Self::wait) would — EWMA update plus the
    /// `busy_poll_*_us` telemetry gauges. This is the Fig. 10 replay
    /// interface: recorded per-direction wait traces can be played back
    /// to inspect which budgets the controller settles on.
    pub fn observe_wait_sample(&mut self, class: PollClass, wait: Duration) {
        self.state.observe_wait(class, wait);
    }

    /// Submits a write of `data` (must be `nlb * block_size` bytes).
    /// Returns the command id to match against completions.
    pub fn submit_write(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        data: Bytes,
    ) -> Result<u16, NvmeofError> {
        let cid = self.state.alloc_cid();
        let cmd = NvmeCommand::write(cid, nsid, slba, nlb);
        let publish_over_shm = self.state.opts.flow == FlowMode::InCapsule;
        self.submit_with_payload(cmd, data, publish_over_shm)
    }

    /// Shared payload-bearing submit path (writes and compares): picks
    /// the channel per the negotiated flow, retains a refcount clone of
    /// the payload for deadline-driven replay, and degrades to the TCP
    /// control path if the shm publish fails mid-flight.
    fn submit_with_payload(
        &mut self,
        cmd: NvmeCommand,
        data: Bytes,
        publish_over_shm: bool,
    ) -> Result<u16, NvmeofError> {
        let use_shm = self.state.shm_active
            && self
                .state
                .payload
                .as_ref()
                .is_some_and(|ch| data.len() <= ch.max_payload());
        let mut stashed = None;
        let mut published = None;
        let mut capsule_data = None;
        if use_shm && publish_over_shm {
            // Shared-memory flow control: payload parks in the region and
            // the command alone reaches the target (§4.4.2 swaps steps ①
            // and ③ of Fig. 7 and drops R2T + H2C).
            let ch = self
                .state
                .payload
                .as_ref()
                .expect("use_shm implies channel")
                .clone();
            match ch.publish(&data) {
                Ok((slot, len)) => {
                    published = Some((slot, len));
                    capsule_data = Some(DataRef::ShmSlot { slot, len });
                }
                // The slot region stalled or poisoned under us: abandon
                // it mid-flight and serve this (and everything after it)
                // over the control path.
                Err(_) => self.state.degrade(&self.transport)?,
            }
        }
        if capsule_data.is_none() && stashed.is_none() {
            if use_shm && !self.state.degraded && !publish_over_shm {
                // Conservative flow over shm: wait for R2T, then publish
                // (Fig. 7's NVMe-oSHM flow).
                stashed = Some(data.clone());
            } else if data.len() <= self.state.in_capsule_max {
                capsule_data = Some(DataRef::Inline(data.clone()));
            } else {
                // Conservative flow: wait for R2T, then ship the payload
                // inline.
                stashed = Some(data.clone());
            }
        }
        self.state.track(cmd, Vec::new(), stashed);
        let io = self.state.pending.get_mut(&cmd.cid).expect("just tracked");
        io.retry_payload = Some(data);
        io.published_slot = published;
        self.state.send_pdu(
            &self.transport,
            &Pdu::CapsuleCmd(CapsuleCmd {
                cmd,
                data: capsule_data,
            }),
        )?;
        Ok(cmd.cid)
    }

    /// Leases a write buffer of `len` bytes from the connection's
    /// payload channel. With a negotiated shared-memory channel the
    /// buffer lives directly in the region (the Buffer Manager's
    /// co-design, §4.4.3) and [`Initiator::submit_write_lease`] publishes
    /// it with no copy; otherwise (or when `len` exceeds the slot size)
    /// it is a plain heap buffer and submission copies once, exactly
    /// like [`Initiator::submit_write`].
    pub fn alloc_write_buf(&self, len: usize) -> Result<WriteLease, NvmeofError> {
        if self.state.shm_active {
            if let Some(ch) = self.state.payload.as_ref() {
                if len <= ch.max_payload() {
                    return ch.alloc(len);
                }
            }
        }
        Ok(WriteLease::heap(len))
    }

    /// Submits a write whose payload was built in place in a lease from
    /// [`Initiator::alloc_write_buf`]. Zero-copy leases publish their
    /// slot directly (§4.4.3); heap fallback leases route through the
    /// regular copying write path.
    pub fn submit_write_lease(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        lease: WriteLease,
    ) -> Result<u16, NvmeofError> {
        if lease.is_zero_copy() {
            let bytes = lease.len() as u64;
            let ch = self
                .state
                .payload
                .as_ref()
                .ok_or_else(|| NvmeofError::Protocol("slot lease without channel".into()))?
                .clone();
            let (slot, len) = ch.publish_lease(lease)?;
            self.state.metrics.zero_copy_bytes.add(bytes);
            self.state.metrics.copies_avoided.inc();
            self.submit_write_published(nsid, slba, nlb, slot, len)
        } else {
            let buf = lease.into_heap().expect("non-slot lease is heap-backed");
            self.submit_write(nsid, slba, nlb, Bytes::from(buf))
        }
    }

    /// Submits a write whose payload is *already published* in the
    /// shared-memory channel at `(slot, len)` — the zero-copy path
    /// (§4.4.3): the application built its data directly in the region,
    /// so no bytes move here at all.
    pub fn submit_write_published(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        slot: u32,
        len: u32,
    ) -> Result<u16, NvmeofError> {
        if !self.state.shm_active {
            return Err(NvmeofError::Protocol(
                "zero-copy write requires a negotiated shared-memory channel".into(),
            ));
        }
        let cid = self.state.alloc_cid();
        let cmd = NvmeCommand::write(cid, nsid, slba, nlb);
        self.state.track(cmd, Vec::new(), None);
        // Zero-copy published writes retain no payload clone — they
        // cannot be replayed, only abort-resolved — but the slot is
        // remembered so degradation/abort can reclaim it.
        self.state
            .pending
            .get_mut(&cid)
            .expect("just tracked")
            .published_slot = Some((slot, len));
        self.state.send_pdu(
            &self.transport,
            &Pdu::CapsuleCmd(CapsuleCmd {
                cmd,
                data: Some(DataRef::ShmSlot { slot, len }),
            }),
        )?;
        Ok(cid)
    }

    /// Submits a read of `nlb` blocks; the buffer is sized from
    /// `expected_len` (namespace block size × nlb).
    pub fn submit_read(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        expected_len: usize,
    ) -> Result<u16, NvmeofError> {
        let cid = self.state.alloc_cid();
        let cmd = NvmeCommand::read(cid, nsid, slba, nlb);
        self.state.track(cmd, vec![0u8; expected_len], None);
        self.state.send_pdu(
            &self.transport,
            &Pdu::CapsuleCmd(CapsuleCmd { cmd, data: None }),
        )?;
        Ok(cid)
    }

    /// Submits a read whose payload the caller will *borrow* in place:
    /// if the target returns the data as a shared-memory slot reference,
    /// it is left unconsumed in the region and surfaced via
    /// [`IoResult::shm`]; call [`Initiator::consume_read_with`] on the
    /// completed result to access the bytes without a copy and free the
    /// slot (§4.4.3). Dropping the result without consuming it leaks the
    /// slot until the channel is torn down. Inline completions fall back
    /// to the buffered behavior of [`Initiator::submit_read`].
    pub fn submit_read_borrowed(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        expected_len: usize,
    ) -> Result<u16, NvmeofError> {
        let borrow = self.state.shm_active && self.state.payload.is_some();
        let read_buf = if borrow {
            Vec::new()
        } else {
            vec![0u8; expected_len]
        };
        let cid = self.state.alloc_cid();
        let cmd = NvmeCommand::read(cid, nsid, slba, nlb);
        self.state.track(cmd, read_buf, None);
        if borrow {
            self.state
                .pending
                .get_mut(&cid)
                .expect("just tracked")
                .borrow = true;
        }
        self.state.send_pdu(
            &self.transport,
            &Pdu::CapsuleCmd(CapsuleCmd { cmd, data: None }),
        )?;
        Ok(cid)
    }

    /// Lends a completed read's payload to `f` without copying it out of
    /// the shared region (for borrowed reads that completed via a slot
    /// reference), freeing the slot afterwards. Results that carried
    /// their data inline simply lend the buffered bytes.
    pub fn consume_read_with(
        &self,
        res: &mut IoResult,
        f: &mut dyn FnMut(&[u8]),
    ) -> Result<(), NvmeofError> {
        match res.shm.take() {
            Some((slot, len)) => {
                let ch = self
                    .state
                    .payload
                    .as_ref()
                    .ok_or_else(|| NvmeofError::Protocol("shm read without channel".into()))?;
                ch.consume_with(slot, len, f)
            }
            None => {
                f(&res.data);
                Ok(())
            }
        }
    }

    /// Submits a compare: the target checks `data` against the stored
    /// blocks and completes with `CompareFailure` on mismatch. The
    /// payload rides whatever channel writes would (in-capsule, R2T, or
    /// shared-memory slot).
    pub fn submit_compare(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        data: Bytes,
    ) -> Result<u16, NvmeofError> {
        let cid = self.state.alloc_cid();
        let cmd = NvmeCommand::compare(cid, nsid, slba, nlb);
        // Compares publish over shm regardless of the write flow mode
        // whenever the payload fits a slot.
        self.submit_with_payload(cmd, data, true)
    }

    /// Submits a write-zeroes over `nlb` blocks (no payload transfer).
    pub fn submit_write_zeroes(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
    ) -> Result<u16, NvmeofError> {
        let cid = self.state.alloc_cid();
        let cmd = NvmeCommand::write_zeroes(cid, nsid, slba, nlb);
        self.state.track(cmd, Vec::new(), None);
        self.state.send_pdu(
            &self.transport,
            &Pdu::CapsuleCmd(CapsuleCmd { cmd, data: None }),
        )?;
        Ok(cid)
    }

    /// Submits a Dataset Management deallocate (TRIM) over `nlb` blocks
    /// (no payload transfer). On a durable target store the range is
    /// journaled and reads back as zeroes.
    pub fn submit_trim(&mut self, nsid: u32, slba: u64, nlb: u32) -> Result<u16, NvmeofError> {
        let cid = self.state.alloc_cid();
        let cmd = NvmeCommand::trim(cid, nsid, slba, nlb);
        self.state.track(cmd, Vec::new(), None);
        self.state.send_pdu(
            &self.transport,
            &Pdu::CapsuleCmd(CapsuleCmd { cmd, data: None }),
        )?;
        Ok(cid)
    }

    /// Submits a write with Force Unit Access: the completion is not
    /// posted until the payload is durable on the target's media.
    pub fn submit_write_fua(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        data: Bytes,
    ) -> Result<u16, NvmeofError> {
        let cid = self.state.alloc_cid();
        let cmd = NvmeCommand::write_fua(cid, nsid, slba, nlb);
        let publish_over_shm = self.state.opts.flow == FlowMode::InCapsule;
        self.submit_with_payload(cmd, data, publish_over_shm)
    }

    /// Submits a flush.
    pub fn submit_flush(&mut self, nsid: u32) -> Result<u16, NvmeofError> {
        let cid = self.state.alloc_cid();
        let cmd = NvmeCommand::flush(cid, nsid);
        self.state.track(cmd, Vec::new(), None);
        self.state.send_pdu(
            &self.transport,
            &Pdu::CapsuleCmd(CapsuleCmd { cmd, data: None }),
        )?;
        Ok(cid)
    }

    /// Polls the transport once, draining every frame that is already
    /// ready in one batched pass (one Acquire/Release pair on ring
    /// transports); completed I/Os are moved to the internal completion
    /// list and returned. Also runs one deadline/keep-alive tick, so
    /// callers that only ever `poll` still get retries, timeouts and
    /// peer-death detection.
    pub fn poll(&mut self) -> Result<Vec<IoResult>, NvmeofError> {
        let mut out = Vec::new();
        self.poll_into(&mut out)?;
        Ok(out)
    }

    /// Like [`Initiator::poll`], but appends completions to `out`
    /// instead of returning a fresh vector, so a caller that retains its
    /// buffer keeps the completion path allocation-free. Returns how
    /// many completions were appended.
    pub fn poll_into(&mut self, out: &mut Vec<IoResult>) -> Result<usize, NvmeofError> {
        let transport = &self.transport;
        let state = &mut self.state;
        let mut err = None;
        transport.recv_batch(&mut |frame| {
            if err.is_none() {
                if let Err(e) = state.on_frame(transport, frame) {
                    err = Some(e);
                }
            }
        })?;
        if let Some(e) = err {
            return Err(e);
        }
        state.tick(transport)?;
        let n = state.completed.len();
        out.append(&mut state.completed);
        Ok(n)
    }

    /// Drains the user cids whose retry budget ran out since the last
    /// call. Callers driving the connection via [`Initiator::poll`]
    /// should check this; [`Initiator::wait`] consumes it internally and
    /// surfaces the awaited cid as [`NvmeofError::Timeout`].
    pub fn take_timed_out(&mut self) -> Vec<u16> {
        std::mem::take(&mut self.state.timed_out)
    }

    /// Polls until `cid` completes or `timeout` elapses, descending the
    /// spin→yield→sleep ladder while the transport stays quiet.
    ///
    /// The busy-poll phase is workload-adaptive (§4.5, Fig. 10): waits
    /// are classified by the awaited command's direction, observed wait
    /// times feed a per-direction EWMA, and the spin budget is the
    /// controller's current pick for that class — so reads converge to
    /// short budgets and writes to long ones.
    pub fn wait(&mut self, cid: u16, timeout: Duration) -> Result<IoResult, NvmeofError> {
        let started = Instant::now();
        let deadline = started + timeout;
        let class = match self.state.pending.get(&cid).map(|p| p.cmd.opcode) {
            Some(Opcode::Read) | Some(Opcode::Identify) | None => PollClass::Read,
            Some(_) => PollClass::Write,
        };
        let budget = self.state.poller.budget(class);
        let mut ladder = WaitLadder::until_with_spin(deadline, &self.state.opts.backoff, budget);
        let mut done = Vec::new();
        loop {
            done.extend(self.poll()?);
            if let Some(pos) = done.iter().position(|r| r.cid == cid) {
                let result = done.swap_remove(pos);
                self.state.completed.extend(done);
                self.state.observe_wait(class, started.elapsed());
                return Ok(result);
            }
            if let Some(pos) = self.state.timed_out.iter().position(|&c| c == cid) {
                self.state.timed_out.swap_remove(pos);
                self.state.completed.extend(done);
                return Err(NvmeofError::Timeout { cid: Some(cid) });
            }
            match ladder.step() {
                WaitStep::Expired => {
                    self.state.completed.extend(done);
                    return Err(NvmeofError::timeout());
                }
                WaitStep::Again => {}
                WaitStep::Sleep(d) => {
                    if let Some(frame) = self.transport.recv_timeout(d)? {
                        self.state.on_frame(&self.transport, Frame::Owned(frame))?;
                    }
                }
            }
        }
    }
}

impl ClientState {
    fn on_frame<T: Transport + ?Sized>(
        &mut self,
        transport: &T,
        frame: Frame<'_>,
    ) -> Result<(), NvmeofError> {
        let pdu = match Pdu::decode_frame(frame) {
            Ok(pdu) => pdu,
            // Bit damage is dropped, not fatal: the sender's own
            // deadline machinery re-covers the lost frame.
            Err(NvmeofError::CorruptFrame) | Err(NvmeofError::Codec(_)) => {
                self.metrics.corrupt_frames.inc();
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        if self.opts.keepalive.is_some() {
            // Any traffic proves the peer alive.
            self.last_rx = Instant::now();
        }
        match pdu {
            Pdu::R2T(r2t) => {
                let Some(pending) = self.pending.get_mut(&r2t.cid) else {
                    if self.is_retired(r2t.cid) {
                        self.metrics.stale_frames.inc();
                        return Ok(());
                    }
                    return Err(NvmeofError::Protocol(format!(
                        "R2T for unknown cid {}",
                        r2t.cid
                    )));
                };
                // A duplicated command capsule can provoke a second R2T
                // after the stash was consumed; replay from the retained
                // payload (same bytes, same LBA — idempotent).
                let data = match pending
                    .stashed_write
                    .take()
                    .or_else(|| pending.retry_payload.clone())
                {
                    Some(data) => data,
                    None => return Err(NvmeofError::Protocol("R2T without stashed data".into())),
                };
                if (r2t.len as usize) < data.len() {
                    return Err(NvmeofError::Protocol(
                        "R2T grant smaller than payload".into(),
                    ));
                }
                let use_shm = self.shm_active
                    && self
                        .payload
                        .as_ref()
                        .is_some_and(|ch| data.len() <= ch.max_payload());
                let dref = if use_shm {
                    // Fig. 7 step ③/④: copy payload to shared memory, send
                    // the location as the H2C notification.
                    let ch = self.payload.as_ref().expect("channel").clone();
                    match ch.publish(&data) {
                        Ok((slot, len)) => {
                            self.pending
                                .get_mut(&r2t.cid)
                                .expect("still pending")
                                .published_slot = Some((slot, len));
                            DataRef::ShmSlot { slot, len }
                        }
                        Err(_) => {
                            // Region died between grant and publish:
                            // degrade and ship the payload inline.
                            self.degrade(transport)?;
                            DataRef::Inline(data)
                        }
                    }
                } else {
                    DataRef::Inline(data)
                };
                match dref {
                    // Large inline payloads are split into pipelined
                    // sub-requests of `write_chunk` bytes (§4.5, Fig. 9).
                    // The grant covers the whole payload, so the chunks
                    // stream back-to-back without further R2Ts; only the
                    // final one carries the LAST flag and the target
                    // completes on it (or on the byte count).
                    DataRef::Inline(data)
                        if self.opts.write_chunk > 0 && data.len() > self.opts.write_chunk =>
                    {
                        let chunk = self.opts.write_chunk;
                        let total = data.len();
                        let mut off = 0usize;
                        let mut sent = 0u64;
                        while off < total {
                            let end = (off + chunk).min(total);
                            self.send_pdu_data(
                                transport,
                                &Pdu::H2CData(DataPdu {
                                    cid: r2t.cid,
                                    ttag: r2t.ttag,
                                    offset: off as u32,
                                    last: end == total,
                                    data: DataRef::Inline(data.slice(off..end)),
                                }),
                            )?;
                            off = end;
                            sent += 1;
                        }
                        self.metrics.chunks_per_io.record(sent);
                        self.metrics.h2c_chunks.add(sent);
                    }
                    dref => {
                        self.send_pdu_data(
                            transport,
                            &Pdu::H2CData(DataPdu {
                                cid: r2t.cid,
                                ttag: r2t.ttag,
                                offset: 0,
                                last: true,
                                data: dref,
                            }),
                        )?;
                        self.metrics.h2c_chunks.inc();
                    }
                }
            }
            Pdu::C2HData(d) => {
                if !self.pending.contains_key(&d.cid) {
                    if self.is_retired(d.cid) {
                        self.metrics.stale_frames.inc();
                        // A stale shm reference must still be drained or
                        // its slot leaks until the next reclaim sweep.
                        if let DataRef::ShmSlot { slot, len } = d.data {
                            if let Some(ch) = self.payload.as_ref() {
                                let _ = ch.consume_with(slot, len, &mut |_| {});
                            }
                        }
                        return Ok(());
                    }
                    return Err(NvmeofError::Protocol(format!(
                        "C2H data for unknown cid {}",
                        d.cid
                    )));
                }
                let pending = self.pending.get_mut(&d.cid).expect("checked above");
                let off = d.offset as usize;
                let mut consume_failed = false;
                match d.data {
                    DataRef::Inline(b) => {
                        let op = pending.cmd.opcode;
                        if op == Opcode::Identify || op == Opcode::Flush {
                            pending.got = b.len().max(1);
                            pending.read_buf = b.to_vec();
                        } else if pending.borrow {
                            // Borrowed read that the target answered
                            // inline anyway (e.g. payload exceeded the
                            // slot size): buffer it as a fallback.
                            if pending.read_buf.len() < off + b.len() {
                                pending.read_buf.resize(off + b.len(), 0);
                            }
                            pending.read_buf[off..off + b.len()].copy_from_slice(&b);
                            if off <= pending.got {
                                pending.got = pending.got.max(off + b.len());
                            }
                        } else {
                            if off + b.len() > pending.read_buf.len() {
                                return Err(NvmeofError::Protocol(
                                    "C2H data beyond read buffer".into(),
                                ));
                            }
                            pending.read_buf[off..off + b.len()].copy_from_slice(&b);
                            if off <= pending.got {
                                pending.got = pending.got.max(off + b.len());
                            }
                        }
                    }
                    DataRef::ShmSlot { slot, len } => {
                        if pending.borrow {
                            // Zero-copy: park the reference; the caller
                            // borrows the bytes via consume_read_with.
                            pending.shm_data = Some((slot, len));
                        } else {
                            let ch = self.payload.as_ref().ok_or_else(|| {
                                NvmeofError::Protocol("shm ref without channel".into())
                            })?;
                            if off + len as usize > pending.read_buf.len() {
                                return Err(NvmeofError::Protocol(
                                    "C2H shm data beyond read buffer".into(),
                                ));
                            }
                            consume_failed = ch
                                .consume(slot, len, &mut pending.read_buf[off..off + len as usize])
                                .is_err();
                            if !consume_failed && off <= pending.got {
                                pending.got = pending.got.max(off + len as usize);
                            }
                        }
                    }
                }
                if consume_failed {
                    // The region died with the payload inside: abandon
                    // shm and re-fetch this read over TCP.
                    self.degrade(transport)?;
                    self.retry_command(transport, d.cid)?;
                } else if let Some(io) = self.pending.get(&d.cid) {
                    // If a reordered completion was held for this data,
                    // release it now that the buffer is whole.
                    if io.early_completion.is_some() && !Self::awaiting_read_data(io) {
                        let comp = self
                            .pending
                            .get_mut(&d.cid)
                            .expect("checked above")
                            .early_completion
                            .take()
                            .expect("checked above");
                        self.finish_command(d.cid, comp);
                    }
                }
            }
            Pdu::CapsuleResp(r) => {
                let wire_cid = r.completion.cid;
                let Some(io) = self.pending.get_mut(&wire_cid) else {
                    if self.is_retired(wire_cid) {
                        self.metrics.stale_frames.inc();
                        return Ok(());
                    }
                    return Err(NvmeofError::Protocol(format!(
                        "completion for unknown cid {wire_cid}"
                    )));
                };
                if r.completion.status.is_ok() && Self::awaiting_read_data(io) {
                    // The success completion overtook the data it
                    // vouches for (a reordering fabric can do that);
                    // completing now would hand back a stale buffer.
                    // Hold it until the last byte lands — the deadline
                    // re-fetches the read if the data never arrives.
                    io.early_completion = Some(r.completion);
                    return Ok(());
                }
                // A completion that raced an in-flight abort resolves
                // the command just as well — the late AbortAck will be
                // dropped as stale.
                self.finish_command(wire_cid, r.completion);
            }
            Pdu::KeepAlive(ka) => {
                // Heartbeat from the peer: echo it.
                self.send_pdu_lossy(transport, &Pdu::KeepAliveAck(KeepAlive { seq: ka.seq }))?;
            }
            Pdu::KeepAliveAck(_) => {
                self.ka_outstanding = false;
            }
            Pdu::AbortAck(ack) => {
                let can_resolve = match self.pending.get(&ack.cid) {
                    Some(io) => io.awaiting_abort,
                    None => {
                        // Late ack for a command that already resolved.
                        self.metrics.stale_frames.inc();
                        return Ok(());
                    }
                };
                if !can_resolve {
                    // Duplicate ack for a round-trip already resolved.
                    self.metrics.stale_frames.inc();
                    return Ok(());
                }
                if ack.applied {
                    // The original write landed before (or despite) the
                    // abort: complete with the status the target kept.
                    self.finish_command(ack.cid, ack.completion);
                } else {
                    // Never applied, so a resubmission cannot double-
                    // apply. Replays need a payload (or a payload-less
                    // opcode); zero-copy published writes have neither.
                    let io = self.pending.get(&ack.cid).expect("checked above");
                    let can_replay = io.retry_payload.is_some()
                        || io.cmd.opcode.replayable_without_payload()
                        || io.retries_freely();
                    if can_replay {
                        self.resubmit(transport, ack.cid)?;
                    } else {
                        self.give_up(ack.cid)?;
                    }
                }
            }
            Pdu::Degrade(_) => {
                // Target-initiated degradation: abandon the shm path from
                // this side too (idempotent if we already did).
                self.degrade(transport)?;
            }
            Pdu::ICResp(_) => {
                // Duplicate handshake answer (the connect loop re-asks
                // after a corrupt frame); the grant was already taken.
                self.metrics.stale_frames.inc();
            }
            other => {
                return Err(NvmeofError::Protocol(format!(
                    "unexpected PDU at initiator: {other:?}"
                )))
            }
        }
        Ok(())
    }
}

impl<T: Transport> Initiator<T> {
    /// Blocking write convenience wrapper.
    pub fn write_blocking(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        data: Bytes,
        timeout: Duration,
    ) -> Result<(), NvmeofError> {
        let cid = self.submit_write(nsid, slba, nlb, data)?;
        let result = self.wait(cid, timeout)?;
        if result.status.is_ok() {
            Ok(())
        } else {
            Err(NvmeofError::Nvme(result.status))
        }
    }

    /// Blocking read convenience wrapper.
    pub fn read_blocking(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        expected_len: usize,
        timeout: Duration,
    ) -> Result<Vec<u8>, NvmeofError> {
        let cid = self.submit_read(nsid, slba, nlb, expected_len)?;
        let result = self.wait(cid, timeout)?;
        if result.status.is_ok() {
            Ok(result.data)
        } else {
            Err(NvmeofError::Nvme(result.status))
        }
    }

    /// Queries namespace geometry.
    pub fn identify(&mut self, nsid: u32, timeout: Duration) -> Result<IdentifyInfo, NvmeofError> {
        let cid = self.state.alloc_cid();
        let cmd = NvmeCommand {
            cid,
            opcode: Opcode::Identify,
            nsid,
            slba: 0,
            nlb: 0,
            fua: false,
        };
        self.state.track(cmd, Vec::new(), None);
        self.state.send_pdu(
            &self.transport,
            &Pdu::CapsuleCmd(CapsuleCmd { cmd, data: None }),
        )?;
        let result = self.wait(cid, timeout)?;
        if !result.status.is_ok() {
            return Err(NvmeofError::Nvme(result.status));
        }
        IdentifyInfo::from_bytes(&result.data)
            .ok_or_else(|| NvmeofError::Codec("identify payload malformed".into()))
    }

    /// Sends a termination request.
    pub fn disconnect(&mut self) -> Result<(), NvmeofError> {
        self.state.send_pdu(
            &self.transport,
            &Pdu::TermReq(crate::pdu::TermReq { reason: 0 }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nvme::controller::Controller;
    use crate::nvme::namespace::Namespace;
    use crate::target::{spawn_target, TargetConfig};
    use crate::transport::MemTransport;

    const TIMEOUT: Duration = Duration::from_secs(5);

    fn setup(
        opts: InitiatorOptions,
        cfg: TargetConfig,
        channels: Option<(Arc<dyn PayloadChannel>, Arc<dyn PayloadChannel>)>,
    ) -> (Initiator<MemTransport>, crate::target::TargetHandle) {
        let (ct, tt) = MemTransport::pair();
        let mut ctrl = Controller::new();
        ctrl.add_namespace(Namespace::new(1, 4096, 4096));
        let (client_ch, target_ch) = match channels {
            Some((c, t)) => (Some(c), Some(t)),
            None => (None, None),
        };
        let handle = spawn_target(tt, ctrl, cfg, target_ch);
        let ini = Initiator::connect(ct, opts, client_ch, TIMEOUT).unwrap();
        (ini, handle)
    }

    #[test]
    fn end_to_end_write_read_inline() {
        let (mut ini, handle) = setup(InitiatorOptions::default(), TargetConfig::default(), None);
        assert!(!ini.shm_active());
        let data = Bytes::from(vec![0x42u8; 128 * 1024]);
        ini.write_blocking(1, 0, 32, data.clone(), TIMEOUT).unwrap();
        let back = ini.read_blocking(1, 0, 32, 128 * 1024, TIMEOUT).unwrap();
        assert_eq!(back, data);
        handle.shutdown().unwrap();
    }

    #[test]
    fn small_write_goes_in_capsule() {
        let (mut ini, handle) = setup(InitiatorOptions::default(), TargetConfig::default(), None);
        let data = Bytes::from(vec![7u8; 4096]);
        ini.write_blocking(1, 5, 1, data.clone(), TIMEOUT).unwrap();
        let back = ini.read_blocking(1, 5, 1, 4096, TIMEOUT).unwrap();
        assert_eq!(back, data);
        handle.shutdown().unwrap();
    }

    #[test]
    fn shm_negotiation_and_io() {
        use crate::payload::MailboxChannel;
        let (c, t) = MailboxChannel::pair(16);
        let opts = InitiatorOptions {
            af_caps: AF_CAP_SHM,
            flow: FlowMode::InCapsule,
            ..InitiatorOptions::default()
        };
        let (mut ini, handle) = setup(
            opts,
            TargetConfig::default(),
            Some((c as Arc<dyn PayloadChannel>, t as Arc<dyn PayloadChannel>)),
        );
        assert!(ini.shm_active());
        let data = Bytes::from(vec![0x99u8; 256 * 1024]);
        ini.write_blocking(1, 0, 64, data.clone(), TIMEOUT).unwrap();
        let back = ini.read_blocking(1, 0, 64, 256 * 1024, TIMEOUT).unwrap();
        assert_eq!(back, data);
        handle.shutdown().unwrap();
    }

    #[test]
    fn lease_write_and_borrowed_read() {
        use crate::payload::MailboxChannel;
        let (c, t) = MailboxChannel::pair(16);
        let opts = InitiatorOptions {
            af_caps: AF_CAP_SHM,
            flow: FlowMode::InCapsule,
            ..InitiatorOptions::default()
        };
        let (mut ini, handle) = setup(
            opts,
            TargetConfig::default(),
            Some((c as Arc<dyn PayloadChannel>, t as Arc<dyn PayloadChannel>)),
        );
        assert!(ini.shm_active());

        // Build the payload directly in a leased write buffer.
        let mut lease = ini.alloc_write_buf(64 * 1024).unwrap();
        for (i, b) in lease.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let expect: Vec<u8> = (0..64 * 1024).map(|i| (i % 251) as u8).collect();
        let cid = ini.submit_write_lease(1, 0, 16, lease).unwrap();
        assert!(ini.wait(cid, TIMEOUT).unwrap().status.is_ok());

        // Borrow the read payload in place instead of copying it out.
        let cid = ini.submit_read_borrowed(1, 0, 16, 64 * 1024).unwrap();
        let mut res = ini.wait(cid, TIMEOUT).unwrap();
        assert!(res.status.is_ok());
        assert!(res.shm.is_some(), "borrowed read should park a slot ref");
        assert!(res.data.is_empty());
        let mut seen = Vec::new();
        ini.consume_read_with(&mut res, &mut |b| seen.extend_from_slice(b))
            .unwrap();
        assert_eq!(seen, expect);
        assert_eq!(res.shm, None, "consumption clears the reference");
        handle.shutdown().unwrap();
    }

    #[test]
    fn queue_depth_pipelining() {
        let (mut ini, handle) = setup(InitiatorOptions::default(), TargetConfig::default(), None);
        let qd = 32;
        let mut cids = Vec::new();
        for i in 0..qd {
            let data = Bytes::from(vec![i as u8; 4096]);
            cids.push(ini.submit_write(1, i as u64, 1, data).unwrap());
        }
        assert_eq!(ini.inflight(), qd);
        let mut done = 0;
        let deadline = Instant::now() + TIMEOUT;
        while done < qd && Instant::now() < deadline {
            done += ini.poll().unwrap().len();
            std::thread::sleep(Duration::from_micros(100));
        }
        assert_eq!(done, qd);
        // Verify contents round-trip.
        for i in 0..qd {
            let back = ini.read_blocking(1, i as u64, 1, 4096, TIMEOUT).unwrap();
            assert!(back.iter().all(|&b| b == i as u8), "lba {i} corrupt");
        }
        handle.shutdown().unwrap();
    }

    #[test]
    fn compare_and_write_zeroes_end_to_end() {
        let (mut ini, handle) = setup(InitiatorOptions::default(), TargetConfig::default(), None);
        let data = Bytes::from(vec![0x7du8; 4096]);
        ini.write_blocking(1, 9, 1, data.clone(), TIMEOUT).unwrap();

        // Matching compare succeeds.
        let cid = ini.submit_compare(1, 9, 1, data).unwrap();
        assert!(ini.wait(cid, TIMEOUT).unwrap().status.is_ok());
        // Mismatch fails with CompareFailure.
        let cid = ini
            .submit_compare(1, 9, 1, Bytes::from(vec![0u8; 4096]))
            .unwrap();
        assert_eq!(
            ini.wait(cid, TIMEOUT).unwrap().status,
            Status::CompareFailure
        );

        // Write-zeroes clears the range; the compare against zeros now
        // passes.
        let cid = ini.submit_write_zeroes(1, 9, 1).unwrap();
        assert!(ini.wait(cid, TIMEOUT).unwrap().status.is_ok());
        let cid = ini
            .submit_compare(1, 9, 1, Bytes::from(vec![0u8; 4096]))
            .unwrap();
        assert!(ini.wait(cid, TIMEOUT).unwrap().status.is_ok());
        handle.shutdown().unwrap();
    }

    #[test]
    fn large_compare_uses_conservative_flow() {
        let (mut ini, handle) = setup(InitiatorOptions::default(), TargetConfig::default(), None);
        let data = Bytes::from(vec![0x3eu8; 64 * 1024]);
        ini.write_blocking(1, 32, 16, data.clone(), TIMEOUT)
            .unwrap();
        // 64 KiB > ioccsz: the compare payload goes via R2T + H2C.
        let cid = ini.submit_compare(1, 32, 16, data).unwrap();
        assert!(ini.wait(cid, TIMEOUT).unwrap().status.is_ok());
        handle.shutdown().unwrap();
    }

    #[test]
    fn identify_returns_geometry() {
        let (mut ini, handle) = setup(InitiatorOptions::default(), TargetConfig::default(), None);
        let info = ini.identify(1, TIMEOUT).unwrap();
        assert_eq!(info.block_size, 4096);
        assert_eq!(info.capacity_blocks, 4096);
        handle.shutdown().unwrap();
    }

    #[test]
    fn nvme_error_surfaces() {
        let (mut ini, handle) = setup(InitiatorOptions::default(), TargetConfig::default(), None);
        let err = ini.read_blocking(1, 10_000, 1, 4096, TIMEOUT).unwrap_err();
        assert!(matches!(err, NvmeofError::Nvme(Status::LbaOutOfRange)));
        handle.shutdown().unwrap();
    }

    #[test]
    fn flush_completes() {
        let (mut ini, handle) = setup(InitiatorOptions::default(), TargetConfig::default(), None);
        let cid = ini.submit_flush(1).unwrap();
        let r = ini.wait(cid, TIMEOUT).unwrap();
        assert!(r.status.is_ok());
        handle.shutdown().unwrap();
    }

    #[test]
    fn disconnect_stops_target() {
        let (mut ini, handle) = setup(InitiatorOptions::default(), TargetConfig::default(), None);
        ini.disconnect().unwrap();
        handle.shutdown().unwrap();
    }
}
