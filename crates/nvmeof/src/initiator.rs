//! The NVMe-oF initiator (client).
//!
//! Implements the client half of the flows in Figs. 5–7: ICReq/ICResp
//! handshake with adaptive-fabric capability negotiation, asynchronous
//! command submission with completion polling (the SPDK-perf usage
//! pattern: a queue depth of in-flight commands serviced by one polling
//! thread), and all three write flow-control paths — inline in-capsule,
//! conservative R2T, and shared-memory in-capsule (§4.4.2).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::{Bytes, BytesMut};

use crate::error::NvmeofError;
use crate::metrics::InitiatorMetrics;
use crate::nvme::command::{NvmeCommand, Opcode};
use crate::nvme::completion::{NvmeCompletion, Status};
use crate::nvme::controller::IdentifyInfo;
use crate::payload::{PayloadChannel, WriteLease};
use crate::pdu::{Abort, CapsuleCmd, DataPdu, DataRef, Degrade, ICReq, KeepAlive, Pdu, AF_CAP_SHM};
use crate::recovery::{
    Action, BarrierGraceMode, DataArrival, DataNeed, InitiatorRecovery, KeepAliveNanos, Nanos,
    RecoveryConfig,
};
use crate::transport::{BackoffConfig, Frame, Transport, WaitLadder, WaitStep};
use crate::tune::{BusyPollController, PollClass};
use crate::FlowMode;

/// Keep-alive tuning: how long a connection may stay silent before the
/// initiator probes it, and how long before the peer is declared dead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeepAliveConfig {
    /// Quiet time after which a heartbeat is sent (and re-sent).
    pub interval: Duration,
    /// Total silence after which the peer is declared dead and
    /// [`NvmeofError::PeerDead`] surfaces from `poll`/`wait`.
    pub grace: Duration,
}

impl KeepAliveConfig {
    /// An interval with the conventional 3× grace period.
    pub fn with_interval(interval: Duration) -> Self {
        KeepAliveConfig {
            interval,
            grace: interval * 3,
        }
    }
}

/// Client-side connection options.
#[derive(Clone)]
pub struct InitiatorOptions {
    /// Host identity sent in the ICReq (locality matching, §4.2).
    pub host_id: u64,
    /// Adaptive-fabric capabilities requested.
    pub af_caps: u32,
    /// Write flow-control regime to use once shared memory is active.
    pub flow: FlowMode,
    /// Maximum R2Ts (informational).
    pub maxr2t: u32,
    /// Per-command deadline. When set, a command that has not completed
    /// by its deadline is retried (reads resubmit directly; writes only
    /// after an abort round-trip) up to [`max_retries`] times, then
    /// surfaced as [`NvmeofError::Timeout`]. `None` disables all
    /// deadline bookkeeping.
    ///
    /// [`max_retries`]: InitiatorOptions::max_retries
    pub cmd_deadline: Option<Duration>,
    /// Retry budget per command once `cmd_deadline` is set.
    pub max_retries: u32,
    /// Base of the exponential retry backoff added to each retry's
    /// deadline (`cmd_deadline + retry_backoff * 2^attempt`).
    pub retry_backoff: Duration,
    /// Keep-alive probing; `None` disables heartbeats and peer-death
    /// detection.
    pub keepalive: Option<KeepAliveConfig>,
    /// Longest a single barrier episode — one or more Flush/FUA-class
    /// commands continuously in flight — may pause the deadline and
    /// keep-alive clock. A group-commit `fdatasync` on the target's
    /// reactor thread legitimately silences the connection for tens of
    /// milliseconds; excluding that window (up to this cap) keeps a
    /// healthy barrier from blowing command deadlines or keep-alive
    /// grace at high FUA queue depth. The cap bounds the exclusion so a
    /// genuinely lost barrier still times out and retries.
    pub barrier_grace: Duration,
    /// How `barrier_grace` is applied. The default
    /// ([`BarrierGraceMode::FreezeClock`]) pauses every deadline and the
    /// keep-alive clock for the episode — right when the target syncs
    /// inline on its reactor thread and the whole connection goes
    /// quiet. When the target offloads `fdatasync` to a sync worker,
    /// reads keep completing during a barrier, so
    /// [`BarrierGraceMode::PadBarrierDeadline`] can keep non-barrier
    /// deadlines and peer-death detection on live time and pad only the
    /// barrier command's own deadline.
    pub barrier_grace_mode: BarrierGraceMode,
    /// Re-introduces the PR 4 held-completion bug (success completions
    /// delivered before the data they vouch for) so the `oaf-mc`
    /// mutation leg can prove the model checker finds that class.
    /// Default `false` even when the feature is compiled in.
    #[cfg(feature = "mc-mutations")]
    pub mc_deliver_early: bool,
    /// Spin→yield→sleep ladder tuning for the blocking waits
    /// (`connect`, `wait`) — the same knob the ring transports use.
    pub backoff: BackoffConfig,
    /// Application-level chunk size for inline H2C transfers (§4.5,
    /// Fig. 9): an R2T-granted payload larger than this is shipped as
    /// `ceil(len / write_chunk)` pipelined sub-requests. `0` disables
    /// chunking. The connection manager sizes this with the runtime
    /// [`crate::tune::ChunkSelector`] when the link is a real socket.
    pub write_chunk: usize,
}

impl Default for InitiatorOptions {
    fn default() -> Self {
        InitiatorOptions {
            host_id: 0x4846_u64, // "HF": host-fabric default identity
            af_caps: 0,
            flow: FlowMode::Conservative,
            maxr2t: 16,
            cmd_deadline: None,
            max_retries: 3,
            retry_backoff: Duration::from_millis(2),
            keepalive: None,
            barrier_grace: Duration::from_millis(250),
            barrier_grace_mode: BarrierGraceMode::FreezeClock,
            #[cfg(feature = "mc-mutations")]
            mc_deliver_early: false,
            backoff: BackoffConfig::default(),
            // Fig. 9's optimum for the paper's 25 Gbps testbed; payloads
            // at or below this are untouched.
            write_chunk: 512 * 1024,
        }
    }
}

impl InitiatorOptions {
    /// Lowers the recovery-relevant knobs into the pure decision core's
    /// config (durations become nanoseconds since the connection epoch).
    fn recovery_config(&self) -> RecoveryConfig {
        RecoveryConfig {
            cmd_deadline: self.cmd_deadline.map(duration_nanos),
            max_retries: self.max_retries,
            retry_backoff: duration_nanos(self.retry_backoff),
            keepalive: self.keepalive.map(|ka| KeepAliveNanos {
                interval: duration_nanos(ka.interval),
                grace: duration_nanos(ka.grace),
            }),
            barrier_grace: duration_nanos(self.barrier_grace),
            barrier_grace_mode: self.barrier_grace_mode,
            #[cfg(feature = "mc-mutations")]
            mutate_deliver_early: self.mc_deliver_early,
        }
    }
}

fn duration_nanos(d: Duration) -> Nanos {
    Nanos::try_from(d.as_nanos()).unwrap_or(Nanos::MAX)
}

struct PendingIo {
    /// The command as last sent on the wire (`cmd.cid` is the *wire*
    /// cid, which diverges from [`user_cid`] after a retry).
    ///
    /// [`user_cid`]: PendingIo::user_cid
    cmd: NvmeCommand,
    /// The cid handed to the caller at submit time; completions are
    /// reported under it no matter how many wire cids retries burned.
    user_cid: u16,
    read_buf: Vec<u8>,
    stashed_write: Option<Bytes>,
    /// Borrowed read (§4.4.3): leave shm payloads in the region and hand
    /// the `(slot, len)` reference to the caller instead of copying out.
    borrow: bool,
    /// Unconsumed shm payload reference for a borrowed read.
    shm_data: Option<(u32, u32)>,
    /// Contiguous prefix of the read buffer filled by C2H data — buffer
    /// bookkeeping only; the hold/release *decision* runs on the
    /// recovery core's own watermark (`crate::recovery`).
    got: usize,
    submitted_at: Instant,
    /// Retained write/compare payload (a refcount clone, no copy) so a
    /// lost command can be replayed — including over TCP after a shm
    /// degradation. `None` for zero-copy published writes, which cannot
    /// be replayed.
    retry_payload: Option<Bytes>,
    /// Slot the original submission published over shm, if any, so a
    /// retry or abort can free it instead of leaking it.
    published_slot: Option<(u32, u32)>,
}

/// Outcome of a completed I/O.
#[derive(Debug, PartialEq, Eq)]
pub struct IoResult {
    /// Command identifier.
    pub cid: u16,
    /// NVMe status.
    pub status: Status,
    /// Read data (empty for writes/flushes — and for borrowed reads
    /// whose payload is still parked in shared memory, see
    /// [`IoResult::shm`]).
    pub data: Vec<u8>,
    /// For borrowed reads over a shared-memory channel: the `(slot,
    /// len)` reference of the payload, still unconsumed in the region.
    /// Pass the result to [`Initiator::consume_read_with`] to borrow the
    /// bytes in place and free the slot.
    pub shm: Option<(u32, u32)>,
}

/// Per-connection client state, split from the transport so the batched
/// receive path can borrow the two disjointly: `recv_batch` holds the
/// transport shared while the frame callback mutates the state.
///
/// Everything that *decides* recovery — cid/generation allocation,
/// deadlines and retries, abort round-trips, the retired-cid ring, held
/// completions, keep-alive, degrade replay — lives in
/// [`InitiatorRecovery`] (`crate::recovery`), a pure state machine the
/// `oaf-mc` model checker drives through every schedule. This shell
/// owns buffers, sockets and telemetry and executes the core's
/// [`Action`]s.
struct ClientState {
    payload: Option<Arc<dyn PayloadChannel>>,
    opts: InitiatorOptions,
    shm_active: bool,
    in_capsule_max: usize,
    pending: HashMap<u16, PendingIo>,
    completed: Vec<IoResult>,
    /// Reusable encode scratch: every control PDU is encoded here and
    /// handed to [`Transport::send_frame`], so the steady state
    /// allocates nothing on the send side.
    scratch: BytesMut,
    metrics: Arc<InitiatorMetrics>,
    /// User cids whose retry budget ran out; `wait` surfaces them as
    /// [`NvmeofError::Timeout`].
    timed_out: Vec<u16>,
    /// Connection epoch: the recovery core's time zero.
    epoch: Instant,
    /// The pure recovery decision core — the exact code `oaf-mc`
    /// model-checks.
    core: InitiatorRecovery,
    /// Reusable buffer for the core's emitted actions, drained by
    /// [`ClientState::apply_actions`] (steady state allocates nothing).
    actions: Vec<Action>,
    /// Workload-adaptive busy-poll budgets (§4.5, Fig. 10): observed
    /// wait times feed per-direction EWMAs; [`Initiator::wait`] spins
    /// for the chosen budget before descending to yields and sleeps.
    poller: BusyPollController,
}

/// An NVMe-oF initiator over a transport.
pub struct Initiator<T: Transport> {
    transport: T,
    state: ClientState,
}

impl ClientState {
    /// Core time: nanoseconds since the connection epoch.
    fn now(&self) -> Nanos {
        Nanos::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(Nanos::MAX)
    }

    /// Registers a new in-flight command: the recovery core allocates
    /// the wire cid and generation tag (skipping live *and*
    /// recently-retired cids) and arms the deadline; the shell mirrors
    /// the buffer state. Returns the stamped command — its cid is also
    /// the user cid, this being a first submission.
    fn track(
        &mut self,
        mut cmd: NvmeCommand,
        read_buf: Vec<u8>,
        stashed_write: Option<Bytes>,
        borrow: bool,
        need: DataNeed,
    ) -> NvmeCommand {
        let now = self.now();
        let (cid, gseq) = self.core.begin(cmd.opcode, cmd.fua, need, false, now);
        cmd.cid = cid;
        cmd.gseq = gseq;
        self.pending.insert(
            cid,
            PendingIo {
                cmd,
                user_cid: cid,
                read_buf,
                stashed_write,
                borrow,
                shm_data: None,
                got: 0,
                submitted_at: self.epoch + Duration::from_nanos(now),
                retry_payload: None,
                published_slot: None,
            },
        );
        self.metrics.submitted.inc();
        self.metrics.inflight.add(1);
        cmd
    }

    /// Encodes `pdu` into the connection scratch and sends the borrowed
    /// slice — the zero-allocation send path.
    fn send_pdu<T: Transport + ?Sized>(
        &mut self,
        transport: &T,
        pdu: &Pdu,
    ) -> Result<(), NvmeofError> {
        self.scratch.clear();
        pdu.encode_into(&mut self.scratch);
        transport.send_frame(&self.scratch)
    }

    /// Feeds one completed wait into the adaptive busy-poll controller
    /// and publishes the refreshed per-direction budgets as gauges.
    /// Waits that ran into retries or stalls are clamped so a single
    /// outlier can't blow the EWMA past the ladder.
    fn observe_wait(&mut self, class: PollClass, elapsed: Duration) {
        const CLAMP: Duration = Duration::from_millis(1);
        self.poller.observe(class, elapsed.min(CLAMP));
        self.metrics
            .busy_poll_read_us
            .set(self.poller.budget(PollClass::Read).as_micros() as i64);
        self.metrics
            .busy_poll_write_us
            .set(self.poller.budget(PollClass::Write).as_micros() as i64);
    }

    /// Sends a data-bearing PDU, preferring the transport's vectored
    /// `[prefix, payload]` path when it has one (the socket transport's
    /// `write_vectored`, which skips the payload coalescing copy);
    /// everything else takes the ordinary scratch-encode path.
    fn send_pdu_data<T: Transport + ?Sized>(
        &mut self,
        transport: &T,
        pdu: &Pdu,
    ) -> Result<(), NvmeofError> {
        if transport.prefers_split() {
            self.scratch.clear();
            if let Some(payload) = pdu.encode_split_into(&mut self.scratch) {
                return transport.send_split(&self.scratch, payload);
            }
        }
        self.send_pdu(transport, pdu)
    }

    /// Like [`send_pdu`], but treats ring congestion as transient: the
    /// recovery machinery's own traffic (aborts, heartbeats, degrade
    /// notices) must never escalate a full ring into a dead connection —
    /// the next deadline sweep simply tries again.
    ///
    /// [`send_pdu`]: ClientState::send_pdu
    fn send_pdu_lossy<T: Transport + ?Sized>(
        &mut self,
        transport: &T,
        pdu: &Pdu,
    ) -> Result<(), NvmeofError> {
        match self.send_pdu(transport, pdu) {
            Err(NvmeofError::RingFull) => Ok(()),
            other => other,
        }
    }

    /// Drains and executes the actions the recovery core emitted:
    /// sends, buffer moves, telemetry, completion/timeout surfacing.
    /// The buffer is reused, so the steady state allocates nothing.
    fn apply_actions<T: Transport + ?Sized>(&mut self, transport: &T) -> Result<(), NvmeofError> {
        if self.actions.is_empty() {
            return Ok(());
        }
        let mut actions = std::mem::take(&mut self.actions);
        let mut result = Ok(());
        for action in actions.drain(..) {
            if result.is_ok() {
                result = self.apply_action(transport, action);
            }
        }
        self.actions = actions;
        result
    }

    fn apply_action<T: Transport + ?Sized>(
        &mut self,
        transport: &T,
        action: Action,
    ) -> Result<(), NvmeofError> {
        match action {
            Action::Complete {
                wire_cid,
                completion,
            } => {
                self.finish_command(wire_cid, completion);
                Ok(())
            }
            Action::Resubmit {
                old_cid,
                new_cid,
                gseq,
            } => self.do_resubmit(transport, old_cid, new_cid, gseq),
            Action::SendAbort { cid, gseq } => {
                self.metrics.retries.inc();
                self.metrics.aborts_sent.inc();
                self.send_pdu_lossy(transport, &Pdu::Abort(Abort { cid, gseq }))
            }
            Action::GiveUp { wire_cid } => {
                self.do_give_up(wire_cid);
                Ok(())
            }
            Action::SendKeepAlive {
                seq,
                missed_previous,
            } => {
                if missed_previous {
                    self.metrics.keepalive_misses.inc();
                }
                self.send_pdu_lossy(transport, &Pdu::KeepAlive(KeepAlive { seq }))
            }
            Action::PeerDead => {
                self.metrics.keepalive_misses.inc();
                Err(NvmeofError::PeerDead)
            }
        }
    }

    /// Abandons the shared-memory payload path mid-flight: quarantines
    /// the channel, notifies the target, and executes the core's replay
    /// decisions for every in-flight shm-published command (writes with
    /// a retained payload resubmit under a fresh cid; zero-copy writes
    /// go through the abort round-trip).
    fn degrade<T: Transport + ?Sized>(&mut self, transport: &T) -> Result<(), NvmeofError> {
        let now = self.now();
        if !self.core.degrade(now, &mut self.actions) {
            return Ok(());
        }
        self.shm_active = false;
        self.metrics.degradations.inc();
        self.send_pdu_lossy(transport, &Pdu::Degrade(Degrade { reason: 1 }))?;
        self.apply_actions(transport)?;
        // Quarantine + sweep: no new leases succeed, and published-but-
        // unconsumed slots return to the pool (counted by the channel's
        // own `slots_reclaimed` stat).
        if let Some(ch) = self.payload.as_ref() {
            ch.quarantine();
            ch.reclaim();
        }
        Ok(())
    }

    /// Executes the core's resubmit decision: re-sends the command
    /// tracked under `old_cid` as `new_cid` (the core already retired
    /// the old cid). Frees the slot the original published — the target
    /// has provably not consumed it (abort said not-applied, or the
    /// channel is quarantined and swept anyway) — and replays the
    /// payload from the retained clone over the control path, since
    /// retries prefer the conservative route.
    fn do_resubmit<T: Transport + ?Sized>(
        &mut self,
        transport: &T,
        old_cid: u16,
        new_cid: u16,
        gseq: u32,
    ) -> Result<(), NvmeofError> {
        let Some(mut io) = self.pending.remove(&old_cid) else {
            return Ok(());
        };
        if let Some((slot, _len)) = io.published_slot.take() {
            if let Some(ch) = self.payload.as_ref() {
                ch.reclaim_slot(slot);
            }
        }
        io.cmd.cid = new_cid;
        io.cmd.gseq = gseq;
        // The fresh attempt refills the buffer from byte zero.
        io.got = 0;
        let data = match io.retry_payload.clone() {
            Some(data) if data.len() <= self.in_capsule_max => Some(DataRef::Inline(data)),
            Some(data) => {
                io.stashed_write = Some(data);
                None
            }
            None => None,
        };
        let cmd = io.cmd;
        self.pending.insert(new_cid, io);
        self.metrics.retries.inc();
        self.send_pdu_lossy(transport, &Pdu::CapsuleCmd(CapsuleCmd { cmd, data }))
    }

    /// Executes the core's give-up decision: the retry budget is spent,
    /// surface the command on the timed-out list.
    fn do_give_up(&mut self, cid: u16) {
        let Some(mut io) = self.pending.remove(&cid) else {
            return;
        };
        if let Some((slot, _len)) = io.published_slot.take() {
            if let Some(ch) = self.payload.as_ref() {
                ch.reclaim_slot(slot);
            }
        }
        self.timed_out.push(io.user_cid);
        self.metrics.timeouts.inc();
        self.metrics.inflight.sub(1);
    }

    /// Resolves wire cid `cid` with `completion` (the core has already
    /// retired the cid): settles telemetry and queues the [`IoResult`]
    /// under the user cid. Driven by [`Action::Complete`] from the
    /// in-order path, the held-completion release and the abort-ack
    /// "already applied" path alike.
    fn finish_command(&mut self, cid: u16, completion: NvmeCompletion) {
        let Some(mut pending) = self.pending.remove(&cid) else {
            return;
        };
        self.metrics.completions.inc();
        self.metrics.inflight.sub(1);
        if !completion.status.is_ok() {
            self.metrics.errors.inc();
        }
        self.metrics
            .latency(pending.cmd.opcode)
            .record_nanos(pending.submitted_at.elapsed());
        if let Some((_, len)) = pending.shm_data {
            self.metrics.zero_copy_bytes.add(u64::from(len));
            self.metrics.copies_avoided.inc();
        }
        self.completed.push(IoResult {
            cid: pending.user_cid,
            status: completion.status,
            data: std::mem::take(&mut pending.read_buf),
            shm: pending.shm_data.take(),
        });
    }

    /// Deadline + keep-alive pass, run once per poll. Costs one clock
    /// read when either feature is enabled and nothing when both are
    /// off; the core's deadline sweep only runs when its scalar
    /// watermark has actually expired.
    fn tick<T: Transport + ?Sized>(&mut self, transport: &T) -> Result<(), NvmeofError> {
        if self.opts.cmd_deadline.is_none() && self.opts.keepalive.is_none() {
            return Ok(());
        }
        let now = self.now();
        self.core.tick(now, &mut self.actions);
        self.apply_actions(transport)
    }
}

impl<T: Transport> Initiator<T> {
    /// Connects: performs the ICReq/ICResp handshake of Fig. 5. `payload`
    /// is the hot-plugged shared-memory channel, if locality detection
    /// found one.
    pub fn connect(
        transport: T,
        opts: InitiatorOptions,
        payload: Option<Arc<dyn PayloadChannel>>,
        timeout: Duration,
    ) -> Result<Self, NvmeofError> {
        let icreq = Pdu::ICReq(ICReq {
            pfv: 1,
            maxr2t: opts.maxr2t,
            af_caps: opts.af_caps,
            host_id: opts.host_id,
        });
        transport.send(icreq.encode())?;
        let deadline = Instant::now() + timeout;
        let mut ladder = WaitLadder::until(deadline, &opts.backoff);
        let resp = loop {
            let frame = match transport.try_recv()? {
                Some(frame) => Some(frame),
                None => match ladder.step() {
                    WaitStep::Expired => return Err(NvmeofError::timeout()),
                    WaitStep::Again => None,
                    WaitStep::Sleep(d) => transport.recv_timeout(d)?,
                },
            };
            let Some(frame) = frame else { continue };
            match Pdu::decode(frame) {
                Ok(Pdu::ICResp(r)) => break r,
                Ok(other) => {
                    return Err(NvmeofError::Protocol(format!(
                        "expected ICResp, got {other:?}"
                    )))
                }
                // A damaged handshake frame is dropped and the (idempotent)
                // ICReq re-asked; the target answers duplicates with the
                // same grant.
                Err(NvmeofError::CorruptFrame) | Err(NvmeofError::Codec(_)) => {
                    transport.send(icreq.encode())?;
                }
                Err(e) => return Err(e),
            }
        };
        let shm_active = resp.af_caps & AF_CAP_SHM != 0 && payload.is_some();
        let core = InitiatorRecovery::new(opts.recovery_config(), 0);
        Ok(Initiator {
            transport,
            state: ClientState {
                payload,
                opts,
                shm_active,
                in_capsule_max: resp.ioccsz as usize,
                pending: HashMap::new(),
                completed: Vec::new(),
                // Control PDUs top out well under this; sized so the
                // steady state never regrows it.
                scratch: BytesMut::with_capacity(256),
                metrics: InitiatorMetrics::new(),
                // Pre-sized so cold recovery paths (give-up, the abort
                // round-trip) don't pay a first-growth allocation when
                // they first fire in steady state.
                timed_out: Vec::with_capacity(16),
                epoch: Instant::now(),
                core,
                actions: Vec::with_capacity(16),
                poller: BusyPollController::new(),
            },
        })
    }

    /// Whether the shared-memory data path was negotiated (§4.2).
    pub fn shm_active(&self) -> bool {
        self.state.shm_active
    }

    /// Negotiated in-capsule data limit.
    pub fn in_capsule_max(&self) -> usize {
        self.state.in_capsule_max
    }

    /// Number of commands in flight.
    pub fn inflight(&self) -> usize {
        self.state.pending.len()
    }

    /// This connection's metric bundle (detached until registered into
    /// a [`oaf_telemetry::Registry`] scope).
    pub fn metrics(&self) -> &Arc<InitiatorMetrics> {
        &self.state.metrics
    }

    /// The current workload-adaptive busy-poll budget for `class` waits
    /// (§4.5, Fig. 10).
    pub fn busy_poll_budget(&self, class: PollClass) -> Duration {
        self.state.poller.budget(class)
    }

    /// Feeds one measured wait into the busy-poll controller, exactly as
    /// a live [`wait`](Self::wait) would — EWMA update plus the
    /// `busy_poll_*_us` telemetry gauges. This is the Fig. 10 replay
    /// interface: recorded per-direction wait traces can be played back
    /// to inspect which budgets the controller settles on.
    pub fn observe_wait_sample(&mut self, class: PollClass, wait: Duration) {
        self.state.observe_wait(class, wait);
    }

    /// Submits a write of `data` (must be `nlb * block_size` bytes).
    /// Returns the command id to match against completions.
    pub fn submit_write(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        data: Bytes,
    ) -> Result<u16, NvmeofError> {
        let cmd = NvmeCommand::write(0, nsid, slba, nlb);
        let publish_over_shm = self.state.opts.flow == FlowMode::InCapsule;
        self.submit_with_payload(cmd, data, publish_over_shm)
    }

    /// Shared payload-bearing submit path (writes and compares): picks
    /// the channel per the negotiated flow, retains a refcount clone of
    /// the payload for deadline-driven replay, and degrades to the TCP
    /// control path if the shm publish fails mid-flight.
    fn submit_with_payload(
        &mut self,
        cmd: NvmeCommand,
        data: Bytes,
        publish_over_shm: bool,
    ) -> Result<u16, NvmeofError> {
        let use_shm = self.state.shm_active
            && self
                .state
                .payload
                .as_ref()
                .is_some_and(|ch| data.len() <= ch.max_payload());
        let mut stashed = None;
        let mut published = None;
        let mut capsule_data = None;
        if use_shm && publish_over_shm {
            // Shared-memory flow control: payload parks in the region and
            // the command alone reaches the target (§4.4.2 swaps steps ①
            // and ③ of Fig. 7 and drops R2T + H2C).
            let ch = self
                .state
                .payload
                .as_ref()
                .expect("use_shm implies channel")
                .clone();
            match ch.publish(&data) {
                Ok((slot, len)) => {
                    published = Some((slot, len));
                    capsule_data = Some(DataRef::ShmSlot { slot, len });
                }
                // The slot region stalled or poisoned under us: abandon
                // it mid-flight and serve this (and everything after it)
                // over the control path.
                Err(_) => self.state.degrade(&self.transport)?,
            }
        }
        if capsule_data.is_none() && stashed.is_none() {
            if use_shm && !self.state.core.degraded() && !publish_over_shm {
                // Conservative flow over shm: wait for R2T, then publish
                // (Fig. 7's NVMe-oSHM flow).
                stashed = Some(data.clone());
            } else if data.len() <= self.state.in_capsule_max {
                capsule_data = Some(DataRef::Inline(data.clone()));
            } else {
                // Conservative flow: wait for R2T, then ship the payload
                // inline.
                stashed = Some(data.clone());
            }
        }
        let cmd = self
            .state
            .track(cmd, Vec::new(), stashed, false, DataNeed::None);
        let io = self.state.pending.get_mut(&cmd.cid).expect("just tracked");
        io.retry_payload = Some(data);
        io.published_slot = published;
        // The retained clone makes the command replayable after an abort
        // round-trip; a published slot makes it degrade-replayed.
        self.state.core.mark_replayable(cmd.cid);
        if published.is_some() {
            self.state.core.mark_published(cmd.cid);
        }
        self.state.send_pdu(
            &self.transport,
            &Pdu::CapsuleCmd(CapsuleCmd {
                cmd,
                data: capsule_data,
            }),
        )?;
        Ok(cmd.cid)
    }

    /// Leases a write buffer of `len` bytes from the connection's
    /// payload channel. With a negotiated shared-memory channel the
    /// buffer lives directly in the region (the Buffer Manager's
    /// co-design, §4.4.3) and [`Initiator::submit_write_lease`] publishes
    /// it with no copy; otherwise (or when `len` exceeds the slot size)
    /// it is a plain heap buffer and submission copies once, exactly
    /// like [`Initiator::submit_write`].
    pub fn alloc_write_buf(&self, len: usize) -> Result<WriteLease, NvmeofError> {
        if self.state.shm_active {
            if let Some(ch) = self.state.payload.as_ref() {
                if len <= ch.max_payload() {
                    return ch.alloc(len);
                }
            }
        }
        Ok(WriteLease::heap(len))
    }

    /// Submits a write whose payload was built in place in a lease from
    /// [`Initiator::alloc_write_buf`]. Zero-copy leases publish their
    /// slot directly (§4.4.3); heap fallback leases route through the
    /// regular copying write path.
    pub fn submit_write_lease(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        lease: WriteLease,
    ) -> Result<u16, NvmeofError> {
        if lease.is_zero_copy() {
            let bytes = lease.len() as u64;
            let ch = self
                .state
                .payload
                .as_ref()
                .ok_or_else(|| NvmeofError::Protocol("slot lease without channel".into()))?
                .clone();
            let (slot, len) = ch.publish_lease(lease)?;
            self.state.metrics.zero_copy_bytes.add(bytes);
            self.state.metrics.copies_avoided.inc();
            self.submit_write_published(nsid, slba, nlb, slot, len)
        } else {
            let buf = lease.into_heap().expect("non-slot lease is heap-backed");
            self.submit_write(nsid, slba, nlb, Bytes::from(buf))
        }
    }

    /// Submits a write whose payload is *already published* in the
    /// shared-memory channel at `(slot, len)` — the zero-copy path
    /// (§4.4.3): the application built its data directly in the region,
    /// so no bytes move here at all.
    pub fn submit_write_published(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        slot: u32,
        len: u32,
    ) -> Result<u16, NvmeofError> {
        if !self.state.shm_active {
            return Err(NvmeofError::Protocol(
                "zero-copy write requires a negotiated shared-memory channel".into(),
            ));
        }
        let cmd = self.state.track(
            NvmeCommand::write(0, nsid, slba, nlb),
            Vec::new(),
            None,
            false,
            DataNeed::None,
        );
        let cid = cmd.cid;
        // Zero-copy published writes retain no payload clone — they
        // cannot be replayed, only abort-resolved — but the slot is
        // remembered so degradation/abort can reclaim it.
        self.state
            .pending
            .get_mut(&cid)
            .expect("just tracked")
            .published_slot = Some((slot, len));
        self.state.core.mark_published(cid);
        self.state.send_pdu(
            &self.transport,
            &Pdu::CapsuleCmd(CapsuleCmd {
                cmd,
                data: Some(DataRef::ShmSlot { slot, len }),
            }),
        )?;
        Ok(cid)
    }

    /// Submits a read of `nlb` blocks; the buffer is sized from
    /// `expected_len` (namespace block size × nlb).
    pub fn submit_read(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        expected_len: usize,
    ) -> Result<u16, NvmeofError> {
        let cmd = self.state.track(
            NvmeCommand::read(0, nsid, slba, nlb),
            vec![0u8; expected_len],
            None,
            false,
            DataNeed::Bytes(expected_len as u32),
        );
        self.state.send_pdu(
            &self.transport,
            &Pdu::CapsuleCmd(CapsuleCmd { cmd, data: None }),
        )?;
        Ok(cmd.cid)
    }

    /// Submits a read whose payload the caller will *borrow* in place:
    /// if the target returns the data as a shared-memory slot reference,
    /// it is left unconsumed in the region and surfaced via
    /// [`IoResult::shm`]; call [`Initiator::consume_read_with`] on the
    /// completed result to access the bytes without a copy and free the
    /// slot (§4.4.3). Dropping the result without consuming it leaks the
    /// slot until the channel is torn down. Inline completions fall back
    /// to the buffered behavior of [`Initiator::submit_read`].
    pub fn submit_read_borrowed(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        expected_len: usize,
    ) -> Result<u16, NvmeofError> {
        let borrow = self.state.shm_active && self.state.payload.is_some();
        let read_buf = if borrow {
            Vec::new()
        } else {
            vec![0u8; expected_len]
        };
        // A borrowed read is satisfied by *any* arrival (a parked slot
        // reference or an inline fallback chunk); a buffered read owes
        // the caller the whole transfer.
        let need = if borrow {
            DataNeed::Any
        } else {
            DataNeed::Bytes(expected_len as u32)
        };
        let cmd = self.state.track(
            NvmeCommand::read(0, nsid, slba, nlb),
            read_buf,
            None,
            borrow,
            need,
        );
        self.state.send_pdu(
            &self.transport,
            &Pdu::CapsuleCmd(CapsuleCmd { cmd, data: None }),
        )?;
        Ok(cmd.cid)
    }

    /// Lends a completed read's payload to `f` without copying it out of
    /// the shared region (for borrowed reads that completed via a slot
    /// reference), freeing the slot afterwards. Results that carried
    /// their data inline simply lend the buffered bytes.
    pub fn consume_read_with(
        &self,
        res: &mut IoResult,
        f: &mut dyn FnMut(&[u8]),
    ) -> Result<(), NvmeofError> {
        match res.shm.take() {
            Some((slot, len)) => {
                let ch = self
                    .state
                    .payload
                    .as_ref()
                    .ok_or_else(|| NvmeofError::Protocol("shm read without channel".into()))?;
                ch.consume_with(slot, len, f)
            }
            None => {
                f(&res.data);
                Ok(())
            }
        }
    }

    /// Submits a compare: the target checks `data` against the stored
    /// blocks and completes with `CompareFailure` on mismatch. The
    /// payload rides whatever channel writes would (in-capsule, R2T, or
    /// shared-memory slot).
    pub fn submit_compare(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        data: Bytes,
    ) -> Result<u16, NvmeofError> {
        let cmd = NvmeCommand::compare(0, nsid, slba, nlb);
        // Compares publish over shm regardless of the write flow mode
        // whenever the payload fits a slot.
        self.submit_with_payload(cmd, data, true)
    }

    /// Submits a write-zeroes over `nlb` blocks (no payload transfer).
    pub fn submit_write_zeroes(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
    ) -> Result<u16, NvmeofError> {
        let cmd = self.state.track(
            NvmeCommand::write_zeroes(0, nsid, slba, nlb),
            Vec::new(),
            None,
            false,
            DataNeed::None,
        );
        self.state.send_pdu(
            &self.transport,
            &Pdu::CapsuleCmd(CapsuleCmd { cmd, data: None }),
        )?;
        Ok(cmd.cid)
    }

    /// Submits a Dataset Management deallocate (TRIM) over `nlb` blocks
    /// (no payload transfer). On a durable target store the range is
    /// journaled and reads back as zeroes.
    pub fn submit_trim(&mut self, nsid: u32, slba: u64, nlb: u32) -> Result<u16, NvmeofError> {
        let cmd = self.state.track(
            NvmeCommand::trim(0, nsid, slba, nlb),
            Vec::new(),
            None,
            false,
            DataNeed::None,
        );
        self.state.send_pdu(
            &self.transport,
            &Pdu::CapsuleCmd(CapsuleCmd { cmd, data: None }),
        )?;
        Ok(cmd.cid)
    }

    /// Submits a write with Force Unit Access: the completion is not
    /// posted until the payload is durable on the target's media.
    pub fn submit_write_fua(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        data: Bytes,
    ) -> Result<u16, NvmeofError> {
        let cmd = NvmeCommand::write_fua(0, nsid, slba, nlb);
        let publish_over_shm = self.state.opts.flow == FlowMode::InCapsule;
        self.submit_with_payload(cmd, data, publish_over_shm)
    }

    /// Submits a flush.
    pub fn submit_flush(&mut self, nsid: u32) -> Result<u16, NvmeofError> {
        let cmd = self.state.track(
            NvmeCommand::flush(0, nsid),
            Vec::new(),
            None,
            false,
            DataNeed::None,
        );
        self.state.send_pdu(
            &self.transport,
            &Pdu::CapsuleCmd(CapsuleCmd { cmd, data: None }),
        )?;
        Ok(cmd.cid)
    }

    /// Polls the transport once, draining every frame that is already
    /// ready in one batched pass (one Acquire/Release pair on ring
    /// transports); completed I/Os are moved to the internal completion
    /// list and returned. Also runs one deadline/keep-alive tick, so
    /// callers that only ever `poll` still get retries, timeouts and
    /// peer-death detection.
    pub fn poll(&mut self) -> Result<Vec<IoResult>, NvmeofError> {
        let mut out = Vec::new();
        self.poll_into(&mut out)?;
        Ok(out)
    }

    /// Like [`Initiator::poll`], but appends completions to `out`
    /// instead of returning a fresh vector, so a caller that retains its
    /// buffer keeps the completion path allocation-free. Returns how
    /// many completions were appended.
    pub fn poll_into(&mut self, out: &mut Vec<IoResult>) -> Result<usize, NvmeofError> {
        let transport = &self.transport;
        let state = &mut self.state;
        let mut err = None;
        transport.recv_batch(&mut |frame| {
            if err.is_none() {
                if let Err(e) = state.on_frame(transport, frame) {
                    err = Some(e);
                }
            }
        })?;
        if let Some(e) = err {
            return Err(e);
        }
        state.tick(transport)?;
        let n = state.completed.len();
        out.append(&mut state.completed);
        Ok(n)
    }

    /// Drains the user cids whose retry budget ran out since the last
    /// call. Callers driving the connection via [`Initiator::poll`]
    /// should check this; [`Initiator::wait`] consumes it internally and
    /// surfaces the awaited cid as [`NvmeofError::Timeout`].
    pub fn take_timed_out(&mut self) -> Vec<u16> {
        std::mem::take(&mut self.state.timed_out)
    }

    /// Polls until `cid` completes or `timeout` elapses, descending the
    /// spin→yield→sleep ladder while the transport stays quiet.
    ///
    /// The busy-poll phase is workload-adaptive (§4.5, Fig. 10): waits
    /// are classified by the awaited command's direction, observed wait
    /// times feed a per-direction EWMA, and the spin budget is the
    /// controller's current pick for that class — so reads converge to
    /// short budgets and writes to long ones.
    pub fn wait(&mut self, cid: u16, timeout: Duration) -> Result<IoResult, NvmeofError> {
        let started = Instant::now();
        let deadline = started + timeout;
        let class = match self.state.pending.get(&cid).map(|p| p.cmd.opcode) {
            Some(Opcode::Read) | Some(Opcode::Identify) | None => PollClass::Read,
            Some(_) => PollClass::Write,
        };
        let budget = self.state.poller.budget(class);
        let mut ladder = WaitLadder::until_with_spin(deadline, &self.state.opts.backoff, budget);
        let mut done = Vec::new();
        loop {
            done.extend(self.poll()?);
            if let Some(pos) = done.iter().position(|r| r.cid == cid) {
                let result = done.swap_remove(pos);
                self.state.completed.extend(done);
                self.state.observe_wait(class, started.elapsed());
                return Ok(result);
            }
            if let Some(pos) = self.state.timed_out.iter().position(|&c| c == cid) {
                self.state.timed_out.swap_remove(pos);
                self.state.completed.extend(done);
                return Err(NvmeofError::Timeout { cid: Some(cid) });
            }
            match ladder.step() {
                WaitStep::Expired => {
                    self.state.completed.extend(done);
                    return Err(NvmeofError::timeout());
                }
                WaitStep::Again => {}
                WaitStep::Sleep(d) => {
                    if let Some(frame) = self.transport.recv_timeout(d)? {
                        self.state.on_frame(&self.transport, Frame::Owned(frame))?;
                    }
                }
            }
        }
    }
}

impl ClientState {
    fn on_frame<T: Transport + ?Sized>(
        &mut self,
        transport: &T,
        frame: Frame<'_>,
    ) -> Result<(), NvmeofError> {
        let pdu = match Pdu::decode_frame(frame) {
            Ok(pdu) => pdu,
            // Bit damage is dropped, not fatal: the sender's own
            // deadline machinery re-covers the lost frame.
            Err(NvmeofError::CorruptFrame) | Err(NvmeofError::Codec(_)) => {
                self.metrics.corrupt_frames.inc();
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let now = self.now();
        // Any decoded traffic proves the peer alive.
        self.core.on_rx(now);
        match pdu {
            Pdu::R2T(r2t) => {
                let Some(pending) = self.pending.get_mut(&r2t.cid) else {
                    if self.core.is_retired_cid(r2t.cid) {
                        self.metrics.stale_frames.inc();
                        return Ok(());
                    }
                    return Err(NvmeofError::Protocol(format!(
                        "R2T for unknown cid {}",
                        r2t.cid
                    )));
                };
                // A duplicated command capsule can provoke a second R2T
                // after the stash was consumed; replay from the retained
                // payload (same bytes, same LBA — idempotent).
                let data = match pending
                    .stashed_write
                    .take()
                    .or_else(|| pending.retry_payload.clone())
                {
                    Some(data) => data,
                    None => return Err(NvmeofError::Protocol("R2T without stashed data".into())),
                };
                if (r2t.len as usize) < data.len() {
                    return Err(NvmeofError::Protocol(
                        "R2T grant smaller than payload".into(),
                    ));
                }
                let use_shm = self.shm_active
                    && self
                        .payload
                        .as_ref()
                        .is_some_and(|ch| data.len() <= ch.max_payload());
                let dref = if use_shm {
                    // Fig. 7 step ③/④: copy payload to shared memory, send
                    // the location as the H2C notification.
                    let ch = self.payload.as_ref().expect("channel").clone();
                    match ch.publish(&data) {
                        Ok((slot, len)) => {
                            self.pending
                                .get_mut(&r2t.cid)
                                .expect("still pending")
                                .published_slot = Some((slot, len));
                            self.core.mark_published(r2t.cid);
                            DataRef::ShmSlot { slot, len }
                        }
                        Err(_) => {
                            // Region died between grant and publish:
                            // degrade and ship the payload inline.
                            self.degrade(transport)?;
                            DataRef::Inline(data)
                        }
                    }
                } else {
                    DataRef::Inline(data)
                };
                match dref {
                    // Large inline payloads are split into pipelined
                    // sub-requests of `write_chunk` bytes (§4.5, Fig. 9).
                    // The grant covers the whole payload, so the chunks
                    // stream back-to-back without further R2Ts; only the
                    // final one carries the LAST flag and the target
                    // completes on it (or on the byte count).
                    DataRef::Inline(data)
                        if self.opts.write_chunk > 0 && data.len() > self.opts.write_chunk =>
                    {
                        let chunk = self.opts.write_chunk;
                        let total = data.len();
                        let mut off = 0usize;
                        let mut sent = 0u64;
                        while off < total {
                            let end = (off + chunk).min(total);
                            self.send_pdu_data(
                                transport,
                                &Pdu::H2CData(DataPdu {
                                    cid: r2t.cid,
                                    ttag: r2t.ttag,
                                    offset: off as u32,
                                    last: end == total,
                                    data: DataRef::Inline(data.slice(off..end)),
                                }),
                            )?;
                            off = end;
                            sent += 1;
                        }
                        self.metrics.chunks_per_io.record(sent);
                        self.metrics.h2c_chunks.add(sent);
                    }
                    dref => {
                        self.send_pdu_data(
                            transport,
                            &Pdu::H2CData(DataPdu {
                                cid: r2t.cid,
                                ttag: r2t.ttag,
                                offset: 0,
                                last: true,
                                data: dref,
                            }),
                        )?;
                        self.metrics.h2c_chunks.inc();
                    }
                }
            }
            Pdu::C2HData(d) => {
                if !self.pending.contains_key(&d.cid) {
                    if self.core.is_retired_cid(d.cid) {
                        self.metrics.stale_frames.inc();
                        // A stale shm reference must still be drained or
                        // its slot leaks until the next reclaim sweep.
                        if let DataRef::ShmSlot { slot, len } = d.data {
                            if let Some(ch) = self.payload.as_ref() {
                                let _ = ch.consume_with(slot, len, &mut |_| {});
                            }
                        }
                        return Ok(());
                    }
                    return Err(NvmeofError::Protocol(format!(
                        "C2H data for unknown cid {}",
                        d.cid
                    )));
                }
                let pending = self.pending.get_mut(&d.cid).expect("checked above");
                let off = d.offset as usize;
                let mut consume_failed = false;
                let mut arrival = None;
                match d.data {
                    DataRef::Inline(b) => {
                        let op = pending.cmd.opcode;
                        if op == Opcode::Identify || op == Opcode::Flush {
                            pending.got = b.len().max(1);
                            pending.read_buf = b.to_vec();
                            arrival = Some(DataArrival::All);
                        } else if pending.borrow {
                            // Borrowed read that the target answered
                            // inline anyway (e.g. payload exceeded the
                            // slot size): buffer it as a fallback.
                            if pending.read_buf.len() < off + b.len() {
                                pending.read_buf.resize(off + b.len(), 0);
                            }
                            pending.read_buf[off..off + b.len()].copy_from_slice(&b);
                            if off <= pending.got {
                                pending.got = pending.got.max(off + b.len());
                            }
                            arrival = Some(DataArrival::Chunk {
                                offset: d.offset,
                                len: b.len() as u32,
                            });
                        } else {
                            if off + b.len() > pending.read_buf.len() {
                                return Err(NvmeofError::Protocol(
                                    "C2H data beyond read buffer".into(),
                                ));
                            }
                            pending.read_buf[off..off + b.len()].copy_from_slice(&b);
                            if off <= pending.got {
                                pending.got = pending.got.max(off + b.len());
                            }
                            arrival = Some(DataArrival::Chunk {
                                offset: d.offset,
                                len: b.len() as u32,
                            });
                        }
                    }
                    DataRef::ShmSlot { slot, len } => {
                        if pending.borrow {
                            // Zero-copy: park the reference; the caller
                            // borrows the bytes via consume_read_with.
                            pending.shm_data = Some((slot, len));
                            arrival = Some(DataArrival::All);
                        } else {
                            let ch = self.payload.as_ref().ok_or_else(|| {
                                NvmeofError::Protocol("shm ref without channel".into())
                            })?;
                            if off + len as usize > pending.read_buf.len() {
                                return Err(NvmeofError::Protocol(
                                    "C2H shm data beyond read buffer".into(),
                                ));
                            }
                            consume_failed = ch
                                .consume(slot, len, &mut pending.read_buf[off..off + len as usize])
                                .is_err();
                            if !consume_failed {
                                if off <= pending.got {
                                    pending.got = pending.got.max(off + len as usize);
                                }
                                arrival = Some(DataArrival::Chunk {
                                    offset: d.offset,
                                    len,
                                });
                            }
                        }
                    }
                }
                if consume_failed {
                    // The region died with the payload inside: abandon
                    // shm and re-fetch this read over TCP.
                    self.degrade(transport)?;
                    self.core.retry(d.cid, now, &mut self.actions);
                    self.apply_actions(transport)?;
                } else if let Some(arrival) = arrival {
                    // The core advances its contiguous-prefix watermark
                    // and releases a held completion once the transfer
                    // is whole.
                    self.core.on_data(d.cid, arrival, now, &mut self.actions);
                    self.apply_actions(transport)?;
                }
            }
            Pdu::CapsuleResp(r) => {
                let wire_cid = r.completion.cid;
                // The core decides: hold a success completion that
                // overtook the data it vouches for (a reordering fabric
                // can do that — completing now would hand back a stale
                // buffer), or resolve the command.
                let handled =
                    self.core
                        .on_completion(wire_cid, r.completion, now, &mut self.actions);
                if !handled {
                    if self.core.is_retired_cid(wire_cid) {
                        self.metrics.stale_frames.inc();
                        return Ok(());
                    }
                    return Err(NvmeofError::Protocol(format!(
                        "completion for unknown cid {wire_cid}"
                    )));
                }
                self.apply_actions(transport)?;
            }
            Pdu::KeepAlive(ka) => {
                // Heartbeat from the peer: echo it.
                self.send_pdu_lossy(transport, &Pdu::KeepAliveAck(KeepAlive { seq: ka.seq }))?;
            }
            Pdu::KeepAliveAck(_) => {
                self.core.on_keepalive_ack();
            }
            Pdu::AbortAck(ack) => {
                // The core resolves the round-trip: applied → complete
                // with the status the target kept; not applied →
                // resubmit under a fresh cid (the payload replays from
                // the retained clone) or give up when nothing can
                // replay (zero-copy published writes).
                let handled = self.core.on_abort_ack(
                    ack.cid,
                    ack.applied,
                    ack.completion,
                    now,
                    &mut self.actions,
                );
                if !handled {
                    // Late or duplicate ack for a resolved round-trip.
                    self.metrics.stale_frames.inc();
                    return Ok(());
                }
                self.apply_actions(transport)?;
            }
            Pdu::Degrade(_) => {
                // Target-initiated degradation: abandon the shm path from
                // this side too (idempotent if we already did).
                self.degrade(transport)?;
            }
            Pdu::ICResp(_) => {
                // Duplicate handshake answer (the connect loop re-asks
                // after a corrupt frame); the grant was already taken.
                self.metrics.stale_frames.inc();
            }
            other => {
                return Err(NvmeofError::Protocol(format!(
                    "unexpected PDU at initiator: {other:?}"
                )))
            }
        }
        Ok(())
    }
}

impl<T: Transport> Initiator<T> {
    /// Blocking write convenience wrapper.
    pub fn write_blocking(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        data: Bytes,
        timeout: Duration,
    ) -> Result<(), NvmeofError> {
        let cid = self.submit_write(nsid, slba, nlb, data)?;
        let result = self.wait(cid, timeout)?;
        if result.status.is_ok() {
            Ok(())
        } else {
            Err(NvmeofError::Nvme(result.status))
        }
    }

    /// Blocking read convenience wrapper.
    pub fn read_blocking(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        expected_len: usize,
        timeout: Duration,
    ) -> Result<Vec<u8>, NvmeofError> {
        let cid = self.submit_read(nsid, slba, nlb, expected_len)?;
        let result = self.wait(cid, timeout)?;
        if result.status.is_ok() {
            Ok(result.data)
        } else {
            Err(NvmeofError::Nvme(result.status))
        }
    }

    /// Queries namespace geometry.
    pub fn identify(&mut self, nsid: u32, timeout: Duration) -> Result<IdentifyInfo, NvmeofError> {
        let cmd = self.state.track(
            NvmeCommand {
                cid: 0,
                opcode: Opcode::Identify,
                nsid,
                slba: 0,
                nlb: 0,
                fua: false,
                gseq: 0,
            },
            Vec::new(),
            None,
            false,
            // Identify data arrives as one inline chunk of unpredictable
            // size; any arrival satisfies it.
            DataNeed::Any,
        );
        self.state.send_pdu(
            &self.transport,
            &Pdu::CapsuleCmd(CapsuleCmd { cmd, data: None }),
        )?;
        let result = self.wait(cmd.cid, timeout)?;
        if !result.status.is_ok() {
            return Err(NvmeofError::Nvme(result.status));
        }
        IdentifyInfo::from_bytes(&result.data)
            .ok_or_else(|| NvmeofError::Codec("identify payload malformed".into()))
    }

    /// Sends a termination request.
    pub fn disconnect(&mut self) -> Result<(), NvmeofError> {
        self.state.send_pdu(
            &self.transport,
            &Pdu::TermReq(crate::pdu::TermReq { reason: 0 }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nvme::controller::Controller;
    use crate::nvme::namespace::Namespace;
    use crate::target::{spawn_target, TargetConfig};
    use crate::transport::MemTransport;

    const TIMEOUT: Duration = Duration::from_secs(5);

    fn setup(
        opts: InitiatorOptions,
        cfg: TargetConfig,
        channels: Option<(Arc<dyn PayloadChannel>, Arc<dyn PayloadChannel>)>,
    ) -> (Initiator<MemTransport>, crate::target::TargetHandle) {
        let (ct, tt) = MemTransport::pair();
        let mut ctrl = Controller::new();
        ctrl.add_namespace(Namespace::new(1, 4096, 4096));
        let (client_ch, target_ch) = match channels {
            Some((c, t)) => (Some(c), Some(t)),
            None => (None, None),
        };
        let handle = spawn_target(tt, ctrl, cfg, target_ch);
        let ini = Initiator::connect(ct, opts, client_ch, TIMEOUT).unwrap();
        (ini, handle)
    }

    #[test]
    fn end_to_end_write_read_inline() {
        let (mut ini, handle) = setup(InitiatorOptions::default(), TargetConfig::default(), None);
        assert!(!ini.shm_active());
        let data = Bytes::from(vec![0x42u8; 128 * 1024]);
        ini.write_blocking(1, 0, 32, data.clone(), TIMEOUT).unwrap();
        let back = ini.read_blocking(1, 0, 32, 128 * 1024, TIMEOUT).unwrap();
        assert_eq!(back, data);
        handle.shutdown().unwrap();
    }

    #[test]
    fn small_write_goes_in_capsule() {
        let (mut ini, handle) = setup(InitiatorOptions::default(), TargetConfig::default(), None);
        let data = Bytes::from(vec![7u8; 4096]);
        ini.write_blocking(1, 5, 1, data.clone(), TIMEOUT).unwrap();
        let back = ini.read_blocking(1, 5, 1, 4096, TIMEOUT).unwrap();
        assert_eq!(back, data);
        handle.shutdown().unwrap();
    }

    #[test]
    fn shm_negotiation_and_io() {
        use crate::payload::MailboxChannel;
        let (c, t) = MailboxChannel::pair(16);
        let opts = InitiatorOptions {
            af_caps: AF_CAP_SHM,
            flow: FlowMode::InCapsule,
            ..InitiatorOptions::default()
        };
        let (mut ini, handle) = setup(
            opts,
            TargetConfig::default(),
            Some((c as Arc<dyn PayloadChannel>, t as Arc<dyn PayloadChannel>)),
        );
        assert!(ini.shm_active());
        let data = Bytes::from(vec![0x99u8; 256 * 1024]);
        ini.write_blocking(1, 0, 64, data.clone(), TIMEOUT).unwrap();
        let back = ini.read_blocking(1, 0, 64, 256 * 1024, TIMEOUT).unwrap();
        assert_eq!(back, data);
        handle.shutdown().unwrap();
    }

    #[test]
    fn lease_write_and_borrowed_read() {
        use crate::payload::MailboxChannel;
        let (c, t) = MailboxChannel::pair(16);
        let opts = InitiatorOptions {
            af_caps: AF_CAP_SHM,
            flow: FlowMode::InCapsule,
            ..InitiatorOptions::default()
        };
        let (mut ini, handle) = setup(
            opts,
            TargetConfig::default(),
            Some((c as Arc<dyn PayloadChannel>, t as Arc<dyn PayloadChannel>)),
        );
        assert!(ini.shm_active());

        // Build the payload directly in a leased write buffer.
        let mut lease = ini.alloc_write_buf(64 * 1024).unwrap();
        for (i, b) in lease.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let expect: Vec<u8> = (0..64 * 1024).map(|i| (i % 251) as u8).collect();
        let cid = ini.submit_write_lease(1, 0, 16, lease).unwrap();
        assert!(ini.wait(cid, TIMEOUT).unwrap().status.is_ok());

        // Borrow the read payload in place instead of copying it out.
        let cid = ini.submit_read_borrowed(1, 0, 16, 64 * 1024).unwrap();
        let mut res = ini.wait(cid, TIMEOUT).unwrap();
        assert!(res.status.is_ok());
        assert!(res.shm.is_some(), "borrowed read should park a slot ref");
        assert!(res.data.is_empty());
        let mut seen = Vec::new();
        ini.consume_read_with(&mut res, &mut |b| seen.extend_from_slice(b))
            .unwrap();
        assert_eq!(seen, expect);
        assert_eq!(res.shm, None, "consumption clears the reference");
        handle.shutdown().unwrap();
    }

    #[test]
    fn queue_depth_pipelining() {
        let (mut ini, handle) = setup(InitiatorOptions::default(), TargetConfig::default(), None);
        let qd = 32;
        let mut cids = Vec::new();
        for i in 0..qd {
            let data = Bytes::from(vec![i as u8; 4096]);
            cids.push(ini.submit_write(1, i as u64, 1, data).unwrap());
        }
        assert_eq!(ini.inflight(), qd);
        let mut done = 0;
        let deadline = Instant::now() + TIMEOUT;
        while done < qd && Instant::now() < deadline {
            done += ini.poll().unwrap().len();
            std::thread::sleep(Duration::from_micros(100));
        }
        assert_eq!(done, qd);
        // Verify contents round-trip.
        for i in 0..qd {
            let back = ini.read_blocking(1, i as u64, 1, 4096, TIMEOUT).unwrap();
            assert!(back.iter().all(|&b| b == i as u8), "lba {i} corrupt");
        }
        handle.shutdown().unwrap();
    }

    #[test]
    fn compare_and_write_zeroes_end_to_end() {
        let (mut ini, handle) = setup(InitiatorOptions::default(), TargetConfig::default(), None);
        let data = Bytes::from(vec![0x7du8; 4096]);
        ini.write_blocking(1, 9, 1, data.clone(), TIMEOUT).unwrap();

        // Matching compare succeeds.
        let cid = ini.submit_compare(1, 9, 1, data).unwrap();
        assert!(ini.wait(cid, TIMEOUT).unwrap().status.is_ok());
        // Mismatch fails with CompareFailure.
        let cid = ini
            .submit_compare(1, 9, 1, Bytes::from(vec![0u8; 4096]))
            .unwrap();
        assert_eq!(
            ini.wait(cid, TIMEOUT).unwrap().status,
            Status::CompareFailure
        );

        // Write-zeroes clears the range; the compare against zeros now
        // passes.
        let cid = ini.submit_write_zeroes(1, 9, 1).unwrap();
        assert!(ini.wait(cid, TIMEOUT).unwrap().status.is_ok());
        let cid = ini
            .submit_compare(1, 9, 1, Bytes::from(vec![0u8; 4096]))
            .unwrap();
        assert!(ini.wait(cid, TIMEOUT).unwrap().status.is_ok());
        handle.shutdown().unwrap();
    }

    #[test]
    fn large_compare_uses_conservative_flow() {
        let (mut ini, handle) = setup(InitiatorOptions::default(), TargetConfig::default(), None);
        let data = Bytes::from(vec![0x3eu8; 64 * 1024]);
        ini.write_blocking(1, 32, 16, data.clone(), TIMEOUT)
            .unwrap();
        // 64 KiB > ioccsz: the compare payload goes via R2T + H2C.
        let cid = ini.submit_compare(1, 32, 16, data).unwrap();
        assert!(ini.wait(cid, TIMEOUT).unwrap().status.is_ok());
        handle.shutdown().unwrap();
    }

    #[test]
    fn identify_returns_geometry() {
        let (mut ini, handle) = setup(InitiatorOptions::default(), TargetConfig::default(), None);
        let info = ini.identify(1, TIMEOUT).unwrap();
        assert_eq!(info.block_size, 4096);
        assert_eq!(info.capacity_blocks, 4096);
        handle.shutdown().unwrap();
    }

    #[test]
    fn nvme_error_surfaces() {
        let (mut ini, handle) = setup(InitiatorOptions::default(), TargetConfig::default(), None);
        let err = ini.read_blocking(1, 10_000, 1, 4096, TIMEOUT).unwrap_err();
        assert!(matches!(err, NvmeofError::Nvme(Status::LbaOutOfRange)));
        handle.shutdown().unwrap();
    }

    #[test]
    fn flush_completes() {
        let (mut ini, handle) = setup(InitiatorOptions::default(), TargetConfig::default(), None);
        let cid = ini.submit_flush(1).unwrap();
        let r = ini.wait(cid, TIMEOUT).unwrap();
        assert!(r.status.is_ok());
        handle.shutdown().unwrap();
    }

    #[test]
    fn disconnect_stops_target() {
        let (mut ini, handle) = setup(InitiatorOptions::default(), TargetConfig::default(), None);
        ini.disconnect().unwrap();
        handle.shutdown().unwrap();
    }
}
