//! The NVMe-oF initiator (client).
//!
//! Implements the client half of the flows in Figs. 5–7: ICReq/ICResp
//! handshake with adaptive-fabric capability negotiation, asynchronous
//! command submission with completion polling (the SPDK-perf usage
//! pattern: a queue depth of in-flight commands serviced by one polling
//! thread), and all three write flow-control paths — inline in-capsule,
//! conservative R2T, and shared-memory in-capsule (§4.4.2).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::{Bytes, BytesMut};

use crate::error::NvmeofError;
use crate::metrics::InitiatorMetrics;
use crate::nvme::command::{NvmeCommand, Opcode};
use crate::nvme::completion::Status;
use crate::nvme::controller::IdentifyInfo;
use crate::payload::{PayloadChannel, WriteLease};
use crate::pdu::{CapsuleCmd, DataPdu, DataRef, ICReq, Pdu, AF_CAP_SHM};
use crate::transport::{Frame, Transport};
use crate::FlowMode;

/// Client-side connection options.
#[derive(Clone)]
pub struct InitiatorOptions {
    /// Host identity sent in the ICReq (locality matching, §4.2).
    pub host_id: u64,
    /// Adaptive-fabric capabilities requested.
    pub af_caps: u32,
    /// Write flow-control regime to use once shared memory is active.
    pub flow: FlowMode,
    /// Maximum R2Ts (informational).
    pub maxr2t: u32,
}

impl Default for InitiatorOptions {
    fn default() -> Self {
        InitiatorOptions {
            host_id: 0x4846_u64, // "HF": host-fabric default identity
            af_caps: 0,
            flow: FlowMode::Conservative,
            maxr2t: 16,
        }
    }
}

struct PendingIo {
    opcode: Opcode,
    read_buf: Vec<u8>,
    stashed_write: Option<Bytes>,
    /// Borrowed read (§4.4.3): leave shm payloads in the region and hand
    /// the `(slot, len)` reference to the caller instead of copying out.
    borrow: bool,
    /// Unconsumed shm payload reference for a borrowed read.
    shm_data: Option<(u32, u32)>,
    completion: Option<Status>,
    submitted_at: Instant,
}

/// Outcome of a completed I/O.
#[derive(Debug, PartialEq, Eq)]
pub struct IoResult {
    /// Command identifier.
    pub cid: u16,
    /// NVMe status.
    pub status: Status,
    /// Read data (empty for writes/flushes — and for borrowed reads
    /// whose payload is still parked in shared memory, see
    /// [`IoResult::shm`]).
    pub data: Vec<u8>,
    /// For borrowed reads over a shared-memory channel: the `(slot,
    /// len)` reference of the payload, still unconsumed in the region.
    /// Pass the result to [`Initiator::consume_read_with`] to borrow the
    /// bytes in place and free the slot.
    pub shm: Option<(u32, u32)>,
}

/// Per-connection client state, split from the transport so the batched
/// receive path can borrow the two disjointly: `recv_batch` holds the
/// transport shared while the frame callback mutates the state.
struct ClientState {
    payload: Option<Arc<dyn PayloadChannel>>,
    opts: InitiatorOptions,
    shm_active: bool,
    in_capsule_max: usize,
    next_cid: u16,
    pending: HashMap<u16, PendingIo>,
    completed: Vec<IoResult>,
    /// Reusable encode scratch: every control PDU is encoded here and
    /// handed to [`Transport::send_frame`], so the steady state
    /// allocates nothing on the send side.
    scratch: BytesMut,
    metrics: Arc<InitiatorMetrics>,
}

/// An NVMe-oF initiator over a transport.
pub struct Initiator<T: Transport> {
    transport: T,
    state: ClientState,
}

impl ClientState {
    fn alloc_cid(&mut self) -> u16 {
        // Linear probe around the u16 space; QD is far below 65k.
        loop {
            let cid = self.next_cid;
            self.next_cid = self.next_cid.wrapping_add(1).max(1);
            if !self.pending.contains_key(&cid) {
                return cid;
            }
        }
    }

    /// Registers a new in-flight command and bumps the queue-depth
    /// telemetry (the map insert reuses freed capacity in steady state).
    fn track(&mut self, cid: u16, opcode: Opcode, read_buf: Vec<u8>, stashed_write: Option<Bytes>) {
        self.pending.insert(
            cid,
            PendingIo {
                opcode,
                read_buf,
                stashed_write,
                borrow: false,
                shm_data: None,
                completion: None,
                submitted_at: Instant::now(),
            },
        );
        self.metrics.submitted.inc();
        self.metrics.inflight.add(1);
    }

    /// Encodes `pdu` into the connection scratch and sends the borrowed
    /// slice — the zero-allocation send path.
    fn send_pdu<T: Transport + ?Sized>(
        &mut self,
        transport: &T,
        pdu: &Pdu,
    ) -> Result<(), NvmeofError> {
        self.scratch.clear();
        pdu.encode_into(&mut self.scratch);
        transport.send_frame(&self.scratch)
    }
}

impl<T: Transport> Initiator<T> {
    /// Connects: performs the ICReq/ICResp handshake of Fig. 5. `payload`
    /// is the hot-plugged shared-memory channel, if locality detection
    /// found one.
    pub fn connect(
        transport: T,
        opts: InitiatorOptions,
        payload: Option<Arc<dyn PayloadChannel>>,
        timeout: Duration,
    ) -> Result<Self, NvmeofError> {
        transport.send(
            Pdu::ICReq(ICReq {
                pfv: 1,
                maxr2t: opts.maxr2t,
                af_caps: opts.af_caps,
                host_id: opts.host_id,
            })
            .encode(),
        )?;
        let deadline = Instant::now() + timeout;
        let resp = loop {
            match transport.recv_timeout(Duration::from_millis(1))? {
                Some(frame) => match Pdu::decode(frame)? {
                    Pdu::ICResp(r) => break r,
                    other => {
                        return Err(NvmeofError::Protocol(format!(
                            "expected ICResp, got {other:?}"
                        )))
                    }
                },
                None if Instant::now() >= deadline => return Err(NvmeofError::Timeout),
                None => {}
            }
        };
        let shm_active = resp.af_caps & AF_CAP_SHM != 0 && payload.is_some();
        Ok(Initiator {
            transport,
            state: ClientState {
                payload,
                opts,
                shm_active,
                in_capsule_max: resp.ioccsz as usize,
                next_cid: 1,
                pending: HashMap::new(),
                completed: Vec::new(),
                // Control PDUs top out well under this; sized so the
                // steady state never regrows it.
                scratch: BytesMut::with_capacity(256),
                metrics: InitiatorMetrics::new(),
            },
        })
    }

    /// Whether the shared-memory data path was negotiated (§4.2).
    pub fn shm_active(&self) -> bool {
        self.state.shm_active
    }

    /// Negotiated in-capsule data limit.
    pub fn in_capsule_max(&self) -> usize {
        self.state.in_capsule_max
    }

    /// Number of commands in flight.
    pub fn inflight(&self) -> usize {
        self.state.pending.len()
    }

    /// This connection's metric bundle (detached until registered into
    /// a [`oaf_telemetry::Registry`] scope).
    pub fn metrics(&self) -> &Arc<InitiatorMetrics> {
        &self.state.metrics
    }

    /// Submits a write of `data` (must be `nlb * block_size` bytes).
    /// Returns the command id to match against completions.
    pub fn submit_write(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        data: Bytes,
    ) -> Result<u16, NvmeofError> {
        let cid = self.state.alloc_cid();
        let cmd = NvmeCommand::write(cid, nsid, slba, nlb);
        let use_shm = self.state.shm_active
            && self
                .state
                .payload
                .as_ref()
                .is_some_and(|ch| data.len() <= ch.max_payload());
        let mut stashed = None;
        let capsule_data = if use_shm && self.state.opts.flow == FlowMode::InCapsule {
            // Shared-memory flow control: payload parks in the region and
            // the command alone reaches the target (§4.4.2 swaps steps ①
            // and ③ of Fig. 7 and drops R2T + H2C).
            let ch = self
                .state
                .payload
                .as_ref()
                .expect("use_shm implies channel");
            let (slot, len) = ch.publish(&data)?;
            Some(DataRef::ShmSlot { slot, len })
        } else if !use_shm && data.len() <= self.state.in_capsule_max {
            Some(DataRef::Inline(data.clone()))
        } else {
            // Conservative flow: wait for R2T, then ship the payload
            // (over shm if negotiated — Fig. 7's NVMe-oSHM flow — or
            // inline otherwise).
            stashed = Some(data.clone());
            None
        };
        self.state.track(cid, Opcode::Write, Vec::new(), stashed);
        self.state.send_pdu(
            &self.transport,
            &Pdu::CapsuleCmd(CapsuleCmd {
                cmd,
                data: capsule_data,
            }),
        )?;
        Ok(cid)
    }

    /// Leases a write buffer of `len` bytes from the connection's
    /// payload channel. With a negotiated shared-memory channel the
    /// buffer lives directly in the region (the Buffer Manager's
    /// co-design, §4.4.3) and [`Initiator::submit_write_lease`] publishes
    /// it with no copy; otherwise (or when `len` exceeds the slot size)
    /// it is a plain heap buffer and submission copies once, exactly
    /// like [`Initiator::submit_write`].
    pub fn alloc_write_buf(&self, len: usize) -> Result<WriteLease, NvmeofError> {
        if self.state.shm_active {
            if let Some(ch) = self.state.payload.as_ref() {
                if len <= ch.max_payload() {
                    return ch.alloc(len);
                }
            }
        }
        Ok(WriteLease::heap(len))
    }

    /// Submits a write whose payload was built in place in a lease from
    /// [`Initiator::alloc_write_buf`]. Zero-copy leases publish their
    /// slot directly (§4.4.3); heap fallback leases route through the
    /// regular copying write path.
    pub fn submit_write_lease(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        lease: WriteLease,
    ) -> Result<u16, NvmeofError> {
        if lease.is_zero_copy() {
            let bytes = lease.len() as u64;
            let ch = self
                .state
                .payload
                .as_ref()
                .ok_or_else(|| NvmeofError::Protocol("slot lease without channel".into()))?
                .clone();
            let (slot, len) = ch.publish_lease(lease)?;
            self.state.metrics.zero_copy_bytes.add(bytes);
            self.state.metrics.copies_avoided.inc();
            self.submit_write_published(nsid, slba, nlb, slot, len)
        } else {
            let buf = lease.into_heap().expect("non-slot lease is heap-backed");
            self.submit_write(nsid, slba, nlb, Bytes::from(buf))
        }
    }

    /// Submits a write whose payload is *already published* in the
    /// shared-memory channel at `(slot, len)` — the zero-copy path
    /// (§4.4.3): the application built its data directly in the region,
    /// so no bytes move here at all.
    pub fn submit_write_published(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        slot: u32,
        len: u32,
    ) -> Result<u16, NvmeofError> {
        if !self.state.shm_active {
            return Err(NvmeofError::Protocol(
                "zero-copy write requires a negotiated shared-memory channel".into(),
            ));
        }
        let cid = self.state.alloc_cid();
        let cmd = NvmeCommand::write(cid, nsid, slba, nlb);
        self.state.track(cid, Opcode::Write, Vec::new(), None);
        self.state.send_pdu(
            &self.transport,
            &Pdu::CapsuleCmd(CapsuleCmd {
                cmd,
                data: Some(DataRef::ShmSlot { slot, len }),
            }),
        )?;
        Ok(cid)
    }

    /// Submits a read of `nlb` blocks; the buffer is sized from
    /// `expected_len` (namespace block size × nlb).
    pub fn submit_read(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        expected_len: usize,
    ) -> Result<u16, NvmeofError> {
        let cid = self.state.alloc_cid();
        let cmd = NvmeCommand::read(cid, nsid, slba, nlb);
        self.state
            .track(cid, Opcode::Read, vec![0u8; expected_len], None);
        self.state.send_pdu(
            &self.transport,
            &Pdu::CapsuleCmd(CapsuleCmd { cmd, data: None }),
        )?;
        Ok(cid)
    }

    /// Submits a read whose payload the caller will *borrow* in place:
    /// if the target returns the data as a shared-memory slot reference,
    /// it is left unconsumed in the region and surfaced via
    /// [`IoResult::shm`]; call [`Initiator::consume_read_with`] on the
    /// completed result to access the bytes without a copy and free the
    /// slot (§4.4.3). Dropping the result without consuming it leaks the
    /// slot until the channel is torn down. Inline completions fall back
    /// to the buffered behavior of [`Initiator::submit_read`].
    pub fn submit_read_borrowed(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        expected_len: usize,
    ) -> Result<u16, NvmeofError> {
        let borrow = self.state.shm_active && self.state.payload.is_some();
        let read_buf = if borrow {
            Vec::new()
        } else {
            vec![0u8; expected_len]
        };
        let cid = self.state.alloc_cid();
        let cmd = NvmeCommand::read(cid, nsid, slba, nlb);
        self.state.track(cid, Opcode::Read, read_buf, None);
        if borrow {
            self.state
                .pending
                .get_mut(&cid)
                .expect("just tracked")
                .borrow = true;
        }
        self.state.send_pdu(
            &self.transport,
            &Pdu::CapsuleCmd(CapsuleCmd { cmd, data: None }),
        )?;
        Ok(cid)
    }

    /// Lends a completed read's payload to `f` without copying it out of
    /// the shared region (for borrowed reads that completed via a slot
    /// reference), freeing the slot afterwards. Results that carried
    /// their data inline simply lend the buffered bytes.
    pub fn consume_read_with(
        &self,
        res: &mut IoResult,
        f: &mut dyn FnMut(&[u8]),
    ) -> Result<(), NvmeofError> {
        match res.shm.take() {
            Some((slot, len)) => {
                let ch = self
                    .state
                    .payload
                    .as_ref()
                    .ok_or_else(|| NvmeofError::Protocol("shm read without channel".into()))?;
                ch.consume_with(slot, len, f)
            }
            None => {
                f(&res.data);
                Ok(())
            }
        }
    }

    /// Submits a compare: the target checks `data` against the stored
    /// blocks and completes with `CompareFailure` on mismatch. The
    /// payload rides whatever channel writes would (in-capsule, R2T, or
    /// shared-memory slot).
    pub fn submit_compare(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        data: Bytes,
    ) -> Result<u16, NvmeofError> {
        let cid = self.state.alloc_cid();
        let cmd = NvmeCommand::compare(cid, nsid, slba, nlb);
        let use_shm = self.state.shm_active
            && self
                .state
                .payload
                .as_ref()
                .is_some_and(|ch| data.len() <= ch.max_payload());
        let mut stashed = None;
        let capsule_data = if use_shm {
            let ch = self
                .state
                .payload
                .as_ref()
                .expect("use_shm implies channel");
            let (slot, len) = ch.publish(&data)?;
            Some(DataRef::ShmSlot { slot, len })
        } else if data.len() <= self.state.in_capsule_max {
            Some(DataRef::Inline(data.clone()))
        } else {
            stashed = Some(data.clone());
            None
        };
        self.state.track(cid, Opcode::Compare, Vec::new(), stashed);
        self.state.send_pdu(
            &self.transport,
            &Pdu::CapsuleCmd(CapsuleCmd {
                cmd,
                data: capsule_data,
            }),
        )?;
        Ok(cid)
    }

    /// Submits a write-zeroes over `nlb` blocks (no payload transfer).
    pub fn submit_write_zeroes(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
    ) -> Result<u16, NvmeofError> {
        let cid = self.state.alloc_cid();
        self.state.track(cid, Opcode::WriteZeroes, Vec::new(), None);
        self.state.send_pdu(
            &self.transport,
            &Pdu::CapsuleCmd(CapsuleCmd {
                cmd: NvmeCommand::write_zeroes(cid, nsid, slba, nlb),
                data: None,
            }),
        )?;
        Ok(cid)
    }

    /// Submits a flush.
    pub fn submit_flush(&mut self, nsid: u32) -> Result<u16, NvmeofError> {
        let cid = self.state.alloc_cid();
        self.state.track(cid, Opcode::Flush, Vec::new(), None);
        self.state.send_pdu(
            &self.transport,
            &Pdu::CapsuleCmd(CapsuleCmd {
                cmd: NvmeCommand::flush(cid, nsid),
                data: None,
            }),
        )?;
        Ok(cid)
    }

    /// Polls the transport once, draining every frame that is already
    /// ready in one batched pass (one Acquire/Release pair on ring
    /// transports); completed I/Os are moved to the internal completion
    /// list and returned.
    pub fn poll(&mut self) -> Result<Vec<IoResult>, NvmeofError> {
        let transport = &self.transport;
        let state = &mut self.state;
        let mut err = None;
        transport.recv_batch(&mut |frame| {
            if err.is_none() {
                if let Err(e) = state.on_frame(transport, frame) {
                    err = Some(e);
                }
            }
        })?;
        if let Some(e) = err {
            return Err(e);
        }
        Ok(std::mem::take(&mut state.completed))
    }

    /// Polls until `cid` completes or `timeout` elapses.
    pub fn wait(&mut self, cid: u16, timeout: Duration) -> Result<IoResult, NvmeofError> {
        let deadline = Instant::now() + timeout;
        let mut done = Vec::new();
        loop {
            done.extend(self.poll()?);
            if let Some(pos) = done.iter().position(|r| r.cid == cid) {
                let result = done.swap_remove(pos);
                self.state.completed.extend(done);
                return Ok(result);
            }
            if Instant::now() >= deadline {
                self.state.completed.extend(done);
                return Err(NvmeofError::Timeout);
            }
            if let Some(frame) = self.transport.recv_timeout(Duration::from_millis(1))? {
                self.state.on_frame(&self.transport, Frame::Owned(frame))?;
            }
        }
    }
}

impl ClientState {
    fn on_frame<T: Transport + ?Sized>(
        &mut self,
        transport: &T,
        frame: Frame<'_>,
    ) -> Result<(), NvmeofError> {
        match Pdu::decode_frame(frame)? {
            Pdu::R2T(r2t) => {
                let Some(pending) = self.pending.get_mut(&r2t.cid) else {
                    return Err(NvmeofError::Protocol(format!(
                        "R2T for unknown cid {}",
                        r2t.cid
                    )));
                };
                let Some(data) = pending.stashed_write.take() else {
                    return Err(NvmeofError::Protocol("R2T without stashed data".into()));
                };
                if (r2t.len as usize) < data.len() {
                    return Err(NvmeofError::Protocol(
                        "R2T grant smaller than payload".into(),
                    ));
                }
                let use_shm = self.shm_active
                    && self
                        .payload
                        .as_ref()
                        .is_some_and(|ch| data.len() <= ch.max_payload());
                let dref = if use_shm {
                    // Fig. 7 step ③/④: copy payload to shared memory, send
                    // the location as the H2C notification.
                    let ch = self.payload.as_ref().expect("channel");
                    let (slot, len) = ch.publish(&data)?;
                    DataRef::ShmSlot { slot, len }
                } else {
                    DataRef::Inline(data)
                };
                self.send_pdu(
                    transport,
                    &Pdu::H2CData(DataPdu {
                        cid: r2t.cid,
                        ttag: r2t.ttag,
                        offset: 0,
                        last: true,
                        data: dref,
                    }),
                )?;
            }
            Pdu::C2HData(d) => {
                let Some(pending) = self.pending.get_mut(&d.cid) else {
                    return Err(NvmeofError::Protocol(format!(
                        "C2H data for unknown cid {}",
                        d.cid
                    )));
                };
                let off = d.offset as usize;
                match d.data {
                    DataRef::Inline(b) => {
                        if pending.opcode == Opcode::Identify || pending.opcode == Opcode::Flush {
                            pending.read_buf = b.to_vec();
                        } else if pending.borrow {
                            // Borrowed read that the target answered
                            // inline anyway (e.g. payload exceeded the
                            // slot size): buffer it as a fallback.
                            if pending.read_buf.len() < off + b.len() {
                                pending.read_buf.resize(off + b.len(), 0);
                            }
                            pending.read_buf[off..off + b.len()].copy_from_slice(&b);
                        } else {
                            if off + b.len() > pending.read_buf.len() {
                                return Err(NvmeofError::Protocol(
                                    "C2H data beyond read buffer".into(),
                                ));
                            }
                            pending.read_buf[off..off + b.len()].copy_from_slice(&b);
                        }
                    }
                    DataRef::ShmSlot { slot, len } => {
                        if pending.borrow {
                            // Zero-copy: park the reference; the caller
                            // borrows the bytes via consume_read_with.
                            pending.shm_data = Some((slot, len));
                        } else {
                            let ch = self.payload.as_ref().ok_or_else(|| {
                                NvmeofError::Protocol("shm ref without channel".into())
                            })?;
                            if off + len as usize > pending.read_buf.len() {
                                return Err(NvmeofError::Protocol(
                                    "C2H shm data beyond read buffer".into(),
                                ));
                            }
                            ch.consume(slot, len, &mut pending.read_buf[off..off + len as usize])?;
                        }
                    }
                }
            }
            Pdu::CapsuleResp(r) => {
                let cid = r.completion.cid;
                let Some(mut pending) = self.pending.remove(&cid) else {
                    return Err(NvmeofError::Protocol(format!(
                        "completion for unknown cid {cid}"
                    )));
                };
                pending.completion = Some(r.completion.status);
                self.metrics.completions.inc();
                self.metrics.inflight.sub(1);
                if !r.completion.status.is_ok() {
                    self.metrics.errors.inc();
                }
                self.metrics
                    .latency(pending.opcode)
                    .record_nanos(pending.submitted_at.elapsed());
                if let Some((_, len)) = pending.shm_data {
                    self.metrics.zero_copy_bytes.add(u64::from(len));
                    self.metrics.copies_avoided.inc();
                }
                self.completed.push(IoResult {
                    cid,
                    status: r.completion.status,
                    data: std::mem::take(&mut pending.read_buf),
                    shm: pending.shm_data.take(),
                });
            }
            other => {
                return Err(NvmeofError::Protocol(format!(
                    "unexpected PDU at initiator: {other:?}"
                )))
            }
        }
        Ok(())
    }
}

impl<T: Transport> Initiator<T> {
    /// Blocking write convenience wrapper.
    pub fn write_blocking(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        data: Bytes,
        timeout: Duration,
    ) -> Result<(), NvmeofError> {
        let cid = self.submit_write(nsid, slba, nlb, data)?;
        let result = self.wait(cid, timeout)?;
        if result.status.is_ok() {
            Ok(())
        } else {
            Err(NvmeofError::Nvme(result.status))
        }
    }

    /// Blocking read convenience wrapper.
    pub fn read_blocking(
        &mut self,
        nsid: u32,
        slba: u64,
        nlb: u32,
        expected_len: usize,
        timeout: Duration,
    ) -> Result<Vec<u8>, NvmeofError> {
        let cid = self.submit_read(nsid, slba, nlb, expected_len)?;
        let result = self.wait(cid, timeout)?;
        if result.status.is_ok() {
            Ok(result.data)
        } else {
            Err(NvmeofError::Nvme(result.status))
        }
    }

    /// Queries namespace geometry.
    pub fn identify(&mut self, nsid: u32, timeout: Duration) -> Result<IdentifyInfo, NvmeofError> {
        let cid = self.state.alloc_cid();
        self.state.track(cid, Opcode::Identify, Vec::new(), None);
        self.state.send_pdu(
            &self.transport,
            &Pdu::CapsuleCmd(CapsuleCmd {
                cmd: NvmeCommand {
                    cid,
                    opcode: Opcode::Identify,
                    nsid,
                    slba: 0,
                    nlb: 0,
                },
                data: None,
            }),
        )?;
        let result = self.wait(cid, timeout)?;
        if !result.status.is_ok() {
            return Err(NvmeofError::Nvme(result.status));
        }
        IdentifyInfo::from_bytes(&result.data)
            .ok_or_else(|| NvmeofError::Codec("identify payload malformed".into()))
    }

    /// Sends a termination request.
    pub fn disconnect(&mut self) -> Result<(), NvmeofError> {
        self.state.send_pdu(
            &self.transport,
            &Pdu::TermReq(crate::pdu::TermReq { reason: 0 }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nvme::controller::Controller;
    use crate::nvme::namespace::Namespace;
    use crate::target::{spawn_target, TargetConfig};
    use crate::transport::MemTransport;

    const TIMEOUT: Duration = Duration::from_secs(5);

    fn setup(
        opts: InitiatorOptions,
        cfg: TargetConfig,
        channels: Option<(Arc<dyn PayloadChannel>, Arc<dyn PayloadChannel>)>,
    ) -> (Initiator<MemTransport>, crate::target::TargetHandle) {
        let (ct, tt) = MemTransport::pair();
        let mut ctrl = Controller::new();
        ctrl.add_namespace(Namespace::new(1, 4096, 4096));
        let (client_ch, target_ch) = match channels {
            Some((c, t)) => (Some(c), Some(t)),
            None => (None, None),
        };
        let handle = spawn_target(tt, ctrl, cfg, target_ch);
        let ini = Initiator::connect(ct, opts, client_ch, TIMEOUT).unwrap();
        (ini, handle)
    }

    #[test]
    fn end_to_end_write_read_inline() {
        let (mut ini, handle) = setup(InitiatorOptions::default(), TargetConfig::default(), None);
        assert!(!ini.shm_active());
        let data = Bytes::from(vec![0x42u8; 128 * 1024]);
        ini.write_blocking(1, 0, 32, data.clone(), TIMEOUT).unwrap();
        let back = ini.read_blocking(1, 0, 32, 128 * 1024, TIMEOUT).unwrap();
        assert_eq!(back, data);
        handle.shutdown().unwrap();
    }

    #[test]
    fn small_write_goes_in_capsule() {
        let (mut ini, handle) = setup(InitiatorOptions::default(), TargetConfig::default(), None);
        let data = Bytes::from(vec![7u8; 4096]);
        ini.write_blocking(1, 5, 1, data.clone(), TIMEOUT).unwrap();
        let back = ini.read_blocking(1, 5, 1, 4096, TIMEOUT).unwrap();
        assert_eq!(back, data);
        handle.shutdown().unwrap();
    }

    #[test]
    fn shm_negotiation_and_io() {
        use crate::payload::MailboxChannel;
        let (c, t) = MailboxChannel::pair(16);
        let opts = InitiatorOptions {
            af_caps: AF_CAP_SHM,
            flow: FlowMode::InCapsule,
            ..InitiatorOptions::default()
        };
        let (mut ini, handle) = setup(
            opts,
            TargetConfig::default(),
            Some((c as Arc<dyn PayloadChannel>, t as Arc<dyn PayloadChannel>)),
        );
        assert!(ini.shm_active());
        let data = Bytes::from(vec![0x99u8; 256 * 1024]);
        ini.write_blocking(1, 0, 64, data.clone(), TIMEOUT).unwrap();
        let back = ini.read_blocking(1, 0, 64, 256 * 1024, TIMEOUT).unwrap();
        assert_eq!(back, data);
        handle.shutdown().unwrap();
    }

    #[test]
    fn lease_write_and_borrowed_read() {
        use crate::payload::MailboxChannel;
        let (c, t) = MailboxChannel::pair(16);
        let opts = InitiatorOptions {
            af_caps: AF_CAP_SHM,
            flow: FlowMode::InCapsule,
            ..InitiatorOptions::default()
        };
        let (mut ini, handle) = setup(
            opts,
            TargetConfig::default(),
            Some((c as Arc<dyn PayloadChannel>, t as Arc<dyn PayloadChannel>)),
        );
        assert!(ini.shm_active());

        // Build the payload directly in a leased write buffer.
        let mut lease = ini.alloc_write_buf(64 * 1024).unwrap();
        for (i, b) in lease.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let expect: Vec<u8> = (0..64 * 1024).map(|i| (i % 251) as u8).collect();
        let cid = ini.submit_write_lease(1, 0, 16, lease).unwrap();
        assert!(ini.wait(cid, TIMEOUT).unwrap().status.is_ok());

        // Borrow the read payload in place instead of copying it out.
        let cid = ini.submit_read_borrowed(1, 0, 16, 64 * 1024).unwrap();
        let mut res = ini.wait(cid, TIMEOUT).unwrap();
        assert!(res.status.is_ok());
        assert!(res.shm.is_some(), "borrowed read should park a slot ref");
        assert!(res.data.is_empty());
        let mut seen = Vec::new();
        ini.consume_read_with(&mut res, &mut |b| seen.extend_from_slice(b))
            .unwrap();
        assert_eq!(seen, expect);
        assert_eq!(res.shm, None, "consumption clears the reference");
        handle.shutdown().unwrap();
    }

    #[test]
    fn queue_depth_pipelining() {
        let (mut ini, handle) = setup(InitiatorOptions::default(), TargetConfig::default(), None);
        let qd = 32;
        let mut cids = Vec::new();
        for i in 0..qd {
            let data = Bytes::from(vec![i as u8; 4096]);
            cids.push(ini.submit_write(1, i as u64, 1, data).unwrap());
        }
        assert_eq!(ini.inflight(), qd);
        let mut done = 0;
        let deadline = Instant::now() + TIMEOUT;
        while done < qd && Instant::now() < deadline {
            done += ini.poll().unwrap().len();
            std::thread::sleep(Duration::from_micros(100));
        }
        assert_eq!(done, qd);
        // Verify contents round-trip.
        for i in 0..qd {
            let back = ini.read_blocking(1, i as u64, 1, 4096, TIMEOUT).unwrap();
            assert!(back.iter().all(|&b| b == i as u8), "lba {i} corrupt");
        }
        handle.shutdown().unwrap();
    }

    #[test]
    fn compare_and_write_zeroes_end_to_end() {
        let (mut ini, handle) = setup(InitiatorOptions::default(), TargetConfig::default(), None);
        let data = Bytes::from(vec![0x7du8; 4096]);
        ini.write_blocking(1, 9, 1, data.clone(), TIMEOUT).unwrap();

        // Matching compare succeeds.
        let cid = ini.submit_compare(1, 9, 1, data).unwrap();
        assert!(ini.wait(cid, TIMEOUT).unwrap().status.is_ok());
        // Mismatch fails with CompareFailure.
        let cid = ini
            .submit_compare(1, 9, 1, Bytes::from(vec![0u8; 4096]))
            .unwrap();
        assert_eq!(
            ini.wait(cid, TIMEOUT).unwrap().status,
            Status::CompareFailure
        );

        // Write-zeroes clears the range; the compare against zeros now
        // passes.
        let cid = ini.submit_write_zeroes(1, 9, 1).unwrap();
        assert!(ini.wait(cid, TIMEOUT).unwrap().status.is_ok());
        let cid = ini
            .submit_compare(1, 9, 1, Bytes::from(vec![0u8; 4096]))
            .unwrap();
        assert!(ini.wait(cid, TIMEOUT).unwrap().status.is_ok());
        handle.shutdown().unwrap();
    }

    #[test]
    fn large_compare_uses_conservative_flow() {
        let (mut ini, handle) = setup(InitiatorOptions::default(), TargetConfig::default(), None);
        let data = Bytes::from(vec![0x3eu8; 64 * 1024]);
        ini.write_blocking(1, 32, 16, data.clone(), TIMEOUT)
            .unwrap();
        // 64 KiB > ioccsz: the compare payload goes via R2T + H2C.
        let cid = ini.submit_compare(1, 32, 16, data).unwrap();
        assert!(ini.wait(cid, TIMEOUT).unwrap().status.is_ok());
        handle.shutdown().unwrap();
    }

    #[test]
    fn identify_returns_geometry() {
        let (mut ini, handle) = setup(InitiatorOptions::default(), TargetConfig::default(), None);
        let info = ini.identify(1, TIMEOUT).unwrap();
        assert_eq!(info.block_size, 4096);
        assert_eq!(info.capacity_blocks, 4096);
        handle.shutdown().unwrap();
    }

    #[test]
    fn nvme_error_surfaces() {
        let (mut ini, handle) = setup(InitiatorOptions::default(), TargetConfig::default(), None);
        let err = ini.read_blocking(1, 10_000, 1, 4096, TIMEOUT).unwrap_err();
        assert!(matches!(err, NvmeofError::Nvme(Status::LbaOutOfRange)));
        handle.shutdown().unwrap();
    }

    #[test]
    fn flush_completes() {
        let (mut ini, handle) = setup(InitiatorOptions::default(), TargetConfig::default(), None);
        let cid = ini.submit_flush(1).unwrap();
        let r = ini.wait(cid, TIMEOUT).unwrap();
        assert!(r.status.is_ok());
        handle.shutdown().unwrap();
    }

    #[test]
    fn disconnect_stops_target() {
        let (mut ini, handle) = setup(InitiatorOptions::default(), TargetConfig::default(), None);
        ini.disconnect().unwrap();
        handle.shutdown().unwrap();
    }
}
