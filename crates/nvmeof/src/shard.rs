//! Thread-per-core sharded target runtime: multi-queue scale-out.
//!
//! [`spawn_multi`] runs *one* reactor over every connection — faithful to
//! a single SPDK poll group, but capped at one core. This module scales
//! the storage service out the way NVMe itself scales: N reactors
//! ([`spawn_sharded`]), each exclusively owning
//!
//! * a disjoint set of connections (steered at accept time, never
//!   migrated),
//! * its own controller view over the one storage service
//!   ([`Controller::share`] — the multi-queue model),
//! * its own telemetry [`Registry`] (merged into the caller's registry
//!   by prefix, [`Registry::merge`]),
//!
//! so that **no lock crosses cores on the data path**. The only
//! cross-shard structure is one bounded SPSC admin mailbox per shard
//! ([`crate::spsc`]) through which the control plane delivers
//! [`ShardCommand`]s; the reactor drains it between poll passes with a
//! wait-free `pop`, never a mutex.
//!
//! [`spawn_multi`]: crate::server::spawn_multi
//! [`Registry::merge`]: oaf_telemetry::Registry::merge

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::error::NvmeofError;
use crate::nvme::controller::Controller;
use crate::server::{ConnectionSpec, LiveConnection, Reactor};
use crate::spsc::{spsc, SpscSender};
use oaf_telemetry::{Counter, Gauge, Registry};

/// Admin commands a shard's reactor drains from its mailbox between
/// poll passes. This is the *only* way anything crosses into a running
/// shard.
pub enum ShardCommand {
    /// Adopt a fully built connection into the shard's set.
    Add(Box<LiveConnection>),
    /// Finish the current pass and exit the reactor loop.
    Shutdown,
}

/// Per-shard reactor telemetry, registered into the shard's own registry
/// under scope `reactor` (so the merged view shows
/// `shard<N>_reactor.*`).
#[derive(Default, Debug)]
pub struct ShardStats {
    /// Frames drained and executed by this shard.
    pub ops: Counter,
    /// Poll passes (idle or not) the reactor has run.
    pub polls: Counter,
    /// Admin commands drained from the mailbox.
    pub admin_cmds: Counter,
    /// Live connections currently owned by the shard.
    pub conns: Gauge,
}

impl ShardStats {
    fn register(&self, registry: &Registry) {
        let scope = registry.scope("reactor");
        scope.adopt_counter("ops", &self.ops);
        scope.adopt_counter("polls", &self.polls);
        scope.adopt_counter("admin_cmds", &self.admin_cmds);
        scope.adopt_gauge("conns", &self.conns);
    }
}

/// How connections are assigned to shards at accept/connect time.
/// Steering is deterministic and happens exactly once per connection —
/// connections never migrate, which is what makes exclusive ownership
/// (and the no-cross-shard-locks property) possible.
#[derive(Clone, Debug)]
pub enum Steering {
    /// Connection `i` goes to shard `i % shards`.
    RoundRobin,
    /// Connection `i` goes to shard `hash(i) % shards` (splitmix64
    /// finalizer — deterministic across runs).
    Hash,
    /// Connection `i` goes to shard `pins[i]`; connections past the end
    /// of the list fall back to round-robin.
    Pinned(Vec<usize>),
}

impl Steering {
    /// The shard connection number `conn` belongs to, in `0..shards`.
    pub fn shard_for(&self, conn: usize, shards: usize) -> usize {
        match self {
            Steering::RoundRobin => conn % shards,
            Steering::Hash => {
                // splitmix64 finalizer: good avalanche, no state.
                let mut z = (conn as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) as usize % shards
            }
            Steering::Pinned(pins) => match pins.get(conn) {
                Some(&s) => {
                    assert!(
                        s < shards,
                        "pinned shard {s} out of range ({shards} shards)"
                    );
                    s
                }
                None => conn % shards,
            },
        }
    }
}

/// Configuration for [`spawn_sharded`].
pub struct ShardConfig {
    /// Reactor threads to run. On a machine with fewer cores the shards
    /// oversubscribe; correctness is unaffected (each shard still owns
    /// its connections exclusively), only parallel speed-up is.
    pub shards: usize,
    /// Connection → shard assignment policy.
    pub steering: Steering,
    /// Capacity of each shard's admin mailbox.
    pub mailbox_depth: usize,
    /// Optional per-thread setup hook, called first thing on each shard
    /// thread with the shard index (CPU pinning, allocator tracking in
    /// tests, …).
    #[allow(clippy::type_complexity)]
    pub thread_hook: Option<Arc<dyn Fn(usize) + Send + Sync>>,
}

impl ShardConfig {
    /// `shards` reactors, round-robin steering, depth-64 mailboxes.
    pub fn new(shards: usize) -> Self {
        ShardConfig {
            shards,
            steering: Steering::RoundRobin,
            mailbox_depth: 64,
            thread_hook: None,
        }
    }
}

/// Handle to a running sharded target: per-shard mailboxes, stats and
/// registries, plus the join handles.
pub struct ShardedTarget {
    senders: Vec<SpscSender<ShardCommand>>,
    stats: Vec<Arc<ShardStats>>,
    shard_regs: Vec<Arc<Registry>>,
    stop: Arc<AtomicBool>,
    joins: Vec<std::thread::JoinHandle<Result<(), NvmeofError>>>,
    next_conn: usize,
    steering: Steering,
}

/// Spawns `cfg.shards` reactor threads, each exclusively owning the
/// connections steered to it and its own shared-storage controller view.
///
/// When `registry` is supplied, each shard's private registry is merged
/// into it under the prefix `shard<N>` before the shard starts — the
/// merged snapshot observes every shard live (shared handles, no
/// polling), while each shard records only into shard-local scopes.
pub fn spawn_sharded(
    mut controller: Controller,
    conns: Vec<ConnectionSpec>,
    cfg: ShardConfig,
    registry: Option<&Registry>,
) -> ShardedTarget {
    assert!(cfg.shards > 0, "need at least one shard");
    assert!(cfg.mailbox_depth > 0, "admin mailbox needs a slot");

    // Partition the initial connections by the steering policy. Global
    // connection numbering keeps telemetry scope names
    // (`target_conn<i>`) stable regardless of shard count.
    let mut per_shard: Vec<Vec<(usize, ConnectionSpec)>> =
        (0..cfg.shards).map(|_| Vec::new()).collect();
    let mut next_conn = 0;
    for spec in conns {
        let shard = cfg.steering.shard_for(next_conn, cfg.shards);
        per_shard[shard].push((next_conn, spec));
        next_conn += 1;
    }

    let stop = Arc::new(AtomicBool::new(false));
    let mut senders = Vec::with_capacity(cfg.shards);
    let mut stats = Vec::with_capacity(cfg.shards);
    let mut shard_regs = Vec::with_capacity(cfg.shards);
    let mut joins = Vec::with_capacity(cfg.shards);

    for (n, initial) in per_shard.into_iter().enumerate() {
        let shard_reg = Arc::new(Registry::new());
        let shard_stats = Arc::new(ShardStats::default());
        shard_stats.register(&shard_reg);

        // Every shard gets its own controller view over the one storage
        // service — the NVMe multi-queue model. No `&mut` is shared.
        let shard_controller = controller.share();

        let live: Vec<LiveConnection> = initial
            .into_iter()
            .map(|(i, spec)| LiveConnection::build(spec, i, Some(&shard_reg)))
            .collect();
        shard_stats.conns.set(live.len() as i64);

        let (tx, rx) = spsc::<ShardCommand>(cfg.mailbox_depth);
        let stop_flag = stop.clone();
        let thread_stats = shard_stats.clone();
        let hook = cfg.thread_hook.clone();
        let join = std::thread::Builder::new()
            .name(format!("oaf-shard{n}"))
            .spawn(move || {
                if let Some(hook) = hook {
                    hook(n);
                }
                let mut controller = shard_controller;
                let mut reactor = Reactor::new(live);
                let mut local_stop = false;
                // Unlike spawn_multi, a shard with zero live connections
                // keeps polling its mailbox: new connections arrive at
                // runtime.
                while !local_stop && !stop_flag.load(Ordering::Acquire) {
                    let mut progressed = false;
                    while let Some(cmd) = rx.pop() {
                        thread_stats.admin_cmds.inc();
                        progressed = true;
                        match cmd {
                            ShardCommand::Add(conn) => reactor.add(*conn),
                            ShardCommand::Shutdown => local_stop = true,
                        }
                    }
                    let drained = reactor.poll_pass(&mut controller)?;
                    if drained > 0 {
                        thread_stats.ops.add(drained as u64);
                        progressed = true;
                    }
                    thread_stats.polls.inc();
                    thread_stats.conns.set(reactor.alive_count() as i64);
                    reactor.idle_step(progressed);
                }
                Ok(())
            })
            .expect("spawn shard thread");

        if let Some(reg) = registry {
            reg.merge(&format!("shard{n}"), &shard_reg);
        }
        senders.push(tx);
        stats.push(shard_stats);
        shard_regs.push(shard_reg);
        joins.push(join);
    }

    ShardedTarget {
        senders,
        stats,
        shard_regs,
        stop,
        joins,
        next_conn,
        steering: cfg.steering,
    }
}

impl ShardedTarget {
    /// Number of reactor shards.
    pub fn shards(&self) -> usize {
        self.joins.len()
    }

    /// Shard `n`'s reactor telemetry.
    pub fn shard_stats(&self, n: usize) -> &Arc<ShardStats> {
        &self.stats[n]
    }

    /// Shard `n`'s private registry (already merged into the parent
    /// registry, when one was supplied).
    pub fn shard_registry(&self, n: usize) -> &Arc<Registry> {
        &self.shard_regs[n]
    }

    /// Frames executed by each shard so far — the load-balance witness
    /// (`max/min ≤ bound` in the scale tests).
    pub fn ops_per_shard(&self) -> Vec<u64> {
        self.stats.iter().map(|s| s.ops.get()).collect()
    }

    /// Steers `spec` to its shard (per the configured policy), builds
    /// the connection against that shard's registry, and delivers it
    /// through the shard's admin mailbox. Returns the shard index.
    ///
    /// Fails with [`NvmeofError::RingFull`] if the shard's mailbox is
    /// full (the reactor is wedged or shutdown already drained it).
    pub fn add_connection(&mut self, spec: ConnectionSpec) -> Result<usize, NvmeofError> {
        let conn_index = self.next_conn;
        self.next_conn += 1;
        let shard = self.steering.shard_for(conn_index, self.shards());
        let live = LiveConnection::build(spec, conn_index, Some(&self.shard_regs[shard]));
        self.senders[shard]
            .push(ShardCommand::Add(Box::new(live)))
            .map_err(|_| NvmeofError::RingFull)?;
        Ok(shard)
    }

    /// Requests shutdown on every shard (mailbox command + stop flag)
    /// and joins all reactor threads, returning the first error any
    /// shard hit.
    pub fn shutdown(mut self) -> Result<(), NvmeofError> {
        for tx in &self.senders {
            // Best effort: the stop flag below covers a full mailbox.
            let _ = tx.push(ShardCommand::Shutdown);
        }
        self.stop.store(true, Ordering::Release);
        let mut first_err = None;
        for join in self.joins.drain(..) {
            match join.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => first_err = first_err.or(Some(e)),
                Err(_) => {
                    first_err =
                        first_err.or(Some(NvmeofError::Protocol("shard thread panicked".into())))
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::initiator::{Initiator, InitiatorOptions};
    use crate::nvme::namespace::Namespace;
    use crate::target::TargetConfig;
    use crate::transport::MemTransport;
    use bytes::Bytes;
    use std::time::Duration;

    const TIMEOUT: Duration = Duration::from_secs(5);

    fn controller() -> Controller {
        let mut c = Controller::new();
        c.add_namespace(Namespace::new(1, 4096, 2048));
        c
    }

    fn spec(t: MemTransport) -> ConnectionSpec {
        ConnectionSpec {
            transport: Box::new(t),
            cfg: TargetConfig::default(),
            payload: None,
            scope: None,
        }
    }

    #[test]
    fn steering_policies_are_deterministic_and_in_range() {
        for shards in 1..6 {
            for conn in 0..32 {
                assert_eq!(Steering::RoundRobin.shard_for(conn, shards), conn % shards);
                let h = Steering::Hash.shard_for(conn, shards);
                assert_eq!(h, Steering::Hash.shard_for(conn, shards));
                assert!(h < shards);
            }
        }
        let pinned = Steering::Pinned(vec![2, 0, 1]);
        assert_eq!(pinned.shard_for(0, 3), 2);
        assert_eq!(pinned.shard_for(1, 3), 0);
        assert_eq!(pinned.shard_for(2, 3), 1);
        assert_eq!(pinned.shard_for(5, 3), 2); // past the pins: round-robin
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pin_panics() {
        let _ = Steering::Pinned(vec![7]).shard_for(0, 2);
    }

    #[test]
    fn sharded_target_serves_clients_on_distinct_shards() {
        let (c1, t1) = MemTransport::pair();
        let (c2, t2) = MemTransport::pair();
        let registry = Registry::new();
        let target = spawn_sharded(
            controller(),
            vec![spec(t1), spec(t2)],
            ShardConfig::new(2),
            Some(&registry),
        );
        let mut a = Initiator::connect(c1, InitiatorOptions::default(), None, TIMEOUT).unwrap();
        let mut b = Initiator::connect(c2, InitiatorOptions::default(), None, TIMEOUT).unwrap();

        // One storage service behind both shards: a write through shard
        // 0's connection is visible through shard 1's.
        a.write_blocking(1, 0, 1, Bytes::from(vec![0xaa; 4096]), TIMEOUT)
            .unwrap();
        let via_b = b.read_blocking(1, 0, 1, 4096, TIMEOUT).unwrap();
        assert!(via_b.iter().all(|&x| x == 0xaa));

        // Both shards did real work, and the merged registry shows the
        // per-shard split under prefixed scopes.
        a.disconnect().unwrap();
        b.disconnect().unwrap();
        let ops = target.ops_per_shard();
        assert!(ops[0] > 0 && ops[1] > 0, "ops split: {ops:?}");
        let snap = registry.snapshot();
        assert!(snap.counter("shard0_reactor", "ops") > 0);
        assert!(snap.counter("shard1_reactor", "ops") > 0);
        assert!(snap.counter("shard0_target_conn0", "ops") > 0);
        assert!(snap.counter("shard1_target_conn1", "ops") > 0);
        target.shutdown().unwrap();
    }

    #[test]
    fn connection_added_at_runtime_lands_on_its_steered_shard() {
        let registry = Registry::new();
        let mut target = spawn_sharded(
            controller(),
            Vec::new(),
            ShardConfig::new(2),
            Some(&registry),
        );
        let (c1, t1) = MemTransport::pair();
        let (c2, t2) = MemTransport::pair();
        assert_eq!(target.add_connection(spec(t1)).unwrap(), 0);
        assert_eq!(target.add_connection(spec(t2)).unwrap(), 1);
        let mut a = Initiator::connect(c1, InitiatorOptions::default(), None, TIMEOUT).unwrap();
        let mut b = Initiator::connect(c2, InitiatorOptions::default(), None, TIMEOUT).unwrap();
        a.write_blocking(1, 3, 1, Bytes::from(vec![0x42; 4096]), TIMEOUT)
            .unwrap();
        assert!(b
            .read_blocking(1, 3, 1, 4096, TIMEOUT)
            .unwrap()
            .iter()
            .all(|&x| x == 0x42));
        a.disconnect().unwrap();
        b.disconnect().unwrap();
        assert!(target.shard_stats(0).admin_cmds.get() >= 1);
        assert!(target.shard_stats(1).admin_cmds.get() >= 1);
        target.shutdown().unwrap();
    }

    #[test]
    fn shard_survives_sibling_client_vanishing() {
        let (c1, t1) = MemTransport::pair();
        let (c2, t2) = MemTransport::pair();
        let target = spawn_sharded(
            controller(),
            vec![spec(t1), spec(t2)],
            ShardConfig::new(2),
            None,
        );
        let a = Initiator::connect(c1, InitiatorOptions::default(), None, TIMEOUT).unwrap();
        let mut b = Initiator::connect(c2, InitiatorOptions::default(), None, TIMEOUT).unwrap();
        drop(a); // shard 0's client vanishes without a TermReq
        for i in 0..8 {
            b.write_blocking(1, i, 1, Bytes::from(vec![i as u8; 4096]), TIMEOUT)
                .unwrap();
        }
        b.disconnect().unwrap();
        target.shutdown().unwrap();
    }

    #[test]
    fn thread_hook_runs_once_per_shard() {
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        let mut cfg = ShardConfig::new(3);
        cfg.thread_hook = Some(Arc::new(move |n| {
            seen2.lock().unwrap().push(n);
        }));
        let target = spawn_sharded(controller(), Vec::new(), cfg, None);
        target.shutdown().unwrap();
        let mut order = seen.lock().unwrap().clone();
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2]);
    }
}
