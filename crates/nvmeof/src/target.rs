//! The NVMe-oF target (storage service).
//!
//! [`TargetConnection`] is the per-connection protocol state machine as a
//! pure function — frames in, frames out — which keeps every flow
//! (handshake, in-capsule write, conservative R2T write, inline-chunked
//! read, shared-memory read/write) unit-testable without threads.
//! [`spawn_target`] wraps it in the polled reactor thread the examples and
//! integration tests run, mirroring SPDK's poll-mode target design (§2.2).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::{Bytes, BytesMut};

use crate::error::NvmeofError;
use crate::metrics::TargetMetrics;
use crate::nvme::command::{NvmeCommand, Opcode};
use crate::nvme::completion::{NvmeCompletion, Status};
use crate::nvme::controller::Controller;
use crate::nvme::namespace::{BarrierPoll, BarrierTicket};
use crate::payload::PayloadChannel;
use crate::pdu::{
    AbortAck, CapsuleCmd, CapsuleResp, DataPdu, DataRef, Degrade, ICResp, KeepAlive, Pdu,
    AF_CAP_SHM, AF_CAP_SHM_INCAPSULE, AF_CAP_ZERO_COPY, R2T,
};
use crate::recovery::{AbortDecision, TargetRecovery};
use crate::transport::{Frame, Transport};

/// Target-side configuration.
#[derive(Clone, Debug)]
pub struct TargetConfig {
    /// Largest in-capsule write the target accepts (stock NVMe/TCP: 8 KiB,
    /// §4.4.2).
    pub in_capsule_max: usize,
    /// Chunk size for inline C2H read data (stock NVMe/TCP: 128 KiB,
    /// §4.5).
    pub read_chunk: usize,
    /// Adaptive-fabric capabilities this target offers.
    pub af_caps: u32,
    /// Identity advertised in the ICResp (locality matching).
    pub target_id: u64,
}

impl Default for TargetConfig {
    fn default() -> Self {
        TargetConfig {
            in_capsule_max: 8 * 1024,
            read_chunk: 128 * 1024,
            af_caps: AF_CAP_SHM | AF_CAP_SHM_INCAPSULE | AF_CAP_ZERO_COPY,
            target_id: 1,
        }
    }
}

struct PendingWrite {
    cmd: NvmeCommand,
    buf: Vec<u8>,
    received: usize,
}

/// A barrier-class completion parked on an offloaded sync ticket: the
/// command executed (journaled and applied), its `fdatasync` is in
/// flight on the store's sync worker, and the response capsule is held
/// until [`TargetConnection::poll_parked`] sees the ticket resolve.
struct ParkedBarrier {
    nsid: u32,
    gseq: u32,
    comp: NvmeCompletion,
    ticket: BarrierTicket,
    since: Instant,
    /// An Abort for this command arrived while parked; the ack
    /// (`applied = true`, with the final completion) is owed at release.
    abort_requested: bool,
}

/// Per-connection protocol state machine.
pub struct TargetConnection {
    cfg: TargetConfig,
    handshaken: bool,
    shm_active: bool,
    /// Capability grant of the first handshake, so duplicate ICReqs
    /// (the client re-asks after a corrupted ICResp) are re-answered
    /// identically instead of erroring.
    granted: u32,
    next_ttag: u16,
    pending_writes: std::collections::HashMap<u16, PendingWrite>,
    payload: Option<Arc<dyn PayloadChannel>>,
    terminated: bool,
    metrics: Arc<TargetMetrics>,
    /// The pure recovery decision core: executed-completion ring (abort
    /// answering), aborted-cid ring (late-duplicate dropping) and retired
    /// ttag ring, all matched on `(cid, gseq)` so recycled cids can never
    /// be confused with an old incarnation. Shared verbatim with the
    /// `oaf-mc` model checker.
    core: TargetRecovery,
    /// Barrier completions parked on in-flight sync tickets, in
    /// submission order. Released (in order) by
    /// [`TargetConnection::poll_parked`].
    parked: VecDeque<ParkedBarrier>,
}

impl TargetConnection {
    /// Creates the state machine. `payload` is the shared-memory channel
    /// the helper process hot-plugged, if any.
    pub fn new(cfg: TargetConfig, payload: Option<Arc<dyn PayloadChannel>>) -> Self {
        TargetConnection {
            cfg,
            handshaken: false,
            shm_active: false,
            granted: 0,
            next_ttag: 1,
            pending_writes: std::collections::HashMap::new(),
            payload,
            terminated: false,
            metrics: TargetMetrics::new(),
            core: TargetRecovery::new(),
            // Pre-sized far above any sane barrier queue depth so the
            // steady-state park/release cycle never allocates.
            parked: VecDeque::with_capacity(64),
        }
    }

    /// Whether the peer requested termination.
    pub fn terminated(&self) -> bool {
        self.terminated
    }

    /// This connection's metric bundle (detached until registered into
    /// a [`oaf_telemetry::Registry`] scope).
    pub fn metrics(&self) -> &Arc<TargetMetrics> {
        &self.metrics
    }

    /// Counts an executed command and emits its response capsule, and
    /// remembers the completion so a racing Abort can be answered
    /// `applied = true` instead of letting the client double-apply.
    fn finish(&mut self, gseq: u32, comp: NvmeCompletion, out: &mut Vec<Pdu>) {
        self.metrics.ops.inc();
        if !comp.status.is_ok() {
            self.metrics.errors.inc();
        }
        self.metrics.responses.inc();
        self.core.on_executed(comp.cid, gseq, comp);
        out.push(Pdu::CapsuleResp(CapsuleResp { completion: comp }));
    }

    /// Posts a completion — immediately, or parked on its sync ticket
    /// when the store handed one back (the command is applied, its
    /// `fdatasync` is in flight on the sync worker). Parking keeps the
    /// reactor free to serve other commands while the sync runs;
    /// [`poll_parked`](TargetConnection::poll_parked) releases held
    /// completions in order once their tickets resolve.
    fn finish_or_park(
        &mut self,
        nsid: u32,
        gseq: u32,
        comp: NvmeCompletion,
        ticket: Option<BarrierTicket>,
        out: &mut Vec<Pdu>,
    ) {
        match ticket {
            Some(ticket) if comp.status.is_ok() => {
                self.metrics.barriers_parked.inc();
                self.parked.push_back(ParkedBarrier {
                    nsid,
                    gseq,
                    comp,
                    ticket,
                    since: Instant::now(),
                    abort_requested: false,
                });
            }
            _ => self.finish(gseq, comp, out),
        }
    }

    /// Releases parked barrier completions whose sync tickets resolved,
    /// oldest first, stopping at the first still-pending ticket so
    /// responses stay in submission order. A failed sync releases its
    /// completion as a device error — exactly the parked set covered by
    /// the failing `fdatasync`, nothing before or after. Returns how
    /// many completions were released (progress for the reactor's idle
    /// policy).
    pub fn poll_parked(&mut self, ctrl: &Controller, out: &mut Vec<Pdu>) -> usize {
        let mut released = 0;
        while let Some(front) = self.parked.front() {
            let verdict = ctrl.poll_barrier(front.nsid, front.ticket);
            if verdict == BarrierPoll::Pending {
                break;
            }
            let p = self.parked.pop_front().expect("front exists");
            let comp = match verdict {
                BarrierPoll::Durable => p.comp,
                BarrierPoll::Failed => NvmeCompletion::error(p.comp.cid, Status::InternalError),
                BarrierPoll::Pending => unreachable!("loop breaks on Pending"),
            };
            self.metrics.barrier_park_ns.record_nanos(p.since.elapsed());
            self.finish(p.gseq, comp, out);
            if p.abort_requested {
                // The abort that raced the parked barrier gets its
                // deferred answer: the command *was* applied, with this
                // final (possibly error) completion.
                self.metrics.aborts_handled.inc();
                out.push(Pdu::AbortAck(AbortAck {
                    cid: comp.cid,
                    applied: true,
                    completion: comp,
                }));
            }
            released += 1;
        }
        released
    }

    /// How many barrier completions are currently parked on in-flight
    /// sync tickets.
    pub fn parked_barriers(&self) -> usize {
        self.parked.len()
    }

    /// Drains an unconsumed shm payload reference from a dropped frame so
    /// its slot returns to the pool instead of leaking.
    fn drain_stale_ref(&self, data: &DataRef) {
        if let DataRef::ShmSlot { slot, len } = *data {
            if let Some(ch) = self.payload.as_ref() {
                let _ = ch.consume_with(slot, len, &mut |_| {});
            }
        }
    }

    /// Abandons the shared-memory payload path from the target side
    /// (slot publish/consume failed): tells the client, quarantines the
    /// region so neither side leases from it again, and sweeps this
    /// side's published slots back to the pool.
    fn degrade_self(&mut self, out: &mut Vec<Pdu>) {
        if !self.shm_active {
            return;
        }
        self.shm_active = false;
        out.push(Pdu::Degrade(Degrade { reason: 2 }));
        if let Some(ch) = self.payload.as_ref() {
            ch.quarantine();
            ch.reclaim();
        }
    }

    /// Whether the shared-memory data path was negotiated.
    pub fn shm_active(&self) -> bool {
        self.shm_active
    }

    /// Processes one incoming frame against `ctrl`, returning response
    /// frames to send. Convenience wrapper over [`TargetConnection::handle`]
    /// that encodes each response into a fresh buffer.
    pub fn on_frame(
        &mut self,
        frame: Bytes,
        ctrl: &mut Controller,
    ) -> Result<Vec<Bytes>, NvmeofError> {
        let mut out = Vec::new();
        self.handle(Frame::Owned(frame), ctrl, &mut out)?;
        Ok(out.iter().map(Pdu::encode).collect())
    }

    /// Processes one incoming frame against `ctrl`, appending response
    /// PDUs to `out` — the allocation-free reactor path: the caller owns
    /// a reusable `out` vector and encodes each response into its own
    /// scratch buffer.
    pub fn handle(
        &mut self,
        frame: Frame<'_>,
        ctrl: &mut Controller,
        out: &mut Vec<Pdu>,
    ) -> Result<(), NvmeofError> {
        let pdu = match Pdu::decode_frame(frame) {
            Ok(pdu) => pdu,
            // Bit damage on the fabric: drop the frame and let the
            // client's deadline machinery re-cover the loss.
            Err(NvmeofError::CorruptFrame) | Err(NvmeofError::Codec(_)) => {
                self.metrics.corrupt_frames.inc();
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        match pdu {
            Pdu::ICReq(req) => {
                if self.handshaken {
                    // The client re-asks when its ICResp arrived damaged;
                    // re-answer with the grant of the first handshake.
                    out.push(Pdu::ICResp(ICResp {
                        pfv: req.pfv,
                        ioccsz: self.cfg.in_capsule_max as u32,
                        af_caps: self.granted,
                        target_id: self.cfg.target_id,
                    }));
                    return Ok(());
                }
                self.handshaken = true;
                // Grant the intersection of requested and offered caps;
                // the data path additionally needs a hot-plugged channel.
                let mut granted = req.af_caps & self.cfg.af_caps;
                if self.payload.is_none() {
                    granted = 0;
                }
                self.granted = granted;
                self.shm_active = granted & AF_CAP_SHM != 0;
                out.push(Pdu::ICResp(ICResp {
                    pfv: req.pfv,
                    ioccsz: self.cfg.in_capsule_max as u32,
                    af_caps: granted,
                    target_id: self.cfg.target_id,
                }));
                Ok(())
            }
            Pdu::CapsuleCmd(c) => self.on_command(c, ctrl, out),
            Pdu::H2CData(d) => self.on_h2c_data(d, ctrl, out),
            Pdu::Abort(a) => {
                self.require_handshake()?;
                self.on_abort(a.cid, a.gseq, out);
                Ok(())
            }
            Pdu::KeepAlive(ka) => {
                self.require_handshake()?;
                self.metrics.keepalives.inc();
                out.push(Pdu::KeepAliveAck(KeepAlive { seq: ka.seq }));
                Ok(())
            }
            Pdu::KeepAliveAck(_) => Ok(()),
            Pdu::Degrade(_) => {
                // The client abandoned the shm payload path; serve
                // everything over the control path from here on. (It
                // quarantined and swept the region itself.)
                self.shm_active = false;
                Ok(())
            }
            Pdu::TermReq(_) => {
                self.terminated = true;
                Ok(())
            }
            other => Err(NvmeofError::Protocol(format!(
                "unexpected PDU at target: {other:?}"
            ))),
        }
    }

    /// Answers an Abort: `applied = true` with the remembered completion
    /// if the command already executed (the abort raced its response);
    /// otherwise discard any staging state and answer `applied = false`,
    /// remembering the cid so a late duplicate of the original command
    /// is dropped rather than double-applied next to the resubmission.
    fn on_abort(&mut self, cid: u16, gseq: u32, out: &mut Vec<Pdu>) {
        // A parked barrier already executed — it must answer
        // `applied = true`, but its final status is unknown until the
        // sync resolves. Defer the ack to release time; recording it as
        // aborted-not-applied here would invite the client to resubmit
        // and double-apply.
        if let Some(p) = self
            .parked
            .iter_mut()
            .find(|p| p.comp.cid == cid && p.gseq == gseq)
        {
            p.abort_requested = true;
            return;
        }
        self.metrics.aborts_handled.inc();
        match self.core.on_abort(cid, gseq) {
            AbortDecision::Applied(completion) => {
                out.push(Pdu::AbortAck(AbortAck {
                    cid,
                    applied: true,
                    completion,
                }));
            }
            AbortDecision::NotApplied => {
                // Drop any half-filled R2T staging buffer for this
                // command incarnation.
                let stale: Vec<u16> = self
                    .pending_writes
                    .iter()
                    .filter(|(_, pw)| pw.cmd.cid == cid && pw.cmd.gseq == gseq)
                    .map(|(&ttag, _)| ttag)
                    .collect();
                for ttag in stale {
                    self.pending_writes.remove(&ttag);
                    self.core.retire_ttag(ttag);
                }
                out.push(Pdu::AbortAck(AbortAck {
                    cid,
                    applied: false,
                    completion: NvmeCompletion::error(cid, Status::InternalError),
                }));
            }
        }
    }

    fn require_handshake(&self) -> Result<(), NvmeofError> {
        if self.handshaken {
            Ok(())
        } else {
            Err(NvmeofError::Protocol("command before ICReq".into()))
        }
    }

    fn on_command(
        &mut self,
        c: CapsuleCmd,
        ctrl: &mut Controller,
        out: &mut Vec<Pdu>,
    ) -> Result<(), NvmeofError> {
        self.require_handshake()?;
        if self.core.should_drop_command(c.cmd.cid, c.cmd.gseq) {
            // Late duplicate of a command we already answered an abort
            // for: the client resubmitted it under a fresh cid, so
            // applying this copy would double-apply.
            if let Some(data) = &c.data {
                self.drain_stale_ref(data);
            }
            return Ok(());
        }
        match c.cmd.opcode {
            Opcode::Read => self.on_read(c.cmd, ctrl, out),
            // Anything shipping host data (write, compare) goes through
            // the in-capsule/R2T/shm-reference write path; everything
            // else (flush, identify, write-zeroes, DSM) executes
            // directly from the capsule. The classification lives on
            // `Opcode` so the initiator's retry policy and this dispatch
            // can never drift apart.
            op if op.carries_host_data() => self.on_write(c, ctrl, out),
            _ => {
                let (comp, payload, ticket) = ctrl.execute_async(&c.cmd, None);
                if let Some(data) = payload {
                    out.push(Pdu::C2HData(DataPdu {
                        cid: c.cmd.cid,
                        ttag: 0,
                        offset: 0,
                        last: true,
                        data: DataRef::Inline(Bytes::from(data)),
                    }));
                }
                self.finish_or_park(c.cmd.nsid, c.cmd.gseq, comp, ticket, out);
                Ok(())
            }
        }
    }

    /// Executes a data-bearing command with the payload *borrowed* in
    /// place: inline bytes straight from the capsule, shm payloads lent
    /// by the channel for the duration of the device copy. The only copy
    /// left is slot → device — the one copy that cannot be avoided
    /// (§4.4.3); the old materialize-into-a-`Vec` staging hop is gone.
    fn execute_borrowed(
        &self,
        cmd: &NvmeCommand,
        data: DataRef,
        ctrl: &mut Controller,
    ) -> Result<(NvmeCompletion, Option<BarrierTicket>), NvmeofError> {
        match data {
            DataRef::Inline(b) => {
                self.metrics.inline_payloads.inc();
                let (comp, _, ticket) = ctrl.execute_async(cmd, Some(&b));
                Ok((comp, ticket))
            }
            DataRef::ShmSlot { slot, len } => {
                self.metrics.shm_payloads.inc();
                let ch = self
                    .payload
                    .as_ref()
                    .ok_or_else(|| NvmeofError::Protocol("shm ref without channel".into()))?;
                let mut res = None;
                ch.consume_with(slot, len, &mut |bytes| {
                    let (c, _, t) = ctrl.execute_async(cmd, Some(bytes));
                    res = Some((c, t));
                })?;
                self.metrics.zero_copy_bytes.add(u64::from(len));
                self.metrics.copies_avoided.inc();
                res.ok_or_else(|| {
                    NvmeofError::Protocol("payload channel did not lend slot bytes".into())
                })
            }
        }
    }

    fn on_write(
        &mut self,
        c: CapsuleCmd,
        ctrl: &mut Controller,
        out: &mut Vec<Pdu>,
    ) -> Result<(), NvmeofError> {
        let cmd = c.cmd;
        let expected = self.transfer_len(&cmd, ctrl);
        match c.data {
            Some(data) => {
                // In-capsule write (small I/O, or any size over the
                // shared-memory flow control, §4.4.2).
                if !data.is_shm() && data.len() > self.cfg.in_capsule_max {
                    return Err(NvmeofError::Protocol(format!(
                        "in-capsule data {} exceeds ioccsz {}",
                        data.len(),
                        self.cfg.in_capsule_max
                    )));
                }
                let (comp, ticket) = match self.execute_borrowed(&cmd, data, ctrl) {
                    Ok(executed) => executed,
                    Err(NvmeofError::Payload(_)) => {
                        // The slot reference could not be consumed (the
                        // region died, or a duplicated capsule already
                        // drained it): abandon shm and report a device
                        // error so the client's retry machinery replays
                        // the write over the control path.
                        self.degrade_self(out);
                        (NvmeCompletion::error(cmd.cid, Status::InternalError), None)
                    }
                    Err(e) => return Err(e),
                };
                self.finish_or_park(cmd.nsid, cmd.gseq, comp, ticket, out);
                Ok(())
            }
            None => {
                // Conservative flow: allocate a buffer, grant an R2T
                // (Fig. 7 step 2).
                let ttag = self.next_ttag;
                self.next_ttag = self.next_ttag.wrapping_add(1).max(1);
                self.pending_writes.insert(
                    ttag,
                    PendingWrite {
                        cmd,
                        buf: vec![0u8; expected],
                        received: 0,
                    },
                );
                self.metrics.r2t_grants.inc();
                out.push(Pdu::R2T(R2T {
                    cid: cmd.cid,
                    ttag,
                    offset: 0,
                    len: expected as u32,
                }));
                Ok(())
            }
        }
    }

    fn on_h2c_data(
        &mut self,
        d: DataPdu,
        ctrl: &mut Controller,
        out: &mut Vec<Pdu>,
    ) -> Result<(), NvmeofError> {
        self.require_handshake()?;
        let metrics = Arc::clone(&self.metrics);
        let ch = self.payload.clone();
        let data_len = d.data.len();
        let Some(pending) = self.pending_writes.get_mut(&d.ttag) else {
            if self.core.is_retired_ttag(d.ttag) {
                // Late duplicate chunk for a staging buffer that already
                // completed or was aborted: drain and drop.
                self.drain_stale_ref(&d.data);
                return Ok(());
            }
            return Err(NvmeofError::Protocol(format!("unknown ttag {}", d.ttag)));
        };
        let off = d.offset as usize;
        if off + data_len > pending.buf.len() {
            return Err(NvmeofError::Protocol("H2C data beyond R2T grant".into()));
        }
        // Land the chunk in the staging buffer directly — borrowed from
        // the capsule or lent by the channel, never via an intermediate
        // materialized `Vec`.
        match d.data {
            DataRef::Inline(b) => {
                metrics.inline_payloads.inc();
                pending.buf[off..off + b.len()].copy_from_slice(&b);
            }
            DataRef::ShmSlot { slot, len } => {
                metrics.shm_payloads.inc();
                let ch =
                    ch.ok_or_else(|| NvmeofError::Protocol("shm ref without channel".into()))?;
                let dst = &mut pending.buf[off..off + len as usize];
                if ch
                    .consume_with(slot, len, &mut |bytes| dst.copy_from_slice(bytes))
                    .is_err()
                {
                    // The region died with the chunk inside: fail this
                    // write cleanly and abandon shm. The client replays
                    // the payload over the control path.
                    let cmd = pending.cmd;
                    self.pending_writes.remove(&d.ttag);
                    self.core.retire_ttag(d.ttag);
                    self.degrade_self(out);
                    let comp = NvmeCompletion::error(cmd.cid, Status::InternalError);
                    self.finish(cmd.gseq, comp, out);
                    return Ok(());
                }
                metrics.copies_avoided.inc();
            }
        }
        pending.received += data_len;
        if d.last || pending.received >= pending.buf.len() {
            let pw = self.pending_writes.remove(&d.ttag).expect("present");
            self.core.retire_ttag(d.ttag);
            let (comp, _, ticket) = ctrl.execute_async(&pw.cmd, Some(&pw.buf));
            self.finish_or_park(pw.cmd.nsid, pw.cmd.gseq, comp, ticket, out);
        }
        Ok(())
    }

    /// Serves a read by leasing the target-half slot as the device's
    /// destination buffer: the ssd backend reads straight into shared
    /// memory and the lease publishes with no copy (§4.4.3).
    fn read_via_lease(
        &mut self,
        cmd: NvmeCommand,
        mut lease: crate::payload::WriteLease,
        ctrl: &mut Controller,
        out: &mut Vec<Pdu>,
    ) -> Result<(), NvmeofError> {
        let comp = ctrl.read_into(&cmd, &mut lease);
        if comp.status.is_ok() {
            let bytes = lease.len() as u64;
            let zero_copy = lease.is_zero_copy();
            let ch = self
                .payload
                .as_ref()
                .expect("lease came from this channel")
                .clone();
            let (slot, len) = match ch.publish_lease(lease) {
                Ok(published) => published,
                Err(_) => {
                    // The region died between alloc and publish: abandon
                    // shm and serve the read again over the inline path
                    // (reads are idempotent).
                    self.degrade_self(out);
                    return self.on_read(cmd, ctrl, out);
                }
            };
            if zero_copy {
                self.metrics.zero_copy_bytes.add(bytes);
                self.metrics.copies_avoided.inc();
            }
            out.push(Pdu::C2HData(DataPdu {
                cid: cmd.cid,
                ttag: 0,
                offset: 0,
                last: true,
                data: DataRef::ShmSlot { slot, len },
            }));
        }
        // On error the unpublished lease drops here, returning its slot.
        self.finish(cmd.gseq, comp, out);
        Ok(())
    }

    fn on_read(
        &mut self,
        cmd: NvmeCommand,
        ctrl: &mut Controller,
        out: &mut Vec<Pdu>,
    ) -> Result<(), NvmeofError> {
        if self.shm_active {
            if let (Some(ch), Some(expected)) = (self.payload.as_ref(), ctrl.transfer_len(&cmd)) {
                if expected > 0 && expected <= ch.max_payload() {
                    // Pool exhaustion (or any alloc failure) falls back to
                    // the copying path below rather than stalling the
                    // connection.
                    if let Ok(lease) = ch.alloc(expected) {
                        return self.read_via_lease(cmd, lease, ctrl, out);
                    }
                }
            }
        }
        let (comp, payload) = ctrl.execute(&cmd, None);
        if let Some(data) = payload {
            let mut published = None;
            if self.shm_active
                && self
                    .payload
                    .as_ref()
                    .is_some_and(|ch| data.len() <= ch.max_payload())
            {
                // Publish through the double buffer; the control PDU only
                // carries the slot reference (§4.3).
                let ch = self
                    .payload
                    .as_ref()
                    .expect("shm_active implies channel")
                    .clone();
                match ch.publish(&data) {
                    Ok(p) => published = Some(p),
                    // Region died: abandon shm, fall through to the
                    // inline chunked path below.
                    Err(_) => self.degrade_self(out),
                }
            }
            if let Some((slot, len)) = published {
                out.push(Pdu::C2HData(DataPdu {
                    cid: cmd.cid,
                    ttag: 0,
                    offset: 0,
                    last: true,
                    data: DataRef::ShmSlot { slot, len },
                }));
            } else {
                // Stock NVMe/TCP: inline data chunked at the
                // application-level chunk size (§4.5).
                let chunk = self.cfg.read_chunk.max(1);
                let total = data.len();
                let bytes = Bytes::from(data);
                let mut off = 0usize;
                while off < total {
                    let end = (off + chunk).min(total);
                    out.push(Pdu::C2HData(DataPdu {
                        cid: cmd.cid,
                        ttag: 0,
                        offset: off as u32,
                        last: end == total,
                        data: DataRef::Inline(bytes.slice(off..end)),
                    }));
                    off = end;
                }
                if total == 0 {
                    out.push(Pdu::C2HData(DataPdu {
                        cid: cmd.cid,
                        ttag: 0,
                        offset: 0,
                        last: true,
                        data: DataRef::Inline(Bytes::new()),
                    }));
                }
            }
        }
        self.finish(cmd.gseq, comp, out);
        Ok(())
    }

    fn transfer_len(&self, cmd: &NvmeCommand, ctrl: &Controller) -> usize {
        ctrl.namespace(cmd.nsid)
            .map(|ns| cmd.transfer_len(ns.block_size()) as usize)
            .unwrap_or(0)
    }
}

/// Handle to a running target reactor thread.
pub struct TargetHandle {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<Result<(), NvmeofError>>>,
}

impl TargetHandle {
    /// Assembles a handle from a stop flag and reactor join handle (used
    /// by the multi-connection server in [`crate::server`]).
    pub fn from_parts(
        stop: Arc<AtomicBool>,
        join: std::thread::JoinHandle<Result<(), NvmeofError>>,
    ) -> Self {
        TargetHandle {
            stop,
            join: Some(join),
        }
    }

    /// Requests shutdown and joins the reactor.
    pub fn shutdown(mut self) -> Result<(), NvmeofError> {
        self.stop.store(true, Ordering::Release);
        match self.join.take() {
            Some(h) => h
                .join()
                .map_err(|_| NvmeofError::Protocol("target reactor panicked".into()))?,
            None => Ok(()),
        }
    }
}

impl Drop for TargetHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.join.take() {
            let _ = h.join();
        }
    }
}

/// Spawns a polled target reactor serving one connection.
pub fn spawn_target<T: Transport + 'static>(
    transport: T,
    controller: Controller,
    cfg: TargetConfig,
    payload: Option<Arc<dyn PayloadChannel>>,
) -> TargetHandle {
    spawn_target_observed(transport, controller, cfg, payload, None)
}

/// [`spawn_target`] with telemetry: the connection's target-side metric
/// bundle is registered into `registry` under the `target` scope before
/// the reactor starts.
pub fn spawn_target_observed<T: Transport + 'static>(
    transport: T,
    mut controller: Controller,
    cfg: TargetConfig,
    payload: Option<Arc<dyn PayloadChannel>>,
    registry: Option<&oaf_telemetry::Registry>,
) -> TargetHandle {
    let conn_init = TargetConnection::new(cfg, payload);
    if let Some(reg) = registry {
        conn_init.metrics().register(&reg.scope("target"));
    }
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let join = std::thread::Builder::new()
        .name("nvmeof-target".into())
        .spawn(move || {
            let mut conn = conn_init;
            // Reusable per-connection buffers: the steady-state loop
            // allocates nothing — frames arrive borrowed, responses are
            // encoded into `scratch` and sent as borrowed slices.
            let mut out: Vec<Pdu> = Vec::new();
            let mut scratch = BytesMut::with_capacity(4096);
            while !stop2.load(Ordering::Acquire) && !conn.terminated() {
                // Drain every frame already ready in one batched pass.
                let mut err = None;
                let drained = {
                    let conn = &mut conn;
                    let controller = &mut controller;
                    let out = &mut out;
                    transport.recv_batch(&mut |frame| {
                        if err.is_none() {
                            if let Err(e) = conn.handle(frame, controller, out) {
                                err = Some(e);
                            }
                        }
                    })
                };
                match (drained, err) {
                    (Err(NvmeofError::TransportClosed), _) => break,
                    (Err(e), _) | (_, Some(e)) => return Err(e),
                    (Ok(n), None) => {
                        // Probe the sync-done queue: completions parked
                        // on offloaded barriers release here, without
                        // waiting for new frames.
                        let released = conn.poll_parked(&controller, &mut out);
                        for pdu in out.drain(..) {
                            scratch.clear();
                            pdu.encode_into(&mut scratch);
                            match transport.send_frame(&scratch) {
                                Ok(()) => {}
                                Err(NvmeofError::TransportClosed) => return Ok(()),
                                Err(e) => return Err(e),
                            }
                        }
                        if n == 0 && released == 0 {
                            // Idle: bounded spin→yield wait inside the
                            // transport, never a blind spin.
                            match transport.recv_timeout(Duration::from_millis(1)) {
                                Ok(Some(frame)) => {
                                    conn.handle(Frame::Owned(frame), &mut controller, &mut out)?
                                }
                                Ok(None) => {}
                                Err(NvmeofError::TransportClosed) => break,
                                Err(e) => return Err(e),
                            }
                        }
                    }
                }
            }
            Ok(())
        })
        .expect("spawn target thread");
    TargetHandle {
        stop,
        join: Some(join),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nvme::namespace::Namespace;
    use crate::pdu::ICReq;

    fn controller() -> Controller {
        let mut c = Controller::new();
        c.add_namespace(Namespace::new(1, 4096, 1024));
        c
    }

    fn handshake(conn: &mut TargetConnection, ctrl: &mut Controller, caps: u32) -> ICResp {
        let frames = conn
            .on_frame(
                Pdu::ICReq(ICReq {
                    pfv: 1,
                    maxr2t: 4,
                    af_caps: caps,
                    host_id: 7,
                })
                .encode(),
                ctrl,
            )
            .unwrap();
        match Pdu::decode(frames[0].clone()).unwrap() {
            Pdu::ICResp(r) => r,
            other => panic!("expected ICResp, got {other:?}"),
        }
    }

    #[test]
    fn handshake_grants_nothing_without_channel() {
        let mut ctrl = controller();
        let mut conn = TargetConnection::new(TargetConfig::default(), None);
        let resp = handshake(&mut conn, &mut ctrl, AF_CAP_SHM);
        assert_eq!(resp.af_caps, 0);
        assert!(!conn.shm_active());
    }

    #[test]
    fn command_before_handshake_rejected() {
        let mut ctrl = controller();
        let mut conn = TargetConnection::new(TargetConfig::default(), None);
        let err = conn
            .on_frame(
                Pdu::CapsuleCmd(CapsuleCmd {
                    cmd: NvmeCommand::read(1, 1, 0, 1),
                    data: None,
                })
                .encode(),
                &mut ctrl,
            )
            .unwrap_err();
        assert!(matches!(err, NvmeofError::Protocol(_)));
    }

    #[test]
    fn in_capsule_write_executes_immediately() {
        let mut ctrl = controller();
        let mut conn = TargetConnection::new(TargetConfig::default(), None);
        handshake(&mut conn, &mut ctrl, 0);
        let data = vec![9u8; 4096];
        let frames = conn
            .on_frame(
                Pdu::CapsuleCmd(CapsuleCmd {
                    cmd: NvmeCommand::write(1, 1, 0, 1),
                    data: Some(DataRef::Inline(Bytes::from(data.clone()))),
                })
                .encode(),
                &mut ctrl,
            )
            .unwrap();
        assert_eq!(frames.len(), 1);
        match Pdu::decode(frames[0].clone()).unwrap() {
            Pdu::CapsuleResp(r) => assert!(r.completion.status.is_ok()),
            other => panic!("{other:?}"),
        }
        // Verify the bytes landed.
        let mut out = vec![0u8; 4096];
        assert!(ctrl.namespace(1).unwrap().read(0, 1, &mut out).is_ok());
        assert_eq!(out, data);
    }

    #[test]
    fn conservative_write_grants_r2t_then_completes() {
        let mut ctrl = controller();
        let mut conn = TargetConnection::new(TargetConfig::default(), None);
        handshake(&mut conn, &mut ctrl, 0);
        // 128 KiB write, no in-capsule data.
        let frames = conn
            .on_frame(
                Pdu::CapsuleCmd(CapsuleCmd {
                    cmd: NvmeCommand::write(2, 1, 0, 32),
                    data: None,
                })
                .encode(),
                &mut ctrl,
            )
            .unwrap();
        let r2t = match Pdu::decode(frames[0].clone()).unwrap() {
            Pdu::R2T(r) => r,
            other => panic!("{other:?}"),
        };
        assert_eq!(r2t.len, 128 * 1024);
        // Deliver the data in two chunks.
        let payload = vec![0x5au8; 128 * 1024];
        let f1 = conn
            .on_frame(
                Pdu::H2CData(DataPdu {
                    cid: 2,
                    ttag: r2t.ttag,
                    offset: 0,
                    last: false,
                    data: DataRef::Inline(Bytes::from(payload[..64 * 1024].to_vec())),
                })
                .encode(),
                &mut ctrl,
            )
            .unwrap();
        assert!(f1.is_empty());
        let f2 = conn
            .on_frame(
                Pdu::H2CData(DataPdu {
                    cid: 2,
                    ttag: r2t.ttag,
                    offset: 64 * 1024,
                    last: true,
                    data: DataRef::Inline(Bytes::from(payload[64 * 1024..].to_vec())),
                })
                .encode(),
                &mut ctrl,
            )
            .unwrap();
        match Pdu::decode(f2[0].clone()).unwrap() {
            Pdu::CapsuleResp(r) => assert!(r.completion.status.is_ok()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn read_is_chunked_inline() {
        let mut ctrl = controller();
        // Write some data first.
        let data: Vec<u8> = (0..512 * 1024).map(|i| (i % 256) as u8).collect();
        ctrl.execute(&NvmeCommand::write(0, 1, 0, 128), Some(&data));
        let mut conn = TargetConnection::new(
            TargetConfig {
                read_chunk: 128 * 1024,
                ..TargetConfig::default()
            },
            None,
        );
        handshake(&mut conn, &mut ctrl, 0);
        let frames = conn
            .on_frame(
                Pdu::CapsuleCmd(CapsuleCmd {
                    cmd: NvmeCommand::read(3, 1, 0, 128),
                    data: None,
                })
                .encode(),
                &mut ctrl,
            )
            .unwrap();
        // 512K / 128K = 4 data PDUs + 1 response.
        assert_eq!(frames.len(), 5);
        let mut reassembled = vec![0u8; 512 * 1024];
        for f in &frames[..4] {
            match Pdu::decode(f.clone()).unwrap() {
                Pdu::C2HData(d) => {
                    let DataRef::Inline(b) = d.data else {
                        panic!("expected inline")
                    };
                    reassembled[d.offset as usize..d.offset as usize + b.len()].copy_from_slice(&b);
                }
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(reassembled, data);
    }

    #[test]
    fn shm_write_and_read_use_slot_references() {
        use crate::payload::MailboxChannel;
        let (client_ch, target_ch) = MailboxChannel::pair(8);
        let mut ctrl = controller();
        let mut conn = TargetConnection::new(TargetConfig::default(), Some(target_ch));
        let resp = handshake(&mut conn, &mut ctrl, AF_CAP_SHM | AF_CAP_SHM_INCAPSULE);
        assert!(resp.af_caps & AF_CAP_SHM != 0);
        assert!(conn.shm_active());

        // Write via slot reference (in-capsule style, any size: §4.4.2).
        let data = vec![0xc3u8; 128 * 1024];
        let (slot, len) = client_ch.publish(&data).unwrap();
        let frames = conn
            .on_frame(
                Pdu::CapsuleCmd(CapsuleCmd {
                    cmd: NvmeCommand::write(5, 1, 8, 32),
                    data: Some(DataRef::ShmSlot { slot, len }),
                })
                .encode(),
                &mut ctrl,
            )
            .unwrap();
        assert_eq!(frames.len(), 1); // straight to completion: no R2T
        match Pdu::decode(frames[0].clone()).unwrap() {
            Pdu::CapsuleResp(r) => assert!(r.completion.status.is_ok()),
            other => panic!("{other:?}"),
        }

        // Read comes back as a slot reference.
        let frames = conn
            .on_frame(
                Pdu::CapsuleCmd(CapsuleCmd {
                    cmd: NvmeCommand::read(6, 1, 8, 32),
                    data: None,
                })
                .encode(),
                &mut ctrl,
            )
            .unwrap();
        assert_eq!(frames.len(), 2);
        match Pdu::decode(frames[0].clone()).unwrap() {
            Pdu::C2HData(d) => {
                let DataRef::ShmSlot { slot, len } = d.data else {
                    panic!("expected shm ref")
                };
                let mut out = vec![0u8; len as usize];
                client_ch.consume(slot, len, &mut out).unwrap();
                assert_eq!(out, data);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn oversized_in_capsule_inline_write_rejected() {
        let mut ctrl = controller();
        let mut conn = TargetConnection::new(
            TargetConfig {
                in_capsule_max: 4096,
                ..TargetConfig::default()
            },
            None,
        );
        handshake(&mut conn, &mut ctrl, 0);
        let err = conn
            .on_frame(
                Pdu::CapsuleCmd(CapsuleCmd {
                    cmd: NvmeCommand::write(1, 1, 0, 2),
                    data: Some(DataRef::Inline(Bytes::from(vec![0u8; 8192]))),
                })
                .encode(),
                &mut ctrl,
            )
            .unwrap_err();
        assert!(matches!(err, NvmeofError::Protocol(_)));
    }

    #[test]
    fn unknown_ttag_rejected() {
        let mut ctrl = controller();
        let mut conn = TargetConnection::new(TargetConfig::default(), None);
        handshake(&mut conn, &mut ctrl, 0);
        let err = conn
            .on_frame(
                Pdu::H2CData(DataPdu {
                    cid: 1,
                    ttag: 99,
                    offset: 0,
                    last: true,
                    data: DataRef::Inline(Bytes::from_static(b"x")),
                })
                .encode(),
                &mut ctrl,
            )
            .unwrap_err();
        assert!(matches!(err, NvmeofError::Protocol(_)));
    }

    fn offloaded_controller() -> (oaf_store::vfs::SharedMemVfs, Controller) {
        let vfs = oaf_store::vfs::SharedMemVfs::new();
        let disk = oaf_store::FileDisk::create_on(Box::new(vfs.clone()), 4096, 64, 256 * 1024)
            .unwrap()
            .into_shared()
            .with_sync_worker(Box::new(vfs.clone()));
        let mut ctrl = Controller::new();
        ctrl.add_namespace(Namespace::with_shared_file(1, disk));
        (vfs, ctrl)
    }

    fn release_parked(conn: &mut TargetConnection, ctrl: &Controller, out: &mut Vec<Pdu>) -> usize {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let n = conn.poll_parked(ctrl, out);
            if n > 0 {
                return n;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "parked barrier never released"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn offloaded_barrier_parks_then_releases() {
        let (vfs, mut ctrl) = offloaded_controller();
        let mut conn = TargetConnection::new(TargetConfig::default(), None);
        handshake(&mut conn, &mut ctrl, 0);
        vfs.hold_syncs(true);
        // The FUA write executes and parks: no response capsule yet.
        let frames = conn
            .on_frame(
                Pdu::CapsuleCmd(CapsuleCmd {
                    cmd: NvmeCommand::write_fua(1, 1, 0, 1),
                    data: Some(DataRef::Inline(Bytes::from(vec![0xabu8; 4096]))),
                })
                .encode(),
                &mut ctrl,
            )
            .unwrap();
        assert!(frames.is_empty(), "FUA completion must park: {frames:?}");
        assert_eq!(conn.parked_barriers(), 1);
        // A read flows to completion while the sync is frozen in flight.
        let frames = conn
            .on_frame(
                Pdu::CapsuleCmd(CapsuleCmd {
                    cmd: NvmeCommand::read(2, 1, 0, 1),
                    data: None,
                })
                .encode(),
                &mut ctrl,
            )
            .unwrap();
        assert_eq!(frames.len(), 2, "read must not queue behind the barrier");
        let mut out = Vec::new();
        assert_eq!(conn.poll_parked(&ctrl, &mut out), 0, "ticket still pending");
        vfs.hold_syncs(false);
        assert_eq!(release_parked(&mut conn, &ctrl, &mut out), 1);
        let [Pdu::CapsuleResp(r)] = &out[..] else {
            panic!("expected the parked response, got {out:?}");
        };
        assert!(r.completion.status.is_ok());
        assert_eq!(r.completion.cid, 1);
        assert_eq!(conn.parked_barriers(), 0);
        assert_eq!(conn.metrics().barriers_parked.get(), 1);
        assert_eq!(conn.metrics().barrier_park_ns.count(), 1);
    }

    #[test]
    fn abort_of_parked_barrier_defers_to_release() {
        let (vfs, mut ctrl) = offloaded_controller();
        let mut conn = TargetConnection::new(TargetConfig::default(), None);
        handshake(&mut conn, &mut ctrl, 0);
        vfs.hold_syncs(true);
        let frames = conn
            .on_frame(
                Pdu::CapsuleCmd(CapsuleCmd {
                    cmd: NvmeCommand::write_fua(7, 1, 3, 1),
                    data: Some(DataRef::Inline(Bytes::from(vec![0x11u8; 4096]))),
                })
                .encode(),
                &mut ctrl,
            )
            .unwrap();
        assert!(frames.is_empty());
        // The abort races the in-flight sync: the ack is owed only once
        // the barrier resolves (answering not-applied now would invite a
        // double-applying resubmission).
        let frames = conn
            .on_frame(
                Pdu::Abort(crate::pdu::Abort { cid: 7, gseq: 0 }).encode(),
                &mut ctrl,
            )
            .unwrap();
        assert!(frames.is_empty(), "parked abort must defer: {frames:?}");
        vfs.hold_syncs(false);
        let mut out = Vec::new();
        release_parked(&mut conn, &ctrl, &mut out);
        let [Pdu::CapsuleResp(r), Pdu::AbortAck(ack)] = &out[..] else {
            panic!("expected response + deferred ack, got {out:?}");
        };
        assert!(r.completion.status.is_ok());
        assert!(ack.applied, "the parked command executed");
        assert_eq!(ack.cid, 7);
        assert_eq!(conn.metrics().aborts_handled.get(), 1);
    }

    #[test]
    fn failed_sync_releases_parked_barrier_as_error() {
        let (vfs, mut ctrl) = offloaded_controller();
        let mut conn = TargetConnection::new(TargetConfig::default(), None);
        handshake(&mut conn, &mut ctrl, 0);
        vfs.set_fail_sync(true);
        let frames = conn
            .on_frame(
                Pdu::CapsuleCmd(CapsuleCmd {
                    cmd: NvmeCommand::write_fua(4, 1, 0, 1),
                    data: Some(DataRef::Inline(Bytes::from(vec![0x22u8; 4096]))),
                })
                .encode(),
                &mut ctrl,
            )
            .unwrap();
        assert!(frames.is_empty(), "parks before the sync verdict lands");
        let mut out = Vec::new();
        release_parked(&mut conn, &ctrl, &mut out);
        let [Pdu::CapsuleResp(r)] = &out[..] else {
            panic!("{out:?}");
        };
        assert_eq!(
            r.completion.status,
            Status::InternalError,
            "a failed fdatasync must fail exactly the parked barrier"
        );
        assert_eq!(conn.metrics().errors.get(), 1);
    }

    #[test]
    fn term_req_terminates() {
        let mut ctrl = controller();
        let mut conn = TargetConnection::new(TargetConfig::default(), None);
        handshake(&mut conn, &mut ctrl, 0);
        conn.on_frame(
            Pdu::TermReq(crate::pdu::TermReq { reason: 0 }).encode(),
            &mut ctrl,
        )
        .unwrap();
        assert!(conn.terminated());
    }
}
