//! NVMe and NVMe-over-Fabrics protocol implementation.
//!
//! This crate is the reproduction's SPDK analog: a userspace, polled
//! NVMe-oF target and initiator with pluggable transports. It implements
//!
//! * the NVMe command set the paper's workloads exercise
//!   ([`nvme::command`], [`nvme::controller`], [`nvme::namespace`]),
//! * the NVMe/TCP PDU vocabulary — ICReq/ICResp handshake, command and
//!   response capsules, R2T, H2C/C2H data — with binary encode/decode
//!   ([`pdu`]), extended with the adaptive-fabric flag that lets a data
//!   PDU *reference a shared-memory slot* instead of carrying bytes
//!   (§4.3 of the paper),
//! * the two write flow-control regimes of §4.4.2: in-capsule data for
//!   small I/O and the conservative CMD → R2T → H2C exchange for large
//!   I/O,
//! * an in-process duplex [`transport::MemTransport`] (with an optional
//!   rate-limited wrapper emulating NIC speeds in wall-clock time), and
//! * a polled [`target::TargetConnection`] / [`initiator::Initiator`]
//!   pair that actually moves bytes into a [`oaf_ssd::RamDisk`]-backed
//!   namespace, plus a multi-connection storage service
//!   ([`server::spawn_multi`]) matching the paper's one-service,
//!   many-clients architecture (Fig. 1),
//! * an in-region duplex control transport
//!   ([`transport::ShmTransport`]) over lock-free byte rings — the §5.5
//!   future-work configuration where control PDUs leave kernel TCP too.
//!
//! The adaptive-fabric co-design hooks are deliberately *interfaces* here
//! ([`payload::PayloadChannel`], [`FlowMode`]): the `oaf-core` crate wires
//! them to the lock-free shared-memory channel, keeping this crate a
//! faithful, transport-agnostic NVMe-oF stack.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod discovery;
pub mod error;
pub mod initiator;
pub mod metrics;
pub mod nvme;
pub mod payload;
pub mod pdu;
pub mod recovery;
pub mod server;
pub mod shard;
pub mod spsc;
pub mod target;
pub mod tcp;
pub mod transport;
pub mod tune;

pub use error::NvmeofError;
pub use initiator::Initiator;
pub use metrics::{InitiatorMetrics, TargetMetrics, TransportMetrics};
pub use payload::PayloadChannel;
pub use target::{TargetConfig, TargetConnection};

/// Write flow-control regime for a connection (§4.4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowMode {
    /// Standard NVMe/TCP: in-capsule data only below the negotiated
    /// threshold; larger writes take the conservative CMD → R2T → H2C
    /// path (three control messages before the I/O reaches the SSD).
    Conservative,
    /// Shared-memory flow control: payload bytes can sit in the region
    /// until the target drains them, so *every* write goes in-capsule
    /// (one control message), eliminating R2T and the separate H2C
    /// notification.
    InCapsule,
}
