//! NVMe/TCP PDU vocabulary and binary codec.
//!
//! The connection establishment and I/O flows of the paper (Figs. 5–7) are
//! expressed in these PDUs: `ICReq`/`ICResp` for the handshake (extended
//! with adaptive-fabric capability bits, §4.1), command/response capsules,
//! `R2T` ready-to-transfer grants, and `H2CData`/`C2HData` data PDUs.
//!
//! The adaptive-fabric extension is the [`DataRef`] in every data-bearing
//! PDU: payload bytes either travel *inline* (stock NVMe/TCP) or as a
//! *shared-memory slot reference* `(slot, len)` — the out-of-band
//! notification of §4.3, where "the large sized I/O payloads are
//! transported over the shared memory" while only the control message
//! crosses TCP.
//!
//! Frames are length-prefixed and self-contained: the in-process transports
//! are frame-oriented, so no cross-frame reassembly state is needed. The
//! header mirrors the spec's common header: `type, flags, hlen, rsvd,
//! plen` where `plen` covers the whole PDU, followed by a CRC32 over the
//! entire frame (header digest + data digest collapsed into one word,
//! computed with the CRC field itself zeroed). A frame whose CRC does not
//! match decodes to [`NvmeofError::CorruptFrame`] instead of parsing
//! garbage, so bit-flips on the fabric surface as a typed, droppable
//! error rather than a protocol wedge.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::NvmeofError;
use crate::nvme::command::{NvmeCommand, COMMAND_WIRE_LEN};
use crate::nvme::completion::{NvmeCompletion, COMPLETION_WIRE_LEN};
use crate::transport::Frame;

/// Common header length: `type, flags, hlen, rsvd, plen(u32), crc(u32)`.
pub const HEADER_LEN: usize = 12;

/// Byte offset of the CRC32 word within the common header.
const CRC_OFFSET: usize = 8;

// The CRC implementation (slicing-by-8, IEEE polynomial) is shared with
// the on-disk intent-log format — one codec for fabric and storage, so
// the two can never drift on polynomial or table construction.
use oaf_store::crc32::crc32_update;

/// CRC32 of a whole frame with the header's CRC field treated as zero.
fn frame_crc(frame: &[u8]) -> u32 {
    let mut c = crc32_update(0xFFFF_FFFF, &frame[..CRC_OFFSET]);
    c = crc32_update(c, &[0u8; 4]);
    if frame.len() > HEADER_LEN {
        c = crc32_update(c, &frame[HEADER_LEN..]);
    }
    !c
}

/// Flag: payload is a shared-memory slot reference, not inline bytes.
pub const FLAG_SHM: u8 = 0x01;
/// Flag: last data PDU of a multi-chunk transfer.
pub const FLAG_LAST: u8 = 0x02;

/// Adaptive-fabric capability bit: endpoint can map a shared-memory
/// channel (advertised in ICReq/ICResp, §4.1).
pub const AF_CAP_SHM: u32 = 0x1;
/// Adaptive-fabric capability bit: endpoint supports in-capsule flow
/// control over shared memory for all I/O sizes (§4.4.2).
pub const AF_CAP_SHM_INCAPSULE: u32 = 0x2;
/// Adaptive-fabric capability bit: endpoint supports zero-copy leases
/// (§4.4.3).
pub const AF_CAP_ZERO_COPY: u32 = 0x4;

mod ptype {
    pub const ICREQ: u8 = 0x00;
    pub const ICRESP: u8 = 0x01;
    pub const TERM_REQ: u8 = 0x02;
    pub const CAPSULE_CMD: u8 = 0x04;
    pub const CAPSULE_RESP: u8 = 0x05;
    pub const H2C_DATA: u8 = 0x06;
    pub const C2H_DATA: u8 = 0x07;
    pub const R2T: u8 = 0x09;
    pub const ABORT: u8 = 0x0c;
    pub const ABORT_ACK: u8 = 0x0d;
    pub const DEGRADE: u8 = 0x0e;
    pub const KEEP_ALIVE: u8 = 0x18;
    pub const KEEP_ALIVE_ACK: u8 = 0x19;
}

/// Where a data PDU's payload lives.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DataRef {
    /// Payload bytes carried inline in the PDU (stock NVMe/TCP).
    Inline(Bytes),
    /// Payload published in a shared-memory slot; only the reference
    /// crosses the control path (NVMe-oSHM, §4.3).
    ShmSlot {
        /// Slot index within the double buffer.
        slot: u32,
        /// Payload length in bytes.
        len: u32,
    },
}

impl DataRef {
    /// Logical payload length.
    pub fn len(&self) -> usize {
        match self {
            DataRef::Inline(b) => b.len(),
            DataRef::ShmSlot { len, .. } => *len as usize,
        }
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this is a shared-memory reference.
    pub fn is_shm(&self) -> bool {
        matches!(self, DataRef::ShmSlot { .. })
    }
}

/// Connection initialization request (client → target).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ICReq {
    /// PDU format version.
    pub pfv: u16,
    /// Maximum outstanding R2Ts the client supports.
    pub maxr2t: u32,
    /// Adaptive-fabric capability bits (`AF_CAP_*`).
    pub af_caps: u32,
    /// Client host identity (used for locality matching, §4.2).
    pub host_id: u64,
}

/// Connection initialization response (target → client).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ICResp {
    /// PDU format version.
    pub pfv: u16,
    /// In-capsule data size limit in bytes (§4.4.2: 8 KiB for stock
    /// NVMe/TCP).
    pub ioccsz: u32,
    /// Adaptive-fabric capability bits granted.
    pub af_caps: u32,
    /// Target host identity.
    pub target_id: u64,
}

/// Ready-to-transfer grant (target → client, conservative write flow).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct R2T {
    /// Command this grant belongs to.
    pub cid: u16,
    /// Transfer tag echoed in the H2CData PDU.
    pub ttag: u16,
    /// Byte offset within the command's data.
    pub offset: u32,
    /// Bytes granted.
    pub len: u32,
}

/// Command capsule (client → target), optionally with in-capsule data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CapsuleCmd {
    /// The NVMe command.
    pub cmd: NvmeCommand,
    /// In-capsule data, if the flow control mode allows it.
    pub data: Option<DataRef>,
}

/// Response capsule (target → client).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CapsuleResp {
    /// The NVMe completion.
    pub completion: NvmeCompletion,
}

/// A data PDU (either direction).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataPdu {
    /// Command the data belongs to.
    pub cid: u16,
    /// Transfer tag (echoes the R2T for H2C data; 0 otherwise).
    pub ttag: u16,
    /// Byte offset within the command's data.
    pub offset: u32,
    /// Whether this is the final data PDU of the transfer.
    pub last: bool,
    /// The payload.
    pub data: DataRef,
}

/// Connection termination request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TermReq {
    /// Reason code.
    pub reason: u16,
}

/// Keep-alive heartbeat. Sent by the initiator after a quiet interval;
/// the target echoes the sequence number back in a `KeepAliveAck`. Any
/// received frame counts as liveness, so the ack matters only on an
/// otherwise idle connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeepAlive {
    /// Monotonic heartbeat sequence number (echoed in the ack).
    pub seq: u64,
}

/// Abort request (client → target): cancel `cid` if it has not already
/// completed. First half of the retry handshake that keeps write
/// resubmission single-apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Abort {
    /// Command identifier to abort.
    pub cid: u16,
    /// Generation tag of the attempt being aborted — the target matches
    /// `(cid, gseq)` so an abort can never resolve against a different
    /// incarnation of a reused wire cid.
    pub gseq: u32,
}

/// Abort response (target → client). `applied == true` means the
/// command had already executed — its original outcome travels in
/// `completion` so the client can complete locally even though the
/// original response capsule was lost. `applied == false` guarantees
/// the target has not executed the command and never will (the cid is
/// remembered and late duplicates are dropped), so resubmission under a
/// fresh cid cannot double-apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AbortAck {
    /// Command identifier the abort targeted.
    pub cid: u16,
    /// Whether the command had already executed at the target.
    pub applied: bool,
    /// The command's original completion when `applied`; a placeholder
    /// success completion otherwise.
    pub completion: NvmeCompletion,
}

/// Payload-path degradation notice (client → target): the shared-memory
/// channel is being abandoned mid-flight; serve everything over the TCP
/// control path from here on (§4's fallback made dynamic).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Degrade {
    /// Reason code (diagnostic only).
    pub reason: u16,
}

/// Any NVMe/TCP (or adaptive-fabric) PDU.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Pdu {
    /// Connection initialization request.
    ICReq(ICReq),
    /// Connection initialization response.
    ICResp(ICResp),
    /// Command capsule.
    CapsuleCmd(CapsuleCmd),
    /// Response capsule.
    CapsuleResp(CapsuleResp),
    /// Ready-to-transfer grant.
    R2T(R2T),
    /// Host-to-controller data.
    H2CData(DataPdu),
    /// Controller-to-host data.
    C2HData(DataPdu),
    /// Termination request.
    TermReq(TermReq),
    /// Keep-alive heartbeat.
    KeepAlive(KeepAlive),
    /// Keep-alive echo.
    KeepAliveAck(KeepAlive),
    /// Abort request.
    Abort(Abort),
    /// Abort response.
    AbortAck(AbortAck),
    /// Shared-memory payload-path degradation notice.
    Degrade(Degrade),
}

fn put_header(dst: &mut BytesMut, ptype: u8, flags: u8, body_len: usize) {
    dst.put_u8(ptype);
    dst.put_u8(flags);
    dst.put_u8(HEADER_LEN as u8);
    dst.put_u8(0);
    dst.put_u32_le((HEADER_LEN + body_len) as u32);
    dst.put_u32_le(0); // CRC field, patched once the body is encoded
}

fn encode_dataref(dst: &mut BytesMut, data: &DataRef) {
    match data {
        DataRef::Inline(b) => {
            dst.put_u32_le(b.len() as u32);
            dst.put_slice(b);
        }
        DataRef::ShmSlot { slot, len } => {
            dst.put_u32_le(*len);
            dst.put_u32_le(*slot);
        }
    }
}

/// Decode source: either an owned `Bytes` frame (inline payloads are
/// carved out zero-copy via `split_to`) or a borrowed slice straight
/// out of a ring (inline payloads are copied; slot references — the
/// steady-state shm control traffic — need nothing).
trait FrameBuf: Buf + Sized {
    fn take_bytes(&mut self, len: usize) -> Bytes;
    /// The unconsumed frame as one contiguous slice (both sources are
    /// contiguous), used for whole-frame CRC verification before any
    /// bytes are consumed.
    fn whole(&self) -> &[u8];
}

impl FrameBuf for Bytes {
    fn take_bytes(&mut self, len: usize) -> Bytes {
        self.split_to(len)
    }
    fn whole(&self) -> &[u8] {
        self.as_ref()
    }
}

impl FrameBuf for &[u8] {
    fn take_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::copy_from_slice(&self[..len]);
        self.advance(len);
        out
    }
    fn whole(&self) -> &[u8] {
        self
    }
}

fn decode_dataref<B: FrameBuf>(src: &mut B, flags: u8) -> Result<DataRef, NvmeofError> {
    if src.remaining() < 4 {
        return Err(NvmeofError::Codec("dataref truncated".into()));
    }
    let len = src.get_u32_le();
    if flags & FLAG_SHM != 0 {
        if src.remaining() < 4 {
            return Err(NvmeofError::Codec("shm slot truncated".into()));
        }
        let slot = src.get_u32_le();
        Ok(DataRef::ShmSlot { slot, len })
    } else {
        if src.remaining() < len as usize {
            return Err(NvmeofError::Codec(format!(
                "inline payload truncated: {} < {len}",
                src.remaining()
            )));
        }
        Ok(DataRef::Inline(src.take_bytes(len as usize)))
    }
}

impl Pdu {
    /// Encodes the PDU into a self-contained frame.
    ///
    /// Allocates a fresh buffer per call; hot paths should encode into
    /// a per-connection scratch with [`Pdu::encode_into`] instead.
    pub fn encode(&self) -> Bytes {
        let mut dst = BytesMut::with_capacity(HEADER_LEN + 64 + self.payload_hint());
        self.encode_into(&mut dst);
        dst.freeze()
    }

    /// Appends the encoded PDU to `dst`, reusing its capacity — the
    /// zero-allocation encode path. Callers keep a reusable scratch
    /// `BytesMut`, `clear()` it, encode, and hand the filled slice to
    /// `Transport::send_frame`.
    pub fn encode_into(&self, dst: &mut BytesMut) {
        let start = dst.len();
        self.encode_body(dst);
        // Patch the CRC over the finished frame. The CRC field itself is
        // still zero at this point, so hashing the frame as-is matches
        // the zeroed-field convention the decoder verifies against.
        let crc = frame_crc(&dst[start..]);
        dst[start + CRC_OFFSET..start + CRC_OFFSET + 4].copy_from_slice(&crc.to_le_bytes());
    }

    /// Encodes a data PDU's *prefix* — header, cid/ttag/offset, inline
    /// length word — into `dst` and returns the payload slice to be
    /// transmitted immediately after it, for transports that can send
    /// `[prefix, payload]` with one vectored write instead of coalescing
    /// the payload into the scratch buffer first.
    ///
    /// The header's `plen` and CRC account for the payload, so
    /// `prefix ++ payload` on the wire is byte-identical to
    /// [`Pdu::encode_into`] output and decodes with the unchanged
    /// decoder. Returns `None` for PDUs with no borrowable inline
    /// payload (callers fall back to `encode_into` + `send_frame`).
    pub fn encode_split_into<'a>(&'a self, dst: &mut BytesMut) -> Option<&'a [u8]> {
        let (t, p) = match self {
            Pdu::H2CData(p) => (ptype::H2C_DATA, p),
            Pdu::C2HData(p) => (ptype::C2H_DATA, p),
            _ => return None,
        };
        let DataRef::Inline(b) = &p.data else {
            return None;
        };
        let start = dst.len();
        let mut flags = 0u8;
        if p.last {
            flags |= FLAG_LAST;
        }
        put_header(dst, t, flags, 8 + 4 + b.len());
        dst.put_u16_le(p.cid);
        dst.put_u16_le(p.ttag);
        dst.put_u32_le(p.offset);
        dst.put_u32_le(b.len() as u32);
        // CRC over the logical frame (prefix ++ payload) with the CRC
        // field zeroed, continued incrementally over the borrowed
        // payload so the bytes never pass through `dst`.
        let mut crc = crc32_update(0xFFFF_FFFF, &dst[start..start + CRC_OFFSET]);
        crc = crc32_update(crc, &[0u8; 4]);
        crc = crc32_update(crc, &dst[start + HEADER_LEN..]);
        crc = crc32_update(crc, b);
        let crc = !crc;
        dst[start + CRC_OFFSET..start + CRC_OFFSET + 4].copy_from_slice(&crc.to_le_bytes());
        Some(b)
    }

    fn encode_body(&self, dst: &mut BytesMut) {
        match self {
            Pdu::ICReq(p) => {
                put_header(dst, ptype::ICREQ, 0, 18);
                dst.put_u16_le(p.pfv);
                dst.put_u32_le(p.maxr2t);
                dst.put_u32_le(p.af_caps);
                dst.put_u64_le(p.host_id);
            }
            Pdu::ICResp(p) => {
                put_header(dst, ptype::ICRESP, 0, 18);
                dst.put_u16_le(p.pfv);
                dst.put_u32_le(p.ioccsz);
                dst.put_u32_le(p.af_caps);
                dst.put_u64_le(p.target_id);
            }
            Pdu::CapsuleCmd(p) => {
                let (flags, body_len) = match &p.data {
                    None => (0u8, COMMAND_WIRE_LEN + 1),
                    Some(DataRef::Inline(b)) => (0u8, COMMAND_WIRE_LEN + 1 + 4 + b.len()),
                    Some(DataRef::ShmSlot { .. }) => (FLAG_SHM, COMMAND_WIRE_LEN + 1 + 8),
                };
                put_header(dst, ptype::CAPSULE_CMD, flags, body_len);
                p.cmd.encode(dst);
                match &p.data {
                    None => dst.put_u8(0),
                    Some(d) => {
                        dst.put_u8(1);
                        encode_dataref(dst, d);
                    }
                }
            }
            Pdu::CapsuleResp(p) => {
                put_header(dst, ptype::CAPSULE_RESP, 0, COMPLETION_WIRE_LEN);
                p.completion.encode(dst);
            }
            Pdu::R2T(p) => {
                put_header(dst, ptype::R2T, 0, 12);
                dst.put_u16_le(p.cid);
                dst.put_u16_le(p.ttag);
                dst.put_u32_le(p.offset);
                dst.put_u32_le(p.len);
            }
            Pdu::H2CData(p) | Pdu::C2HData(p) => {
                let t = if matches!(self, Pdu::H2CData(_)) {
                    ptype::H2C_DATA
                } else {
                    ptype::C2H_DATA
                };
                let mut flags = 0u8;
                if p.data.is_shm() {
                    flags |= FLAG_SHM;
                }
                if p.last {
                    flags |= FLAG_LAST;
                }
                let data_len = match &p.data {
                    DataRef::Inline(b) => 4 + b.len(),
                    DataRef::ShmSlot { .. } => 8,
                };
                put_header(dst, t, flags, 8 + data_len);
                dst.put_u16_le(p.cid);
                dst.put_u16_le(p.ttag);
                dst.put_u32_le(p.offset);
                encode_dataref(dst, &p.data);
            }
            Pdu::TermReq(p) => {
                put_header(dst, ptype::TERM_REQ, 0, 2);
                dst.put_u16_le(p.reason);
            }
            Pdu::KeepAlive(p) | Pdu::KeepAliveAck(p) => {
                let t = if matches!(self, Pdu::KeepAlive(_)) {
                    ptype::KEEP_ALIVE
                } else {
                    ptype::KEEP_ALIVE_ACK
                };
                put_header(dst, t, 0, 8);
                dst.put_u64_le(p.seq);
            }
            Pdu::Abort(p) => {
                put_header(dst, ptype::ABORT, 0, 6);
                dst.put_u16_le(p.cid);
                dst.put_u32_le(p.gseq);
            }
            Pdu::AbortAck(p) => {
                put_header(dst, ptype::ABORT_ACK, 0, 3 + COMPLETION_WIRE_LEN);
                dst.put_u16_le(p.cid);
                dst.put_u8(p.applied as u8);
                p.completion.encode(dst);
            }
            Pdu::Degrade(p) => {
                put_header(dst, ptype::DEGRADE, 0, 2);
                dst.put_u16_le(p.reason);
            }
        }
    }

    fn payload_hint(&self) -> usize {
        match self {
            Pdu::CapsuleCmd(CapsuleCmd {
                data: Some(DataRef::Inline(b)),
                ..
            }) => b.len(),
            Pdu::H2CData(DataPdu {
                data: DataRef::Inline(b),
                ..
            })
            | Pdu::C2HData(DataPdu {
                data: DataRef::Inline(b),
                ..
            }) => b.len(),
            _ => 0,
        }
    }

    /// Decodes one frame produced by [`Pdu::encode`].
    pub fn decode(frame: Bytes) -> Result<Pdu, NvmeofError> {
        Self::decode_impl(frame)
    }

    /// Decodes a borrowed frame in place — the batched receive path.
    ///
    /// Slot-reference PDUs (the steady-state shm control traffic) decode
    /// without touching the heap; inline payloads are copied out, since
    /// the ring slot is recycled as soon as the drain callback returns.
    pub fn decode_slice(frame: &[u8]) -> Result<Pdu, NvmeofError> {
        Self::decode_impl(frame)
    }

    /// Decodes a [`Frame`] from [`Transport::recv_batch`], picking the
    /// zero-copy owned path or the borrowed slice path automatically.
    ///
    /// [`Transport::recv_batch`]: crate::transport::Transport::recv_batch
    pub fn decode_frame(frame: Frame<'_>) -> Result<Pdu, NvmeofError> {
        match frame {
            Frame::Owned(b) => Self::decode(b),
            Frame::Borrowed(s) => Self::decode_slice(s),
        }
    }

    fn decode_impl<B: FrameBuf>(mut src: B) -> Result<Pdu, NvmeofError> {
        if src.remaining() < HEADER_LEN {
            return Err(NvmeofError::Codec("header truncated".into()));
        }
        let ptype = src.get_u8();
        let flags = src.get_u8();
        let hlen = src.get_u8();
        let rsvd = src.get_u8();
        let plen = src.get_u32_le() as usize;
        let stored_crc = src.get_u32_le();
        if hlen as usize != HEADER_LEN {
            return Err(NvmeofError::Codec(format!("bad hlen {hlen}")));
        }
        if plen != HEADER_LEN + src.remaining() {
            return Err(NvmeofError::Codec(format!(
                "plen {plen} does not match frame length {}",
                HEADER_LEN + src.remaining()
            )));
        }
        // Structural checks passed; now verify integrity. The header has
        // already been consumed, so hash its fields back in front of the
        // remaining body, with the CRC field zeroed per convention.
        let mut crc = crc32_update(0xFFFF_FFFF, &[ptype, flags, hlen, rsvd]);
        crc = crc32_update(crc, &(plen as u32).to_le_bytes());
        crc = crc32_update(crc, &[0u8; 4]);
        crc = crc32_update(crc, src.whole());
        if !crc != stored_crc {
            return Err(NvmeofError::CorruptFrame);
        }
        match ptype {
            ptype::ICREQ => {
                if src.remaining() < 18 {
                    return Err(NvmeofError::Codec("icreq truncated".into()));
                }
                Ok(Pdu::ICReq(ICReq {
                    pfv: src.get_u16_le(),
                    maxr2t: src.get_u32_le(),
                    af_caps: src.get_u32_le(),
                    host_id: src.get_u64_le(),
                }))
            }
            ptype::ICRESP => {
                if src.remaining() < 18 {
                    return Err(NvmeofError::Codec("icresp truncated".into()));
                }
                Ok(Pdu::ICResp(ICResp {
                    pfv: src.get_u16_le(),
                    ioccsz: src.get_u32_le(),
                    af_caps: src.get_u32_le(),
                    target_id: src.get_u64_le(),
                }))
            }
            ptype::CAPSULE_CMD => {
                let cmd = NvmeCommand::decode(&mut src)?;
                if src.remaining() < 1 {
                    return Err(NvmeofError::Codec("capsule data marker missing".into()));
                }
                let has_data = src.get_u8() != 0;
                let data = if has_data {
                    Some(decode_dataref(&mut src, flags)?)
                } else {
                    None
                };
                Ok(Pdu::CapsuleCmd(CapsuleCmd { cmd, data }))
            }
            ptype::CAPSULE_RESP => Ok(Pdu::CapsuleResp(CapsuleResp {
                completion: NvmeCompletion::decode(&mut src)?,
            })),
            ptype::R2T => {
                if src.remaining() < 12 {
                    return Err(NvmeofError::Codec("r2t truncated".into()));
                }
                Ok(Pdu::R2T(R2T {
                    cid: src.get_u16_le(),
                    ttag: src.get_u16_le(),
                    offset: src.get_u32_le(),
                    len: src.get_u32_le(),
                }))
            }
            ptype::H2C_DATA | ptype::C2H_DATA => {
                if src.remaining() < 8 {
                    return Err(NvmeofError::Codec("data pdu truncated".into()));
                }
                let cid = src.get_u16_le();
                let ttag = src.get_u16_le();
                let offset = src.get_u32_le();
                let data = decode_dataref(&mut src, flags)?;
                let pdu = DataPdu {
                    cid,
                    ttag,
                    offset,
                    last: flags & FLAG_LAST != 0,
                    data,
                };
                if ptype == ptype::H2C_DATA {
                    Ok(Pdu::H2CData(pdu))
                } else {
                    Ok(Pdu::C2HData(pdu))
                }
            }
            ptype::TERM_REQ => {
                if src.remaining() < 2 {
                    return Err(NvmeofError::Codec("termreq truncated".into()));
                }
                Ok(Pdu::TermReq(TermReq {
                    reason: src.get_u16_le(),
                }))
            }
            ptype::KEEP_ALIVE | ptype::KEEP_ALIVE_ACK => {
                if src.remaining() < 8 {
                    return Err(NvmeofError::Codec("keep-alive truncated".into()));
                }
                let ka = KeepAlive {
                    seq: src.get_u64_le(),
                };
                if ptype == ptype::KEEP_ALIVE {
                    Ok(Pdu::KeepAlive(ka))
                } else {
                    Ok(Pdu::KeepAliveAck(ka))
                }
            }
            ptype::ABORT => {
                if src.remaining() < 6 {
                    return Err(NvmeofError::Codec("abort truncated".into()));
                }
                Ok(Pdu::Abort(Abort {
                    cid: src.get_u16_le(),
                    gseq: src.get_u32_le(),
                }))
            }
            ptype::ABORT_ACK => {
                if src.remaining() < 3 + COMPLETION_WIRE_LEN {
                    return Err(NvmeofError::Codec("abort ack truncated".into()));
                }
                let cid = src.get_u16_le();
                let applied = src.get_u8() != 0;
                let completion = NvmeCompletion::decode(&mut src)?;
                Ok(Pdu::AbortAck(AbortAck {
                    cid,
                    applied,
                    completion,
                }))
            }
            ptype::DEGRADE => {
                if src.remaining() < 2 {
                    return Err(NvmeofError::Codec("degrade truncated".into()));
                }
                Ok(Pdu::Degrade(Degrade {
                    reason: src.get_u16_le(),
                }))
            }
            other => Err(NvmeofError::Codec(format!("unknown pdu type {other:#x}"))),
        }
    }

    /// Exact encoded size in bytes, computed without encoding.
    ///
    /// Mirrors the `body_len` arithmetic in [`Pdu::encode_into`]; the
    /// codec tests assert the two stay in lock-step.
    pub fn encoded_len(&self) -> usize {
        let body = match self {
            Pdu::ICReq(_) | Pdu::ICResp(_) => 18,
            Pdu::CapsuleCmd(p) => match &p.data {
                None => COMMAND_WIRE_LEN + 1,
                Some(DataRef::Inline(b)) => COMMAND_WIRE_LEN + 1 + 4 + b.len(),
                Some(DataRef::ShmSlot { .. }) => COMMAND_WIRE_LEN + 1 + 8,
            },
            Pdu::CapsuleResp(_) => COMPLETION_WIRE_LEN,
            Pdu::R2T(_) => 12,
            Pdu::H2CData(p) | Pdu::C2HData(p) => match &p.data {
                DataRef::Inline(b) => 8 + 4 + b.len(),
                DataRef::ShmSlot { .. } => 8 + 8,
            },
            Pdu::TermReq(_) => 2,
            Pdu::KeepAlive(_) | Pdu::KeepAliveAck(_) => 8,
            Pdu::Abort(_) => 6,
            Pdu::AbortAck(_) => 3 + COMPLETION_WIRE_LEN,
            Pdu::Degrade(_) => 2,
        };
        HEADER_LEN + body
    }

    /// Control-message size of this PDU on the wire, *excluding* inline
    /// payload bytes — the quantity the latency models charge to the
    /// control path.
    pub fn control_len(&self) -> usize {
        self.encoded_len() - self.payload_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(p: Pdu) {
        let frame = p.encode();
        assert_eq!(frame.len(), p.encoded_len());
        let from_slice = Pdu::decode_slice(&frame).unwrap();
        assert_eq!(from_slice, p);
        let back = Pdu::decode(frame).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn icreq_icresp_roundtrip() {
        roundtrip(Pdu::ICReq(ICReq {
            pfv: 1,
            maxr2t: 16,
            af_caps: AF_CAP_SHM | AF_CAP_ZERO_COPY,
            host_id: 0x1122_3344_5566_7788,
        }));
        roundtrip(Pdu::ICResp(ICResp {
            pfv: 1,
            ioccsz: 8192,
            af_caps: AF_CAP_SHM,
            target_id: 42,
        }));
    }

    #[test]
    fn capsule_cmd_variants_roundtrip() {
        roundtrip(Pdu::CapsuleCmd(CapsuleCmd {
            cmd: NvmeCommand::read(5, 1, 100, 8),
            data: None,
        }));
        roundtrip(Pdu::CapsuleCmd(CapsuleCmd {
            cmd: NvmeCommand::write(6, 1, 0, 1),
            data: Some(DataRef::Inline(Bytes::from_static(b"in-capsule bytes"))),
        }));
        roundtrip(Pdu::CapsuleCmd(CapsuleCmd {
            cmd: NvmeCommand::write(7, 1, 0, 32),
            data: Some(DataRef::ShmSlot {
                slot: 17,
                len: 131072,
            }),
        }));
    }

    #[test]
    fn data_pdus_roundtrip() {
        roundtrip(Pdu::H2CData(DataPdu {
            cid: 1,
            ttag: 9,
            offset: 4096,
            last: true,
            data: DataRef::Inline(Bytes::from(vec![0xee; 512])),
        }));
        roundtrip(Pdu::C2HData(DataPdu {
            cid: 2,
            ttag: 0,
            offset: 0,
            last: false,
            data: DataRef::ShmSlot {
                slot: 3,
                len: 65536,
            },
        }));
    }

    #[test]
    fn r2t_and_term_roundtrip() {
        roundtrip(Pdu::R2T(R2T {
            cid: 11,
            ttag: 12,
            offset: 0,
            len: 128 * 1024,
        }));
        roundtrip(Pdu::TermReq(TermReq { reason: 2 }));
    }

    #[test]
    fn plen_mismatch_rejected() {
        let mut frame = BytesMut::from(&Pdu::TermReq(TermReq { reason: 0 }).encode()[..]);
        frame.extend_from_slice(&[0u8; 3]); // trailing garbage
        assert!(matches!(
            Pdu::decode(frame.freeze()),
            Err(NvmeofError::Codec(_))
        ));
    }

    #[test]
    fn truncated_frames_rejected() {
        let full = Pdu::R2T(R2T {
            cid: 1,
            ttag: 2,
            offset: 3,
            len: 4,
        })
        .encode();
        for cut in [0, 1, HEADER_LEN - 1, HEADER_LEN + 3] {
            let partial = full.slice(0..cut);
            assert!(Pdu::decode(partial).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn unknown_type_rejected() {
        let mut raw = BytesMut::new();
        raw.put_u8(0x7f);
        raw.put_u8(0);
        raw.put_u8(HEADER_LEN as u8);
        raw.put_u8(0);
        raw.put_u32_le(HEADER_LEN as u32);
        raw.put_u32_le(0);
        let crc = frame_crc(&raw);
        raw[CRC_OFFSET..CRC_OFFSET + 4].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Pdu::decode(raw.freeze()),
            Err(NvmeofError::Codec(m)) if m.contains("unknown pdu type")
        ));
    }

    #[test]
    fn recovery_pdus_roundtrip() {
        roundtrip(Pdu::KeepAlive(KeepAlive { seq: 7 }));
        roundtrip(Pdu::KeepAliveAck(KeepAlive { seq: u64::MAX }));
        roundtrip(Pdu::Abort(Abort {
            cid: 0x1234,
            gseq: 0xdead_beef,
        }));
        roundtrip(Pdu::AbortAck(AbortAck {
            cid: 0x1234,
            applied: true,
            completion: NvmeCompletion::ok(0x1234),
        }));
        roundtrip(Pdu::AbortAck(AbortAck {
            cid: 9,
            applied: false,
            completion: NvmeCompletion::error(9, crate::nvme::completion::Status::InternalError),
        }));
        roundtrip(Pdu::Degrade(Degrade { reason: 1 }));
    }

    #[test]
    fn corrupted_frames_surface_as_corrupt_frame() {
        let p = Pdu::CapsuleCmd(CapsuleCmd {
            cmd: NvmeCommand::write(3, 1, 64, 8),
            data: Some(DataRef::Inline(Bytes::from_static(b"payload bytes"))),
        });
        let clean = p.encode();
        // Flip every byte position in turn; every flip must surface as a
        // typed error (CorruptFrame for body/CRC damage, Codec when the
        // flip lands on a structural length field), never as a wrong
        // decode or a panic.
        for pos in 0..clean.len() {
            let mut bad = clean.to_vec();
            bad[pos] ^= 0x40;
            match Pdu::decode_slice(&bad) {
                Err(NvmeofError::CorruptFrame) | Err(NvmeofError::Codec(_)) => {}
                other => panic!("flip at {pos} produced {other:?}"),
            }
        }
        // The pristine frame still decodes.
        assert_eq!(Pdu::decode(clean).unwrap(), p);
    }

    #[test]
    fn control_len_excludes_inline_payload() {
        let big = Pdu::C2HData(DataPdu {
            cid: 1,
            ttag: 0,
            offset: 0,
            last: true,
            data: DataRef::Inline(Bytes::from(vec![0u8; 100_000])),
        });
        assert!(big.control_len() < 64);
        let shm = Pdu::C2HData(DataPdu {
            cid: 1,
            ttag: 0,
            offset: 0,
            last: true,
            data: DataRef::ShmSlot {
                slot: 0,
                len: 100_000,
            },
        });
        assert!(shm.control_len() < 64);
        assert_eq!(shm.encode().len(), shm.control_len());
    }

    #[test]
    fn encode_into_reuses_scratch_capacity() {
        let mut scratch = BytesMut::with_capacity(256);
        let cap_before = scratch.capacity();
        let pdus = [
            Pdu::CapsuleCmd(CapsuleCmd {
                cmd: NvmeCommand::write(1, 1, 0, 8),
                data: Some(DataRef::ShmSlot { slot: 2, len: 4096 }),
            }),
            Pdu::CapsuleResp(CapsuleResp {
                completion: NvmeCompletion::ok(1),
            }),
            Pdu::R2T(R2T {
                cid: 1,
                ttag: 3,
                offset: 0,
                len: 4096,
            }),
        ];
        for p in &pdus {
            scratch.clear();
            p.encode_into(&mut scratch);
            assert_eq!(scratch.len(), p.encoded_len());
            assert_eq!(Pdu::decode_slice(&scratch).unwrap(), *p);
        }
        assert_eq!(scratch.capacity(), cap_before, "scratch reallocated");
    }

    #[test]
    fn decode_frame_handles_both_variants() {
        use crate::transport::Frame;
        let p = Pdu::CapsuleResp(CapsuleResp {
            completion: NvmeCompletion::ok(9),
        });
        let frame = p.encode();
        assert_eq!(Pdu::decode_frame(Frame::Borrowed(&frame)).unwrap(), p);
        assert_eq!(Pdu::decode_frame(Frame::Owned(frame)).unwrap(), p);
    }

    #[test]
    fn split_encode_is_wire_identical_to_coalesced() {
        for (last, ctor) in [(false, false), (true, false), (false, true), (true, true)] {
            let payload = Bytes::from((0u8..=255).cycle().take(1000).collect::<Vec<u8>>());
            let pdu = DataPdu {
                cid: 7,
                ttag: 9,
                offset: 0x1_0000,
                last,
                data: DataRef::Inline(payload),
            };
            let pdu = if ctor {
                Pdu::C2HData(pdu)
            } else {
                Pdu::H2CData(pdu)
            };
            let mut whole = BytesMut::new();
            pdu.encode_into(&mut whole);
            let mut prefix = BytesMut::new();
            let tail = pdu.encode_split_into(&mut prefix).expect("inline data");
            let mut glued = prefix.to_vec();
            glued.extend_from_slice(tail);
            assert_eq!(&glued[..], &whole[..], "last={last} c2h={ctor}");
            assert_eq!(Pdu::decode_slice(&glued).unwrap(), pdu);
        }
    }

    #[test]
    fn split_encode_declines_non_inline_pdus() {
        let mut scratch = BytesMut::new();
        let shm = Pdu::H2CData(DataPdu {
            cid: 1,
            ttag: 2,
            offset: 0,
            last: true,
            data: DataRef::ShmSlot { slot: 3, len: 4096 },
        });
        assert!(shm.encode_split_into(&mut scratch).is_none());
        assert!(scratch.is_empty(), "declined encode must not emit bytes");
        let r2t = Pdu::R2T(R2T {
            cid: 1,
            ttag: 2,
            offset: 0,
            len: 4096,
        });
        assert!(r2t.encode_split_into(&mut scratch).is_none());
    }

    #[test]
    fn dataref_len_and_kind() {
        let inline = DataRef::Inline(Bytes::from_static(b"xyz"));
        assert_eq!(inline.len(), 3);
        assert!(!inline.is_shm());
        let slot = DataRef::ShmSlot { slot: 1, len: 0 };
        assert!(slot.is_empty());
        assert!(slot.is_shm());
    }
}
