//! The multi-connection storage service.
//!
//! The paper's architecture (Fig. 1) has one storage service per target
//! VM serving several client applications, each over its own connection
//! and — when co-located — its own isolated shared-memory channel (§4.2,
//! §6). [`spawn_multi`] runs a single poll-mode reactor (an SPDK poll
//! group) that services every connection against one shared controller
//! set.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::BytesMut;

use crate::error::NvmeofError;
use crate::nvme::controller::Controller;
use crate::payload::PayloadChannel;
use crate::pdu::Pdu;
use crate::target::{TargetConfig, TargetConnection, TargetHandle};
use crate::transport::Transport;
use crate::tune::{BusyPollController, PollClass};
use oaf_telemetry::Registry;

/// One client connection a [`spawn_multi`] reactor services.
pub struct ConnectionSpec {
    /// The connection's control transport.
    pub transport: Box<dyn Transport>,
    /// Per-connection configuration (capability grants, identities).
    pub cfg: TargetConfig,
    /// The connection's isolated payload channel, if the client is
    /// co-located.
    pub payload: Option<Arc<dyn PayloadChannel>>,
    /// Telemetry scope name for this connection's target-side metrics
    /// (`target_conn<index>` when `None` and a registry is supplied).
    pub scope: Option<String>,
}

/// A wired, servable connection owned by exactly one reactor. Opaque
/// outside the crate: instances are built by the spawn functions (or
/// [`crate::shard::ShardedTarget::add_connection`]) and only ever
/// travel *into* a reactor, never out.
pub struct LiveConnection {
    transport: Box<dyn Transport>,
    conn: TargetConnection,
    alive: bool,
    /// Reusable response staging and encode scratch: the steady-state
    /// poll pass allocates nothing per frame.
    out: Vec<Pdu>,
    scratch: BytesMut,
}

impl LiveConnection {
    /// Wires one spec into a servable connection, registering its
    /// target-side metric bundle under the spec's scope name (or
    /// `target_conn<index>`) when a registry is supplied.
    pub(crate) fn build(
        spec: ConnectionSpec,
        index: usize,
        registry: Option<&Registry>,
    ) -> LiveConnection {
        let conn = TargetConnection::new(spec.cfg, spec.payload);
        if let Some(reg) = registry {
            let name = spec.scope.unwrap_or_else(|| format!("target_conn{index}"));
            conn.metrics().register(&reg.scope(&name));
        }
        LiveConnection {
            conn,
            transport: spec.transport,
            alive: true,
            out: Vec::new(),
            scratch: BytesMut::with_capacity(4096),
        }
    }
}

/// One poll-mode reactor's connection set and idle policy — the reusable
/// core of both [`spawn_multi`] (one reactor, every connection) and the
/// sharded runtime in [`crate::shard`] (one reactor per shard, each
/// owning a disjoint connection set).
pub(crate) struct Reactor {
    live: Vec<LiveConnection>,
    poller: BusyPollController,
    last_work: std::time::Instant,
    idle_sleep: Duration,
}

impl Reactor {
    // Workload-adaptive idle policy (§4.5, Fig. 10): the reactor learns
    // the typical gap between work arrivals and keeps spinning while the
    // next frame is expected imminently; past that budget it backs off
    // exponentially so an idle reactor does not burn a core.
    const IDLE_SLEEP_MIN: Duration = Duration::from_micros(5);
    const IDLE_SLEEP_MAX: Duration = Duration::from_micros(500);
    const GAP_CLAMP: Duration = Duration::from_millis(1);

    pub(crate) fn new(live: Vec<LiveConnection>) -> Self {
        Reactor {
            live,
            poller: BusyPollController::new(),
            last_work: std::time::Instant::now(),
            idle_sleep: Self::IDLE_SLEEP_MIN,
        }
    }

    /// Adopts another connection into this reactor's set (sharded
    /// runtime: delivered through the shard's admin mailbox, so only the
    /// owning thread ever touches the set).
    pub(crate) fn add(&mut self, conn: LiveConnection) {
        self.live.push(conn);
    }

    pub(crate) fn any_alive(&self) -> bool {
        self.live.iter().any(|l| l.alive)
    }

    pub(crate) fn alive_count(&self) -> usize {
        self.live.iter().filter(|l| l.alive).count()
    }

    /// One fair round-robin pass over every live connection (like an
    /// SPDK poll group): drain ready frames batched, execute against
    /// `controller`, flush responses. Returns how many frames were
    /// drained (0 = the pass was idle).
    pub(crate) fn poll_pass(&mut self, controller: &mut Controller) -> Result<usize, NvmeofError> {
        let mut drained_total = 0;
        for l in self.live.iter_mut() {
            if !l.alive {
                continue;
            }
            let mut err = None;
            let drained = {
                let conn = &mut l.conn;
                let out = &mut l.out;
                l.transport.recv_batch(&mut |frame| {
                    if err.is_none() {
                        if let Err(e) = conn.handle(frame, controller, out) {
                            err = Some(e);
                        }
                    }
                })
            };
            match (drained, err) {
                (Err(NvmeofError::TransportClosed), _) => {
                    l.alive = false;
                    continue;
                }
                // A misbehaving peer (protocol violation) kills its own
                // connection, never the reactor — the other clients keep
                // their storage service.
                (_, Some(_)) => {
                    l.alive = false;
                    continue;
                }
                (Err(e), _) => return Err(e),
                (Ok(n), None) => drained_total += n,
            }
            // Probe the connection's sync-done queue: barrier
            // completions parked on offloaded tickets release here, and
            // count as progress so the idle policy keeps the reactor
            // hot while syncs are retiring.
            drained_total += l.conn.poll_parked(controller, &mut l.out);
            for pdu in l.out.drain(..) {
                l.scratch.clear();
                // Socket transports take the vectored header +
                // borrowed-payload path so large C2H data never gets
                // coalesced into the scratch buffer.
                let sent = if l.transport.prefers_split() {
                    match pdu.encode_split_into(&mut l.scratch) {
                        Some(payload) => l.transport.send_split(&l.scratch, payload),
                        None => {
                            l.scratch.clear();
                            pdu.encode_into(&mut l.scratch);
                            l.transport.send_frame(&l.scratch)
                        }
                    }
                } else {
                    pdu.encode_into(&mut l.scratch);
                    l.transport.send_frame(&l.scratch)
                };
                // A peer that hung up or a ring stuck full past the
                // backoff budget kills the connection, not the reactor.
                match sent {
                    Ok(()) => {}
                    Err(NvmeofError::TransportClosed) | Err(NvmeofError::RingFull) => {
                        l.alive = false;
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
            if l.conn.terminated() {
                l.alive = false;
            }
        }
        Ok(drained_total)
    }

    /// Advances the adaptive idle policy after a poll pass: spin while
    /// the next arrival is expected within the learned budget, back off
    /// exponentially past it.
    pub(crate) fn idle_step(&mut self, progressed: bool) {
        if progressed {
            self.poller.observe(
                PollClass::Read,
                self.last_work.elapsed().min(Self::GAP_CLAMP),
            );
            self.last_work = std::time::Instant::now();
            self.idle_sleep = Self::IDLE_SLEEP_MIN;
        } else if self.last_work.elapsed() < self.poller.budget(PollClass::Read) {
            std::hint::spin_loop();
        } else {
            std::thread::sleep(self.idle_sleep);
            self.idle_sleep = (self.idle_sleep * 2).min(Self::IDLE_SLEEP_MAX);
        }
    }
}

/// Spawns one reactor servicing `conns` connections over a shared
/// controller. The reactor exits once every connection has terminated or
/// the handle requests shutdown.
pub fn spawn_multi(controller: Controller, conns: Vec<ConnectionSpec>) -> TargetHandle {
    spawn_multi_observed(controller, conns, None)
}

/// [`spawn_multi`] with telemetry: each connection's target-side metric
/// bundle is registered into `registry` under the spec's scope name (or
/// `target_conn<index>`) before the reactor starts, so observers see the
/// per-connection split from the first served command.
pub fn spawn_multi_observed(
    mut controller: Controller,
    conns: Vec<ConnectionSpec>,
    registry: Option<&Registry>,
) -> TargetHandle {
    let live_init: Vec<LiveConnection> = conns
        .into_iter()
        .enumerate()
        .map(|(i, c)| LiveConnection::build(c, i, registry))
        .collect();
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let join = std::thread::Builder::new()
        .name("nvmeof-target-multi".into())
        .spawn(move || {
            let mut reactor = Reactor::new(live_init);
            while !stop2.load(Ordering::Acquire) && reactor.any_alive() {
                let drained = reactor.poll_pass(&mut controller)?;
                reactor.idle_step(drained > 0);
            }
            Ok(())
        })
        .expect("spawn multi-target thread");
    TargetHandle::from_parts(stop, join)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::initiator::{Initiator, InitiatorOptions};
    use crate::nvme::namespace::Namespace;
    use crate::transport::MemTransport;
    use bytes::Bytes;

    const TIMEOUT: Duration = Duration::from_secs(5);

    fn controller() -> Controller {
        let mut c = Controller::new();
        c.add_namespace(Namespace::new(1, 4096, 2048));
        c
    }

    #[test]
    fn two_clients_share_one_service() {
        let (c1, t1) = MemTransport::pair();
        let (c2, t2) = MemTransport::pair();
        let handle = spawn_multi(
            controller(),
            vec![
                ConnectionSpec {
                    transport: Box::new(t1),
                    cfg: TargetConfig::default(),
                    payload: None,
                    scope: None,
                },
                ConnectionSpec {
                    transport: Box::new(t2),
                    cfg: TargetConfig::default(),
                    payload: None,
                    scope: None,
                },
            ],
        );
        let mut a = Initiator::connect(c1, InitiatorOptions::default(), None, TIMEOUT).unwrap();
        let mut b = Initiator::connect(c2, InitiatorOptions::default(), None, TIMEOUT).unwrap();

        // Writes through one connection are visible through the other:
        // it is one storage service.
        a.write_blocking(1, 0, 1, Bytes::from(vec![0xaa; 4096]), TIMEOUT)
            .unwrap();
        let via_b = b.read_blocking(1, 0, 1, 4096, TIMEOUT).unwrap();
        assert!(via_b.iter().all(|&x| x == 0xaa));

        // And concurrent disjoint traffic does not interfere.
        b.write_blocking(1, 10, 1, Bytes::from(vec![0xbb; 4096]), TIMEOUT)
            .unwrap();
        assert!(a
            .read_blocking(1, 10, 1, 4096, TIMEOUT)
            .unwrap()
            .iter()
            .all(|&x| x == 0xbb));
        assert!(a
            .read_blocking(1, 0, 1, 4096, TIMEOUT)
            .unwrap()
            .iter()
            .all(|&x| x == 0xaa));

        a.disconnect().unwrap();
        b.disconnect().unwrap();
        handle.shutdown().unwrap();
    }

    #[test]
    fn reactor_survives_one_client_hanging_up() {
        let (c1, t1) = MemTransport::pair();
        let (c2, t2) = MemTransport::pair();
        let handle = spawn_multi(
            controller(),
            vec![
                ConnectionSpec {
                    transport: Box::new(t1),
                    cfg: TargetConfig::default(),
                    payload: None,
                    scope: None,
                },
                ConnectionSpec {
                    transport: Box::new(t2),
                    cfg: TargetConfig::default(),
                    payload: None,
                    scope: None,
                },
            ],
        );
        let a = Initiator::connect(c1, InitiatorOptions::default(), None, TIMEOUT).unwrap();
        let mut b = Initiator::connect(c2, InitiatorOptions::default(), None, TIMEOUT).unwrap();
        drop(a); // client 1 vanishes without a TermReq
        for i in 0..8 {
            b.write_blocking(1, i, 1, Bytes::from(vec![i as u8; 4096]), TIMEOUT)
                .unwrap();
        }
        b.disconnect().unwrap();
        handle.shutdown().unwrap();
    }
}
