//! NVMe submission-queue entries (commands).
//!
//! A fixed 32-byte wire layout modeled on the NVMe SQE fields the paper's
//! workloads exercise. `nlb` follows this crate's convention of a *count*
//! (not the spec's zero-based encoding) to keep call sites honest; the
//! codec is the only place a wire format exists.
//!
//! The [`Opcode`] classification methods ([`carries_host_data`],
//! [`mutates`], [`replayable_without_payload`]) are the single source of
//! truth for how the target dispatches a command and how the initiator
//! retries it after a transport fault — call sites must not hand-roll
//! opcode lists.
//!
//! [`carries_host_data`]: Opcode::carries_host_data
//! [`mutates`]: Opcode::mutates
//! [`replayable_without_payload`]: Opcode::replayable_without_payload

use bytes::{Buf, BufMut};

use crate::error::NvmeofError;

/// NVMe opcodes supported by the reproduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// Flush the volatile write cache.
    Flush = 0x00,
    /// Write blocks.
    Write = 0x01,
    /// Read blocks.
    Read = 0x02,
    /// Compare blocks against a payload (fails with `CompareFailure` on
    /// mismatch).
    Compare = 0x05,
    /// Identify controller/namespace (admin, simplified).
    Identify = 0x06,
    /// Write zeroes over a block range without transferring a payload.
    WriteZeroes = 0x08,
    /// Dataset Management: deallocate (TRIM) a block range.
    Dsm = 0x09,
}

impl Opcode {
    fn from_u8(v: u8) -> Result<Opcode, NvmeofError> {
        Ok(match v {
            0x00 => Opcode::Flush,
            0x01 => Opcode::Write,
            0x02 => Opcode::Read,
            0x05 => Opcode::Compare,
            0x06 => Opcode::Identify,
            0x08 => Opcode::WriteZeroes,
            0x09 => Opcode::Dsm,
            other => return Err(NvmeofError::Codec(format!("unknown opcode {other:#x}"))),
        })
    }

    /// Does this command ship a host→controller data payload? Drives
    /// target dispatch: these go through the in-capsule/R2T write path,
    /// everything else executes directly from the capsule.
    pub fn carries_host_data(self) -> bool {
        matches!(self, Opcode::Write | Opcode::Compare)
    }

    /// Does this command change namespace state? The initiator must
    /// never blind-retry a mutating command after a transport fault —
    /// the first attempt may have been applied.
    pub fn mutates(self) -> bool {
        matches!(self, Opcode::Write | Opcode::WriteZeroes | Opcode::Dsm)
    }

    /// Mutating, but fully described by the command itself (no data
    /// payload) — resubmission after an abort round-trip needs no
    /// stashed payload.
    pub fn replayable_without_payload(self) -> bool {
        matches!(self, Opcode::WriteZeroes | Opcode::Dsm)
    }

    /// Safe to resubmit freely after a transport fault: anything
    /// non-mutating (reads, flush, compare, identify) is idempotent at
    /// the storage level.
    pub fn retries_freely(self) -> bool {
        !self.mutates()
    }
}

/// An NVMe command.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NvmeCommand {
    /// Command identifier, unique among in-flight commands on a queue.
    pub cid: u16,
    /// Operation.
    pub opcode: Opcode,
    /// Namespace identifier.
    pub nsid: u32,
    /// Starting logical block address.
    pub slba: u64,
    /// Number of logical blocks (a count; must be ≥ 1 for I/O commands).
    pub nlb: u32,
    /// Force Unit Access: the write (or zeroes/deallocate) must be
    /// durable before the completion is posted.
    pub fua: bool,
    /// Generation tag: monotonically increasing per connection, fresh on
    /// every (re)submission. Wire cids are 16 bits and reused; the
    /// recovery protocol's retired/aborted rings match on `(cid, gseq)`
    /// so a cid recycled past ring capacity can never be confused with
    /// an old incarnation (see [`crate::recovery`]).
    pub gseq: u32,
}

/// Encoded size of a command on the wire.
pub const COMMAND_WIRE_LEN: usize = 32;

/// Bit 0 of the flags byte (offset 1): FUA.
const FLAG_FUA: u8 = 0x01;

impl NvmeCommand {
    /// Convenience constructor for a read.
    pub fn read(cid: u16, nsid: u32, slba: u64, nlb: u32) -> Self {
        NvmeCommand {
            cid,
            opcode: Opcode::Read,
            nsid,
            slba,
            nlb,
            fua: false,
            gseq: 0,
        }
    }

    /// Convenience constructor for a write.
    pub fn write(cid: u16, nsid: u32, slba: u64, nlb: u32) -> Self {
        NvmeCommand {
            cid,
            opcode: Opcode::Write,
            nsid,
            slba,
            nlb,
            fua: false,
            gseq: 0,
        }
    }

    /// Convenience constructor for a write with Force Unit Access set:
    /// durable on media before completion.
    pub fn write_fua(cid: u16, nsid: u32, slba: u64, nlb: u32) -> Self {
        NvmeCommand {
            fua: true,
            ..Self::write(cid, nsid, slba, nlb)
        }
    }

    /// Convenience constructor for a flush.
    pub fn flush(cid: u16, nsid: u32) -> Self {
        NvmeCommand {
            cid,
            opcode: Opcode::Flush,
            nsid,
            slba: 0,
            nlb: 0,
            fua: false,
            gseq: 0,
        }
    }

    /// Convenience constructor for a compare.
    pub fn compare(cid: u16, nsid: u32, slba: u64, nlb: u32) -> Self {
        NvmeCommand {
            cid,
            opcode: Opcode::Compare,
            nsid,
            slba,
            nlb,
            fua: false,
            gseq: 0,
        }
    }

    /// Convenience constructor for write-zeroes.
    pub fn write_zeroes(cid: u16, nsid: u32, slba: u64, nlb: u32) -> Self {
        NvmeCommand {
            cid,
            opcode: Opcode::WriteZeroes,
            nsid,
            slba,
            nlb,
            fua: false,
            gseq: 0,
        }
    }

    /// Convenience constructor for Dataset Management deallocate (TRIM).
    pub fn trim(cid: u16, nsid: u32, slba: u64, nlb: u32) -> Self {
        NvmeCommand {
            cid,
            opcode: Opcode::Dsm,
            nsid,
            slba,
            nlb,
            fua: false,
            gseq: 0,
        }
    }

    /// Payload bytes this command moves given the namespace block size.
    pub fn transfer_len(&self, block_size: u32) -> u64 {
        match self.opcode {
            Opcode::Read | Opcode::Write | Opcode::Compare => {
                u64::from(self.nlb) * u64::from(block_size)
            }
            _ => 0,
        }
    }

    /// Serializes into `dst`.
    pub fn encode<B: BufMut>(&self, dst: &mut B) {
        dst.put_u8(self.opcode as u8);
        dst.put_u8(if self.fua { FLAG_FUA } else { 0 });
        dst.put_u16_le(self.cid);
        dst.put_u32_le(self.nsid);
        dst.put_u64_le(self.slba);
        dst.put_u32_le(self.nlb);
        dst.put_u32_le(self.gseq);
        dst.put_bytes(0, COMMAND_WIRE_LEN - 24); // pad to fixed size
    }

    /// Deserializes from `src`.
    pub fn decode<B: Buf>(src: &mut B) -> Result<Self, NvmeofError> {
        if src.remaining() < COMMAND_WIRE_LEN {
            return Err(NvmeofError::Codec(format!(
                "command truncated: {} < {COMMAND_WIRE_LEN}",
                src.remaining()
            )));
        }
        let opcode = Opcode::from_u8(src.get_u8())?;
        let fua = src.get_u8() & FLAG_FUA != 0;
        let cid = src.get_u16_le();
        let nsid = src.get_u32_le();
        let slba = src.get_u64_le();
        let nlb = src.get_u32_le();
        let gseq = src.get_u32_le();
        src.advance(COMMAND_WIRE_LEN - 24);
        Ok(NvmeCommand {
            cid,
            opcode,
            nsid,
            slba,
            nlb,
            fua,
            gseq,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn encode_decode_roundtrip() {
        let mut cmd = NvmeCommand::write(42, 3, 0xdead_beef_cafe, 256);
        cmd.gseq = 0xfeed_f00d;
        let mut buf = BytesMut::new();
        cmd.encode(&mut buf);
        assert_eq!(buf.len(), COMMAND_WIRE_LEN);
        let mut bytes = buf.freeze();
        let back = NvmeCommand::decode(&mut bytes).unwrap();
        assert_eq!(back, cmd);
    }

    #[test]
    fn truncated_input_rejected() {
        let cmd = NvmeCommand::read(1, 1, 0, 8);
        let mut buf = BytesMut::new();
        cmd.encode(&mut buf);
        let mut short = buf.freeze().slice(0..10);
        assert!(matches!(
            NvmeCommand::decode(&mut short),
            Err(NvmeofError::Codec(_))
        ));
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut raw = BytesMut::new();
        raw.put_u8(0x77);
        raw.put_bytes(0, COMMAND_WIRE_LEN - 1);
        let mut bytes = raw.freeze();
        assert!(matches!(
            NvmeCommand::decode(&mut bytes),
            Err(NvmeofError::Codec(_))
        ));
    }

    #[test]
    fn transfer_len_is_blocks_times_block_size() {
        let cmd = NvmeCommand::read(1, 1, 0, 32);
        assert_eq!(cmd.transfer_len(4096), 128 * 1024);
        assert_eq!(NvmeCommand::flush(1, 1).transfer_len(4096), 0);
        // DSM names a range but moves no payload.
        assert_eq!(NvmeCommand::trim(1, 1, 0, 1 << 20).transfer_len(4096), 0);
    }

    #[test]
    fn fua_survives_the_wire() {
        let cmd = NvmeCommand::write_fua(7, 1, 64, 8);
        assert!(cmd.fua);
        let mut buf = BytesMut::new();
        cmd.encode(&mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(NvmeCommand::decode(&mut bytes).unwrap(), cmd);
    }

    #[test]
    fn all_opcodes_roundtrip() {
        for cmd in [
            NvmeCommand::read(1, 1, 5, 1),
            NvmeCommand::write(2, 1, 5, 1),
            NvmeCommand::write_fua(9, 1, 5, 1),
            NvmeCommand::flush(3, 1),
            NvmeCommand::compare(5, 1, 5, 1),
            NvmeCommand::write_zeroes(6, 1, 5, 4),
            NvmeCommand::trim(7, 1, 5, 4),
            NvmeCommand {
                cid: 4,
                opcode: Opcode::Identify,
                nsid: 0,
                slba: 0,
                nlb: 0,
                fua: false,
                gseq: 0,
            },
        ] {
            let mut buf = BytesMut::new();
            cmd.encode(&mut buf);
            let mut b = buf.freeze();
            assert_eq!(NvmeCommand::decode(&mut b).unwrap(), cmd);
        }
    }

    #[test]
    fn opcode_classes_partition_sensibly() {
        use Opcode::*;
        let all = [Flush, Write, Read, Compare, Identify, WriteZeroes, Dsm];
        for op in all {
            // Exactly the mutating commands are barred from free retry.
            assert_eq!(op.retries_freely(), !op.mutates(), "{op:?}");
            // Payload-free replayable commands must be mutating ones
            // (otherwise they would just retry freely).
            if op.replayable_without_payload() {
                assert!(op.mutates(), "{op:?}");
                assert!(!op.carries_host_data(), "{op:?}");
            }
        }
        assert!(Write.carries_host_data() && Compare.carries_host_data());
        assert!(!Read.carries_host_data());
        assert!(Dsm.mutates() && WriteZeroes.mutates() && Write.mutates());
        assert!(!Flush.mutates() && !Compare.mutates());
    }
}
