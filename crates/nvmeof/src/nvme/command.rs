//! NVMe submission-queue entries (commands).
//!
//! A fixed 32-byte wire layout modeled on the NVMe SQE fields the paper's
//! workloads exercise. `nlb` follows this crate's convention of a *count*
//! (not the spec's zero-based encoding) to keep call sites honest; the
//! codec is the only place a wire format exists.

use bytes::{Buf, BufMut};

use crate::error::NvmeofError;

/// NVMe opcodes supported by the reproduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// Flush the volatile write cache.
    Flush = 0x00,
    /// Write blocks.
    Write = 0x01,
    /// Read blocks.
    Read = 0x02,
    /// Compare blocks against a payload (fails with `CompareFailure` on
    /// mismatch).
    Compare = 0x05,
    /// Identify controller/namespace (admin, simplified).
    Identify = 0x06,
    /// Write zeroes over a block range without transferring a payload.
    WriteZeroes = 0x08,
}

impl Opcode {
    fn from_u8(v: u8) -> Result<Opcode, NvmeofError> {
        Ok(match v {
            0x00 => Opcode::Flush,
            0x01 => Opcode::Write,
            0x02 => Opcode::Read,
            0x05 => Opcode::Compare,
            0x06 => Opcode::Identify,
            0x08 => Opcode::WriteZeroes,
            other => return Err(NvmeofError::Codec(format!("unknown opcode {other:#x}"))),
        })
    }
}

/// An NVMe command.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NvmeCommand {
    /// Command identifier, unique among in-flight commands on a queue.
    pub cid: u16,
    /// Operation.
    pub opcode: Opcode,
    /// Namespace identifier.
    pub nsid: u32,
    /// Starting logical block address.
    pub slba: u64,
    /// Number of logical blocks (a count; must be ≥ 1 for I/O commands).
    pub nlb: u32,
}

/// Encoded size of a command on the wire.
pub const COMMAND_WIRE_LEN: usize = 32;

impl NvmeCommand {
    /// Convenience constructor for a read.
    pub fn read(cid: u16, nsid: u32, slba: u64, nlb: u32) -> Self {
        NvmeCommand {
            cid,
            opcode: Opcode::Read,
            nsid,
            slba,
            nlb,
        }
    }

    /// Convenience constructor for a write.
    pub fn write(cid: u16, nsid: u32, slba: u64, nlb: u32) -> Self {
        NvmeCommand {
            cid,
            opcode: Opcode::Write,
            nsid,
            slba,
            nlb,
        }
    }

    /// Convenience constructor for a flush.
    pub fn flush(cid: u16, nsid: u32) -> Self {
        NvmeCommand {
            cid,
            opcode: Opcode::Flush,
            nsid,
            slba: 0,
            nlb: 0,
        }
    }

    /// Convenience constructor for a compare.
    pub fn compare(cid: u16, nsid: u32, slba: u64, nlb: u32) -> Self {
        NvmeCommand {
            cid,
            opcode: Opcode::Compare,
            nsid,
            slba,
            nlb,
        }
    }

    /// Convenience constructor for write-zeroes.
    pub fn write_zeroes(cid: u16, nsid: u32, slba: u64, nlb: u32) -> Self {
        NvmeCommand {
            cid,
            opcode: Opcode::WriteZeroes,
            nsid,
            slba,
            nlb,
        }
    }

    /// Payload bytes this command moves given the namespace block size.
    pub fn transfer_len(&self, block_size: u32) -> u64 {
        match self.opcode {
            Opcode::Read | Opcode::Write | Opcode::Compare => {
                u64::from(self.nlb) * u64::from(block_size)
            }
            _ => 0,
        }
    }

    /// Serializes into `dst`.
    pub fn encode<B: BufMut>(&self, dst: &mut B) {
        dst.put_u8(self.opcode as u8);
        dst.put_u8(0); // reserved
        dst.put_u16_le(self.cid);
        dst.put_u32_le(self.nsid);
        dst.put_u64_le(self.slba);
        dst.put_u32_le(self.nlb);
        dst.put_bytes(0, COMMAND_WIRE_LEN - 20); // pad to fixed size
    }

    /// Deserializes from `src`.
    pub fn decode<B: Buf>(src: &mut B) -> Result<Self, NvmeofError> {
        if src.remaining() < COMMAND_WIRE_LEN {
            return Err(NvmeofError::Codec(format!(
                "command truncated: {} < {COMMAND_WIRE_LEN}",
                src.remaining()
            )));
        }
        let opcode = Opcode::from_u8(src.get_u8())?;
        let _reserved = src.get_u8();
        let cid = src.get_u16_le();
        let nsid = src.get_u32_le();
        let slba = src.get_u64_le();
        let nlb = src.get_u32_le();
        src.advance(COMMAND_WIRE_LEN - 20);
        Ok(NvmeCommand {
            cid,
            opcode,
            nsid,
            slba,
            nlb,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn encode_decode_roundtrip() {
        let cmd = NvmeCommand::write(42, 3, 0xdead_beef_cafe, 256);
        let mut buf = BytesMut::new();
        cmd.encode(&mut buf);
        assert_eq!(buf.len(), COMMAND_WIRE_LEN);
        let mut bytes = buf.freeze();
        let back = NvmeCommand::decode(&mut bytes).unwrap();
        assert_eq!(back, cmd);
    }

    #[test]
    fn truncated_input_rejected() {
        let cmd = NvmeCommand::read(1, 1, 0, 8);
        let mut buf = BytesMut::new();
        cmd.encode(&mut buf);
        let mut short = buf.freeze().slice(0..10);
        assert!(matches!(
            NvmeCommand::decode(&mut short),
            Err(NvmeofError::Codec(_))
        ));
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut raw = BytesMut::new();
        raw.put_u8(0x77);
        raw.put_bytes(0, COMMAND_WIRE_LEN - 1);
        let mut bytes = raw.freeze();
        assert!(matches!(
            NvmeCommand::decode(&mut bytes),
            Err(NvmeofError::Codec(_))
        ));
    }

    #[test]
    fn transfer_len_is_blocks_times_block_size() {
        let cmd = NvmeCommand::read(1, 1, 0, 32);
        assert_eq!(cmd.transfer_len(4096), 128 * 1024);
        assert_eq!(NvmeCommand::flush(1, 1).transfer_len(4096), 0);
    }

    #[test]
    fn all_opcodes_roundtrip() {
        for cmd in [
            NvmeCommand::read(1, 1, 5, 1),
            NvmeCommand::write(2, 1, 5, 1),
            NvmeCommand::flush(3, 1),
            NvmeCommand::compare(5, 1, 5, 1),
            NvmeCommand::write_zeroes(6, 1, 5, 4),
            NvmeCommand {
                cid: 4,
                opcode: Opcode::Identify,
                nsid: 0,
                slba: 0,
                nlb: 0,
            },
        ] {
            let mut buf = BytesMut::new();
            cmd.encode(&mut buf);
            let mut b = buf.freeze();
            assert_eq!(NvmeCommand::decode(&mut b).unwrap(), cmd);
        }
    }
}
