//! NVMe namespaces over a pluggable block store.
//!
//! The backing storage is anything implementing
//! [`oaf_ssd::BlockStore`]: the RAM disks for ephemeral targets, or
//! `oaf-store`'s durable [`FileDisk`] for persistence. Each backend has
//! an exclusively-owned single-queue form and a shared multi-queue form
//! that [`Namespace::share`] converts between.

use std::sync::Arc;

use oaf_ssd::ram::{BlockError, RamDisk, SharedRamDisk};
use oaf_ssd::BlockStore;
use oaf_store::{FileDisk, SharedFileDisk, StoreMetrics, SyncHandle, SyncStatus};

use crate::nvme::completion::Status;

/// A parked durability barrier: the data is journaled and applied, the
/// `fdatasync` making it durable is in flight on the store's sync
/// worker. The completion must not be posted until
/// [`Namespace::poll_barrier`] reports it resolved.
#[derive(Clone, Copy, Debug)]
pub struct BarrierTicket(SyncHandle);

/// Resolution state of a [`BarrierTicket`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BarrierPoll {
    /// The sync covering the ticket has not retired yet.
    Pending,
    /// Durable: the success completion may be posted.
    Durable,
    /// The sync failed; the barrier must complete with an error.
    Failed,
}

/// Backing storage: exclusively owned until [`Namespace::share`]
/// converts it to the multi-queue shared form.
enum Store {
    Owned(RamDisk),
    Shared(SharedRamDisk),
    File(Box<FileDisk>),
    SharedFile(SharedFileDisk),
}

/// A namespace: an LBA range with a block size, backed by a [`RamDisk`]
/// or a durable [`FileDisk`] (shared forms once split across queue
/// controllers).
pub struct Namespace {
    id: u32,
    store: Store,
}

impl Namespace {
    /// Creates namespace `id` with `blocks` blocks of `block_size`
    /// bytes, RAM-backed (ephemeral).
    pub fn new(id: u32, block_size: u32, blocks: u64) -> Self {
        assert!(id != 0, "nsid 0 is reserved");
        Namespace {
            id,
            store: Store::Owned(RamDisk::new(block_size, blocks)),
        }
    }

    /// Creates namespace `id` over a durable file-backed store. Flush
    /// and FUA become real `fdatasync` barriers; TRIM punches and
    /// journals the range.
    pub fn with_file(id: u32, disk: FileDisk) -> Self {
        assert!(id != 0, "nsid 0 is reserved");
        Namespace {
            id,
            store: Store::File(Box::new(disk)),
        }
    }

    /// Creates namespace `id` directly over a shared durable store —
    /// the entry point when the store was shared (and possibly given a
    /// sync worker via [`SharedFileDisk::with_sync_worker`]) before the
    /// target was wired.
    pub fn with_shared_file(id: u32, disk: SharedFileDisk) -> Self {
        assert!(id != 0, "nsid 0 is reserved");
        Namespace {
            id,
            store: Store::SharedFile(disk),
        }
    }

    /// Converts the backing store to the shared multi-queue form (if
    /// not already) and returns another view of the *same* storage.
    ///
    /// This is how a sharded target gives every reactor thread its own
    /// `&mut`-free I/O queue into one storage service — the NVMe
    /// multi-queue model. Disjoint LBA ranges may then be driven
    /// concurrently; see [`SharedRamDisk`] for the exclusivity
    /// contract on overlapping writes (the file-backed form inherits
    /// the same contract).
    pub fn share(&mut self) -> Namespace {
        let store = match std::mem::replace(&mut self.store, Store::Owned(RamDisk::new(512, 0))) {
            Store::Owned(disk) => Store::Shared(disk.into_shared()),
            Store::Shared(disk) => Store::Shared(disk),
            Store::File(disk) => Store::SharedFile(disk.into_shared()),
            Store::SharedFile(disk) => Store::SharedFile(disk),
        };
        let twin = match &store {
            Store::Shared(d) => Store::Shared(d.clone()),
            Store::SharedFile(d) => Store::SharedFile(d.clone()),
            _ => unreachable!("share() always lands in a shared variant"),
        };
        self.store = store;
        Namespace {
            id: self.id,
            store: twin,
        }
    }

    /// Namespace identifier.
    pub fn id(&self) -> u32 {
        self.id
    }

    fn store(&self) -> &dyn BlockStore {
        match &self.store {
            Store::Owned(d) => d,
            Store::Shared(d) => d,
            Store::File(d) => &**d,
            Store::SharedFile(d) => d,
        }
    }

    fn store_mut(&mut self) -> &mut dyn BlockStore {
        match &mut self.store {
            Store::Owned(d) => d,
            Store::Shared(d) => d,
            Store::File(d) => &mut **d,
            Store::SharedFile(d) => d,
        }
    }

    /// The durable store's metric bundle, if this namespace is
    /// file-backed (`None` for RAM disks). Register it under a `store`
    /// telemetry scope at wiring time.
    pub fn store_metrics(&self) -> Option<&Arc<StoreMetrics>> {
        match &self.store {
            Store::File(d) => Some(d.metrics()),
            Store::SharedFile(d) => Some(d.metrics()),
            _ => None,
        }
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> u32 {
        self.store().block_size()
    }

    /// Capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.store().capacity_blocks()
    }

    fn map_err(e: BlockError) -> Status {
        match e {
            BlockError::OutOfRange { .. } => Status::LbaOutOfRange,
            BlockError::BadBuffer { .. } => Status::InvalidFieldLength,
            BlockError::Io(_) => Status::InternalError,
        }
    }

    fn status(res: Result<(), BlockError>) -> Status {
        match res {
            Ok(()) => Status::Success,
            Err(e) => Self::map_err(e),
        }
    }

    /// Reads `nlb` blocks at `slba` into `dst`.
    pub fn read(&self, slba: u64, nlb: u32, dst: &mut [u8]) -> Status {
        Self::status(self.store().read(slba, nlb, dst))
    }

    /// Writes `nlb` blocks at `slba` from `src`; with `fua` the write
    /// is durable before the completion is posted.
    pub fn write(&mut self, slba: u64, nlb: u32, src: &[u8], fua: bool) -> Status {
        Self::status(self.store_mut().write(slba, nlb, src, fua))
    }

    /// Zeroes `nlb` blocks at `slba` in place — no staging buffer, so
    /// Write Zeroes stays allocation-free on the target hot path.
    pub fn write_zeroes(&mut self, slba: u64, nlb: u32) -> Status {
        Self::status(self.store_mut().write_zeroes(slba, nlb))
    }

    /// Deallocates `nlb` blocks at `slba` (Dataset Management with the
    /// deallocate attribute). Reads of a trimmed range return zeroes.
    pub fn trim(&mut self, slba: u64, nlb: u32) -> Status {
        Self::status(self.store_mut().trim(slba, nlb))
    }

    /// Durability barrier: everything acknowledged before this flush
    /// survives power loss (a no-op for RAM disks, `fdatasync` for
    /// file-backed stores).
    pub fn flush(&mut self) -> Status {
        Self::status(self.store_mut().flush())
    }

    /// Whether barriers on this namespace resolve through an offloaded
    /// sync worker (so [`write_submit`]/[`flush_submit`] can return
    /// tickets instead of blocking in `fdatasync`).
    ///
    /// [`write_submit`]: Namespace::write_submit
    /// [`flush_submit`]: Namespace::flush_submit
    pub fn barrier_offloaded(&self) -> bool {
        match &self.store {
            Store::SharedFile(d) => d.sync_offloaded(),
            _ => false,
        }
    }

    /// Like [`write`](Namespace::write), but when the store has a sync
    /// worker a FUA write journals and applies, then returns
    /// `(Success, Some(ticket))` with the `fdatasync` still in flight —
    /// the caller parks the completion until the ticket resolves. Every
    /// other path behaves exactly like `write` and returns `None`.
    pub fn write_submit(
        &mut self,
        slba: u64,
        nlb: u32,
        src: &[u8],
        fua: bool,
    ) -> (Status, Option<BarrierTicket>) {
        if let Store::SharedFile(d) = &self.store {
            if d.sync_offloaded() {
                return match d.write_async(slba, nlb, src, fua) {
                    Ok(handle) => (Status::Success, handle.map(BarrierTicket)),
                    Err(e) => (Self::map_err(e), None),
                };
            }
        }
        (self.write(slba, nlb, src, fua), None)
    }

    /// Like [`flush`](Namespace::flush), but through the sync worker
    /// when one is attached: returns `(Success, Some(ticket))` with the
    /// barrier submitted rather than waited on.
    pub fn flush_submit(&mut self) -> (Status, Option<BarrierTicket>) {
        if let Store::SharedFile(d) = &self.store {
            if d.sync_offloaded() {
                return match d.flush_async() {
                    Ok(handle) => (Status::Success, handle.map(BarrierTicket)),
                    Err(e) => (Self::map_err(e), None),
                };
            }
        }
        (self.flush(), None)
    }

    /// Resolution state of a parked barrier ticket. On a store without
    /// a worker (ticket could not have been issued here) this reports
    /// `Durable`, keeping the caller's drain loop total.
    pub fn poll_barrier(&self, ticket: BarrierTicket) -> BarrierPoll {
        match &self.store {
            Store::SharedFile(d) => match d.poll_barrier(ticket.0) {
                SyncStatus::Pending => BarrierPoll::Pending,
                SyncStatus::Durable => BarrierPoll::Durable,
                SyncStatus::Failed => BarrierPoll::Failed,
            },
            _ => BarrierPoll::Durable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oaf_store::vfs::MemVfs;

    fn file_ns(id: u32) -> Namespace {
        let disk = FileDisk::create_on(Box::new(MemVfs::new()), 512, 64, 64 * 1024).unwrap();
        Namespace::with_file(id, disk)
    }

    #[test]
    fn io_roundtrip() {
        let mut ns = Namespace::new(1, 512, 64);
        let data = vec![7u8; 1024];
        assert_eq!(ns.write(0, 2, &data, false), Status::Success);
        let mut out = vec![0u8; 1024];
        assert_eq!(ns.read(0, 2, &mut out), Status::Success);
        assert_eq!(out, data);
    }

    #[test]
    fn errors_map_to_nvme_statuses() {
        let mut ns = Namespace::new(1, 512, 4);
        assert_eq!(ns.write(4, 1, &[0u8; 512], false), Status::LbaOutOfRange);
        assert_eq!(
            ns.write(0, 1, &[0u8; 100], false),
            Status::InvalidFieldLength
        );
        let mut buf = [0u8; 512];
        assert_eq!(ns.read(100, 1, &mut buf), Status::LbaOutOfRange);
    }

    #[test]
    #[should_panic(expected = "nsid 0 is reserved")]
    fn nsid_zero_rejected() {
        let _ = Namespace::new(0, 512, 4);
    }

    #[test]
    fn geometry_reported() {
        let ns = Namespace::new(9, 4096, 1000);
        assert_eq!(ns.id(), 9);
        assert_eq!(ns.block_size(), 4096);
        assert_eq!(ns.capacity_blocks(), 1000);
    }

    #[test]
    fn shared_views_see_one_storage() {
        let mut a = Namespace::new(1, 512, 64);
        // Bytes written before sharing survive the conversion.
        assert_eq!(a.write(0, 1, &[0x11u8; 512], false), Status::Success);
        let mut b = a.share();
        let mut c = a.share(); // idempotent: still the same storage
        assert_eq!(b.write(1, 1, &[0x22u8; 512], false), Status::Success);
        assert_eq!(c.write(2, 1, &[0x33u8; 512], false), Status::Success);
        let mut out = vec![0u8; 512 * 3];
        assert_eq!(a.read(0, 3, &mut out), Status::Success);
        assert_eq!(out[0], 0x11);
        assert_eq!(out[512], 0x22);
        assert_eq!(out[1024], 0x33);
        assert_eq!(b.capacity_blocks(), 64);
        assert_eq!(b.block_size(), 512);
        assert_eq!(b.id(), 1);
    }

    #[test]
    fn shared_views_keep_error_mapping() {
        let mut a = Namespace::new(1, 512, 4);
        let mut b = a.share();
        assert_eq!(b.write(4, 1, &[0u8; 512], false), Status::LbaOutOfRange);
        assert_eq!(
            b.write(0, 1, &[0u8; 100], false),
            Status::InvalidFieldLength
        );
    }

    #[test]
    fn file_backed_namespace_flush_trim_fua() {
        let mut ns = file_ns(1);
        assert_eq!(ns.write(0, 1, &[0x5au8; 512], true), Status::Success);
        assert_eq!(ns.flush(), Status::Success);
        assert_eq!(ns.trim(0, 1), Status::Success);
        let mut out = [0xffu8; 512];
        assert_eq!(ns.read(0, 1, &mut out), Status::Success);
        assert!(out.iter().all(|&b| b == 0));
        let m = ns.store_metrics().expect("file-backed ns exposes metrics");
        assert!(m.fsyncs.get() >= 2, "FUA + flush both sync");
        assert_eq!(m.trims.get(), 1);
        assert!(Namespace::new(2, 512, 4).store_metrics().is_none());
    }

    #[test]
    fn cached_file_backed_namespace_serves_hits_and_stays_durable() {
        let disk = FileDisk::create_on(Box::new(MemVfs::new()), 512, 64, 64 * 1024)
            .unwrap()
            .with_cache(8)
            .unwrap();
        let mut ns = Namespace::with_file(1, disk);
        assert_eq!(ns.write(3, 1, &[0x77u8; 512], false), Status::Success);
        let mut out = [0u8; 512];
        assert_eq!(ns.read(3, 1, &mut out), Status::Success);
        assert!(out.iter().all(|&b| b == 0x77));
        let m = std::sync::Arc::clone(ns.store_metrics().unwrap());
        assert!(
            m.cache_hits.get() >= 1,
            "write-allocate must serve the read"
        );
        // FUA through the cache drains dirty entries before the sync.
        assert_eq!(ns.write(4, 1, &[0x88u8; 512], true), Status::Success);
        assert_eq!(m.cache_dirty.get(), 0, "barrier leaves no dirty entries");
        // Shared views keep the same cache + journal.
        let mut b = ns.share();
        assert_eq!(b.write(5, 1, &[0x99u8; 512], false), Status::Success);
        assert_eq!(b.flush(), Status::Success);
        assert_eq!(ns.read(5, 1, &mut out), Status::Success);
        assert_eq!(out[0], 0x99);
    }

    #[test]
    fn offloaded_namespace_tickets_barriers() {
        use oaf_store::vfs::SharedMemVfs;
        let vfs = SharedMemVfs::new();
        let disk = FileDisk::create_on(Box::new(vfs.clone()), 512, 64, 64 * 1024)
            .unwrap()
            .into_shared()
            .with_sync_worker(Box::new(vfs));
        let mut ns = Namespace::with_shared_file(1, disk);
        assert!(ns.barrier_offloaded());
        let (st, ticket) = ns.write_submit(0, 1, &[0xaau8; 512], true);
        assert_eq!(st, Status::Success);
        let t = ticket.expect("FUA tickets on an offloaded store");
        loop {
            match ns.poll_barrier(t) {
                BarrierPoll::Durable => break,
                BarrierPoll::Pending => std::thread::yield_now(),
                BarrierPoll::Failed => panic!("healthy sync failed"),
            }
        }
        // Plain writes never ticket; flush does.
        let (st, none_t) = ns.write_submit(1, 1, &[1u8; 512], false);
        assert_eq!(st, Status::Success);
        assert!(none_t.is_none());
        let (st, t2) = ns.flush_submit();
        assert_eq!(st, Status::Success);
        let t2 = t2.expect("flush tickets on an offloaded store");
        while ns.poll_barrier(t2) == BarrierPoll::Pending {
            std::thread::yield_now();
        }
        assert_eq!(ns.poll_barrier(t2), BarrierPoll::Durable);
        let mut out = [0u8; 512];
        assert_eq!(ns.read(0, 1, &mut out), Status::Success);
        assert!(out.iter().all(|&b| b == 0xaa));
        // A worker-less namespace falls back to the blocking path.
        let mut plain = file_ns(2);
        assert!(!plain.barrier_offloaded());
        let (st, t3) = plain.write_submit(0, 1, &[2u8; 512], true);
        assert_eq!(st, Status::Success);
        assert!(t3.is_none(), "inline-sync store must not ticket");
    }

    #[test]
    fn file_backed_share_keeps_one_journal() {
        let mut a = file_ns(1);
        let mut b = a.share();
        assert_eq!(a.write(0, 1, &[1u8; 512], false), Status::Success);
        assert_eq!(b.write(1, 1, &[2u8; 512], false), Status::Success);
        assert_eq!(b.flush(), Status::Success);
        let mut out = [0u8; 512];
        assert_eq!(a.read(1, 1, &mut out), Status::Success);
        assert_eq!(out[0], 2);
        // Same underlying metric bundle through both views.
        assert_eq!(
            a.store_metrics().unwrap().log_appends.get(),
            b.store_metrics().unwrap().log_appends.get()
        );
    }
}
