//! NVMe namespaces over a RAM-backed block store.

use oaf_ssd::ram::{BlockError, RamDisk, SharedRamDisk};

use crate::nvme::completion::Status;

/// Backing storage: exclusively owned until [`Namespace::share`]
/// converts it to the multi-queue shared form.
enum Store {
    Owned(RamDisk),
    Shared(SharedRamDisk),
}

/// A namespace: an LBA range with a block size, backed by a [`RamDisk`]
/// (or a [`SharedRamDisk`] once shared across queue controllers).
pub struct Namespace {
    id: u32,
    store: Store,
}

impl Namespace {
    /// Creates namespace `id` with `blocks` blocks of `block_size` bytes.
    pub fn new(id: u32, block_size: u32, blocks: u64) -> Self {
        assert!(id != 0, "nsid 0 is reserved");
        Namespace {
            id,
            store: Store::Owned(RamDisk::new(block_size, blocks)),
        }
    }

    /// Converts the backing store to the shared multi-queue form (if
    /// not already) and returns another view of the *same* storage.
    ///
    /// This is how a sharded target gives every reactor thread its own
    /// `&mut`-free I/O queue into one storage service — the NVMe
    /// multi-queue model. Disjoint LBA ranges may then be driven
    /// concurrently; see [`SharedRamDisk`] for the exclusivity
    /// contract on overlapping writes.
    pub fn share(&mut self) -> Namespace {
        let shared = match std::mem::replace(&mut self.store, Store::Owned(RamDisk::new(512, 0))) {
            Store::Owned(disk) => disk.into_shared(),
            Store::Shared(disk) => disk,
        };
        self.store = Store::Shared(shared.clone());
        Namespace {
            id: self.id,
            store: Store::Shared(shared),
        }
    }

    /// Namespace identifier.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> u32 {
        match &self.store {
            Store::Owned(d) => d.block_size(),
            Store::Shared(d) => d.block_size(),
        }
    }

    /// Capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        match &self.store {
            Store::Owned(d) => d.capacity_blocks(),
            Store::Shared(d) => d.capacity_blocks(),
        }
    }

    fn map_err(e: BlockError) -> Status {
        match e {
            BlockError::OutOfRange { .. } => Status::LbaOutOfRange,
            BlockError::BadBuffer { .. } => Status::InvalidFieldLength,
        }
    }

    /// Reads `nlb` blocks at `slba` into `dst`.
    pub fn read(&self, slba: u64, nlb: u32, dst: &mut [u8]) -> Status {
        let res = match &self.store {
            Store::Owned(d) => d.read(slba, nlb, dst),
            Store::Shared(d) => d.read(slba, nlb, dst),
        };
        match res {
            Ok(()) => Status::Success,
            Err(e) => Self::map_err(e),
        }
    }

    /// Writes `nlb` blocks at `slba` from `src`.
    pub fn write(&mut self, slba: u64, nlb: u32, src: &[u8]) -> Status {
        let res = match &mut self.store {
            Store::Owned(d) => d.write(slba, nlb, src),
            Store::Shared(d) => d.write(slba, nlb, src),
        };
        match res {
            Ok(()) => Status::Success,
            Err(e) => Self::map_err(e),
        }
    }

    /// Zeroes `nlb` blocks at `slba` in place — no staging buffer, so
    /// Write Zeroes stays allocation-free on the target hot path.
    pub fn write_zeroes(&mut self, slba: u64, nlb: u32) -> Status {
        let res = match &mut self.store {
            Store::Owned(d) => d.write_zeroes(slba, nlb),
            Store::Shared(d) => d.write_zeroes(slba, nlb),
        };
        match res {
            Ok(()) => Status::Success,
            Err(e) => Self::map_err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_roundtrip() {
        let mut ns = Namespace::new(1, 512, 64);
        let data = vec![7u8; 1024];
        assert_eq!(ns.write(0, 2, &data), Status::Success);
        let mut out = vec![0u8; 1024];
        assert_eq!(ns.read(0, 2, &mut out), Status::Success);
        assert_eq!(out, data);
    }

    #[test]
    fn errors_map_to_nvme_statuses() {
        let mut ns = Namespace::new(1, 512, 4);
        assert_eq!(ns.write(4, 1, &[0u8; 512]), Status::LbaOutOfRange);
        assert_eq!(ns.write(0, 1, &[0u8; 100]), Status::InvalidFieldLength);
        let mut buf = [0u8; 512];
        assert_eq!(ns.read(100, 1, &mut buf), Status::LbaOutOfRange);
    }

    #[test]
    #[should_panic(expected = "nsid 0 is reserved")]
    fn nsid_zero_rejected() {
        let _ = Namespace::new(0, 512, 4);
    }

    #[test]
    fn geometry_reported() {
        let ns = Namespace::new(9, 4096, 1000);
        assert_eq!(ns.id(), 9);
        assert_eq!(ns.block_size(), 4096);
        assert_eq!(ns.capacity_blocks(), 1000);
    }

    #[test]
    fn shared_views_see_one_storage() {
        let mut a = Namespace::new(1, 512, 64);
        // Bytes written before sharing survive the conversion.
        assert_eq!(a.write(0, 1, &[0x11u8; 512]), Status::Success);
        let mut b = a.share();
        let mut c = a.share(); // idempotent: still the same storage
        assert_eq!(b.write(1, 1, &[0x22u8; 512]), Status::Success);
        assert_eq!(c.write(2, 1, &[0x33u8; 512]), Status::Success);
        let mut out = vec![0u8; 512 * 3];
        assert_eq!(a.read(0, 3, &mut out), Status::Success);
        assert_eq!(out[0], 0x11);
        assert_eq!(out[512], 0x22);
        assert_eq!(out[1024], 0x33);
        assert_eq!(b.capacity_blocks(), 64);
        assert_eq!(b.block_size(), 512);
        assert_eq!(b.id(), 1);
    }

    #[test]
    fn shared_views_keep_error_mapping() {
        let mut a = Namespace::new(1, 512, 4);
        let mut b = a.share();
        assert_eq!(b.write(4, 1, &[0u8; 512]), Status::LbaOutOfRange);
        assert_eq!(b.write(0, 1, &[0u8; 100]), Status::InvalidFieldLength);
    }
}
