//! NVMe namespaces over a RAM-backed block store.

use oaf_ssd::ram::{BlockError, RamDisk};

use crate::nvme::completion::Status;

/// A namespace: an LBA range with a block size, backed by a [`RamDisk`].
pub struct Namespace {
    id: u32,
    store: RamDisk,
}

impl Namespace {
    /// Creates namespace `id` with `blocks` blocks of `block_size` bytes.
    pub fn new(id: u32, block_size: u32, blocks: u64) -> Self {
        assert!(id != 0, "nsid 0 is reserved");
        Namespace {
            id,
            store: RamDisk::new(block_size, blocks),
        }
    }

    /// Namespace identifier.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> u32 {
        self.store.block_size()
    }

    /// Capacity in blocks.
    pub fn capacity_blocks(&self) -> u64 {
        self.store.capacity_blocks()
    }

    fn map_err(e: BlockError) -> Status {
        match e {
            BlockError::OutOfRange { .. } => Status::LbaOutOfRange,
            BlockError::BadBuffer { .. } => Status::InvalidFieldLength,
        }
    }

    /// Reads `nlb` blocks at `slba` into `dst`.
    pub fn read(&self, slba: u64, nlb: u32, dst: &mut [u8]) -> Status {
        match self.store.read(slba, nlb, dst) {
            Ok(()) => Status::Success,
            Err(e) => Self::map_err(e),
        }
    }

    /// Writes `nlb` blocks at `slba` from `src`.
    pub fn write(&mut self, slba: u64, nlb: u32, src: &[u8]) -> Status {
        match self.store.write(slba, nlb, src) {
            Ok(()) => Status::Success,
            Err(e) => Self::map_err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_roundtrip() {
        let mut ns = Namespace::new(1, 512, 64);
        let data = vec![7u8; 1024];
        assert_eq!(ns.write(0, 2, &data), Status::Success);
        let mut out = vec![0u8; 1024];
        assert_eq!(ns.read(0, 2, &mut out), Status::Success);
        assert_eq!(out, data);
    }

    #[test]
    fn errors_map_to_nvme_statuses() {
        let mut ns = Namespace::new(1, 512, 4);
        assert_eq!(ns.write(4, 1, &[0u8; 512]), Status::LbaOutOfRange);
        assert_eq!(ns.write(0, 1, &[0u8; 100]), Status::InvalidFieldLength);
        let mut buf = [0u8; 512];
        assert_eq!(ns.read(100, 1, &mut buf), Status::LbaOutOfRange);
    }

    #[test]
    #[should_panic(expected = "nsid 0 is reserved")]
    fn nsid_zero_rejected() {
        let _ = Namespace::new(0, 512, 4);
    }

    #[test]
    fn geometry_reported() {
        let ns = Namespace::new(9, 4096, 1000);
        assert_eq!(ns.id(), 9);
        assert_eq!(ns.block_size(), 4096);
        assert_eq!(ns.capacity_blocks(), 1000);
    }
}
