//! The NVM subsystem controller: namespaces + command execution.

use std::collections::BTreeMap;

use crate::nvme::command::{NvmeCommand, Opcode};
use crate::nvme::completion::{NvmeCompletion, Status};
use crate::nvme::namespace::{BarrierPoll, BarrierTicket, Namespace};

/// Identify payload for a namespace (simplified identify structure).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IdentifyInfo {
    /// Namespace id.
    pub nsid: u32,
    /// Block size in bytes.
    pub block_size: u32,
    /// Capacity in blocks.
    pub capacity_blocks: u64,
}

impl IdentifyInfo {
    /// Serialized length.
    pub const WIRE_LEN: usize = 16;

    /// Serializes to a fixed little-endian layout.
    pub fn to_bytes(&self) -> [u8; Self::WIRE_LEN] {
        let mut out = [0u8; Self::WIRE_LEN];
        out[0..4].copy_from_slice(&self.nsid.to_le_bytes());
        out[4..8].copy_from_slice(&self.block_size.to_le_bytes());
        out[8..16].copy_from_slice(&self.capacity_blocks.to_le_bytes());
        out
    }

    /// Deserializes from [`IdentifyInfo::to_bytes`] output.
    pub fn from_bytes(raw: &[u8]) -> Option<IdentifyInfo> {
        if raw.len() < Self::WIRE_LEN {
            return None;
        }
        Some(IdentifyInfo {
            nsid: u32::from_le_bytes(raw[0..4].try_into().ok()?),
            block_size: u32::from_le_bytes(raw[4..8].try_into().ok()?),
            capacity_blocks: u64::from_le_bytes(raw[8..16].try_into().ok()?),
        })
    }
}

/// A controller owning a set of namespaces.
#[derive(Default)]
pub struct Controller {
    namespaces: BTreeMap<u32, Namespace>,
}

impl Controller {
    /// An empty controller.
    pub fn new() -> Self {
        Controller::default()
    }

    /// Adds a namespace; panics on duplicate ids.
    pub fn add_namespace(&mut self, ns: Namespace) {
        let id = ns.id();
        let prev = self.namespaces.insert(id, ns);
        assert!(prev.is_none(), "duplicate namespace id {id}");
    }

    /// Looks up a namespace.
    pub fn namespace(&self, nsid: u32) -> Option<&Namespace> {
        self.namespaces.get(&nsid)
    }

    /// Returns a controller whose namespaces are shared views over this
    /// controller's storage — the NVMe multi-queue model, where every
    /// I/O queue (here: reactor shard) drives its own controller state
    /// against one storage service. See [`Namespace::share`] for the
    /// exclusivity contract on overlapping writes.
    pub fn share(&mut self) -> Controller {
        let namespaces = self
            .namespaces
            .iter_mut()
            .map(|(&id, ns)| (id, ns.share()))
            .collect();
        Controller { namespaces }
    }

    /// Namespace ids in ascending order.
    pub fn namespace_ids(&self) -> Vec<u32> {
        self.namespaces.keys().copied().collect()
    }

    /// Transfer length of `cmd` against its namespace's block size, or
    /// `None` if the namespace does not exist.
    pub fn transfer_len(&self, cmd: &NvmeCommand) -> Option<usize> {
        self.namespaces
            .get(&cmd.nsid)
            .map(|ns| cmd.transfer_len(ns.block_size()) as usize)
    }

    /// Executes a read directly into `dst` — the zero-copy path, where
    /// `dst` is a leased shared-memory slot and the device's bytes land
    /// in the region with no intermediate `Vec` (§4.4.3). `dst` must be
    /// exactly the command's transfer length.
    pub fn read_into(&self, cmd: &NvmeCommand, dst: &mut [u8]) -> NvmeCompletion {
        debug_assert_eq!(cmd.opcode, Opcode::Read);
        let Some(ns) = self.namespaces.get(&cmd.nsid) else {
            return NvmeCompletion::error(cmd.cid, Status::InvalidNamespace);
        };
        if dst.len() != cmd.transfer_len(ns.block_size()) as usize {
            return NvmeCompletion::error(cmd.cid, Status::InvalidFieldLength);
        }
        let status = ns.read(cmd.slba, cmd.nlb, dst);
        if status.is_ok() {
            NvmeCompletion::ok(cmd.cid)
        } else {
            NvmeCompletion::error(cmd.cid, status)
        }
    }

    /// Executes a command. `write_payload` must be `Some` for writes and
    /// carry exactly the command's transfer length. Returns the completion
    /// and, for reads/identify, the response payload.
    pub fn execute(
        &mut self,
        cmd: &NvmeCommand,
        write_payload: Option<&[u8]>,
    ) -> (NvmeCompletion, Option<Vec<u8>>) {
        match cmd.opcode {
            Opcode::Identify => {
                let Some(ns) = self.namespaces.get(&cmd.nsid) else {
                    return (
                        NvmeCompletion::error(cmd.cid, Status::InvalidNamespace),
                        None,
                    );
                };
                let info = IdentifyInfo {
                    nsid: ns.id(),
                    block_size: ns.block_size(),
                    capacity_blocks: ns.capacity_blocks(),
                };
                (NvmeCompletion::ok(cmd.cid), Some(info.to_bytes().to_vec()))
            }
            Opcode::Flush => {
                let Some(ns) = self.namespaces.get_mut(&cmd.nsid) else {
                    return (
                        NvmeCompletion::error(cmd.cid, Status::InvalidNamespace),
                        None,
                    );
                };
                // Real durability barrier on file-backed stores; RAM
                // disks ack it as a no-op.
                let status = ns.flush();
                (
                    NvmeCompletion {
                        cid: cmd.cid,
                        status,
                    },
                    None,
                )
            }
            Opcode::Read => {
                let Some(ns) = self.namespaces.get(&cmd.nsid) else {
                    return (
                        NvmeCompletion::error(cmd.cid, Status::InvalidNamespace),
                        None,
                    );
                };
                let len = cmd.transfer_len(ns.block_size()) as usize;
                let mut out = vec![0u8; len];
                let comp = self.read_into(cmd, &mut out);
                if comp.status.is_ok() {
                    (comp, Some(out))
                } else {
                    (comp, None)
                }
            }
            Opcode::Write => {
                let Some(ns) = self.namespaces.get_mut(&cmd.nsid) else {
                    return (
                        NvmeCompletion::error(cmd.cid, Status::InvalidNamespace),
                        None,
                    );
                };
                let Some(payload) = write_payload else {
                    return (
                        NvmeCompletion::error(cmd.cid, Status::InvalidFieldLength),
                        None,
                    );
                };
                let status = ns.write(cmd.slba, cmd.nlb, payload, cmd.fua);
                (
                    NvmeCompletion {
                        cid: cmd.cid,
                        status,
                    },
                    None,
                )
            }
            Opcode::Compare => {
                let Some(ns) = self.namespaces.get(&cmd.nsid) else {
                    return (
                        NvmeCompletion::error(cmd.cid, Status::InvalidNamespace),
                        None,
                    );
                };
                let Some(payload) = write_payload else {
                    return (
                        NvmeCompletion::error(cmd.cid, Status::InvalidFieldLength),
                        None,
                    );
                };
                let len = cmd.transfer_len(ns.block_size()) as usize;
                let mut stored = vec![0u8; len];
                let status = ns.read(cmd.slba, cmd.nlb, &mut stored);
                if !status.is_ok() {
                    return (NvmeCompletion::error(cmd.cid, status), None);
                }
                if stored == payload {
                    (NvmeCompletion::ok(cmd.cid), None)
                } else {
                    (NvmeCompletion::error(cmd.cid, Status::CompareFailure), None)
                }
            }
            Opcode::WriteZeroes | Opcode::Dsm => {
                let Some(ns) = self.namespaces.get_mut(&cmd.nsid) else {
                    return (
                        NvmeCompletion::error(cmd.cid, Status::InvalidNamespace),
                        None,
                    );
                };
                let mut status = if cmd.opcode == Opcode::Dsm {
                    ns.trim(cmd.slba, cmd.nlb)
                } else {
                    ns.write_zeroes(cmd.slba, cmd.nlb)
                };
                if status.is_ok() && cmd.fua {
                    status = ns.flush();
                }
                (
                    NvmeCompletion {
                        cid: cmd.cid,
                        status,
                    },
                    None,
                )
            }
        }
    }

    /// Like [`execute`](Controller::execute), but barrier-class
    /// commands (Flush, FUA writes, FUA zero/trim) against a namespace
    /// with an offloaded sync worker return a [`BarrierTicket`]: the
    /// mutation is journaled and applied, its `fdatasync` is in flight,
    /// and the returned (success) completion must be parked until
    /// [`poll_barrier`](Controller::poll_barrier) resolves the ticket.
    /// Non-barrier commands — and every command on an inline-sync
    /// namespace — behave exactly like `execute` (ticket `None`).
    pub fn execute_async(
        &mut self,
        cmd: &NvmeCommand,
        write_payload: Option<&[u8]>,
    ) -> (NvmeCompletion, Option<Vec<u8>>, Option<BarrierTicket>) {
        match cmd.opcode {
            Opcode::Flush => {
                let Some(ns) = self.namespaces.get_mut(&cmd.nsid) else {
                    return (
                        NvmeCompletion::error(cmd.cid, Status::InvalidNamespace),
                        None,
                        None,
                    );
                };
                let (status, ticket) = ns.flush_submit();
                (
                    NvmeCompletion {
                        cid: cmd.cid,
                        status,
                    },
                    None,
                    ticket,
                )
            }
            Opcode::Write => {
                let Some(ns) = self.namespaces.get_mut(&cmd.nsid) else {
                    return (
                        NvmeCompletion::error(cmd.cid, Status::InvalidNamespace),
                        None,
                        None,
                    );
                };
                let Some(payload) = write_payload else {
                    return (
                        NvmeCompletion::error(cmd.cid, Status::InvalidFieldLength),
                        None,
                        None,
                    );
                };
                let (status, ticket) = ns.write_submit(cmd.slba, cmd.nlb, payload, cmd.fua);
                (
                    NvmeCompletion {
                        cid: cmd.cid,
                        status,
                    },
                    None,
                    ticket,
                )
            }
            Opcode::WriteZeroes | Opcode::Dsm => {
                let Some(ns) = self.namespaces.get_mut(&cmd.nsid) else {
                    return (
                        NvmeCompletion::error(cmd.cid, Status::InvalidNamespace),
                        None,
                        None,
                    );
                };
                let mut status = if cmd.opcode == Opcode::Dsm {
                    ns.trim(cmd.slba, cmd.nlb)
                } else {
                    ns.write_zeroes(cmd.slba, cmd.nlb)
                };
                let mut ticket = None;
                if status.is_ok() && cmd.fua {
                    let (s, t) = ns.flush_submit();
                    status = s;
                    ticket = t;
                }
                (
                    NvmeCompletion {
                        cid: cmd.cid,
                        status,
                    },
                    None,
                    ticket,
                )
            }
            _ => {
                let (comp, payload) = self.execute(cmd, write_payload);
                (comp, payload, None)
            }
        }
    }

    /// Resolution state of a parked barrier ticket issued by
    /// [`execute_async`](Controller::execute_async) against `nsid`.
    /// An unknown namespace reports `Durable` so a drain loop over a
    /// reconfigured controller stays total.
    pub fn poll_barrier(&self, nsid: u32, ticket: BarrierTicket) -> BarrierPoll {
        match self.namespaces.get(&nsid) {
            Some(ns) => ns.poll_barrier(ticket),
            None => BarrierPoll::Durable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> Controller {
        let mut c = Controller::new();
        c.add_namespace(Namespace::new(1, 512, 128));
        c.add_namespace(Namespace::new(2, 4096, 64));
        c
    }

    #[test]
    fn write_then_read() {
        let mut c = controller();
        let data = vec![0xabu8; 1024];
        let (comp, _) = c.execute(&NvmeCommand::write(1, 1, 10, 2), Some(&data));
        assert!(comp.status.is_ok());
        let (comp, payload) = c.execute(&NvmeCommand::read(2, 1, 10, 2), None);
        assert!(comp.status.is_ok());
        assert_eq!(payload.unwrap(), data);
    }

    #[test]
    fn identify_roundtrips_geometry() {
        let mut c = controller();
        let cmd = NvmeCommand {
            cid: 9,
            opcode: Opcode::Identify,
            nsid: 2,
            slba: 0,
            nlb: 0,
            fua: false,
            gseq: 0,
        };
        let (comp, payload) = c.execute(&cmd, None);
        assert!(comp.status.is_ok());
        let info = IdentifyInfo::from_bytes(&payload.unwrap()).unwrap();
        assert_eq!(info.nsid, 2);
        assert_eq!(info.block_size, 4096);
        assert_eq!(info.capacity_blocks, 64);
    }

    #[test]
    fn bad_namespace_rejected() {
        let mut c = controller();
        let (comp, _) = c.execute(&NvmeCommand::read(1, 99, 0, 1), None);
        assert_eq!(comp.status, Status::InvalidNamespace);
    }

    #[test]
    fn write_without_payload_rejected() {
        let mut c = controller();
        let (comp, _) = c.execute(&NvmeCommand::write(1, 1, 0, 1), None);
        assert_eq!(comp.status, Status::InvalidFieldLength);
    }

    #[test]
    fn flush_acks() {
        let mut c = controller();
        let (comp, payload) = c.execute(&NvmeCommand::flush(3, 1), None);
        assert!(comp.status.is_ok());
        assert!(payload.is_none());
    }

    #[test]
    fn out_of_range_read_is_error() {
        let mut c = controller();
        let (comp, payload) = c.execute(&NvmeCommand::read(1, 1, 127, 2), None);
        assert_eq!(comp.status, Status::LbaOutOfRange);
        assert!(payload.is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate namespace")]
    fn duplicate_nsid_panics() {
        let mut c = controller();
        c.add_namespace(Namespace::new(1, 512, 1));
    }

    #[test]
    fn compare_matches_and_mismatches() {
        let mut c = controller();
        let data = vec![0x11u8; 512];
        c.execute(&NvmeCommand::write(1, 1, 4, 1), Some(&data));
        let (ok, _) = c.execute(&NvmeCommand::compare(2, 1, 4, 1), Some(&data));
        assert!(ok.status.is_ok());
        let other = vec![0x22u8; 512];
        let (bad, _) = c.execute(&NvmeCommand::compare(3, 1, 4, 1), Some(&other));
        assert_eq!(bad.status, Status::CompareFailure);
        // Compare without payload is a field error.
        let (nf, _) = c.execute(&NvmeCommand::compare(4, 1, 4, 1), None);
        assert_eq!(nf.status, Status::InvalidFieldLength);
    }

    #[test]
    fn write_zeroes_clears_blocks_without_payload() {
        let mut c = controller();
        c.execute(&NvmeCommand::write(1, 1, 8, 2), Some(&vec![0xffu8; 1024]));
        let (comp, _) = c.execute(&NvmeCommand::write_zeroes(2, 1, 8, 2), None);
        assert!(comp.status.is_ok());
        let (rc, data) = c.execute(&NvmeCommand::read(3, 1, 8, 2), None);
        assert!(rc.status.is_ok());
        assert!(data.unwrap().iter().all(|&b| b == 0));
        // Out of range is still caught.
        let (oor, _) = c.execute(&NvmeCommand::write_zeroes(4, 1, 1 << 40, 1), None);
        assert_eq!(oor.status, Status::LbaOutOfRange);
    }

    #[test]
    fn dsm_deallocates_and_reads_back_zero() {
        let mut c = controller();
        c.execute(&NvmeCommand::write(1, 1, 16, 4), Some(&vec![0xeeu8; 2048]));
        let (comp, _) = c.execute(&NvmeCommand::trim(2, 1, 16, 4), None);
        assert!(comp.status.is_ok());
        let (rc, data) = c.execute(&NvmeCommand::read(3, 1, 16, 4), None);
        assert!(rc.status.is_ok());
        assert!(data.unwrap().iter().all(|&b| b == 0));
        let (oor, _) = c.execute(&NvmeCommand::trim(4, 1, 1 << 40, 1), None);
        assert_eq!(oor.status, Status::LbaOutOfRange);
        let (bad_ns, _) = c.execute(&NvmeCommand::trim(5, 99, 0, 1), None);
        assert_eq!(bad_ns.status, Status::InvalidNamespace);
    }

    #[test]
    fn fua_write_and_flush_reach_durable_store() {
        use oaf_store::vfs::MemVfs;
        let mut c = Controller::new();
        let disk =
            oaf_store::FileDisk::create_on(Box::new(MemVfs::new()), 512, 64, 64 * 1024).unwrap();
        c.add_namespace(Namespace::with_file(1, disk));
        let (w, _) = c.execute(
            &NvmeCommand::write_fua(1, 1, 0, 1),
            Some(&vec![0x42u8; 512]),
        );
        assert!(w.status.is_ok());
        let (f, _) = c.execute(&NvmeCommand::flush(2, 1), None);
        assert!(f.status.is_ok());
        let m = c.namespace(1).unwrap().store_metrics().unwrap();
        assert!(m.fsyncs.get() >= 2, "FUA write + flush both sync");
    }

    #[test]
    fn execute_async_tickets_offloaded_barriers() {
        use oaf_store::vfs::SharedMemVfs;
        let vfs = SharedMemVfs::new();
        let disk = oaf_store::FileDisk::create_on(Box::new(vfs.clone()), 512, 64, 64 * 1024)
            .unwrap()
            .into_shared()
            .with_sync_worker(Box::new(vfs));
        let mut c = Controller::new();
        c.add_namespace(Namespace::with_shared_file(1, disk));
        c.add_namespace(Namespace::new(2, 512, 16));
        let data = vec![0x42u8; 512];
        let (w, _, ticket) = c.execute_async(&NvmeCommand::write_fua(1, 1, 0, 1), Some(&data));
        assert!(w.status.is_ok());
        let t = ticket.expect("FUA against the offloaded namespace tickets");
        while c.poll_barrier(1, t) == BarrierPoll::Pending {
            std::thread::yield_now();
        }
        assert_eq!(c.poll_barrier(1, t), BarrierPoll::Durable);
        // Reads pass through with payload and no ticket.
        let (r, payload, rt) = c.execute_async(&NvmeCommand::read(2, 1, 0, 1), None);
        assert!(r.status.is_ok());
        assert_eq!(payload.unwrap(), data);
        assert!(rt.is_none());
        // Flush tickets; a RAM-backed namespace never does.
        let (f, _, ft) = c.execute_async(&NvmeCommand::flush(3, 1), None);
        assert!(f.status.is_ok());
        let ft = ft.expect("flush tickets");
        while c.poll_barrier(1, ft) == BarrierPoll::Pending {
            std::thread::yield_now();
        }
        let (rw, _, ram_t) = c.execute_async(&NvmeCommand::write_fua(4, 2, 0, 1), Some(&data));
        assert!(rw.status.is_ok());
        assert!(ram_t.is_none(), "RAM namespace must not ticket");
    }

    #[test]
    fn shared_controllers_drive_one_storage() {
        let mut a = controller();
        let mut b = a.share();
        let data = vec![0x5au8; 512];
        let (w, _) = b.execute(&NvmeCommand::write(1, 1, 3, 1), Some(&data));
        assert!(w.status.is_ok());
        let (r, payload) = a.execute(&NvmeCommand::read(2, 1, 3, 1), None);
        assert!(r.status.is_ok());
        assert_eq!(payload.unwrap(), data);
        assert_eq!(b.namespace_ids(), vec![1, 2]);
    }

    #[test]
    fn identify_info_bytes_roundtrip() {
        let info = IdentifyInfo {
            nsid: 7,
            block_size: 4096,
            capacity_blocks: 1 << 30,
        };
        assert_eq!(IdentifyInfo::from_bytes(&info.to_bytes()), Some(info));
        assert_eq!(IdentifyInfo::from_bytes(&[0u8; 3]), None);
    }
}
