//! The NVMe layer: commands, completions, namespaces, controller.

pub mod command;
pub mod completion;
pub mod controller;
pub mod namespace;

pub use command::{NvmeCommand, Opcode};
pub use completion::{NvmeCompletion, Status};
pub use controller::Controller;
pub use namespace::Namespace;
