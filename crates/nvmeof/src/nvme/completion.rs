//! NVMe completion-queue entries.

use bytes::{Buf, BufMut};

use crate::error::NvmeofError;

/// NVMe status codes used by the reproduction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum Status {
    /// Command completed successfully.
    Success = 0x0000,
    /// Opcode not supported.
    InvalidOpcode = 0x0001,
    /// Namespace does not exist.
    InvalidNamespace = 0x000B,
    /// LBA range exceeds namespace capacity.
    LbaOutOfRange = 0x0080,
    /// Device-internal error.
    InternalError = 0x0006,
    /// Transfer length does not match the command.
    InvalidFieldLength = 0x0002,
    /// Compare command found a mismatch.
    CompareFailure = 0x0085,
}

impl Status {
    fn from_u16(v: u16) -> Result<Status, NvmeofError> {
        Ok(match v {
            0x0000 => Status::Success,
            0x0001 => Status::InvalidOpcode,
            0x000B => Status::InvalidNamespace,
            0x0080 => Status::LbaOutOfRange,
            0x0006 => Status::InternalError,
            0x0002 => Status::InvalidFieldLength,
            0x0085 => Status::CompareFailure,
            other => return Err(NvmeofError::Codec(format!("unknown status {other:#x}"))),
        })
    }

    /// Whether the status indicates success.
    pub fn is_ok(self) -> bool {
        self == Status::Success
    }
}

/// An NVMe completion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NvmeCompletion {
    /// Command identifier being completed.
    pub cid: u16,
    /// Completion status.
    pub status: Status,
}

/// Encoded size of a completion on the wire.
pub const COMPLETION_WIRE_LEN: usize = 16;

impl NvmeCompletion {
    /// A success completion for `cid`.
    pub fn ok(cid: u16) -> Self {
        NvmeCompletion {
            cid,
            status: Status::Success,
        }
    }

    /// An error completion for `cid`.
    pub fn error(cid: u16, status: Status) -> Self {
        NvmeCompletion { cid, status }
    }

    /// Serializes into `dst`.
    pub fn encode<B: BufMut>(&self, dst: &mut B) {
        dst.put_u16_le(self.cid);
        dst.put_u16_le(self.status as u16);
        dst.put_bytes(0, COMPLETION_WIRE_LEN - 4);
    }

    /// Deserializes from `src`.
    pub fn decode<B: Buf>(src: &mut B) -> Result<Self, NvmeofError> {
        if src.remaining() < COMPLETION_WIRE_LEN {
            return Err(NvmeofError::Codec(format!(
                "completion truncated: {} < {COMPLETION_WIRE_LEN}",
                src.remaining()
            )));
        }
        let cid = src.get_u16_le();
        let status = Status::from_u16(src.get_u16_le())?;
        src.advance(COMPLETION_WIRE_LEN - 4);
        Ok(NvmeCompletion { cid, status })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn roundtrip_all_statuses() {
        for status in [
            Status::Success,
            Status::InvalidOpcode,
            Status::InvalidNamespace,
            Status::LbaOutOfRange,
            Status::InternalError,
            Status::InvalidFieldLength,
            Status::CompareFailure,
        ] {
            let c = NvmeCompletion { cid: 7, status };
            let mut buf = BytesMut::new();
            c.encode(&mut buf);
            assert_eq!(buf.len(), COMPLETION_WIRE_LEN);
            let mut b = buf.freeze();
            assert_eq!(NvmeCompletion::decode(&mut b).unwrap(), c);
        }
    }

    #[test]
    fn is_ok_only_for_success() {
        assert!(Status::Success.is_ok());
        assert!(!Status::LbaOutOfRange.is_ok());
        assert_eq!(NvmeCompletion::ok(1).status, Status::Success);
        assert_eq!(
            NvmeCompletion::error(1, Status::InternalError).status,
            Status::InternalError
        );
    }

    #[test]
    fn truncated_rejected() {
        let mut short = bytes::Bytes::from_static(&[0u8; 4]);
        assert!(NvmeCompletion::decode(&mut short).is_err());
    }
}
