//! The out-of-band payload channel interface (co-design hook).
//!
//! When a connection negotiates the shared-memory channel, data PDUs stop
//! carrying bytes and instead reference a slot published through this
//! interface (§4.3). The NVMe-oF stack stays transport-agnostic: it calls
//! `publish` where it would have inlined bytes, and `consume` where it
//! would have read them. `oaf-core` implements this trait over the real
//! lock-free [`oaf_shmem::ShmChannel`].

use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::NvmeofError;

/// A bidirectional out-of-band payload channel between one client and one
/// target. Implementations must be cheap to share across the polling
/// threads of a connection.
pub trait PayloadChannel: Send + Sync {
    /// Publishes `data` in this side's transmit direction; returns the
    /// `(slot, len)` reference to send in the control PDU.
    fn publish(&self, data: &[u8]) -> Result<(u32, u32), NvmeofError>;

    /// Consumes the payload published by the peer at `slot`, copying it
    /// into `dst` (which must be exactly `len` bytes) and freeing the slot.
    fn consume(&self, slot: u32, len: u32, dst: &mut [u8]) -> Result<(), NvmeofError>;

    /// Largest payload a single slot can carry.
    fn max_payload(&self) -> usize;
}

#[derive(Default)]
struct MailboxSide {
    slots: Vec<Option<Vec<u8>>>,
    next: usize,
}

impl MailboxSide {
    fn with_depth(depth: usize) -> Self {
        MailboxSide {
            slots: vec![None; depth],
            next: 0,
        }
    }
}

/// A loopback payload channel for tests: an indexed in-memory mailbox per
/// direction, mimicking slot semantics without shared memory. Each handle
/// publishes into its own transmit direction and consumes from the peer's.
pub struct MailboxChannel {
    dirs: Arc<[Mutex<MailboxSide>; 2]>,
    tx_dir: usize,
}

impl MailboxChannel {
    /// Creates a connected `(client, target)` pair with `depth` slots per
    /// direction.
    pub fn pair(depth: usize) -> (Arc<Self>, Arc<Self>) {
        let dirs = Arc::new([
            Mutex::new(MailboxSide::with_depth(depth)),
            Mutex::new(MailboxSide::with_depth(depth)),
        ]);
        (
            Arc::new(MailboxChannel {
                dirs: dirs.clone(),
                tx_dir: 0,
            }),
            Arc::new(MailboxChannel { dirs, tx_dir: 1 }),
        )
    }
}

impl PayloadChannel for MailboxChannel {
    fn publish(&self, data: &[u8]) -> Result<(u32, u32), NvmeofError> {
        let mut side = self.dirs[self.tx_dir].lock();
        let depth = side.slots.len();
        let slot = side.next % depth;
        if side.slots[slot].is_some() {
            return Err(NvmeofError::Payload("no free slot".into()));
        }
        side.next += 1;
        side.slots[slot] = Some(data.to_vec());
        Ok((slot as u32, data.len() as u32))
    }

    fn consume(&self, slot: u32, len: u32, dst: &mut [u8]) -> Result<(), NvmeofError> {
        let mut side = self.dirs[1 - self.tx_dir].lock();
        let stored = side
            .slots
            .get_mut(slot as usize)
            .ok_or_else(|| NvmeofError::Payload(format!("bad slot {slot}")))?
            .take()
            .ok_or_else(|| NvmeofError::Payload(format!("slot {slot} empty")))?;
        if stored.len() != len as usize || dst.len() != len as usize {
            return Err(NvmeofError::Payload("length mismatch".into()));
        }
        dst.copy_from_slice(&stored);
        Ok(())
    }

    fn max_payload(&self) -> usize {
        usize::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_on_one_side_consume_on_other() {
        let (client, target) = MailboxChannel::pair(4);
        let (slot, len) = client.publish(b"write payload").unwrap();
        let mut out = vec![0u8; len as usize];
        target.consume(slot, len, &mut out).unwrap();
        assert_eq!(out, b"write payload");
        // Slot is freed after consumption.
        assert!(target.consume(slot, len, &mut out).is_err());
    }

    #[test]
    fn directions_are_independent() {
        let (client, target) = MailboxChannel::pair(2);
        let (cs, cl) = client.publish(b"c2t").unwrap();
        let (ts, tl) = target.publish(b"t2c").unwrap();
        assert_eq!((cs, ts), (0, 0)); // same index, different direction
        let mut buf = vec![0u8; 3];
        target.consume(cs, cl, &mut buf).unwrap();
        assert_eq!(buf, b"c2t");
        client.consume(ts, tl, &mut buf).unwrap();
        assert_eq!(buf, b"t2c");
    }

    #[test]
    fn depth_exhaustion() {
        let (client, _target) = MailboxChannel::pair(2);
        client.publish(b"1").unwrap();
        client.publish(b"2").unwrap();
        assert!(client.publish(b"3").is_err());
    }

    #[test]
    fn length_mismatch_rejected() {
        let (client, target) = MailboxChannel::pair(2);
        let (slot, len) = client.publish(b"abc").unwrap();
        let mut small = vec![0u8; 1];
        assert!(target.consume(slot, len, &mut small).is_err());
    }

    #[test]
    fn consuming_own_direction_fails() {
        let (client, _target) = MailboxChannel::pair(2);
        let (slot, len) = client.publish(b"abc").unwrap();
        let mut buf = vec![0u8; 3];
        // Client consumes from the *target's* direction, which is empty.
        assert!(client.consume(slot, len, &mut buf).is_err());
    }
}
