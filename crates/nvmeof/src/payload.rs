//! The out-of-band payload channel interface (co-design hook).
//!
//! When a connection negotiates the shared-memory channel, data PDUs stop
//! carrying bytes and instead reference a slot published through this
//! interface (§4.3). The NVMe-oF stack stays transport-agnostic, and the
//! interface is *lease-based* so the zero-copy ablation step (§4.4.3) needs
//! no extra copies anywhere:
//!
//! * send side: [`PayloadChannel::alloc`] hands out a [`WriteLease`] — for
//!   a shared-memory channel the lease **is** a slot of the region — and
//!   [`PayloadChannel::publish_lease`] publishes it without copying;
//! * receive side: [`PayloadChannel::consume_with`] lends the published
//!   bytes to a closure *in place*, freeing the slot afterwards.
//!
//! The original copying API ([`PayloadChannel::publish`] /
//! [`PayloadChannel::consume`]) survives as default-implemented
//! compatibility shims over the leases: `publish` is alloc + one copy +
//! publish, `consume` is a borrow + one copy out. Implementations with a
//! cheaper dedicated copy path (or deliberately copying baselines for the
//! Fig. 8 ablation) can still override them. `oaf-core` implements this
//! trait over the real lock-free [`oaf_shmem::ShmChannel`].

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use oaf_shmem::SlotLease;
use parking_lot::Mutex;

use crate::error::NvmeofError;

enum LeaseInner {
    /// A managed slot of a shared-memory region: publishing is free.
    Slot(SlotLease),
    /// Fallback for channels with no shared region behind them: a plain
    /// heap buffer the channel will copy at publish time.
    Heap(Vec<u8>),
}

/// A write buffer leased from a payload channel.
///
/// Fill it through `DerefMut` (or any `&mut [u8]` API), then hand it to
/// [`PayloadChannel::publish_lease`]. On a shared-memory channel the
/// buffer lives directly in the region — publishing copies nothing. On a
/// fallback channel it is a heap buffer and publishing copies once,
/// exactly like the old `publish(&[u8])` path.
pub struct WriteLease {
    inner: LeaseInner,
}

impl std::fmt::Debug for WriteLease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            LeaseInner::Slot(l) => f
                .debug_struct("WriteLease")
                .field("kind", &"slot")
                .field("slot", &l.slot())
                .field("len", &l.len())
                .finish(),
            LeaseInner::Heap(b) => f
                .debug_struct("WriteLease")
                .field("kind", &"heap")
                .field("len", &b.len())
                .finish(),
        }
    }
}

impl WriteLease {
    /// Wraps a managed shared-memory slot lease.
    pub fn from_slot(lease: SlotLease) -> Self {
        WriteLease {
            inner: LeaseInner::Slot(lease),
        }
    }

    /// A zero-filled heap-backed lease of `len` bytes (copy fallback).
    pub fn heap(len: usize) -> Self {
        WriteLease {
            inner: LeaseInner::Heap(vec![0u8; len]),
        }
    }

    /// Logical length of the buffer.
    pub fn len(&self) -> usize {
        match &self.inner {
            LeaseInner::Slot(l) => l.len(),
            LeaseInner::Heap(b) => b.len(),
        }
    }

    /// Whether the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether publishing this lease avoids the application-side copy.
    pub fn is_zero_copy(&self) -> bool {
        matches!(self.inner, LeaseInner::Slot(_))
    }

    /// Shrinks the logical length to `len` (e.g. a short final chunk).
    pub fn truncate(&mut self, len: usize) {
        match &mut self.inner {
            LeaseInner::Slot(l) => {
                if len < l.len() {
                    l.set_len(len).expect("shrinking below slot size");
                }
            }
            LeaseInner::Heap(b) => b.truncate(len),
        }
    }

    /// Unwraps the managed slot lease, or gives the lease back.
    pub fn into_slot(self) -> Result<SlotLease, WriteLease> {
        match self.inner {
            LeaseInner::Slot(l) => Ok(l),
            other => Err(WriteLease { inner: other }),
        }
    }

    /// Unwraps the heap buffer, or gives the lease back.
    pub fn into_heap(self) -> Result<Vec<u8>, WriteLease> {
        match self.inner {
            LeaseInner::Heap(b) => Ok(b),
            other => Err(WriteLease { inner: other }),
        }
    }
}

impl Deref for WriteLease {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        match &self.inner {
            LeaseInner::Slot(l) => l,
            LeaseInner::Heap(b) => b,
        }
    }
}

impl DerefMut for WriteLease {
    fn deref_mut(&mut self) -> &mut [u8] {
        match &mut self.inner {
            LeaseInner::Slot(l) => l,
            LeaseInner::Heap(b) => b,
        }
    }
}

/// A bidirectional out-of-band payload channel between one client and one
/// target. Implementations must be cheap to share across the polling
/// threads of a connection.
pub trait PayloadChannel: Send + Sync {
    /// Leases a transmit buffer of `len` bytes. On a shared-memory
    /// channel the buffer is a slot of the region (zero-copy, §4.4.3);
    /// otherwise it is heap-backed and `publish_lease` copies once.
    fn alloc(&self, len: usize) -> Result<WriteLease, NvmeofError>;

    /// Publishes a filled lease in this side's transmit direction;
    /// returns the `(slot, len)` reference to send in the control PDU.
    fn publish_lease(&self, lease: WriteLease) -> Result<(u32, u32), NvmeofError>;

    /// Lends the payload published by the peer at `slot` to `f` without
    /// copying it out, then frees the slot. `f` is called exactly once
    /// on success, with a slice of exactly `len` bytes.
    fn consume_with(
        &self,
        slot: u32,
        len: u32,
        f: &mut dyn FnMut(&[u8]),
    ) -> Result<(), NvmeofError>;

    /// Largest payload a single slot can carry.
    fn max_payload(&self) -> usize;

    /// Publishes `data` by copying it into a fresh lease (one-copy
    /// compatibility shim over [`PayloadChannel::alloc`] +
    /// [`PayloadChannel::publish_lease`]).
    fn publish(&self, data: &[u8]) -> Result<(u32, u32), NvmeofError> {
        let mut lease = self.alloc(data.len())?;
        lease.copy_from_slice(data);
        self.publish_lease(lease)
    }

    /// Consumes the payload published by the peer at `slot`, copying it
    /// into `dst` (which must be exactly `len` bytes) and freeing the
    /// slot (one-copy compatibility shim over
    /// [`PayloadChannel::consume_with`]).
    fn consume(&self, slot: u32, len: u32, dst: &mut [u8]) -> Result<(), NvmeofError> {
        if dst.len() != len as usize {
            return Err(NvmeofError::Payload("length mismatch".into()));
        }
        self.consume_with(slot, len, &mut |bytes| dst.copy_from_slice(bytes))
    }

    /// Marks the channel unusable for new traffic: subsequent `alloc` /
    /// `publish` calls fail fast so the connection's degradation logic
    /// can route payloads elsewhere. Default: no-op for channels with no
    /// failure mode worth isolating.
    fn quarantine(&self) {}

    /// Force-reclaims every published-but-unconsumed (or stuck mid-write)
    /// slot, returning how many were freed. Called after [`quarantine`]
    /// so in-flight references cannot race new leases. Default: nothing
    /// to reclaim.
    ///
    /// [`quarantine`]: PayloadChannel::quarantine
    fn reclaim(&self) -> usize {
        0
    }

    /// Force-reclaims one published slot in this side's transmit
    /// direction — used when a retry abandons a payload the peer provably
    /// never consumed. Returns whether the slot was freed. Default:
    /// nothing to free.
    fn reclaim_slot(&self, slot: u32) -> bool {
        let _ = slot;
        false
    }
}

#[derive(Default)]
struct MailboxSide {
    slots: Vec<Option<Vec<u8>>>,
}

impl MailboxSide {
    fn with_depth(depth: usize) -> Self {
        MailboxSide {
            slots: vec![None; depth],
        }
    }
}

/// A loopback payload channel for tests: an indexed in-memory mailbox per
/// direction, mimicking slot semantics without shared memory. Each handle
/// publishes into its own transmit direction and consumes from the peer's.
///
/// Handles can be *partitioned* ([`MailboxChannel::with_partition`]): a
/// partitioned handle publishes only into its own contiguous slot range,
/// wrapping within it, mirroring how a sharded runtime carves one shm
/// ring into per-shard pools.
pub struct MailboxChannel {
    dirs: Arc<[Mutex<MailboxSide>; 2]>,
    tx_dir: usize,
    /// First transmit slot this handle may use (absolute index).
    part_start: usize,
    /// Transmit slots this handle may use; probing wraps within
    /// `[part_start, part_start + part_len)` — never into a neighbor
    /// partition's slots.
    part_len: usize,
    /// Per-handle round-robin cursor (partition-relative).
    cursor: std::sync::atomic::AtomicUsize,
    /// Shared "the region died" flag: set by [`PayloadChannel::quarantine`]
    /// (or a chaos hook) on either handle, fails all publishes on both.
    poisoned: Arc<std::sync::atomic::AtomicBool>,
}

impl MailboxChannel {
    /// Creates a connected `(client, target)` pair with `depth` slots per
    /// direction.
    pub fn pair(depth: usize) -> (Arc<Self>, Arc<Self>) {
        let dirs = Arc::new([
            Mutex::new(MailboxSide::with_depth(depth)),
            Mutex::new(MailboxSide::with_depth(depth)),
        ]);
        let poisoned = Arc::new(std::sync::atomic::AtomicBool::new(false));
        (
            Arc::new(MailboxChannel {
                dirs: dirs.clone(),
                tx_dir: 0,
                part_start: 0,
                part_len: depth,
                cursor: std::sync::atomic::AtomicUsize::new(0),
                poisoned: poisoned.clone(),
            }),
            Arc::new(MailboxChannel {
                dirs,
                tx_dir: 1,
                part_start: 0,
                part_len: depth,
                cursor: std::sync::atomic::AtomicUsize::new(0),
                poisoned,
            }),
        )
    }

    /// A handle over the same mailbox restricted to the `len` transmit
    /// slots starting at `start`. Consuming is unaffected (slot indices
    /// arrive from the peer); publishing and reclamation stay inside the
    /// partition. Panics on an empty or out-of-range partition.
    pub fn with_partition(&self, start: usize, len: usize) -> Arc<Self> {
        let depth = self.dirs[self.tx_dir].lock().slots.len();
        assert!(len > 0, "mailbox partition must be non-empty");
        assert!(
            start.checked_add(len).is_some_and(|end| end <= depth),
            "partition [{start}, {start}+{len}) exceeds mailbox depth {depth}"
        );
        Arc::new(MailboxChannel {
            dirs: self.dirs.clone(),
            tx_dir: self.tx_dir,
            part_start: start,
            part_len: len,
            cursor: std::sync::atomic::AtomicUsize::new(0),
            poisoned: self.poisoned.clone(),
        })
    }

    /// This handle's transmit partition as `(first_slot, slot_count)`.
    pub fn partition(&self) -> (usize, usize) {
        (self.part_start, self.part_len)
    }

    fn is_poisoned(&self) -> bool {
        self.poisoned.load(std::sync::atomic::Ordering::Acquire)
    }
}

impl PayloadChannel for MailboxChannel {
    fn alloc(&self, len: usize) -> Result<WriteLease, NvmeofError> {
        if self.is_poisoned() {
            return Err(NvmeofError::Payload("channel quarantined".into()));
        }
        // No shared region behind the mailbox: leases are heap-backed and
        // publish_lease stores the bytes (the copy the real channel avoids).
        Ok(WriteLease::heap(len))
    }

    fn publish_lease(&self, lease: WriteLease) -> Result<(u32, u32), NvmeofError> {
        if self.is_poisoned() {
            return Err(NvmeofError::Payload("channel quarantined".into()));
        }
        let mut side = self.dirs[self.tx_dir].lock();
        // Round-robin within the partition (§4.4.1): probe forward past
        // stragglers, wrapping inside the partition; only a genuinely
        // full partition is an error — a neighbor's slots are never
        // borrowed.
        for _ in 0..self.part_len {
            let rel = self
                .cursor
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                % self.part_len;
            let slot = self.part_start + rel;
            if side.slots[slot].is_none() {
                side.slots[slot] = Some(lease.to_vec());
                return Ok((slot as u32, lease.len() as u32));
            }
        }
        Err(NvmeofError::Payload("no free slot".into()))
    }

    fn consume_with(
        &self,
        slot: u32,
        len: u32,
        f: &mut dyn FnMut(&[u8]),
    ) -> Result<(), NvmeofError> {
        let mut side = self.dirs[1 - self.tx_dir].lock();
        let stored = side
            .slots
            .get_mut(slot as usize)
            .ok_or_else(|| NvmeofError::Payload(format!("bad slot {slot}")))?
            .take()
            .ok_or_else(|| NvmeofError::Payload(format!("slot {slot} empty")))?;
        if stored.len() != len as usize {
            return Err(NvmeofError::Payload("length mismatch".into()));
        }
        f(&stored);
        Ok(())
    }

    fn max_payload(&self) -> usize {
        usize::MAX
    }

    fn quarantine(&self) {
        self.poisoned
            .store(true, std::sync::atomic::Ordering::Release);
    }

    fn reclaim(&self) -> usize {
        let mut side = self.dirs[self.tx_dir].lock();
        let mut freed = 0;
        for slot in &mut side.slots[self.part_start..self.part_start + self.part_len] {
            if slot.take().is_some() {
                freed += 1;
            }
        }
        freed
    }

    fn reclaim_slot(&self, slot: u32) -> bool {
        let slot = slot as usize;
        if slot < self.part_start || slot >= self.part_start + self.part_len {
            return false;
        }
        let mut side = self.dirs[self.tx_dir].lock();
        side.slots.get_mut(slot).is_some_and(|s| s.take().is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_on_one_side_consume_on_other() {
        let (client, target) = MailboxChannel::pair(4);
        let (slot, len) = client.publish(b"write payload").unwrap();
        let mut out = vec![0u8; len as usize];
        target.consume(slot, len, &mut out).unwrap();
        assert_eq!(out, b"write payload");
        // Slot is freed after consumption.
        assert!(target.consume(slot, len, &mut out).is_err());
    }

    #[test]
    fn directions_are_independent() {
        let (client, target) = MailboxChannel::pair(2);
        let (cs, cl) = client.publish(b"c2t").unwrap();
        let (ts, tl) = target.publish(b"t2c").unwrap();
        assert_eq!((cs, ts), (0, 0)); // same index, different direction
        let mut buf = vec![0u8; 3];
        target.consume(cs, cl, &mut buf).unwrap();
        assert_eq!(buf, b"c2t");
        client.consume(ts, tl, &mut buf).unwrap();
        assert_eq!(buf, b"t2c");
    }

    #[test]
    fn depth_exhaustion() {
        let (client, _target) = MailboxChannel::pair(2);
        client.publish(b"1").unwrap();
        client.publish(b"2").unwrap();
        assert!(client.publish(b"3").is_err());
    }

    #[test]
    fn publish_probes_past_straggler_slot() {
        // Fill all three slots, drain only the middle one: the next
        // publish must probe forward from next%depth (= occupied slot 0)
        // and land in the freed slot 1 instead of erroring.
        let (client, target) = MailboxChannel::pair(3);
        client.publish(b"a").unwrap();
        let (s1, l1) = client.publish(b"b").unwrap();
        client.publish(b"c").unwrap();
        let mut buf = vec![0u8; 1];
        target.consume(s1, l1, &mut buf).unwrap();
        let (slot, _) = client.publish(b"d").unwrap();
        assert_eq!(slot, s1);
    }

    #[test]
    fn lease_roundtrip_through_mailbox() {
        let (client, target) = MailboxChannel::pair(2);
        let mut lease = client.alloc(5).unwrap();
        assert!(!lease.is_zero_copy());
        lease.copy_from_slice(b"hello");
        let (slot, len) = client.publish_lease(lease).unwrap();
        let mut seen = Vec::new();
        target
            .consume_with(slot, len, &mut |b| seen.extend_from_slice(b))
            .unwrap();
        assert_eq!(seen, b"hello");
        // Borrow freed the slot.
        assert!(target.consume_with(slot, len, &mut |_| {}).is_err());
    }

    #[test]
    fn truncate_shrinks_lease() {
        let mut lease = WriteLease::heap(8);
        lease[..3].copy_from_slice(b"xyz");
        lease.truncate(3);
        assert_eq!(lease.len(), 3);
        assert_eq!(&lease[..], b"xyz");
    }

    #[test]
    fn length_mismatch_rejected() {
        let (client, target) = MailboxChannel::pair(2);
        let (slot, len) = client.publish(b"abc").unwrap();
        let mut small = vec![0u8; 1];
        assert!(target.consume(slot, len, &mut small).is_err());
    }

    #[test]
    fn exhausted_partition_never_publishes_into_neighbor() {
        // Satellite regression: a full partition must deny the publish
        // rather than wrap into the neighbor partition's slots.
        let (client, target) = MailboxChannel::pair(8);
        let a = client.with_partition(0, 4);
        let b = client.with_partition(4, 4);
        assert_eq!(a.partition(), (0, 4));
        assert_eq!(b.partition(), (4, 4));
        let mut a_slots = Vec::new();
        for _ in 0..4 {
            let (slot, _) = a.publish(b"x").unwrap();
            a_slots.push(slot);
        }
        assert!(a_slots.iter().all(|&s| s < 4));
        // A is full: error, not a lease from B's range.
        assert!(a.publish(b"overflow").is_err());
        // B's slots are all still free and publishable, all in [4, 8).
        for _ in 0..4 {
            let (slot, _) = b.publish(b"y").unwrap();
            assert!((4..8).contains(&slot));
        }
        // Consuming is partition-agnostic: the target drains both.
        let mut buf = vec![0u8; 1];
        for slot in 0..8u32 {
            target.consume(slot, 1, &mut buf).unwrap();
        }
        // A recovers within its own range.
        assert!(a.publish(b"z").unwrap().0 < 4);
    }

    #[test]
    fn partition_reclaim_stays_local() {
        let (client, _target) = MailboxChannel::pair(6);
        let a = client.with_partition(0, 3);
        let b = client.with_partition(3, 3);
        for _ in 0..3 {
            a.publish(b"a").unwrap();
            b.publish(b"b").unwrap();
        }
        // A's sweep frees only its own three slots.
        assert_eq!(a.reclaim(), 3);
        assert!(a.publish(b"again").is_ok());
        // B's slots were untouched by A's sweep: still full.
        assert!(b.publish(b"full").is_err());
        // Targeted reclaim refuses out-of-partition slots.
        assert!(!a.reclaim_slot(3));
        assert!(b.reclaim_slot(3));
        assert!(b.publish(b"after").is_ok());
    }

    #[test]
    #[should_panic(expected = "exceeds mailbox depth")]
    fn out_of_range_partition_panics() {
        let (client, _target) = MailboxChannel::pair(4);
        let _ = client.with_partition(2, 3);
    }

    #[test]
    fn consuming_own_direction_fails() {
        let (client, _target) = MailboxChannel::pair(2);
        let (slot, len) = client.publish(b"abc").unwrap();
        let mut buf = vec![0u8; 3];
        // Client consumes from the *target's* direction, which is empty.
        assert!(client.consume(slot, len, &mut buf).is_err());
    }
}
