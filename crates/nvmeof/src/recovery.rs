//! The recovery protocol as a pure, deterministic state machine.
//!
//! Everything the fabric does to survive a hostile schedule — per-command
//! deadlines with exponential backoff, the free-retry vs write-class
//! abort round-trip split, the retired-cid ring, held completions that
//! overtook their own data, keep-alive probing and peer-death grace, the
//! mid-flight shm→TCP degrade handshake — is *decided* here, with time
//! and I/O injected. The real reactors ([`crate::initiator`],
//! [`crate::target`]) feed events in and execute the returned
//! [`Action`]s; the `oaf-mc` model checker drives the very same code
//! through every interleaving of a small configuration. One decision
//! core, two harnesses: what the checker proves is what production runs.
//!
//! Two design rules keep the core checkable *and* fast enough for the
//! data plane:
//!
//! * **No side effects.** Methods only mutate `self` and append to a
//!   caller-owned `Vec<Action>`; sending, buffer management, telemetry
//!   and slot reclamation stay in the shells. Steady state allocates
//!   nothing (the command map reuses its capacity, the action and sweep
//!   scratch vectors are caller-retained).
//! * **Injected time.** All clocks are [`Nanos`] since an arbitrary
//!   connection epoch. The shells feed `Instant`-derived values, the
//!   checker feeds a model clock — the decisions cannot tell.
//!
//! Determinism note: iteration over the internal command map is
//! unordered, so every multi-command pass (deadline sweep, degrade
//! replay) collects cids and sorts them before acting. The action
//! stream is therefore a pure function of the event/time stream.
//!
//! ## The effective clock (barrier pause)
//!
//! A group-commit `fdatasync` on the target's reactor thread can stall
//! every response behind it for tens of milliseconds. That silence is
//! *expected* while a barrier-class command (Flush, or any FUA-flagged
//! mutation) is in flight — blowing command deadlines or keep-alive
//! grace over it would degrade a healthy connection at exactly the
//! moment it is doing durable work. The core therefore runs deadlines
//! and keep-alive on an **effective clock** that freezes while at least
//! one barrier-class command is outstanding, capped at
//! [`RecoveryConfig::barrier_grace`] per barrier episode so a genuinely
//! lost Flush still times out and retries.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use crate::nvme::command::Opcode;
use crate::nvme::completion::NvmeCompletion;

/// Nanoseconds since the connection epoch — the core's only notion of
/// time. The initiator shell derives it from a pinned `Instant`; the
/// model checker advances it symbolically.
pub type Nanos = u64;

/// How many recently-retired wire cids (initiator) or resolved
/// cids/ttags (target) are remembered for stale-frame tolerance and
/// abort answering. Fixed-size rings: no heap, far above any sane
/// queue depth.
pub const RETIRED_RING: usize = 256;

/// Keep-alive timing in core units.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeepAliveNanos {
    /// Quiet time after which a heartbeat is sent (and re-sent).
    pub interval: Nanos,
    /// Total silence after which the peer is declared dead.
    pub grace: Nanos,
}

/// How the core excludes in-flight durability barriers from recovery
/// timing. See the module docs for why the default freezes the clock.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BarrierGraceMode {
    /// Freeze the effective clock while any barrier-class command is in
    /// flight (capped at [`RecoveryConfig::barrier_grace`] per episode).
    /// Every deadline and the keep-alive quiet timer pause together —
    /// the conservative contract every existing test pins.
    #[default]
    FreezeClock,
    /// Keep the clock running and instead pad only the barrier-class
    /// command's *own* deadline by [`RecoveryConfig::barrier_grace`].
    /// Non-barrier commands and keep-alive stay on live time, so a
    /// wedged peer is detected even mid-sync. Safe opt-in when the
    /// target offloads `fdatasync` off its reactor thread (reads keep
    /// completing, so honest peers are never mistaken for dead ones).
    PadBarrierDeadline,
}

/// Tuning for the recovery core, mirrored from
/// [`crate::initiator::InitiatorOptions`] by the shell (durations
/// lowered to [`Nanos`]).
#[derive(Clone, Debug)]
pub struct RecoveryConfig {
    /// Per-command deadline; `None` disables deadline bookkeeping.
    pub cmd_deadline: Option<Nanos>,
    /// Retry budget per command once deadlines are enabled.
    pub max_retries: u32,
    /// Base of the exponential retry backoff.
    pub retry_backoff: Nanos,
    /// Keep-alive probing; `None` disables peer-death detection.
    pub keepalive: Option<KeepAliveNanos>,
    /// Longest one barrier episode may pause the effective clock. Caps
    /// the deadline/keep-alive exclusion so a lost barrier-class
    /// command cannot freeze recovery forever.
    pub barrier_grace: Nanos,
    /// Whether the grace freezes the whole clock (default) or pads only
    /// barrier-class deadlines.
    pub barrier_grace_mode: BarrierGraceMode,
    /// Re-introduces the PR 4 held-completion bug (completions released
    /// before their data) so the model checker's mutation leg can prove
    /// it finds that class. Runtime-selectable and default-off so
    /// correct and mutated protocols coexist in one feature-enabled
    /// binary.
    #[cfg(feature = "mc-mutations")]
    pub mutate_deliver_early: bool,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            cmd_deadline: None,
            max_retries: 3,
            retry_backoff: 2_000_000,
            keepalive: None,
            barrier_grace: 250_000_000,
            barrier_grace_mode: BarrierGraceMode::FreezeClock,
            #[cfg(feature = "mc-mutations")]
            mutate_deliver_early: false,
        }
    }
}

/// What payload bytes a command still owes the caller before its
/// success completion may be delivered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DataNeed {
    /// No controller→host data expected (writes, flush, trim…).
    None,
    /// Exactly this many contiguous bytes from offset 0 (buffered
    /// reads).
    Bytes(u32),
    /// Any non-empty arrival satisfies it (borrowed reads that park a
    /// slot reference, Identify's variable-size capsule).
    Any,
}

/// How a controller→host data frame landed, as reported by the shell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataArrival {
    /// An inline (or consumed-shm) chunk at `offset` of `len` bytes.
    /// Chunks landing past the contiguous watermark do not advance it.
    Chunk {
        /// Byte offset within the command's transfer.
        offset: u32,
        /// Chunk length in bytes.
        len: u32,
    },
    /// The transfer is wholly satisfied (a parked borrowed-read slot
    /// reference, or an Identify/Flush inline capsule).
    All,
}

/// A decision the shell (or model harness) must carry out. Emitted in
/// order; the stream is deterministic for a given event/time stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Deliver `completion` for the command tracked under `wire_cid`
    /// (the cid is already retired in the core; the shell settles
    /// buffers/telemetry and reports under its user cid).
    Complete {
        /// Wire cid of the resolved attempt.
        wire_cid: u16,
        /// The completion to deliver.
        completion: NvmeCompletion,
    },
    /// Re-send the command previously tracked under `old_cid` under the
    /// fresh `new_cid`/`gseq` (payload replayed from the shell's
    /// retained clone; transfer state reset).
    Resubmit {
        /// The retired previous wire cid.
        old_cid: u16,
        /// Fresh wire cid for the new attempt.
        new_cid: u16,
        /// Fresh generation tag for the new attempt.
        gseq: u32,
    },
    /// Send an Abort for the write-class command `cid` (round-trip
    /// before any resubmission so a retry can never double-apply).
    SendAbort {
        /// Wire cid to abort.
        cid: u16,
        /// Generation tag of the aborted attempt.
        gseq: u32,
    },
    /// The command's retry budget ran out; surface it as timed out.
    GiveUp {
        /// Wire cid of the abandoned attempt (already retired here).
        wire_cid: u16,
    },
    /// Send a keep-alive probe. `missed_previous` is true when the
    /// prior probe was never acknowledged.
    SendKeepAlive {
        /// Heartbeat sequence number.
        seq: u64,
        /// The previous probe went unanswered.
        missed_previous: bool,
    },
    /// Keep-alive grace expired: the connection is unusable.
    PeerDead,
}

/// Per-command recovery bookkeeping (buffers and payloads stay in the
/// shell; this is only what decisions need).
#[derive(Clone, Debug)]
struct CmdRecovery {
    opcode: Opcode,
    /// Barrier-class (Flush / FUA mutation): pauses the effective clock.
    barrier: bool,
    /// The shell retained a replayable payload clone.
    replayable: bool,
    /// A shared-memory slot is published for this attempt (degrade
    /// replays these).
    published: bool,
    /// Generation tag of the current attempt.
    gseq: u32,
    deadline: Option<Nanos>,
    attempts: u32,
    awaiting_abort: bool,
    need: DataNeed,
    /// Contiguous-prefix watermark of arrived payload bytes (1 marks an
    /// `Any` need satisfied).
    got: u32,
    /// A success completion that overtook its data, held until the last
    /// byte lands.
    held: Option<NvmeCompletion>,
}

impl CmdRecovery {
    fn data_ready(&self) -> bool {
        match self.need {
            DataNeed::None => true,
            DataNeed::Any => self.got > 0,
            DataNeed::Bytes(n) => self.got >= n,
        }
    }

    fn can_replay(&self) -> bool {
        self.replayable || self.opcode.replayable_without_payload() || self.opcode.retries_freely()
    }
}

/// The initiator half of the recovery protocol: cid/generation
/// allocation, deadlines and retries, abort round-trips, held
/// completions, keep-alive, degrade replay.
#[derive(Clone, Debug)]
pub struct InitiatorRecovery {
    cfg: RecoveryConfig,
    cmds: HashMap<u16, CmdRecovery>,
    next_cid: u16,
    next_gseq: u32,
    /// Recently-retired `(wire cid, gseq)` pairs (cid 0 = empty slot;
    /// cid 0 is never allocated).
    retired: [(u16, u32); RETIRED_RING],
    retired_at: usize,
    /// Earliest pending deadline (effective clock), tracked as a scalar
    /// so the steady state pays one comparison per poll.
    next_deadline: Option<Nanos>,
    /// Reusable scratch for the (cold) deadline sweep and the degrade
    /// replay collection.
    sweep_scratch: Vec<u16>,
    /// Keep-alive bookkeeping (effective clock).
    last_rx: Nanos,
    last_ka_tx: Nanos,
    ka_seq: u64,
    ka_outstanding: bool,
    degraded: bool,
    /// Barrier-pause accounting: completed pause time, the raw start of
    /// the open episode, and how many barrier-class commands are in
    /// flight.
    paused_total: Nanos,
    barrier_since: Option<Nanos>,
    barriers: u32,
}

impl InitiatorRecovery {
    /// A fresh core at connection epoch (`now` = 0 is conventional for
    /// the model checker; shells pass the handshake completion time).
    pub fn new(cfg: RecoveryConfig, now: Nanos) -> Self {
        let mut core = InitiatorRecovery {
            cfg,
            cmds: HashMap::new(),
            next_cid: 1,
            next_gseq: 1,
            retired: [(0, 0); RETIRED_RING],
            retired_at: 0,
            next_deadline: None,
            // Pre-sized so the first genuine expiry (a cold path that
            // may first fire long after warm-up) stays allocation-free.
            sweep_scratch: Vec::with_capacity(64),
            last_rx: 0,
            last_ka_tx: 0,
            ka_seq: 0,
            ka_outstanding: false,
            degraded: false,
            paused_total: 0,
            barrier_since: None,
            barriers: 0,
        };
        let eff = core.eff(now);
        core.last_rx = eff;
        core.last_ka_tx = eff;
        core
    }

    /// The effective clock: raw time minus completed barrier pauses
    /// minus the open episode's (capped) pause.
    fn eff(&self, now: Nanos) -> Nanos {
        let open = match self.barrier_since {
            Some(since) => now.saturating_sub(since).min(self.cfg.barrier_grace),
            None => 0,
        };
        now.saturating_sub(self.paused_total + open)
    }

    /// Commands in flight (wire cids tracked).
    pub fn inflight(&self) -> usize {
        self.cmds.len()
    }

    /// Nothing in flight: the connection can quiesce.
    pub fn quiesced(&self) -> bool {
        self.cmds.is_empty()
    }

    /// The shm payload path has been abandoned mid-flight.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Whether `cid` is in the retired ring (late frames for it are
    /// stale, not protocol violations).
    pub fn is_retired_cid(&self, cid: u16) -> bool {
        self.retired.iter().any(|&(c, _)| c == cid)
    }

    fn retire(&mut self, cid: u16, gseq: u32) {
        self.retired[self.retired_at] = (cid, gseq);
        self.retired_at = (self.retired_at + 1) % RETIRED_RING;
    }

    /// Allocates a wire cid: linear probe around the u16 space, skipping
    /// cids that are in flight *or still in the retired ring* — a
    /// reused cid must never be simultaneously live and
    /// recently-retired, or its fresh frames would race the stale-frame
    /// tolerance.
    fn alloc_cid(&mut self) -> u16 {
        loop {
            let cid = self.next_cid;
            self.next_cid = self.next_cid.wrapping_add(1).max(1);
            if !self.cmds.contains_key(&cid) && !self.is_retired_cid(cid) {
                return cid;
            }
        }
    }

    /// Extra deadline allowance for a barrier-class command when the
    /// config pads instead of freezing the clock.
    fn barrier_pad(&self, barrier: bool) -> Nanos {
        if barrier && self.cfg.barrier_grace_mode == BarrierGraceMode::PadBarrierDeadline {
            self.cfg.barrier_grace
        } else {
            0
        }
    }

    fn arm_deadline(&mut self, eff_now: Nanos, attempts: u32, pad: Nanos) -> Option<Nanos> {
        let base = self.cfg.cmd_deadline?;
        let backoff = self.cfg.retry_backoff.saturating_mul(1 << attempts.min(6));
        let deadline = eff_now + base + backoff + pad;
        self.next_deadline = Some(match self.next_deadline {
            Some(d) if d <= deadline => d,
            _ => deadline,
        });
        Some(deadline)
    }

    /// Tracks a new command: allocates its wire cid and generation tag,
    /// arms its deadline, opens a barrier episode if it is
    /// barrier-class. Returns `(wire_cid, gseq)` for the shell to stamp
    /// into the outgoing capsule.
    pub fn begin(
        &mut self,
        opcode: Opcode,
        fua: bool,
        need: DataNeed,
        replayable: bool,
        now: Nanos,
    ) -> (u16, u32) {
        let cid = self.alloc_cid();
        let gseq = self.next_gseq;
        self.next_gseq = self.next_gseq.wrapping_add(1);
        let barrier = opcode == Opcode::Flush || (fua && opcode.mutates());
        if barrier {
            if self.barriers == 0 && self.cfg.barrier_grace_mode == BarrierGraceMode::FreezeClock {
                self.barrier_since = Some(now);
            }
            self.barriers += 1;
        }
        let eff_now = self.eff(now);
        let pad = self.barrier_pad(barrier);
        let deadline = self.arm_deadline(eff_now, 0, pad);
        self.cmds.insert(
            cid,
            CmdRecovery {
                opcode,
                barrier,
                replayable,
                published: false,
                gseq,
                deadline,
                attempts: 0,
                awaiting_abort: false,
                need,
                got: 0,
                held: None,
            },
        );
        (cid, gseq)
    }

    /// Marks the attempt's payload as published in a shared-memory slot
    /// (degrade will replay it).
    pub fn mark_published(&mut self, cid: u16) {
        if let Some(c) = self.cmds.get_mut(&cid) {
            c.published = true;
        }
    }

    /// Marks the command as replayable (the shell retained a payload
    /// clone after tracking it).
    pub fn mark_replayable(&mut self, cid: u16) {
        if let Some(c) = self.cmds.get_mut(&cid) {
            c.replayable = true;
        }
    }

    /// Closes a barrier episode share when a barrier-class command
    /// leaves the in-flight set for good.
    fn barrier_done(&mut self, now: Nanos) {
        self.barriers -= 1;
        if self.barriers == 0 {
            if let Some(since) = self.barrier_since.take() {
                self.paused_total += now.saturating_sub(since).min(self.cfg.barrier_grace);
            }
        }
    }

    /// Removes and retires a command (resolution of any kind).
    fn remove(&mut self, cid: u16, now: Nanos) -> Option<CmdRecovery> {
        let cmd = self.cmds.remove(&cid)?;
        self.retire(cid, cmd.gseq);
        if cmd.barrier {
            self.barrier_done(now);
        }
        Some(cmd)
    }

    /// Any decoded frame proves the peer alive.
    pub fn on_rx(&mut self, now: Nanos) {
        if self.cfg.keepalive.is_some() {
            self.last_rx = self.eff(now);
        }
    }

    /// A keep-alive ack resolved the outstanding probe.
    pub fn on_keepalive_ack(&mut self) {
        self.ka_outstanding = false;
    }

    /// Controller→host payload progress for `cid`. Releases a held
    /// completion once the transfer is whole.
    pub fn on_data(&mut self, cid: u16, arrival: DataArrival, now: Nanos, out: &mut Vec<Action>) {
        let Some(cmd) = self.cmds.get_mut(&cid) else {
            return;
        };
        match arrival {
            DataArrival::Chunk { offset, len } => {
                if offset <= cmd.got {
                    cmd.got = cmd.got.max(offset.saturating_add(len));
                }
            }
            DataArrival::All => {
                cmd.got = match cmd.need {
                    DataNeed::Bytes(n) => n.max(1),
                    _ => cmd.got.max(1),
                };
            }
        }
        if cmd.held.is_some() && cmd.data_ready() {
            let completion = cmd.held.take().expect("checked above");
            self.complete(cid, completion, now, out);
        }
    }

    fn complete(
        &mut self,
        cid: u16,
        completion: NvmeCompletion,
        now: Nanos,
        out: &mut Vec<Action>,
    ) {
        if self.remove(cid, now).is_some() {
            out.push(Action::Complete {
                wire_cid: cid,
                completion,
            });
        }
    }

    /// A response capsule for `cid` arrived. A success completion that
    /// overtook its own data (a reordering fabric can do that) is held
    /// until the last byte lands — completing now would hand back a
    /// stale buffer. Returns `false` for stale/unknown cids so the
    /// shell can count them.
    pub fn on_completion(
        &mut self,
        cid: u16,
        completion: NvmeCompletion,
        now: Nanos,
        out: &mut Vec<Action>,
    ) -> bool {
        let Some(cmd) = self.cmds.get_mut(&cid) else {
            return false;
        };
        #[allow(unused_mut)]
        let mut hold = completion.status.is_ok() && !cmd.data_ready();
        #[cfg(feature = "mc-mutations")]
        if self.cfg.mutate_deliver_early {
            hold = false;
        }
        if hold {
            cmd.held = Some(completion);
            return true;
        }
        // A completion that raced an in-flight abort resolves the
        // command just as well — the late AbortAck is dropped as stale.
        self.complete(cid, completion, now, out);
        true
    }

    /// An AbortAck for `cid` arrived. Returns `false` when it is stale
    /// (unknown cid, or no abort round-trip outstanding).
    pub fn on_abort_ack(
        &mut self,
        cid: u16,
        applied: bool,
        completion: NvmeCompletion,
        now: Nanos,
        out: &mut Vec<Action>,
    ) -> bool {
        let Some(cmd) = self.cmds.get(&cid) else {
            return false;
        };
        if !cmd.awaiting_abort {
            return false;
        }
        if applied {
            // The original landed before (or despite) the abort:
            // complete with the status the target kept.
            self.complete(cid, completion, now, out);
        } else if cmd.can_replay() {
            // Never applied, so a resubmission cannot double-apply.
            self.resubmit(cid, now, out);
        } else {
            // Zero-copy published writes retain no payload: un-replayable.
            self.give_up(cid, now, out);
        }
        true
    }

    /// The peer (or the local payload path) initiated shm degradation.
    /// Returns `true` the first time, with replay actions for every
    /// attempt whose payload was parked in the region; idempotent
    /// afterwards.
    pub fn degrade(&mut self, now: Nanos, out: &mut Vec<Action>) -> bool {
        if self.degraded {
            return false;
        }
        self.degraded = true;
        let mut stranded = std::mem::take(&mut self.sweep_scratch);
        stranded.clear();
        stranded.extend(
            self.cmds
                .iter()
                .filter(|(_, c)| c.published)
                .map(|(&cid, _)| cid),
        );
        // Map iteration is unordered; the action stream must not be.
        stranded.sort_unstable();
        for &cid in &stranded {
            self.retry(cid, now, out);
        }
        stranded.clear();
        self.sweep_scratch = stranded;
        true
    }

    /// One retry step for `cid`: freely-retryable opcodes resubmit under
    /// a fresh cid; write-class commands first run the abort round-trip
    /// so a retry can never double-apply. Exhausted budgets give up.
    pub fn retry(&mut self, cid: u16, now: Nanos, out: &mut Vec<Action>) {
        let Some(cmd) = self.cmds.get(&cid) else {
            return;
        };
        if cmd.attempts >= self.cfg.max_retries {
            self.give_up(cid, now, out);
            return;
        }
        if cmd.opcode.retries_freely() {
            self.resubmit(cid, now, out);
        } else {
            let eff_now = self.eff(now);
            let cmd = self.cmds.get_mut(&cid).expect("checked above");
            cmd.attempts += 1;
            cmd.awaiting_abort = true;
            let attempts = cmd.attempts;
            let gseq = cmd.gseq;
            let barrier = cmd.barrier;
            let pad = self.barrier_pad(barrier);
            let deadline = self.arm_deadline(eff_now, attempts, pad);
            self.cmds.get_mut(&cid).expect("still present").deadline = deadline;
            out.push(Action::SendAbort { cid, gseq });
        }
    }

    fn resubmit(&mut self, cid: u16, now: Nanos, out: &mut Vec<Action>) {
        let Some(mut cmd) = self.cmds.remove(&cid) else {
            return;
        };
        self.retire(cid, cmd.gseq);
        let new_cid = self.alloc_cid();
        let gseq = self.next_gseq;
        self.next_gseq = self.next_gseq.wrapping_add(1);
        if !cmd.awaiting_abort {
            // An abort round-trip already charged this retry round.
            cmd.attempts += 1;
        }
        cmd.awaiting_abort = false;
        cmd.gseq = gseq;
        // The fresh attempt refills from byte zero; a completion held
        // for the old attempt vouches for nothing now. The slot the old
        // attempt published is reclaimed by the shell.
        cmd.got = 0;
        cmd.held = None;
        cmd.published = false;
        let eff_now = self.eff(now);
        let pad = self.barrier_pad(cmd.barrier);
        cmd.deadline = self.arm_deadline(eff_now, cmd.attempts, pad);
        self.cmds.insert(new_cid, cmd);
        out.push(Action::Resubmit {
            old_cid: cid,
            new_cid,
            gseq,
        });
    }

    fn give_up(&mut self, cid: u16, now: Nanos, out: &mut Vec<Action>) {
        if self.remove(cid, now).is_some() {
            out.push(Action::GiveUp { wire_cid: cid });
        }
    }

    /// Deadline + keep-alive pass. Cheap when nothing expired: one
    /// effective-clock computation and two comparisons.
    pub fn tick(&mut self, now: Nanos, out: &mut Vec<Action>) {
        if self.cfg.cmd_deadline.is_some() {
            self.sweep_deadlines(now, out);
        }
        if self.cfg.keepalive.is_some() {
            self.check_keepalive(now, out);
        }
    }

    fn sweep_deadlines(&mut self, now: Nanos, out: &mut Vec<Action>) {
        let eff_now = self.eff(now);
        if self.next_deadline.is_none_or(|d| eff_now < d) {
            return;
        }
        // Cold path: something actually expired (or the watermark is
        // stale after a completion). Sweep, collect, recompute.
        self.next_deadline = None;
        let mut expired = std::mem::take(&mut self.sweep_scratch);
        expired.clear();
        for (&cid, cmd) in self.cmds.iter() {
            match cmd.deadline {
                Some(d) if eff_now >= d => expired.push(cid),
                Some(d) => {
                    self.next_deadline = Some(match self.next_deadline {
                        Some(cur) if cur <= d => cur,
                        _ => d,
                    });
                }
                None => {}
            }
        }
        expired.sort_unstable();
        for &cid in &expired {
            self.retry(cid, now, out);
        }
        expired.clear();
        self.sweep_scratch = expired;
    }

    fn check_keepalive(&mut self, now: Nanos, out: &mut Vec<Action>) {
        let ka = self.cfg.keepalive.expect("caller checked");
        let eff_now = self.eff(now);
        let quiet = eff_now.saturating_sub(self.last_rx);
        if quiet >= ka.grace {
            out.push(Action::PeerDead);
            return;
        }
        if quiet >= ka.interval && eff_now.saturating_sub(self.last_ka_tx) >= ka.interval {
            self.ka_seq += 1;
            let missed_previous = self.ka_outstanding;
            self.last_ka_tx = eff_now;
            self.ka_outstanding = true;
            out.push(Action::SendKeepAlive {
                seq: self.ka_seq,
                missed_previous,
            });
        }
    }

    /// Raw time of the next armed timer (deadline watermark or
    /// keep-alive probe/grace), if any — how the model checker knows
    /// where to advance its clock. Returns an upper bound: any event
    /// arriving earlier re-schedules.
    pub fn next_timer(&self, now: Nanos) -> Option<Nanos> {
        let mut eff_target: Option<Nanos> = self.next_deadline;
        if let Some(ka) = self.cfg.keepalive {
            let probe = self
                .last_rx
                .max(self.last_ka_tx)
                .saturating_add(ka.interval);
            let death = self.last_rx.saturating_add(ka.grace);
            let t = probe.min(death);
            eff_target = Some(match eff_target {
                Some(cur) if cur <= t => cur,
                _ => t,
            });
        }
        let eff_target = eff_target?;
        Some(match self.barrier_since {
            None => eff_target.saturating_add(self.paused_total),
            Some(since) => {
                let frozen_eff = since.saturating_sub(self.paused_total);
                if eff_target <= frozen_eff {
                    now
                } else {
                    eff_target
                        .saturating_add(self.paused_total)
                        .saturating_add(self.cfg.barrier_grace)
                }
            }
        })
    }

    /// Hashes the canonicalized core state (times re-based to `now`, map
    /// iterated in sorted order) — the model checker's visited-set key.
    pub fn fingerprint<H: Hasher>(&self, now: Nanos, h: &mut H) {
        let mut cids: Vec<u16> = self.cmds.keys().copied().collect();
        cids.sort_unstable();
        cids.len().hash(h);
        for cid in cids {
            let c = &self.cmds[&cid];
            cid.hash(h);
            (c.opcode as u8).hash(h);
            c.barrier.hash(h);
            c.replayable.hash(h);
            c.published.hash(h);
            c.gseq.hash(h);
            c.deadline.map(|d| d.wrapping_sub(self.eff(now))).hash(h);
            c.attempts.hash(h);
            c.awaiting_abort.hash(h);
            c.need.hash(h);
            c.got.hash(h);
            match c.held {
                Some(comp) => (1u8, comp.cid, comp.status as u16).hash(h),
                None => 0u8.hash(h),
            }
        }
        self.next_cid.hash(h);
        self.next_gseq.hash(h);
        self.retired.hash(h);
        self.retired_at.hash(h);
        self.next_deadline
            .map(|d| d.wrapping_sub(self.eff(now)))
            .hash(h);
        let eff = self.eff(now);
        eff.wrapping_sub(self.last_rx).hash(h);
        eff.wrapping_sub(self.last_ka_tx).hash(h);
        self.ka_seq.hash(h);
        self.ka_outstanding.hash(h);
        self.degraded.hash(h);
        self.barriers.hash(h);
        self.barrier_since.is_some().hash(h);
    }
}

/// Outcome of the target's abort decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AbortDecision {
    /// The command already executed; ack `applied = true` with the
    /// completion the device produced.
    Applied(NvmeCompletion),
    /// Not executed (and now remembered as aborted): ack
    /// `applied = false`; late duplicates of the original are dropped.
    NotApplied,
}

/// The target half of the recovery protocol: the executed-completion
/// ring that answers racing aborts, the aborted-cid ring that drops
/// late duplicates, and the retired-ttag ring that tolerates duplicate
/// H2C chunks. All matches are on `(cid, gseq)` so a wire cid reused
/// after ring wraparound can never be confused with an old incarnation.
#[derive(Clone, Debug)]
pub struct TargetRecovery {
    /// Recently-executed commands and their completions (cid 0 = empty).
    completed: [(u16, u32, NvmeCompletion); RETIRED_RING],
    completed_at: usize,
    /// `(cid, gseq)` pairs answered `applied = false` to an Abort.
    aborted: [(u16, u32); RETIRED_RING],
    aborted_at: usize,
    /// Ttags whose staging buffer was resolved (completed or aborted).
    retired_ttags: [u16; RETIRED_RING],
    retired_ttags_at: usize,
}

impl Default for TargetRecovery {
    fn default() -> Self {
        Self::new()
    }
}

impl TargetRecovery {
    /// A fresh, empty memory.
    pub fn new() -> Self {
        TargetRecovery {
            completed: [(0, 0, NvmeCompletion::ok(0)); RETIRED_RING],
            completed_at: 0,
            aborted: [(0, 0); RETIRED_RING],
            aborted_at: 0,
            retired_ttags: [0u16; RETIRED_RING],
            retired_ttags_at: 0,
        }
    }

    /// Remembers an executed command so a racing Abort is answered
    /// `applied = true` instead of letting the client double-apply.
    pub fn on_executed(&mut self, cid: u16, gseq: u32, completion: NvmeCompletion) {
        self.completed[self.completed_at] = (cid, gseq, completion);
        self.completed_at = (self.completed_at + 1) % RETIRED_RING;
    }

    /// Decides an Abort for `(cid, gseq)`, remembering a `NotApplied`
    /// answer so late duplicates of the original command are dropped.
    pub fn on_abort(&mut self, cid: u16, gseq: u32) -> AbortDecision {
        if let Some(&(_, _, comp)) = self
            .completed
            .iter()
            .find(|&&(c, g, _)| c == cid && g == gseq)
        {
            return AbortDecision::Applied(comp);
        }
        self.aborted[self.aborted_at] = (cid, gseq);
        self.aborted_at = (self.aborted_at + 1) % RETIRED_RING;
        AbortDecision::NotApplied
    }

    /// Whether an arriving command is a late duplicate of an attempt we
    /// already answered an abort for (the client has resubmitted it
    /// under a fresh cid; applying this copy would double-apply).
    pub fn should_drop_command(&self, cid: u16, gseq: u32) -> bool {
        self.aborted.iter().any(|&(c, g)| c == cid && g == gseq)
    }

    /// Remembers a resolved staging ttag.
    pub fn retire_ttag(&mut self, ttag: u16) {
        self.retired_ttags[self.retired_ttags_at] = ttag;
        self.retired_ttags_at = (self.retired_ttags_at + 1) % RETIRED_RING;
    }

    /// Whether a late H2C chunk's ttag belongs to a resolved staging
    /// buffer (drop, don't error).
    pub fn is_retired_ttag(&self, ttag: u16) -> bool {
        self.retired_ttags.contains(&ttag)
    }

    /// Hashes the rings — the model checker's visited-set key half.
    pub fn fingerprint<H: Hasher>(&self, h: &mut H) {
        for &(c, g, comp) in &self.completed {
            (c, g, comp.cid, comp.status as u16).hash(h);
        }
        self.completed_at.hash(h);
        self.aborted.hash(h);
        self.aborted_at.hash(h);
        self.retired_ttags.hash(h);
        self.retired_ttags_at.hash(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nvme::completion::Status;

    const MS: Nanos = 1_000_000;

    // The struct update covers the cfg-gated `mutate_deliver_early`
    // knob, present only under the `mc-mutations` feature.
    #[allow(clippy::needless_update)]
    fn cfg() -> RecoveryConfig {
        RecoveryConfig {
            cmd_deadline: Some(10 * MS),
            max_retries: 3,
            retry_backoff: 2 * MS,
            keepalive: Some(KeepAliveNanos {
                interval: 50 * MS,
                grace: 150 * MS,
            }),
            barrier_grace: 100 * MS,
            ..RecoveryConfig::default()
        }
    }

    /// `cfg()` without keep-alive, for tests that pin the exact action
    /// stream of the deadline path.
    fn cfg_no_ka() -> RecoveryConfig {
        RecoveryConfig {
            keepalive: None,
            ..cfg()
        }
    }

    #[test]
    fn read_retries_freely_then_times_out() {
        let mut core = InitiatorRecovery::new(cfg_no_ka(), 0);
        let mut out = Vec::new();
        let (cid, _) = core.begin(Opcode::Read, false, DataNeed::Bytes(4096), false, 0);
        let mut now = 0;
        let mut wire = cid;
        for _ in 0..3 {
            now += 20 * MS;
            core.tick(now, &mut out);
            let [Action::Resubmit {
                old_cid, new_cid, ..
            }] = out[..]
            else {
                panic!("expected resubmit, got {out:?}");
            };
            assert_eq!(old_cid, wire);
            assert!(core.is_retired_cid(old_cid));
            wire = new_cid;
            out.clear();
        }
        now += 100 * MS;
        core.tick(now, &mut out);
        assert_eq!(out, [Action::GiveUp { wire_cid: wire }]);
        assert!(core.quiesced());
    }

    #[test]
    fn write_runs_abort_round_trip_before_resubmitting() {
        let mut core = InitiatorRecovery::new(cfg(), 0);
        let mut out = Vec::new();
        let (cid, gseq) = core.begin(Opcode::Write, false, DataNeed::None, true, 0);
        core.tick(20 * MS, &mut out);
        assert_eq!(out, [Action::SendAbort { cid, gseq }]);
        out.clear();
        // Not applied → resubmit under a fresh cid and generation.
        assert!(core.on_abort_ack(
            cid,
            false,
            NvmeCompletion::error(cid, Status::InternalError),
            21 * MS,
            &mut out
        ));
        let [Action::Resubmit {
            old_cid,
            new_cid,
            gseq: g2,
        }] = out[..]
        else {
            panic!("expected resubmit, got {out:?}");
        };
        assert_eq!(old_cid, cid);
        assert_ne!(g2, gseq);
        out.clear();
        // Completion for the fresh attempt resolves it.
        assert!(core.on_completion(new_cid, NvmeCompletion::ok(new_cid), 22 * MS, &mut out));
        assert_eq!(out.len(), 1);
        assert!(core.quiesced());
    }

    #[test]
    fn abort_ack_applied_completes_with_kept_status() {
        let mut core = InitiatorRecovery::new(cfg(), 0);
        let mut out = Vec::new();
        let (cid, _) = core.begin(Opcode::Write, false, DataNeed::None, true, 0);
        core.tick(20 * MS, &mut out);
        out.clear();
        let comp = NvmeCompletion::ok(cid);
        assert!(core.on_abort_ack(cid, true, comp, 21 * MS, &mut out));
        assert_eq!(
            out,
            [Action::Complete {
                wire_cid: cid,
                completion: comp
            }]
        );
        // A duplicate ack is stale now.
        assert!(!core.on_abort_ack(cid, true, comp, 22 * MS, &mut out));
    }

    #[test]
    fn early_completion_held_until_data_lands() {
        let mut core = InitiatorRecovery::new(cfg(), 0);
        let mut out = Vec::new();
        let (cid, _) = core.begin(Opcode::Read, false, DataNeed::Bytes(8192), false, 0);
        assert!(core.on_completion(cid, NvmeCompletion::ok(cid), MS, &mut out));
        assert!(out.is_empty(), "completion must be held before its data");
        core.on_data(
            cid,
            DataArrival::Chunk {
                offset: 0,
                len: 4096,
            },
            MS,
            &mut out,
        );
        assert!(out.is_empty(), "half the transfer is not enough");
        // A chunk past the watermark does not advance it.
        core.on_data(
            cid,
            DataArrival::Chunk {
                offset: 8192,
                len: 4096,
            },
            MS,
            &mut out,
        );
        assert!(out.is_empty());
        core.on_data(
            cid,
            DataArrival::Chunk {
                offset: 4096,
                len: 4096,
            },
            MS,
            &mut out,
        );
        assert_eq!(out.len(), 1, "whole transfer releases the held completion");
        assert!(core.quiesced());
    }

    #[test]
    fn keepalive_probes_then_declares_death() {
        let mut core = InitiatorRecovery::new(cfg(), 0);
        let mut out = Vec::new();
        core.tick(60 * MS, &mut out);
        assert_eq!(
            out,
            [Action::SendKeepAlive {
                seq: 1,
                missed_previous: false
            }]
        );
        out.clear();
        core.tick(120 * MS, &mut out);
        assert_eq!(
            out,
            [Action::SendKeepAlive {
                seq: 2,
                missed_previous: true
            }]
        );
        out.clear();
        core.tick(160 * MS, &mut out);
        assert_eq!(out, [Action::PeerDead]);
        // Traffic resets the clock.
        let mut core = InitiatorRecovery::new(cfg(), 0);
        core.on_rx(140 * MS);
        out.clear();
        core.tick(160 * MS, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn barrier_pause_excludes_stall_from_deadline_and_keepalive() {
        let mut core = InitiatorRecovery::new(cfg(), 0);
        let mut out = Vec::new();
        // A FUA write whose durable barrier stalls the target reactor
        // for 60ms — far past the 10ms deadline and a 150ms-grace
        // keep-alive check would fire probes from 50ms quiet.
        let (cid, _) = core.begin(Opcode::Write, true, DataNeed::None, true, 0);
        core.tick(20 * MS, &mut out);
        core.tick(60 * MS, &mut out);
        assert!(
            out.is_empty(),
            "deadline/keep-alive must not fire during a barrier: {out:?}"
        );
        // The (late) completion still resolves it; afterwards the
        // effective clock runs again.
        assert!(core.on_completion(cid, NvmeCompletion::ok(cid), 60 * MS, &mut out));
        assert_eq!(out.len(), 1);
        out.clear();
        let (cid2, _) = core.begin(Opcode::Read, false, DataNeed::Bytes(512), false, 61 * MS);
        core.tick(62 * MS, &mut out);
        assert!(out.is_empty());
        core.tick(85 * MS, &mut out);
        let [Action::Resubmit { old_cid, .. }] = out[..] else {
            panic!("post-barrier deadline must arm normally, got {out:?}");
        };
        assert_eq!(old_cid, cid2);
    }

    #[test]
    fn barrier_pause_is_capped() {
        let mut core = InitiatorRecovery::new(cfg_no_ka(), 0);
        let mut out = Vec::new();
        // A Flush whose frame was lost: the pause cap (100ms) bounds how
        // long the stall exclusion can defer recovery.
        let (cid, _) = core.begin(Opcode::Flush, false, DataNeed::None, false, 0);
        core.tick(90 * MS, &mut out);
        assert!(out.is_empty());
        core.tick(200 * MS, &mut out);
        let [Action::Resubmit { old_cid, .. }] = out[..] else {
            panic!("capped pause must let the flush retry, got {out:?}");
        };
        assert_eq!(old_cid, cid);
    }

    #[test]
    fn pad_mode_keeps_nonbarrier_deadlines_live() {
        let mut core = InitiatorRecovery::new(
            RecoveryConfig {
                barrier_grace_mode: BarrierGraceMode::PadBarrierDeadline,
                ..cfg_no_ka()
            },
            0,
        );
        let mut out = Vec::new();
        // FUA write: its own deadline is padded to 10+2+100 = 112ms.
        let (w, _) = core.begin(Opcode::Write, true, DataNeed::None, true, 0);
        // Concurrent read: plain 12ms deadline, clock NOT frozen.
        let (r, _) = core.begin(Opcode::Read, false, DataNeed::Bytes(512), false, 0);
        core.tick(20 * MS, &mut out);
        let [Action::Resubmit {
            old_cid, new_cid, ..
        }] = out[..]
        else {
            panic!("read deadline must stay live in pad mode, got {out:?}");
        };
        assert_eq!(old_cid, r);
        out.clear();
        // Resolve the read so later sweeps only see the barrier.
        core.on_data(
            new_cid,
            DataArrival::Chunk {
                offset: 0,
                len: 512,
            },
            21 * MS,
            &mut out,
        );
        assert!(core.on_completion(new_cid, NvmeCompletion::ok(new_cid), 21 * MS, &mut out));
        out.clear();
        // The padded barrier deadline has not expired yet...
        core.tick(100 * MS, &mut out);
        assert!(out.is_empty(), "padded write fired early: {out:?}");
        // ...but it does expire, on live time, once the pad is spent.
        core.tick(120 * MS, &mut out);
        let [Action::SendAbort { cid, .. }] = out[..] else {
            panic!("padded write must still time out, got {out:?}");
        };
        assert_eq!(cid, w);
    }

    #[test]
    fn pad_mode_keepalive_stays_live_during_barrier() {
        let mut core = InitiatorRecovery::new(
            RecoveryConfig {
                barrier_grace_mode: BarrierGraceMode::PadBarrierDeadline,
                ..cfg()
            },
            0,
        );
        let mut out = Vec::new();
        let _ = core.begin(Opcode::Write, true, DataNeed::None, true, 0);
        // 60ms of silence mid-barrier: freeze mode stays quiet here, pad
        // mode probes the peer (interval 50ms) without touching the
        // padded write deadline (112ms).
        core.tick(60 * MS, &mut out);
        assert!(
            out.iter()
                .any(|a| matches!(a, Action::SendKeepAlive { .. })),
            "keep-alive must run on live time in pad mode: {out:?}"
        );
        assert!(
            !out.iter()
                .any(|a| matches!(a, Action::SendAbort { .. } | Action::Resubmit { .. })),
            "padded barrier deadline fired early: {out:?}"
        );
        out.clear();
        // A peer silent past the grace is declared dead even while the
        // barrier is nominally outstanding.
        core.tick(200 * MS, &mut out);
        assert!(
            out.contains(&Action::PeerDead),
            "pad mode must detect a wedged peer mid-barrier: {out:?}"
        );
    }

    #[test]
    fn degrade_replays_published_attempts_once() {
        let mut core = InitiatorRecovery::new(cfg(), 0);
        let mut out = Vec::new();
        let (w, wg) = core.begin(Opcode::Write, false, DataNeed::None, true, 0);
        core.mark_published(w);
        let (r, _) = core.begin(Opcode::Read, false, DataNeed::Bytes(4096), false, 0);
        assert!(core.degrade(MS, &mut out));
        // Only the published write replays — via its abort round-trip.
        assert_eq!(out, [Action::SendAbort { cid: w, gseq: wg }]);
        out.clear();
        assert!(!core.degrade(2 * MS, &mut out), "degrade is idempotent");
        assert!(out.is_empty());
        assert!(core.cmds.contains_key(&r));
    }

    #[test]
    fn cid_reuse_is_never_live_and_retired_at_once() {
        let mut core = InitiatorRecovery::new(cfg(), 0);
        let mut out = Vec::new();
        // Drive far past the retired-ring capacity with forced churn.
        for i in 0..(RETIRED_RING as u64 * 3) {
            let (cid, _) = core.begin(Opcode::Read, false, DataNeed::Bytes(512), false, i * MS);
            assert!(
                !core.is_retired_cid(cid),
                "alloc handed out a recently-retired cid {cid}"
            );
            assert!(core.on_completion(cid, NvmeCompletion::ok(cid), i * MS, &mut out));
            out.clear();
        }
    }

    #[test]
    fn target_rings_match_on_generation_not_cid_alone() {
        let mut t = TargetRecovery::new();
        let comp = NvmeCompletion::ok(5);
        t.on_executed(5, 1, comp);
        // An abort for a *newer incarnation* of the same wire cid must
        // not be answered with the ancient completion.
        assert_eq!(t.on_abort(5, 2), AbortDecision::NotApplied);
        // The original generation still answers applied.
        assert_eq!(t.on_abort(5, 1), AbortDecision::Applied(comp));
        // Only the aborted generation's duplicates are dropped.
        assert!(t.should_drop_command(5, 2));
        assert!(!t.should_drop_command(5, 3));
    }
}
