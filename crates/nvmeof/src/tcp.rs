//! Real-socket NVMe/TCP transport (§4.5).
//!
//! A nonblocking, poll-mode [`Transport`] over a kernel `TcpStream`,
//! built for the same hot-path discipline as the ring transports:
//!
//! * **Vectored sends.** [`Transport::send_split`] transmits a data
//!   PDU as `[header-prefix, borrowed payload]` with one
//!   `write_vectored`, so large H2C/C2H payloads never pass through a
//!   coalescing copy (the PR-1 zero-allocation steady state survives
//!   the socket hop).
//! * **Resumable partial I/O.** Short writes park the unsent tail in a
//!   per-connection backlog that later sends *and* receive polls
//!   resume; short reads accumulate in a fixed receive window that
//!   parses frames by the header's `plen` and compacts partial tails
//!   in place. Both directions are pure state machines — no thread is
//!   ever blocked inside the kernel.
//! * **Poll-mode timeouts.** `recv_timeout` runs the same
//!   spin→yield→sleep [`WaitLadder`] as the ring waiters, so the §4.5
//!   adaptive busy-poll budget applies to socket waits unchanged.
//!
//! Frame boundaries come from the PDU common header itself (`plen` at
//! byte 4 covers the whole PDU), so the receive side needs no extra
//! length framing: read 12 bytes, then `plen − 12` more. CRC checking
//! stays in the PDU decoder, exactly as on the ring paths.

use std::io::{self, IoSlice, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use bytes::Bytes;

use crate::error::NvmeofError;
use crate::metrics::{TcpMetrics, TransportMetrics};
use crate::pdu::HEADER_LEN;
use crate::transport::{BackoffConfig, Frame, Transport, WaitLadder, WaitStep};

/// Direct `setsockopt`/`getsockopt` bindings for the two buffer knobs
/// the paper tunes. `std` already links libc, so declaring the symbols
/// avoids a dependency; non-Linux builds silently skip the tuning.
#[cfg(target_os = "linux")]
mod sockopt {
    use std::os::fd::RawFd;

    const SOL_SOCKET: i32 = 1;
    pub const SO_SNDBUF: i32 = 7;
    pub const SO_RCVBUF: i32 = 8;

    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *const core::ffi::c_void,
            optlen: u32,
        ) -> i32;
        fn getsockopt(
            fd: i32,
            level: i32,
            optname: i32,
            optval: *mut core::ffi::c_void,
            optlen: *mut u32,
        ) -> i32;
    }

    pub fn set(fd: RawFd, opt: i32, val: usize) -> bool {
        let v = val.min(i32::MAX as usize) as i32;
        let rc = unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                opt,
                (&v as *const i32).cast(),
                std::mem::size_of::<i32>() as u32,
            )
        };
        rc == 0
    }

    pub fn get(fd: RawFd, opt: i32) -> Option<usize> {
        let mut v: i32 = 0;
        let mut len = std::mem::size_of::<i32>() as u32;
        let rc = unsafe { getsockopt(fd, SOL_SOCKET, opt, (&mut v as *mut i32).cast(), &mut len) };
        if rc == 0 {
            Some(v.max(0) as usize)
        } else {
            None
        }
    }
}

/// Socket tuning knobs for [`TcpTransport`].
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Disable Nagle's algorithm (the control path is latency-bound;
    /// the paper's NVMe/TCP baseline runs with `TCP_NODELAY`).
    pub nodelay: bool,
    /// Requested `SO_SNDBUF` in bytes; `None` keeps the kernel default.
    pub sndbuf: Option<usize>,
    /// Requested `SO_RCVBUF` in bytes; `None` keeps the kernel default.
    ///
    /// Keep this at one path MSS or more: a receive buffer below the MSS
    /// (~64 KiB on Linux loopback) makes the kernel's silly-window
    /// avoidance suppress window updates, wedging bulk transfers at the
    /// TCP layer regardless of how fast both applications poll.
    pub rcvbuf: Option<usize>,
    /// Spin/yield tuning shared with the ring transports.
    pub backoff: BackoffConfig,
    /// Largest acceptable frame (`plen`); anything bigger means the
    /// byte stream has desynchronized and the connection is torn down.
    pub max_frame: usize,
    /// Initial receive-window size. Frames larger than the window grow
    /// it (up to `max_frame`), so this is a steady-state knob, not a
    /// limit.
    pub rx_window: usize,
    /// Send-backlog size past which a send blocks flushing (and
    /// finally reports [`NvmeofError::RingFull`]) instead of queueing
    /// more — the socket-path analog of a full ring.
    pub max_backlog: usize,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            nodelay: true,
            sndbuf: None,
            rcvbuf: None,
            backoff: BackoffConfig::default(),
            max_frame: 16 * 1024 * 1024,
            rx_window: 256 * 1024,
            max_backlog: 4 * 1024 * 1024,
        }
    }
}

/// Resumable send state: bytes accepted but not yet written to the
/// socket. `head` marks how much of `backlog` has already gone out, so
/// resuming a short write is a slice, not a memmove.
struct TxState {
    backlog: Vec<u8>,
    head: usize,
}

impl TxState {
    fn pending(&self) -> usize {
        self.backlog.len() - self.head
    }
}

/// Resumable receive state: a byte window the socket fills and the
/// frame parser drains. `consumed..filled` is unparsed stream data;
/// a partial tail frame simply stays there until more bytes arrive.
struct RxState {
    buf: Vec<u8>,
    filled: usize,
    consumed: usize,
    eof: bool,
}

impl RxState {
    fn available(&self) -> usize {
        self.filled - self.consumed
    }
}

/// Nonblocking, poll-mode NVMe/TCP socket transport (§4.5).
pub struct TcpTransport {
    stream: TcpStream,
    tx: Mutex<TxState>,
    rx: Mutex<RxState>,
    cfg: TcpConfig,
    metrics: Arc<TransportMetrics>,
    tcp: Arc<TcpMetrics>,
}

fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Maps a socket-level I/O failure onto the transport error space: any
/// hard error (reset, broken pipe, …) means the connection is gone.
fn closed(_: io::Error) -> NvmeofError {
    NvmeofError::TransportClosed
}

impl TcpTransport {
    /// Wraps an already-connected stream, applying `cfg` (nodelay,
    /// buffer sizes) and switching it to nonblocking mode.
    pub fn from_stream(stream: TcpStream, cfg: TcpConfig) -> io::Result<Self> {
        stream.set_nodelay(cfg.nodelay)?;
        #[cfg(target_os = "linux")]
        {
            use std::os::fd::AsRawFd;
            let fd = stream.as_raw_fd();
            if let Some(s) = cfg.sndbuf {
                sockopt::set(fd, sockopt::SO_SNDBUF, s);
            }
            if let Some(r) = cfg.rcvbuf {
                sockopt::set(fd, sockopt::SO_RCVBUF, r);
            }
        }
        stream.set_nonblocking(true)?;
        let rx_window = cfg.rx_window.max(HEADER_LEN);
        Ok(TcpTransport {
            stream,
            tx: Mutex::new(TxState {
                backlog: Vec::new(),
                head: 0,
            }),
            rx: Mutex::new(RxState {
                buf: vec![0; rx_window],
                filled: 0,
                consumed: 0,
                eof: false,
            }),
            cfg,
            metrics: TransportMetrics::new(),
            tcp: TcpMetrics::new(),
        })
    }

    /// Connects to a listening target, e.g. `"127.0.0.1:4420"`.
    pub fn connect<A: ToSocketAddrs>(addr: A, cfg: TcpConfig) -> io::Result<Self> {
        Self::from_stream(TcpStream::connect(addr)?, cfg)
    }

    /// Accepts one connection from `listener` (blocking accept, then
    /// the socket itself runs nonblocking).
    pub fn accept_from(listener: &TcpListener, cfg: TcpConfig) -> io::Result<Self> {
        let (stream, _) = listener.accept()?;
        Self::from_stream(stream, cfg)
    }

    /// A connected pair over `127.0.0.1` — the in-process stand-in for
    /// an initiator↔target link, and what the connection manager uses
    /// when locality says "remote" but both processes share a host.
    pub fn loopback_pair(cfg: TcpConfig) -> io::Result<(Self, Self)> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let client = TcpStream::connect(addr)?;
        let (server, _) = listener.accept()?;
        Ok((
            Self::from_stream(client, cfg.clone())?,
            Self::from_stream(server, cfg)?,
        ))
    }

    /// This endpoint's generic transport metrics.
    pub fn metrics(&self) -> &Arc<TransportMetrics> {
        &self.metrics
    }

    /// Socket-specific counters (syscalls, partial-I/O resumptions).
    pub fn tcp_metrics(&self) -> &Arc<TcpMetrics> {
        &self.tcp
    }

    /// The backoff tuning this endpoint waits with.
    pub fn backoff_config(&self) -> BackoffConfig {
        self.cfg.backoff
    }

    /// Kernel-reported `(SO_SNDBUF, SO_RCVBUF)`, where available.
    pub fn effective_bufs(&self) -> (Option<usize>, Option<usize>) {
        #[cfg(target_os = "linux")]
        {
            use std::os::fd::AsRawFd;
            let fd = self.stream.as_raw_fd();
            (
                sockopt::get(fd, sockopt::SO_SNDBUF),
                sockopt::get(fd, sockopt::SO_RCVBUF),
            )
        }
        #[cfg(not(target_os = "linux"))]
        {
            (None, None)
        }
    }

    /// Pushes any parked backlog toward the socket without blocking.
    /// Returns `true` when nothing is left parked.
    ///
    /// The receive paths already flush opportunistically, so a duplex
    /// poll loop never needs this; it exists for one-directional
    /// senders (bulk streamers, drains before close) whose parked tail
    /// would otherwise wait for a send or receive that never comes.
    pub fn flush(&self) -> Result<bool, NvmeofError> {
        let mut tx = lock_ignore_poison(&self.tx);
        self.flush_backlog(&mut tx)
    }

    /// Writes as much of the backlog as the socket accepts right now.
    /// Returns `true` when the backlog is fully drained.
    fn flush_backlog(&self, tx: &mut TxState) -> Result<bool, NvmeofError> {
        while tx.head < tx.backlog.len() {
            let res = (&self.stream).write(&tx.backlog[tx.head..]);
            self.tcp.tx_syscalls.inc();
            match res {
                Ok(0) => return Err(NvmeofError::TransportClosed),
                Ok(n) => tx.head += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.tcp.tx_backlog_bytes.set(tx.pending() as i64);
                    return Ok(false);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(closed(e)),
            }
        }
        tx.backlog.clear();
        tx.head = 0;
        self.tcp.tx_backlog_bytes.set(0);
        Ok(true)
    }

    /// If a sender parked bytes, try to push them out — called from the
    /// receive paths so a poll loop drives both directions (poll-mode
    /// duplex: two peers with parked tails always make progress off
    /// each other's receive polls).
    fn opportunistic_flush(&self) {
        if let Ok(mut tx) = self.tx.try_lock() {
            if tx.head < tx.backlog.len() {
                // A send error here will resurface on the next send.
                let _ = self.flush_backlog(&mut tx);
            }
        }
    }

    /// Core send: transmit `prefix ++ payload` as one logical frame,
    /// parking whatever the socket won't take in the backlog.
    fn transmit(&self, prefix: &[u8], payload: &[u8]) -> Result<(), NvmeofError> {
        let total = prefix.len() + payload.len();
        let mut tx = lock_ignore_poison(&self.tx);
        let mut written = 0usize;
        if self.flush_backlog(&mut tx)? {
            if !payload.is_empty() {
                self.tcp.vectored_sends.inc();
            }
            loop {
                let res = if written < prefix.len() {
                    if payload.is_empty() {
                        (&self.stream).write(&prefix[written..])
                    } else {
                        (&self.stream).write_vectored(&[
                            IoSlice::new(&prefix[written..]),
                            IoSlice::new(payload),
                        ])
                    }
                } else {
                    (&self.stream).write(&payload[written - prefix.len()..])
                };
                self.tcp.tx_syscalls.inc();
                match res {
                    Ok(0) => return Err(NvmeofError::TransportClosed),
                    Ok(n) => {
                        written += n;
                        if written >= total {
                            self.metrics.on_send(total);
                            return Ok(());
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(closed(e)),
                }
            }
        }
        // The socket is full. Park the unsent tail so a later send or
        // receive poll resumes it; a frame that already hit the wire
        // partially *must* be queued to keep the stream framed.
        let mid_frame = written > 0;
        if mid_frame {
            self.tcp.partial_write_resumptions.inc();
        }
        let queued_from = tx.backlog.len();
        if written < prefix.len() {
            tx.backlog.extend_from_slice(&prefix[written..]);
            tx.backlog.extend_from_slice(payload);
        } else {
            tx.backlog
                .extend_from_slice(&payload[written - prefix.len()..]);
        }
        self.tcp.tx_backlog_bytes.observe_max(tx.pending() as i64);
        self.tcp.tx_backlog_bytes.set(tx.pending() as i64);
        if tx.pending() <= self.cfg.max_backlog {
            self.metrics.on_send(total);
            return Ok(());
        }
        // Backlog over budget: block on a bounded spin/yield flush, the
        // socket analog of waiting on a full ring.
        let deadline = Instant::now() + self.cfg.backoff.send_full_timeout;
        let mut ladder = WaitLadder::until(deadline, &self.cfg.backoff);
        loop {
            if self.flush_backlog(&mut tx)? || tx.pending() <= self.cfg.max_backlog {
                self.metrics.on_send(total);
                return Ok(());
            }
            match ladder.step() {
                WaitStep::Again => {}
                WaitStep::Sleep(d) => std::thread::sleep(d),
                WaitStep::Expired => {
                    if mid_frame {
                        // Can't drop a half-sent frame without breaking
                        // the stream; accept it and let later polls
                        // drain the tail.
                        self.metrics.on_send(total);
                        return Ok(());
                    }
                    // Drop this (never-started) frame cleanly.
                    tx.backlog.truncate(queued_from);
                    self.tcp.tx_backlog_bytes.set(tx.pending() as i64);
                    self.metrics.ring_full.inc();
                    return Err(NvmeofError::RingFull);
                }
            }
        }
    }

    /// Frame bounds of the next complete PDU in the window, if any.
    fn peek_frame(&self, rx: &RxState) -> Result<Option<std::ops::Range<usize>>, NvmeofError> {
        if rx.available() < HEADER_LEN {
            return Ok(None);
        }
        let h = &rx.buf[rx.consumed..];
        let plen = u32::from_le_bytes([h[4], h[5], h[6], h[7]]) as usize;
        if plen < HEADER_LEN || plen > self.cfg.max_frame {
            return Err(NvmeofError::Protocol(format!(
                "tcp stream desync: frame length {plen} outside [{HEADER_LEN}, {}]",
                self.cfg.max_frame
            )));
        }
        if rx.available() < plen {
            return Ok(None);
        }
        Ok(Some(rx.consumed..rx.consumed + plen))
    }

    /// Makes at least one byte of fill space: compact the window over
    /// already-consumed bytes, or grow it when a single frame is larger
    /// than the whole window.
    fn ensure_space(&self, rx: &mut RxState) {
        if rx.filled < rx.buf.len() {
            return;
        }
        if rx.consumed > 0 {
            rx.buf.copy_within(rx.consumed..rx.filled, 0);
            rx.filled -= rx.consumed;
            rx.consumed = 0;
            self.tcp.rx_compactions.inc();
            if rx.filled < rx.buf.len() {
                return;
            }
        }
        // One frame fills the entire window: grow toward its announced
        // length (bad lengths are rejected in peek_frame before this
        // can run away; cap at max_frame regardless).
        let announced = if rx.available() >= HEADER_LEN {
            let h = &rx.buf[rx.consumed..];
            u32::from_le_bytes([h[4], h[5], h[6], h[7]]) as usize
        } else {
            0
        };
        let want = announced
            .max(rx.buf.len() * 2)
            .min(self.cfg.max_frame.max(HEADER_LEN));
        if want > rx.buf.len() {
            rx.buf.resize(want, 0);
        }
    }

    /// Reads whatever the socket has ready into the window. Returns
    /// `true` if any bytes arrived.
    fn fill(&self, rx: &mut RxState) -> Result<bool, NvmeofError> {
        if rx.eof {
            return Ok(false);
        }
        let mut progress = false;
        loop {
            self.ensure_space(rx);
            if rx.filled == rx.buf.len() {
                // Window is at max_frame and still no complete frame —
                // peek_frame will report the desync.
                return Ok(progress);
            }
            let res = (&self.stream).read(&mut rx.buf[rx.filled..]);
            self.tcp.rx_syscalls.inc();
            match res {
                Ok(0) => {
                    rx.eof = true;
                    return Ok(progress);
                }
                Ok(n) => {
                    progress = true;
                    rx.filled += n;
                    if rx.filled < rx.buf.len() {
                        // Short read: the socket gave us all it had.
                        return Ok(progress);
                    }
                    // Filled the window exactly — there may be more.
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(progress),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(closed(e)),
            }
        }
    }

    /// Resets the window indices once everything buffered is consumed,
    /// so steady-state traffic never needs compaction.
    fn rewind_if_empty(rx: &mut RxState) {
        if rx.consumed == rx.filled {
            rx.consumed = 0;
            rx.filled = 0;
        }
    }
}

impl Transport for TcpTransport {
    fn send(&self, frame: Bytes) -> Result<(), NvmeofError> {
        self.transmit(&frame, &[])
    }

    fn send_frame(&self, frame: &[u8]) -> Result<(), NvmeofError> {
        self.transmit(frame, &[])
    }

    fn send_split(&self, prefix: &[u8], payload: &[u8]) -> Result<(), NvmeofError> {
        self.transmit(prefix, payload)
    }

    fn prefers_split(&self) -> bool {
        true
    }

    fn try_recv(&self) -> Result<Option<Bytes>, NvmeofError> {
        self.opportunistic_flush();
        let mut rx = lock_ignore_poison(&self.rx);
        if self.peek_frame(&rx)?.is_none() {
            self.fill(&mut rx)?;
        }
        if let Some(r) = self.peek_frame(&rx)? {
            let frame = Bytes::copy_from_slice(&rx.buf[r.clone()]);
            rx.consumed = r.end;
            Self::rewind_if_empty(&mut rx);
            self.metrics.on_recv_owned(frame.len());
            return Ok(Some(frame));
        }
        if rx.eof {
            // Peer hung up; a truncated tail frame is unrecoverable.
            return Err(NvmeofError::TransportClosed);
        }
        Ok(None)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Bytes>, NvmeofError> {
        let deadline = Instant::now() + timeout;
        let mut ladder = WaitLadder::until(deadline, &self.cfg.backoff);
        loop {
            if let Some(frame) = self.try_recv()? {
                return Ok(Some(frame));
            }
            match ladder.step() {
                WaitStep::Again => {}
                WaitStep::Sleep(d) => std::thread::sleep(d),
                WaitStep::Expired => return Ok(None),
            }
        }
    }

    fn recv_batch(&self, f: &mut dyn FnMut(Frame<'_>)) -> Result<usize, NvmeofError> {
        self.opportunistic_flush();
        let mut rx = lock_ignore_poison(&self.rx);
        let fill_res = self.fill(&mut rx);
        let mut n = 0usize;
        loop {
            match self.peek_frame(&rx) {
                Ok(Some(r)) => {
                    self.metrics.on_recv_borrowed(r.len());
                    f(Frame::Borrowed(&rx.buf[r.clone()]));
                    rx.consumed = r.end;
                    n += 1;
                }
                Ok(None) => break,
                Err(e) => {
                    // Deliver what we parsed; the desync error surfaces
                    // on the next poll.
                    if n > 0 {
                        self.metrics.batch_sizes.record(n as u64);
                        return Ok(n);
                    }
                    return Err(e);
                }
            }
        }
        if rx.available() > 0 && matches!(fill_res, Ok(true)) {
            // A tail frame is still incomplete after this fill — it will
            // resume on a later poll.
            self.tcp.partial_read_resumptions.inc();
        }
        Self::rewind_if_empty(&mut rx);
        if n > 0 {
            self.metrics.batch_sizes.record(n as u64);
            return Ok(n);
        }
        match fill_res {
            Err(e) => Err(e),
            Ok(_) if rx.eof => Err(NvmeofError::TransportClosed),
            Ok(_) => Ok(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pdu::{CapsuleResp, Pdu};
    use bytes::BytesMut;

    fn pair() -> (TcpTransport, TcpTransport) {
        TcpTransport::loopback_pair(TcpConfig::default()).expect("loopback pair")
    }

    #[test]
    fn frames_cross_the_socket_both_ways() {
        let (a, b) = pair();
        let p = Pdu::CapsuleResp(CapsuleResp {
            completion: crate::nvme::completion::NvmeCompletion::ok(7),
        });
        a.send_frame(&p.encode()).unwrap();
        let got = b.recv_timeout(Duration::from_secs(2)).unwrap().unwrap();
        assert_eq!(Pdu::decode(got).unwrap(), p);
        b.send_frame(&p.encode()).unwrap();
        let got = a.recv_timeout(Duration::from_secs(2)).unwrap().unwrap();
        assert_eq!(Pdu::decode(got).unwrap(), p);
    }

    #[test]
    fn split_send_is_one_frame_on_the_wire() {
        let (a, b) = pair();
        let payload = Bytes::from(vec![0xA5u8; 100_000]);
        let pdu = Pdu::H2CData(crate::pdu::DataPdu {
            cid: 3,
            ttag: 1,
            offset: 0,
            last: true,
            data: crate::pdu::DataRef::Inline(payload),
        });
        let mut scratch = BytesMut::new();
        let tail = pdu.encode_split_into(&mut scratch).unwrap();
        assert!(a.prefers_split());
        a.send_split(&scratch, tail).unwrap();
        let got = b.recv_timeout(Duration::from_secs(2)).unwrap().unwrap();
        assert_eq!(Pdu::decode(got).unwrap(), pdu);
        assert!(a.tcp_metrics().vectored_sends.get() >= 1);
    }

    #[test]
    fn peer_drop_surfaces_as_transport_closed() {
        let (a, b) = pair();
        drop(b);
        // The closure may take a few polls to surface.
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            match a.recv_timeout(Duration::from_millis(50)) {
                Err(NvmeofError::TransportClosed) => break,
                Ok(None) | Ok(Some(_)) => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
            assert!(Instant::now() < deadline, "closure never surfaced");
        }
    }

    #[test]
    fn desynced_stream_is_rejected() {
        let (a, b) = pair();
        // A "frame" whose plen is garbage (way over max_frame).
        let mut junk = vec![0u8; HEADER_LEN];
        junk[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        a.send_frame(&junk).unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            match b.try_recv() {
                Err(NvmeofError::Protocol(m)) => {
                    assert!(m.contains("desync"), "{m}");
                    break;
                }
                Ok(None) => {}
                other => panic!("unexpected: {other:?}"),
            }
            assert!(Instant::now() < deadline, "desync never surfaced");
        }
    }

    #[test]
    fn buffer_sizes_are_applied_on_linux() {
        if !cfg!(target_os = "linux") {
            return;
        }
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let cfg = TcpConfig {
            sndbuf: Some(8 * 1024),
            rcvbuf: Some(8 * 1024),
            ..TcpConfig::default()
        };
        let client = TcpTransport::connect(addr, cfg.clone()).unwrap();
        let _server = TcpTransport::accept_from(&listener, cfg).unwrap();
        let (snd, rcv) = client.effective_bufs();
        // The kernel doubles the requested value for bookkeeping; just
        // check the request visibly landed (tiny, not the default).
        assert!(snd.unwrap() <= 64 * 1024, "sndbuf: {snd:?}");
        assert!(rcv.unwrap() <= 64 * 1024, "rcvbuf: {rcv:?}");
    }
}
