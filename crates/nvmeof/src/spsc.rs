//! Bounded single-producer / single-consumer ring for cross-shard admin.
//!
//! The sharded runtime ([`crate::shard`]) keeps every hot-path structure
//! shard-private; the one thing that must cross shards — admin commands
//! like "adopt this connection" or "shut down" — travels through this
//! ring. It is deliberately minimal: one producer (the control plane),
//! one consumer (the shard's reactor thread), a fixed capacity, and
//! wait-free `push`/`pop` built on two monotonic counters. No mutex ever
//! crosses cores, so a stalled control plane cannot block a reactor and
//! a busy reactor cannot block the control plane.
//!
//! The SPSC contract is enforced by ownership: [`SpscSender`] and
//! [`SpscReceiver`] are not `Clone`, so exactly one thread can ever hold
//! each end.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct SpscInner<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next sequence number to write (owned by the producer; the
    /// consumer only reads it).
    head: AtomicUsize,
    /// Next sequence number to read (owned by the consumer; the
    /// producer only reads it).
    tail: AtomicUsize,
}

// SAFETY: the producer writes a slot strictly before publishing it by
// advancing `head` (Release), and the consumer reads it strictly after
// observing the advance (Acquire); `tail` symmetrically hands slots
// back. With exactly one producer and one consumer (enforced by the
// non-Clone endpoint types), no slot is ever accessed concurrently.
unsafe impl<T: Send> Send for SpscInner<T> {}
unsafe impl<T: Send> Sync for SpscInner<T> {}

impl<T> SpscInner<T> {
    fn capacity(&self) -> usize {
        self.slots.len()
    }
}

impl<T> Drop for SpscInner<T> {
    fn drop(&mut self) {
        // Both endpoints are gone (Arc refcount hit zero): drain whatever
        // the consumer never popped so element destructors still run.
        let head = *self.head.get_mut();
        let mut tail = *self.tail.get_mut();
        while tail != head {
            let slot = tail % self.capacity();
            // SAFETY: sequence numbers in [tail, head) were published and
            // never consumed; we have `&mut self`, so no other accessor.
            unsafe { (*self.slots[slot].get()).assume_init_drop() };
            tail = tail.wrapping_add(1);
        }
    }
}

/// Producer end of a bounded SPSC ring (not `Clone`: one producer).
pub struct SpscSender<T> {
    inner: Arc<SpscInner<T>>,
}

/// Consumer end of a bounded SPSC ring (not `Clone`: one consumer).
pub struct SpscReceiver<T> {
    inner: Arc<SpscInner<T>>,
}

/// Creates a connected pair with room for `capacity` in-flight items.
/// Panics on a zero capacity.
pub fn spsc<T>(capacity: usize) -> (SpscSender<T>, SpscReceiver<T>) {
    assert!(capacity > 0, "spsc ring needs at least one slot");
    let inner = Arc::new(SpscInner {
        slots: (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect(),
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
    });
    (
        SpscSender {
            inner: inner.clone(),
        },
        SpscReceiver { inner },
    )
}

impl<T> SpscSender<T> {
    /// Enqueues `value`, or returns it when the ring is full (the caller
    /// decides whether to retry, drop, or treat a persistently full
    /// mailbox as a wedged shard).
    pub fn push(&self, value: T) -> Result<(), T> {
        let inner = &self.inner;
        let head = inner.head.load(Ordering::Relaxed);
        let tail = inner.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) >= inner.capacity() {
            return Err(value);
        }
        let slot = head % inner.capacity();
        // SAFETY: the slot's previous occupant (sequence head - capacity)
        // was consumed — tail has passed it — and only this producer
        // writes slots.
        unsafe { (*inner.slots[slot].get()).write(value) };
        inner.head.store(head.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Items currently enqueued (racy snapshot; exact only from the
    /// producer thread).
    pub fn len(&self) -> usize {
        let head = self.inner.head.load(Ordering::Relaxed);
        let tail = self.inner.tail.load(Ordering::Acquire);
        head.wrapping_sub(tail)
    }

    /// Whether the ring currently holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Whether the consumer end still exists. A dropped consumer means
    /// pushes will never be drained.
    pub fn receiver_alive(&self) -> bool {
        // Two handles reference the inner ring while both ends live.
        Arc::strong_count(&self.inner) > 1
    }
}

impl<T> SpscReceiver<T> {
    /// Dequeues the oldest item, or `None` when the ring is empty.
    pub fn pop(&self) -> Option<T> {
        let inner = &self.inner;
        let tail = inner.tail.load(Ordering::Relaxed);
        let head = inner.head.load(Ordering::Acquire);
        if tail == head {
            return None;
        }
        let slot = tail % inner.capacity();
        // SAFETY: the producer published this sequence number (tail <
        // head under Acquire), and only this consumer reads slots.
        let value = unsafe { (*inner.slots[slot].get()).assume_init_read() };
        inner.tail.store(tail.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Items currently enqueued (racy snapshot; exact only from the
    /// consumer thread).
    pub fn len(&self) -> usize {
        let tail = self.inner.tail.load(Ordering::Relaxed);
        let head = self.inner.head.load(Ordering::Acquire);
        head.wrapping_sub(tail)
    }

    /// Whether the ring currently holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the producer end still exists. Once it is gone and the
    /// ring is empty, nothing will ever arrive again.
    pub fn sender_alive(&self) -> bool {
        Arc::strong_count(&self.inner) > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_fifo() {
        let (tx, rx) = spsc::<u32>(4);
        for v in 0..4 {
            tx.push(v).unwrap();
        }
        assert_eq!(tx.push(99), Err(99)); // full
        assert_eq!(tx.len(), 4);
        for v in 0..4 {
            assert_eq!(rx.pop(), Some(v));
        }
        assert_eq!(rx.pop(), None);
        assert!(rx.is_empty() && tx.is_empty());
    }

    #[test]
    fn wraps_around_many_times() {
        let (tx, rx) = spsc::<usize>(3);
        for round in 0..100 {
            tx.push(round).unwrap();
            assert_eq!(rx.pop(), Some(round));
        }
    }

    #[test]
    fn endpoint_liveness_tracks_drops() {
        let (tx, rx) = spsc::<u8>(2);
        assert!(tx.receiver_alive());
        assert!(rx.sender_alive());
        tx.push(7).unwrap();
        drop(tx);
        assert!(!rx.sender_alive());
        assert_eq!(rx.pop(), Some(7)); // buffered items survive
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn unconsumed_items_are_dropped_with_the_ring() {
        let flag = Arc::new(AtomicUsize::new(0));
        #[derive(Debug)]
        struct Probe(Arc<AtomicUsize>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let (tx, rx) = spsc::<Probe>(4);
        tx.push(Probe(flag.clone())).unwrap();
        tx.push(Probe(flag.clone())).unwrap();
        drop(rx.pop()); // one consumed normally
        drop(tx);
        drop(rx);
        assert_eq!(flag.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn cross_thread_handoff_loses_nothing() {
        let (tx, rx) = spsc::<u64>(8);
        let producer = std::thread::spawn(move || {
            for v in 0..10_000u64 {
                let mut item = v;
                loop {
                    match tx.push(item) {
                        Ok(()) => break,
                        Err(back) => {
                            item = back;
                            std::hint::spin_loop();
                        }
                    }
                }
            }
        });
        let mut seen = 0u64;
        let mut sum = 0u64;
        while seen < 10_000 {
            if let Some(v) = rx.pop() {
                assert_eq!(v, seen, "FIFO order violated");
                sum += v;
                seen += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert_eq!(sum, 10_000 * 9_999 / 2);
    }
}
