//! Metric bundles for the NVMe-oF data plane.
//!
//! Each bundle is a plain struct of `Arc`-backed [`oaf_telemetry`]
//! handles, created *detached* alongside the subsystem it instruments
//! (transport endpoint, initiator, target connection) so the hot path
//! never branches on "is telemetry enabled" — recording is always a few
//! relaxed atomics. `register` publishes the same handles into a
//! [`Scope`] at wiring time; until then the numbers simply accumulate
//! unobserved.

use crate::nvme::command::Opcode;
use oaf_telemetry::{Counter, Gauge, Histo, Scope};
use std::sync::Arc;

/// Per-endpoint transport counters: frame/byte flow, batch shape, the
/// owned-vs-borrowed receive split, and congestion/backoff behavior.
#[derive(Default, Debug)]
pub struct TransportMetrics {
    /// Frames successfully handed to the peer.
    pub frames_sent: Counter,
    /// Payload bytes successfully handed to the peer.
    pub bytes_sent: Counter,
    /// Frames received from the peer.
    pub frames_received: Counter,
    /// Payload bytes received from the peer.
    pub bytes_received: Counter,
    /// `recv_batch` burst sizes (only non-empty batches are recorded,
    /// so idle polls don't swamp the distribution).
    pub batch_sizes: Histo,
    /// Frames delivered as borrowed ring slices (zero-copy path).
    pub frames_borrowed: Counter,
    /// Frames delivered as owned buffers (copy or channel hand-off).
    pub frames_owned: Counter,
    /// Sends that exhausted the full-ring backoff and gave up with
    /// [`crate::error::NvmeofError::RingFull`].
    pub ring_full: Counter,
    /// Busy-poll iterations spent waiting on a ring (send or receive).
    pub backoff_spins: Counter,
    /// `yield_now` calls spent waiting on a ring (send or receive).
    pub backoff_yields: Counter,
}

impl TransportMetrics {
    /// Fresh, detached bundle.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Publish every metric of this bundle into `scope`.
    pub fn register(&self, scope: &Scope) {
        scope.adopt_counter("frames_sent", &self.frames_sent);
        scope.adopt_counter("bytes_sent", &self.bytes_sent);
        scope.adopt_counter("frames_received", &self.frames_received);
        scope.adopt_counter("bytes_received", &self.bytes_received);
        scope.adopt_histo("batch_sizes", &self.batch_sizes);
        scope.adopt_counter("frames_borrowed", &self.frames_borrowed);
        scope.adopt_counter("frames_owned", &self.frames_owned);
        scope.adopt_counter("ring_full", &self.ring_full);
        scope.adopt_counter("backoff_spins", &self.backoff_spins);
        scope.adopt_counter("backoff_yields", &self.backoff_yields);
    }

    #[inline]
    pub(crate) fn on_send(&self, bytes: usize) {
        self.frames_sent.inc();
        self.bytes_sent.add(bytes as u64);
    }

    #[inline]
    pub(crate) fn on_send_burst(&self, frames: u64, bytes: u64) {
        self.frames_sent.add(frames);
        self.bytes_sent.add(bytes);
    }

    #[inline]
    pub(crate) fn on_recv_owned(&self, bytes: usize) {
        self.frames_received.inc();
        self.bytes_received.add(bytes as u64);
        self.frames_owned.inc();
    }

    #[inline]
    pub(crate) fn on_recv_borrowed(&self, bytes: usize) {
        self.frames_received.inc();
        self.bytes_received.add(bytes as u64);
        self.frames_borrowed.inc();
    }

    /// Record a completed wait (successful or not) on a ring.
    #[inline]
    pub(crate) fn on_backoff(&self, spins: u64, yields: u64) {
        if spins > 0 {
            self.backoff_spins.add(spins);
        }
        if yields > 0 {
            self.backoff_yields.add(yields);
        }
    }
}

/// Number of distinct opcodes the per-opcode latency table covers.
pub const OPCODES: usize = 7;

/// Dense index for the per-opcode latency table.
#[inline]
pub fn opcode_index(op: Opcode) -> usize {
    match op {
        Opcode::Flush => 0,
        Opcode::Write => 1,
        Opcode::Read => 2,
        Opcode::Compare => 3,
        Opcode::Identify => 4,
        Opcode::WriteZeroes => 5,
        Opcode::Dsm => 6,
    }
}

const OPCODE_NAMES: [&str; OPCODES] = [
    "flush",
    "write",
    "read",
    "compare",
    "identify",
    "write_zeroes",
    "dsm",
];

/// Initiator-side view of the command stream: queue depth, volume, and
/// per-opcode submit→completion latency distributions (nanoseconds).
#[derive(Debug)]
pub struct InitiatorMetrics {
    /// Commands submitted (all opcodes).
    pub submitted: Counter,
    /// Completions received.
    pub completions: Counter,
    /// Completions carrying a non-success NVMe status.
    pub errors: Counter,
    /// Commands currently in flight; `hwm()` is the deepest the queue
    /// has ever been.
    pub inflight: Gauge,
    /// Payload bytes moved without an application-side copy (lease-based
    /// writes published in place, reads borrowed from the slot).
    pub zero_copy_bytes: Counter,
    /// Application-side copies the lease path avoided versus the
    /// one-copy publish/consume path.
    pub copies_avoided: Counter,
    /// Commands resubmitted after a deadline expiry (reads directly,
    /// writes after an abort round-trip).
    pub retries: Counter,
    /// Commands whose retry budget ran out and were surfaced as
    /// [`crate::error::NvmeofError::Timeout`].
    pub timeouts: Counter,
    /// Keep-alive heartbeats that went unanswered past the interval.
    pub keepalive_misses: Counter,
    /// Mid-flight shm→TCP payload-path degradations.
    pub degradations: Counter,
    /// Frames for already-retired commands (late duplicates or
    /// completions that raced a retry) dropped instead of erroring.
    pub stale_frames: Counter,
    /// Received frames dropped for failing CRC or structural decode.
    pub corrupt_frames: Counter,
    /// Abort requests sent as part of write-retry round-trips.
    pub aborts_sent: Counter,
    /// H2C sub-requests (chunks) emitted per chunked write transfer
    /// (§4.5, Fig. 9). Only transfers that actually split are recorded.
    pub chunks_per_io: Histo,
    /// H2C data PDUs sent in response to R2T grants (chunked or not).
    pub h2c_chunks: Counter,
    /// Current adaptive busy-poll budget for read-class waits, in
    /// microseconds (§4.5, Fig. 10).
    pub busy_poll_read_us: Gauge,
    /// Current adaptive busy-poll budget for write-class waits, in
    /// microseconds.
    pub busy_poll_write_us: Gauge,
    latency: [Histo; OPCODES],
}

impl Default for InitiatorMetrics {
    fn default() -> Self {
        InitiatorMetrics {
            submitted: Counter::new(),
            completions: Counter::new(),
            errors: Counter::new(),
            inflight: Gauge::new(),
            zero_copy_bytes: Counter::new(),
            copies_avoided: Counter::new(),
            retries: Counter::new(),
            timeouts: Counter::new(),
            keepalive_misses: Counter::new(),
            degradations: Counter::new(),
            stale_frames: Counter::new(),
            corrupt_frames: Counter::new(),
            aborts_sent: Counter::new(),
            chunks_per_io: Histo::new(),
            h2c_chunks: Counter::new(),
            busy_poll_read_us: Gauge::new(),
            busy_poll_write_us: Gauge::new(),
            latency: std::array::from_fn(|_| Histo::new()),
        }
    }
}

impl InitiatorMetrics {
    /// Fresh, detached bundle.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Submit→completion latency distribution for one opcode.
    #[inline]
    pub fn latency(&self, op: Opcode) -> &Histo {
        &self.latency[opcode_index(op)]
    }

    /// Publish every metric of this bundle into `scope`.
    pub fn register(&self, scope: &Scope) {
        scope.adopt_counter("submitted", &self.submitted);
        scope.adopt_counter("completions", &self.completions);
        scope.adopt_counter("errors", &self.errors);
        scope.adopt_gauge("inflight", &self.inflight);
        scope.adopt_counter("zero_copy_bytes", &self.zero_copy_bytes);
        scope.adopt_counter("copies_avoided", &self.copies_avoided);
        scope.adopt_counter("retries", &self.retries);
        scope.adopt_counter("timeouts", &self.timeouts);
        scope.adopt_counter("keepalive_misses", &self.keepalive_misses);
        scope.adopt_counter("degradations", &self.degradations);
        scope.adopt_counter("stale_frames", &self.stale_frames);
        scope.adopt_counter("corrupt_frames", &self.corrupt_frames);
        scope.adopt_counter("aborts_sent", &self.aborts_sent);
        for (i, h) in self.latency.iter().enumerate() {
            scope.adopt_histo(&format!("lat_{}_ns", OPCODE_NAMES[i]), h);
        }
        self.register_tcp_path(scope);
    }

    /// Publish just the TCP-path tuning metrics (chunking + busy-poll)
    /// into `scope` — used to surface them under the `tcp` scope next to
    /// the socket transport's own counters.
    pub fn register_tcp_path(&self, scope: &Scope) {
        scope.adopt_histo("chunks_per_io", &self.chunks_per_io);
        scope.adopt_counter("h2c_chunks", &self.h2c_chunks);
        scope.adopt_gauge("busy_poll_read_us", &self.busy_poll_read_us);
        scope.adopt_gauge("busy_poll_write_us", &self.busy_poll_write_us);
    }
}

/// Socket-level counters for the real TCP transport (§4.5): syscall
/// pressure, partial-I/O resumptions, and receive-buffer behavior.
/// Syscalls-per-frame falls out as `tx_syscalls / frames_sent` (resp.
/// rx) against the paired [`TransportMetrics`].
#[derive(Default, Debug)]
pub struct TcpMetrics {
    /// `write`/`writev` calls issued on the socket.
    pub tx_syscalls: Counter,
    /// `read` calls issued on the socket (including empty polls).
    pub rx_syscalls: Counter,
    /// Vectored `[prefix, payload]` sends that skipped the coalescing
    /// copy.
    pub vectored_sends: Counter,
    /// Sends that could not finish in one call and parked bytes in the
    /// resumable backlog.
    pub partial_write_resumptions: Counter,
    /// Receive fills that ended mid-frame and had to resume on a later
    /// poll.
    pub partial_read_resumptions: Counter,
    /// Receive-buffer compactions (memmove of a partial tail frame).
    pub rx_compactions: Counter,
    /// Bytes currently parked in the send backlog; `hwm()` is the worst
    /// case observed.
    pub tx_backlog_bytes: Gauge,
}

impl TcpMetrics {
    /// Fresh, detached bundle.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Publish every metric of this bundle into `scope`.
    pub fn register(&self, scope: &Scope) {
        scope.adopt_counter("tx_syscalls", &self.tx_syscalls);
        scope.adopt_counter("rx_syscalls", &self.rx_syscalls);
        scope.adopt_counter("vectored_sends", &self.vectored_sends);
        scope.adopt_counter("partial_write_resumptions", &self.partial_write_resumptions);
        scope.adopt_counter("partial_read_resumptions", &self.partial_read_resumptions);
        scope.adopt_counter("rx_compactions", &self.rx_compactions);
        scope.adopt_gauge("tx_backlog_bytes", &self.tx_backlog_bytes);
    }
}

/// Target-side view of one connection: commands served by opcode class,
/// flow-control events, and payload placement.
#[derive(Default, Debug)]
pub struct TargetMetrics {
    /// Commands executed against the namespace (all opcodes).
    pub ops: Counter,
    /// Response capsules produced.
    pub responses: Counter,
    /// R2T grants issued (conservative write flow).
    pub r2t_grants: Counter,
    /// Write payloads that arrived as shared-memory slot references.
    pub shm_payloads: Counter,
    /// Write payloads that arrived inline in the capsule/H2C stream.
    pub inline_payloads: Counter,
    /// Payload bytes served without an intermediate copy (writes
    /// consumed borrowed from the slot, reads published from a lease).
    pub zero_copy_bytes: Counter,
    /// Target-side copies the lease path avoided versus materializing
    /// payloads into a `Vec`.
    pub copies_avoided: Counter,
    /// Commands that completed with a non-success NVMe status.
    pub errors: Counter,
    /// Abort requests handled (either answered from the completed-cid
    /// ring or acknowledged as not-applied).
    pub aborts_handled: Counter,
    /// Keep-alive heartbeats echoed back to the client.
    pub keepalives: Counter,
    /// Received frames dropped by the reactor for failing CRC or
    /// structural decode.
    pub corrupt_frames: Counter,
    /// Barrier-class completions parked on an offloaded sync ticket
    /// instead of blocking the reactor in `fdatasync`.
    pub barriers_parked: Counter,
    /// Wall time a parked barrier completion waited for its sync ticket
    /// to retire, nanoseconds.
    pub barrier_park_ns: Histo,
}

impl TargetMetrics {
    /// Fresh, detached bundle.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Publish every metric of this bundle into `scope`.
    pub fn register(&self, scope: &Scope) {
        scope.adopt_counter("ops", &self.ops);
        scope.adopt_counter("responses", &self.responses);
        scope.adopt_counter("r2t_grants", &self.r2t_grants);
        scope.adopt_counter("shm_payloads", &self.shm_payloads);
        scope.adopt_counter("inline_payloads", &self.inline_payloads);
        scope.adopt_counter("zero_copy_bytes", &self.zero_copy_bytes);
        scope.adopt_counter("copies_avoided", &self.copies_avoided);
        scope.adopt_counter("errors", &self.errors);
        scope.adopt_counter("aborts_handled", &self.aborts_handled);
        scope.adopt_counter("keepalives", &self.keepalives);
        scope.adopt_counter("corrupt_frames", &self.corrupt_frames);
        scope.adopt_counter("barriers_parked", &self.barriers_parked);
        scope.adopt_histo("barrier_park_ns", &self.barrier_park_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oaf_telemetry::Registry;

    #[test]
    fn opcode_table_is_dense_and_total() {
        let ops = [
            Opcode::Flush,
            Opcode::Write,
            Opcode::Read,
            Opcode::Compare,
            Opcode::Identify,
            Opcode::WriteZeroes,
            Opcode::Dsm,
        ];
        let mut seen = [false; OPCODES];
        for op in ops {
            let i = opcode_index(op);
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn initiator_metrics_register_per_opcode_histos() {
        let m = InitiatorMetrics::new();
        m.latency(Opcode::Read).record(500);
        m.latency(Opcode::Write).record(900);
        let registry = Registry::new();
        m.register(&registry.scope("client"));
        let snap = registry.snapshot();
        assert_eq!(snap.histo("client", "lat_read_ns").unwrap().count, 1);
        assert_eq!(snap.histo("client", "lat_write_ns").unwrap().count, 1);
        assert_eq!(snap.histo("client", "lat_flush_ns").unwrap().count, 0);
    }

    #[test]
    fn transport_metrics_register_all() {
        let m = TransportMetrics::new();
        m.on_send(64);
        m.on_recv_borrowed(64);
        m.batch_sizes.record(1);
        let registry = Registry::new();
        m.register(&registry.scope("transport"));
        let snap = registry.snapshot();
        assert_eq!(snap.counter("transport", "frames_sent"), 1);
        assert_eq!(snap.counter("transport", "bytes_received"), 64);
        assert_eq!(snap.counter("transport", "frames_borrowed"), 1);
        assert_eq!(snap.histo("transport", "batch_sizes").unwrap().count, 1);
    }
}
