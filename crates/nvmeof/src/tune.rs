//! Runtime tuning knobs for the TCP data path (§4.5).
//!
//! The paper's two inter-node optimizations, expressed on plain
//! [`std::time::Duration`] + `f64` so the *real* socket transport and the
//! simulator share one implementation (`oaf_core::tcp_opt` keeps its
//! simulation-typed API as thin wrappers over this module):
//!
//! * **Application-level chunk size.** Stock NVMe/TCP statically splits
//!   I/O into 128 KiB sub-requests, and the chunk size also sizes the
//!   target's buffer pools. Small chunks multiply per-chunk CPU cost,
//!   huge chunks waste target memory — Fig. 9 finds 512 KiB optimal for
//!   25 Gbps Ethernet. [`ChunkSelector`] encodes that trade-off as an
//!   explicit cost model and picks the best chunk for the link.
//! * **Adaptive busy polling.** Static budgets are suboptimal because
//!   read and write waits differ (Fig. 10): writes want long budgets
//!   (~100 µs), reads want 25–50 µs. [`BusyPollController`] tracks an
//!   EWMA of observed wait times per direction and selects a budget
//!   from the candidate ladder.

use std::time::Duration;

/// One kibibyte, for chunk-ladder arithmetic.
pub const KIB: u64 = 1024;
/// One mebibyte.
pub const MIB: u64 = 1024 * KIB;

/// Number of `chunk`-sized sub-requests needed to cover `len` bytes.
pub fn chunks_for(len: u64, chunk: u64) -> u64 {
    if chunk == 0 {
        return 0;
    }
    len.div_ceil(chunk)
}

/// Cost model constants for chunk-size selection.
#[derive(Clone, Copy, Debug)]
pub struct ChunkCostModel {
    /// Fixed CPU time per chunk per side (stack traversal, descriptor
    /// handling).
    pub per_chunk_cpu: Duration,
    /// Link goodput in bytes per second.
    pub goodput_bytes_per_sec: f64,
    /// Target-side buffer-pool pressure per chunk, quadratic in the chunk
    /// size and referenced to 512 KiB (models the paper's "choosing a very
    /// large chunk leads to under-utilization of memory" — pool buffers
    /// are chunk-sized, so their cache/TLB footprint grows with the
    /// chunk).
    pub mem_quad_us_at_512k: f64,
}

impl ChunkCostModel {
    /// The paper's testbed model: `gbps` Ethernet at ~94% goodput, 12 µs
    /// of per-chunk CPU per side, Fig. 9's memory penalty.
    pub fn for_link_gbps(gbps: f64) -> Self {
        ChunkCostModel {
            per_chunk_cpu: Duration::from_micros(12),
            goodput_bytes_per_sec: gbps * 1e9 / 8.0 * 0.94,
            mem_quad_us_at_512k: 14.0,
        }
    }

    /// Effective per-I/O cost of moving `io_size` bytes with `chunk`-sized
    /// sub-requests, in microseconds. Lower is better.
    pub fn cost_us(&self, io_size: u64, chunk: u64) -> f64 {
        let chunks = chunks_for(io_size, chunk) as f64;
        let cpu = chunks * 2.0 * self.per_chunk_cpu.as_secs_f64() * 1e6;
        let wire = io_size as f64 / self.goodput_bytes_per_sec * 1e6;
        let ratio = chunk as f64 / (512.0 * KIB as f64);
        let mem = chunks * self.mem_quad_us_at_512k * ratio * ratio;
        cpu + wire + mem
    }
}

/// Selects the application-level chunk size for a link.
///
/// ```
/// use oaf_nvmeof::tune::{ChunkCostModel, ChunkSelector, KIB, MIB};
///
/// let selector = ChunkSelector::new(ChunkCostModel::for_link_gbps(25.0));
/// // The paper's Fig. 9 conclusion for 25 Gbps Ethernet:
/// assert_eq!(selector.select(&[128 * KIB, 512 * KIB, MIB, 2 * MIB]), 512 * KIB);
/// ```
pub struct ChunkSelector {
    model: ChunkCostModel,
    candidates: Vec<u64>,
}

impl ChunkSelector {
    /// Candidate ladder used by the paper's sweep (Fig. 9).
    pub fn default_candidates() -> Vec<u64> {
        vec![64 * KIB, 128 * KIB, 256 * KIB, 512 * KIB, MIB, 2 * MIB]
    }

    /// Creates a selector over the default candidate ladder.
    pub fn new(model: ChunkCostModel) -> Self {
        ChunkSelector {
            model,
            candidates: Self::default_candidates(),
        }
    }

    /// Picks the chunk minimizing the summed cost over a representative
    /// I/O-size mix (the paper sweeps 128 KiB – 2 MiB streams).
    pub fn select(&self, io_sizes: &[u64]) -> u64 {
        *self
            .candidates
            .iter()
            .min_by(|&&a, &&b| {
                let ca: f64 = io_sizes.iter().map(|&s| self.model.cost_us(s, a)).sum();
                let cb: f64 = io_sizes.iter().map(|&s| self.model.cost_us(s, b)).sum();
                ca.partial_cmp(&cb).expect("finite costs")
            })
            .expect("non-empty candidates")
    }
}

/// The workload directions the busy-poll controller distinguishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PollClass {
    /// Waits for read data / read completions.
    Read,
    /// Waits for R2T grants / write completions.
    Write,
}

/// Workload-adaptive busy-poll budget selection.
pub struct BusyPollController {
    ladder: Vec<Duration>,
    ewma_alpha: f64,
    read_wait_us: f64,
    write_wait_us: f64,
    samples: u64,
}

impl BusyPollController {
    /// The candidate budgets the paper evaluates (Fig. 10), plus
    /// interrupt mode (zero).
    pub fn default_ladder() -> Vec<Duration> {
        vec![
            Duration::ZERO,
            Duration::from_micros(25),
            Duration::from_micros(50),
            Duration::from_micros(100),
        ]
    }

    /// Creates a controller with the default ladder.
    pub fn new() -> Self {
        BusyPollController {
            ladder: Self::default_ladder(),
            ewma_alpha: 0.05,
            read_wait_us: 30.0,
            write_wait_us: 80.0,
            samples: 0,
        }
    }

    /// Feeds one observed wait (time between posting a receive and data
    /// arrival) for `class`.
    pub fn observe(&mut self, class: PollClass, wait: Duration) {
        let target = match class {
            PollClass::Read => &mut self.read_wait_us,
            PollClass::Write => &mut self.write_wait_us,
        };
        *target = (1.0 - self.ewma_alpha) * *target + self.ewma_alpha * wait.as_secs_f64() * 1e6;
        self.samples += 1;
    }

    /// Current EWMA estimate for a class, in microseconds.
    pub fn estimate_us(&self, class: PollClass) -> f64 {
        match class {
            PollClass::Read => self.read_wait_us,
            PollClass::Write => self.write_wait_us,
        }
    }

    /// Selects the budget for a class: the smallest ladder rung covering
    /// ~the EWMA wait (catching the arrival without oversizing the spin,
    /// which wastes the core at high queue depth — the Fig. 10 read dip
    /// at 100 µs).
    pub fn budget(&self, class: PollClass) -> Duration {
        let want = self.estimate_us(class) * 1.15; // slack for jitter
        for &rung in &self.ladder[1..] {
            if rung.as_secs_f64() * 1e6 >= want {
                return rung;
            }
        }
        *self.ladder.last().expect("non-empty ladder")
    }

    /// Observations consumed so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

impl Default for BusyPollController {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_picks_512k_for_25g() {
        let sel = ChunkSelector::new(ChunkCostModel::for_link_gbps(25.0));
        let mix = [128 * KIB, 256 * KIB, 512 * KIB, MIB, 2 * MIB];
        assert_eq!(sel.select(&mix), 512 * KIB);
    }

    #[test]
    fn controller_separates_directions_on_std_durations() {
        let mut c = BusyPollController::new();
        for _ in 0..400 {
            c.observe(PollClass::Read, Duration::from_micros(28));
            c.observe(PollClass::Write, Duration::from_micros(85));
        }
        assert_eq!(c.budget(PollClass::Read), Duration::from_micros(50));
        assert_eq!(c.budget(PollClass::Write), Duration::from_micros(100));
    }

    #[test]
    fn chunks_for_rounds_up() {
        assert_eq!(chunks_for(0, 512), 0);
        assert_eq!(chunks_for(1, 512), 1);
        assert_eq!(chunks_for(512, 512), 1);
        assert_eq!(chunks_for(513, 512), 2);
        assert_eq!(chunks_for(100, 0), 0);
    }
}
