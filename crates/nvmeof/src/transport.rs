//! Frame transports for the real (threaded) runtime.
//!
//! [`MemTransport`] is the control path of the in-process deployment: a
//! duplex, frame-oriented channel standing in for the TCP connection
//! between the client VM and the target VM. [`ShmTransport`] is the
//! fully in-region control path (§5.5). [`RateLimited`] wraps either
//! with a wall-clock token-bucket + latency model so examples can
//! *feel* the difference between a 10 Gbps and a 100 Gbps control path
//! without a NIC.
//!
//! # Hot-path discipline
//!
//! Reactor loops should prefer the batched half of the trait —
//! [`Transport::recv_batch`] and [`Transport::send_batch`] — which let
//! ring-based transports hand out *borrowed* frames ([`Frame`]) and
//! amortize one Acquire/Release pair over every frame ready in the
//! poll-loop iteration, with zero allocations in the steady state.
//! Waiting is a bounded adaptive spin→yield backoff, never a blind
//! spin.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};

use crate::error::NvmeofError;
use crate::metrics::TransportMetrics;
use oaf_shmem::RingStats;

/// A received frame: owned (channel transports hand over their buffer)
/// or borrowed straight out of a shared-memory ring (zero-copy).
pub enum Frame<'a> {
    /// The transport transfers ownership of the buffer.
    Owned(Bytes),
    /// The frame borrows the transport's receive window; valid only for
    /// the duration of the callback.
    Borrowed(&'a [u8]),
}

impl Frame<'_> {
    /// The frame's bytes.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            Frame::Owned(b) => b,
            Frame::Borrowed(s) => s,
        }
    }

    /// Converts into an owned buffer (free for `Owned`, one copy for
    /// `Borrowed`).
    pub fn into_bytes(self) -> Bytes {
        match self {
            Frame::Owned(b) => b,
            Frame::Borrowed(s) => Bytes::copy_from_slice(s),
        }
    }
}

/// Ring-wait tuning knobs, settable per connection (through
/// `FabricSettings` in `oaf-core`) instead of compile-time constants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackoffConfig {
    /// Busy-poll iterations before a waiter starts yielding the CPU.
    pub spin_limit: u32,
    /// How long a ring-based `send` waits on a full ring before
    /// reporting [`NvmeofError::RingFull`]: long enough for any live
    /// peer poll loop to drain, short enough to surface a dead peer
    /// quickly.
    pub send_full_timeout: Duration,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            spin_limit: 128,
            send_full_timeout: Duration::from_millis(100),
        }
    }
}

/// Bounded adaptive backoff helper: spin briefly, then yield until the
/// deadline. Returns `false` once the deadline has passed. Counts its
/// spins and yields locally so a completed wait can be flushed into
/// [`TransportMetrics`] with two atomics instead of one per iteration.
struct Backoff {
    spins: u32,
    yields: u32,
    spin_limit: u32,
    deadline: Instant,
}

impl Backoff {
    fn until(deadline: Instant, spin_limit: u32) -> Self {
        Backoff {
            spins: 0,
            yields: 0,
            spin_limit,
            deadline,
        }
    }

    /// One backoff step. Returns `false` when the deadline has passed.
    fn snooze(&mut self) -> bool {
        if self.spins < self.spin_limit {
            self.spins += 1;
            std::hint::spin_loop();
            return true;
        }
        if Instant::now() >= self.deadline {
            return false;
        }
        self.yields += 1;
        std::thread::yield_now();
        true
    }

    /// Flush the local spin/yield tally into `metrics`.
    fn flush(&self, metrics: &TransportMetrics) {
        metrics.on_backoff(u64::from(self.spins), u64::from(self.yields));
    }
}

/// What a [`WaitLadder`] caller should do before polling again.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WaitStep {
    /// Poll again immediately — the ladder already spun or yielded.
    Again,
    /// Park on the transport (`recv_timeout`) for up to this long, then
    /// poll again.
    Sleep(Duration),
    /// The deadline has passed without progress.
    Expired,
}

/// Spin→yield→sleep ladder for blocking waiters (`Initiator::wait`,
/// `Initiator::connect`), driven by the same [`BackoffConfig`] the ring
/// transports use so wait aggressiveness is one knob fabric-wide.
///
/// The first `spin_limit` steps busy-poll (latency-critical window where
/// the completion is probably already in flight), the next few multiples
/// yield the core, and after that the caller is told to park in short
/// bounded slices so a stalled peer costs sleeps, not a melted core.
pub struct WaitLadder {
    spins: u32,
    yields: u32,
    spin_limit: u32,
    deadline: Instant,
    /// When set, the busy-poll phase is *time*-based: spin until this
    /// instant (the §4.5 adaptive budget) instead of counting
    /// `spin_limit` iterations.
    spin_until: Option<Instant>,
}

impl WaitLadder {
    /// Yield phase length as a multiple of the spin budget.
    const YIELD_FACTOR: u32 = 4;
    /// Maximum single park interval; short enough that deadline checks
    /// stay responsive even when the peer is wedged.
    const SLEEP_SLICE: Duration = Duration::from_micros(500);

    /// A ladder that gives up at `deadline`.
    pub fn until(deadline: Instant, cfg: &BackoffConfig) -> Self {
        WaitLadder {
            spins: 0,
            yields: 0,
            spin_limit: cfg.spin_limit,
            deadline,
            spin_until: None,
        }
    }

    /// A ladder whose busy-poll phase lasts `spin_budget` of wall time —
    /// the workload-adaptive budget chosen by
    /// [`crate::tune::BusyPollController`] (§4.5, Fig. 10) — before
    /// descending to yields and bounded sleeps. A zero budget skips the
    /// spin phase entirely (interrupt mode).
    pub fn until_with_spin(deadline: Instant, cfg: &BackoffConfig, spin_budget: Duration) -> Self {
        WaitLadder {
            spins: 0,
            yields: 0,
            spin_limit: cfg.spin_limit,
            deadline,
            spin_until: Some(Instant::now() + spin_budget),
        }
    }

    /// One wait step. The caller polls, and on no-progress calls `step`
    /// and obeys the returned [`WaitStep`].
    pub fn step(&mut self) -> WaitStep {
        match self.spin_until {
            Some(t) => {
                if Instant::now() < t {
                    self.spins += 1;
                    std::hint::spin_loop();
                    return WaitStep::Again;
                }
            }
            None => {
                if self.spins < self.spin_limit {
                    self.spins += 1;
                    std::hint::spin_loop();
                    return WaitStep::Again;
                }
            }
        }
        let now = Instant::now();
        if now >= self.deadline {
            return WaitStep::Expired;
        }
        if self.yields < self.spin_limit.saturating_mul(Self::YIELD_FACTOR) {
            self.yields += 1;
            std::thread::yield_now();
            return WaitStep::Again;
        }
        WaitStep::Sleep((self.deadline - now).min(Self::SLEEP_SLICE))
    }
}

/// A duplex, frame-oriented transport endpoint.
pub trait Transport: Send {
    /// Sends one frame to the peer.
    fn send(&self, frame: Bytes) -> Result<(), NvmeofError>;
    /// Receives a frame if one is ready.
    fn try_recv(&self) -> Result<Option<Bytes>, NvmeofError>;
    /// Receives a frame, waiting up to `timeout`.
    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Bytes>, NvmeofError>;

    /// Sends one frame from a borrowed buffer — the zero-allocation send
    /// path for callers that encode into a reusable scratch. Ring
    /// transports copy the slice straight into the ring; channel
    /// transports fall back to one owned copy.
    fn send_frame(&self, frame: &[u8]) -> Result<(), NvmeofError> {
        self.send(Bytes::copy_from_slice(frame))
    }

    /// Sends one logical frame supplied as `prefix ++ payload` — the
    /// vectored path for data PDUs whose payload is borrowed from the
    /// caller ([`crate::pdu::Pdu::encode_split_into`]). Socket
    /// transports override this with a single `write_vectored`,
    /// skipping the payload coalescing copy; the default glues the two
    /// parts and takes the ordinary `send_frame` path.
    fn send_split(&self, prefix: &[u8], payload: &[u8]) -> Result<(), NvmeofError> {
        let mut whole = Vec::with_capacity(prefix.len() + payload.len());
        whole.extend_from_slice(prefix);
        whole.extend_from_slice(payload);
        self.send_frame(&whole)
    }

    /// Whether [`Transport::send_split`] actually avoids the coalescing
    /// copy on this transport. Callers that can encode straight into a
    /// reusable scratch consult this and only split when it pays.
    fn prefers_split(&self) -> bool {
        false
    }

    /// Sends every frame in `frames` (draining it), letting ring
    /// transports publish the whole burst with one Release store.
    fn send_batch(&self, frames: &mut Vec<Bytes>) -> Result<(), NvmeofError> {
        for frame in frames.drain(..) {
            self.send(frame)?;
        }
        Ok(())
    }

    /// Hands every frame that is currently ready to `f`, returning the
    /// count. Ring transports pass frames *borrowed* (no allocation, no
    /// copy) and pay one Acquire/Release pair for the whole batch.
    ///
    /// An error is reported only when no frame was consumed this call:
    /// frames queued ahead of a peer hang-up are delivered (and counted)
    /// first, and the closure surfaces on the next call.
    fn recv_batch(&self, f: &mut dyn FnMut(Frame<'_>)) -> Result<usize, NvmeofError> {
        let mut n = 0usize;
        loop {
            match self.try_recv() {
                Ok(Some(frame)) => {
                    f(Frame::Owned(frame));
                    n += 1;
                }
                Ok(None) => return Ok(n),
                Err(e) => {
                    return if n > 0 { Ok(n) } else { Err(e) };
                }
            }
        }
    }
}

/// In-process duplex transport endpoint.
pub struct MemTransport {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
    metrics: Arc<TransportMetrics>,
}

impl MemTransport {
    /// Creates a connected pair of endpoints.
    pub fn pair() -> (MemTransport, MemTransport) {
        let (a_tx, b_rx) = unbounded();
        let (b_tx, a_rx) = unbounded();
        (
            MemTransport {
                tx: a_tx,
                rx: a_rx,
                metrics: TransportMetrics::new(),
            },
            MemTransport {
                tx: b_tx,
                rx: b_rx,
                metrics: TransportMetrics::new(),
            },
        )
    }

    /// This endpoint's transport metrics (detached until registered).
    pub fn metrics(&self) -> &Arc<TransportMetrics> {
        &self.metrics
    }
}

impl Transport for MemTransport {
    fn send(&self, frame: Bytes) -> Result<(), NvmeofError> {
        let len = frame.len();
        self.tx
            .send(frame)
            .map_err(|_| NvmeofError::TransportClosed)?;
        self.metrics.on_send(len);
        Ok(())
    }

    fn try_recv(&self) -> Result<Option<Bytes>, NvmeofError> {
        match self.rx.try_recv() {
            Ok(f) => {
                self.metrics.on_recv_owned(f.len());
                Ok(Some(f))
            }
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(NvmeofError::TransportClosed),
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Bytes>, NvmeofError> {
        match self.rx.recv_timeout(timeout) {
            Ok(f) => {
                self.metrics.on_recv_owned(f.len());
                Ok(Some(f))
            }
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(NvmeofError::TransportClosed),
        }
    }

    fn recv_batch(&self, f: &mut dyn FnMut(Frame<'_>)) -> Result<usize, NvmeofError> {
        let mut n = 0usize;
        loop {
            match self.try_recv() {
                Ok(Some(frame)) => {
                    f(Frame::Owned(frame));
                    n += 1;
                }
                Ok(None) => break,
                Err(e) => {
                    if n == 0 {
                        return Err(e);
                    }
                    break;
                }
            }
        }
        if n > 0 {
            self.metrics.batch_sizes.record(n as u64);
        }
        Ok(n)
    }
}

/// Fully in-region control path: a duplex transport over two lock-free
/// [`ByteRing`](oaf_shmem::byte_ring::ByteRing)s in a shared-memory region (the paper's §5.5 future-work
/// direction — replacing even the TCP control hop). Each endpoint pushes
/// to its transmit ring and pops from its receive ring; wake-up is the
/// consumer's poll loop, exactly like the SPDK reactor.
pub struct ShmTransport {
    tx: oaf_shmem::byte_ring::ByteRing,
    rx: oaf_shmem::byte_ring::ByteRing,
    config: BackoffConfig,
    metrics: Arc<TransportMetrics>,
    tx_ring_stats: Arc<RingStats>,
}

impl ShmTransport {
    /// Builds a connected pair of endpoints over a fresh region with
    /// `capacity` data bytes per direction (a power of two), using the
    /// default backoff tuning.
    pub fn pair(capacity: u64) -> (ShmTransport, ShmTransport) {
        Self::pair_with(capacity, BackoffConfig::default())
    }

    /// Builds a connected pair with explicit ring-wait tuning.
    pub fn pair_with(capacity: u64, config: BackoffConfig) -> (ShmTransport, ShmTransport) {
        use oaf_shmem::byte_ring::ByteRing;
        let one = ByteRing::required_len(capacity);
        // Two rings back to back; required_len is cache-line aligned.
        let region = std::sync::Arc::new(oaf_shmem::ShmRegion::new(2 * one));
        let mut a = ByteRing::new(region.clone(), 0, capacity).expect("sized");
        let mut b = ByteRing::new(region, one, capacity).expect("sized");
        // Each endpoint instruments the producer side of its own tx
        // ring; the peer's rx handle is a clone, which never inherits
        // the stats bundle, so nothing double-counts.
        let a_stats = RingStats::new();
        let b_stats = RingStats::new();
        let a_rx = b.clone();
        let b_rx = a.clone();
        a.set_stats(a_stats.clone());
        b.set_stats(b_stats.clone());
        (
            ShmTransport {
                tx: a,
                rx: a_rx,
                config,
                metrics: TransportMetrics::new(),
                tx_ring_stats: a_stats,
            },
            ShmTransport {
                tx: b,
                rx: b_rx,
                config,
                metrics: TransportMetrics::new(),
                tx_ring_stats: b_stats,
            },
        )
    }

    /// Largest frame the transport can carry.
    pub fn max_frame(&self) -> usize {
        self.tx.max_frame()
    }

    /// This endpoint's transport metrics (detached until registered).
    pub fn metrics(&self) -> &Arc<TransportMetrics> {
        &self.metrics
    }

    /// Producer-side stats of this endpoint's transmit ring.
    pub fn tx_ring_stats(&self) -> &Arc<RingStats> {
        &self.tx_ring_stats
    }

    /// The ring-wait tuning in effect.
    pub fn backoff_config(&self) -> BackoffConfig {
        self.config
    }
}

impl Transport for ShmTransport {
    fn send(&self, frame: Bytes) -> Result<(), NvmeofError> {
        self.send_frame(&frame)
    }

    fn send_frame(&self, frame: &[u8]) -> Result<(), NvmeofError> {
        // Straight from the caller's scratch into the ring — no owned
        // buffer in between. Fast path: the push lands first try and
        // telemetry costs two relaxed atomics.
        match self.tx.push(frame) {
            Ok(()) => {
                self.metrics.on_send(frame.len());
                return Ok(());
            }
            Err(oaf_shmem::ShmError::RingFull) => {}
            Err(e) => return Err(NvmeofError::Payload(e.to_string())),
        }
        // Bounded spin→yield on a full ring: a live peer poll loop
        // drains in microseconds; a dead one surfaces as RingFull.
        let mut backoff = Backoff::until(
            Instant::now() + self.config.send_full_timeout,
            self.config.spin_limit,
        );
        loop {
            if !backoff.snooze() {
                backoff.flush(&self.metrics);
                self.metrics.ring_full.inc();
                return Err(NvmeofError::RingFull);
            }
            match self.tx.push(frame) {
                Ok(()) => {
                    backoff.flush(&self.metrics);
                    self.metrics.on_send(frame.len());
                    return Ok(());
                }
                Err(oaf_shmem::ShmError::RingFull) => {}
                Err(e) => {
                    backoff.flush(&self.metrics);
                    return Err(NvmeofError::Payload(e.to_string()));
                }
            }
        }
    }

    fn try_recv(&self) -> Result<Option<Bytes>, NvmeofError> {
        Ok(self.rx.pop().map(|f| {
            self.metrics.on_recv_owned(f.len());
            Bytes::from(f)
        }))
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Bytes>, NvmeofError> {
        if let Some(f) = self.try_recv()? {
            return Ok(Some(f));
        }
        let mut backoff = Backoff::until(Instant::now() + timeout, self.config.spin_limit);
        loop {
            if let Some(f) = self.rx.pop() {
                backoff.flush(&self.metrics);
                self.metrics.on_recv_owned(f.len());
                return Ok(Some(Bytes::from(f)));
            }
            if !backoff.snooze() {
                backoff.flush(&self.metrics);
                return Ok(None);
            }
        }
    }

    fn send_batch(&self, frames: &mut Vec<Bytes>) -> Result<(), NvmeofError> {
        let mut sent = 0usize;
        let mut backoff = Backoff::until(
            Instant::now() + self.config.send_full_timeout,
            self.config.spin_limit,
        );
        let result = loop {
            if sent >= frames.len() {
                break Ok(());
            }
            // One Release publish per burst that fits.
            match self.tx.push_n(frames[sent..].iter()) {
                Ok(0) => {
                    if !backoff.snooze() {
                        self.metrics.ring_full.inc();
                        break Err(NvmeofError::RingFull);
                    }
                }
                Ok(n) => {
                    let bytes: u64 = frames[sent..sent + n].iter().map(|f| f.len() as u64).sum();
                    self.metrics.on_send_burst(n as u64, bytes);
                    sent += n;
                    backoff.flush(&self.metrics);
                    backoff = Backoff::until(
                        Instant::now() + self.config.send_full_timeout,
                        self.config.spin_limit,
                    );
                }
                Err(e) => break Err(NvmeofError::Payload(e.to_string())),
            }
        };
        backoff.flush(&self.metrics);
        match result {
            Ok(()) => {
                frames.clear();
                Ok(())
            }
            Err(e) => {
                frames.drain(..sent);
                Err(e)
            }
        }
    }

    fn recv_batch(&self, f: &mut dyn FnMut(Frame<'_>)) -> Result<usize, NvmeofError> {
        // Borrowed frames straight out of the ring: zero copies, zero
        // allocations, one Acquire/Release pair for the whole batch.
        let metrics = &*self.metrics;
        let n = self.rx.drain(|frame| {
            metrics.on_recv_borrowed(frame.len());
            f(Frame::Borrowed(frame));
        });
        if n > 0 {
            metrics.batch_sizes.record(n as u64);
        }
        Ok(n)
    }
}

/// Static dispatch over the real-runtime control paths, so the
/// connection manager can pick per connection (real kernel-TCP socket,
/// channel stand-in, or the §5.5 in-region byte rings) without boxing
/// the hot path.
pub enum ControlTransport {
    /// Channel-backed in-process stand-in (tests, or when socket setup
    /// is unavailable).
    Mem(MemTransport),
    /// In-region control path over shared-memory byte rings.
    Shm(ShmTransport),
    /// Real nonblocking kernel-TCP socket (§4.5).
    Tcp(crate::tcp::TcpTransport),
}

impl ControlTransport {
    /// This endpoint's transport metrics, whichever path is active.
    pub fn metrics(&self) -> &Arc<TransportMetrics> {
        match self {
            ControlTransport::Mem(t) => t.metrics(),
            ControlTransport::Shm(t) => t.metrics(),
            ControlTransport::Tcp(t) => t.metrics(),
        }
    }

    /// `true` when the control path runs over in-region byte rings.
    pub fn is_in_region(&self) -> bool {
        matches!(self, ControlTransport::Shm(_))
    }

    /// `true` when the control path runs over a real kernel socket.
    pub fn is_socket(&self) -> bool {
        matches!(self, ControlTransport::Tcp(_))
    }

    /// The socket transport's TCP-specific metrics, when active.
    pub fn tcp_metrics(&self) -> Option<&Arc<crate::metrics::TcpMetrics>> {
        match self {
            ControlTransport::Tcp(t) => Some(t.tcp_metrics()),
            _ => None,
        }
    }
}

impl Transport for ControlTransport {
    fn send(&self, frame: Bytes) -> Result<(), NvmeofError> {
        match self {
            ControlTransport::Mem(t) => t.send(frame),
            ControlTransport::Shm(t) => t.send(frame),
            ControlTransport::Tcp(t) => t.send(frame),
        }
    }

    fn try_recv(&self) -> Result<Option<Bytes>, NvmeofError> {
        match self {
            ControlTransport::Mem(t) => t.try_recv(),
            ControlTransport::Shm(t) => t.try_recv(),
            ControlTransport::Tcp(t) => t.try_recv(),
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Bytes>, NvmeofError> {
        match self {
            ControlTransport::Mem(t) => t.recv_timeout(timeout),
            ControlTransport::Shm(t) => t.recv_timeout(timeout),
            ControlTransport::Tcp(t) => t.recv_timeout(timeout),
        }
    }

    fn send_frame(&self, frame: &[u8]) -> Result<(), NvmeofError> {
        match self {
            ControlTransport::Mem(t) => t.send_frame(frame),
            ControlTransport::Shm(t) => t.send_frame(frame),
            ControlTransport::Tcp(t) => t.send_frame(frame),
        }
    }

    fn send_split(&self, prefix: &[u8], payload: &[u8]) -> Result<(), NvmeofError> {
        match self {
            ControlTransport::Mem(t) => t.send_split(prefix, payload),
            ControlTransport::Shm(t) => t.send_split(prefix, payload),
            ControlTransport::Tcp(t) => t.send_split(prefix, payload),
        }
    }

    fn prefers_split(&self) -> bool {
        match self {
            ControlTransport::Mem(t) => t.prefers_split(),
            ControlTransport::Shm(t) => t.prefers_split(),
            ControlTransport::Tcp(t) => t.prefers_split(),
        }
    }

    fn send_batch(&self, frames: &mut Vec<Bytes>) -> Result<(), NvmeofError> {
        match self {
            ControlTransport::Mem(t) => t.send_batch(frames),
            ControlTransport::Shm(t) => t.send_batch(frames),
            ControlTransport::Tcp(t) => t.send_batch(frames),
        }
    }

    fn recv_batch(&self, f: &mut dyn FnMut(Frame<'_>)) -> Result<usize, NvmeofError> {
        match self {
            ControlTransport::Mem(t) => t.recv_batch(f),
            ControlTransport::Shm(t) => t.recv_batch(f),
            ControlTransport::Tcp(t) => t.recv_batch(f),
        }
    }
}

impl Transport for Box<dyn Transport> {
    fn send(&self, frame: Bytes) -> Result<(), NvmeofError> {
        (**self).send(frame)
    }

    fn try_recv(&self) -> Result<Option<Bytes>, NvmeofError> {
        (**self).try_recv()
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Bytes>, NvmeofError> {
        (**self).recv_timeout(timeout)
    }

    fn send_frame(&self, frame: &[u8]) -> Result<(), NvmeofError> {
        (**self).send_frame(frame)
    }

    fn send_split(&self, prefix: &[u8], payload: &[u8]) -> Result<(), NvmeofError> {
        (**self).send_split(prefix, payload)
    }

    fn prefers_split(&self) -> bool {
        (**self).prefers_split()
    }

    fn send_batch(&self, frames: &mut Vec<Bytes>) -> Result<(), NvmeofError> {
        (**self).send_batch(frames)
    }

    fn recv_batch(&self, f: &mut dyn FnMut(Frame<'_>)) -> Result<usize, NvmeofError> {
        (**self).recv_batch(f)
    }
}

/// Wall-clock rate/latency shaping parameters.
#[derive(Clone, Copy, Debug)]
pub struct ShapeParams {
    /// Sustained bandwidth in bytes per second.
    pub bytes_per_sec: f64,
    /// Fixed one-way latency added to every frame.
    pub latency: Duration,
}

impl ShapeParams {
    /// Shaping for an `n`-gigabit-per-second link with the given one-way
    /// latency.
    pub fn gbps(n: f64, latency: Duration) -> Self {
        ShapeParams {
            bytes_per_sec: n * 1e9 / 8.0,
            latency,
        }
    }
}

/// A frame parked in the delivery queue until its deadline. Ordered by
/// `(deliver_at, seq)` so equal deadlines stay FIFO.
struct Delayed {
    deliver_at: Instant,
    seq: u64,
    frame: Bytes,
}

impl PartialEq for Delayed {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl Eq for Delayed {}
impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delayed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

/// A transport wrapper that delays frame *delivery* according to a serial
/// link model: each frame becomes visible `latency + serialization` after
/// the previous frame's wire time.
pub struct RateLimited<T: Transport> {
    inner: T,
    params: ShapeParams,
    tx_free: std::sync::Mutex<Instant>,
    /// Min-heap on `deliver_at`: peeking the next due frame is O(1),
    /// delivery is O(log n) — not the O(n) scan of a flat queue.
    rx_queue: std::sync::Mutex<std::collections::BinaryHeap<std::cmp::Reverse<Delayed>>>,
    rx_seq: std::sync::atomic::AtomicU64,
}

impl<T: Transport> RateLimited<T> {
    /// Wraps `inner` with shaping `params`.
    pub fn new(inner: T, params: ShapeParams) -> Self {
        RateLimited {
            inner,
            params,
            tx_free: std::sync::Mutex::new(Instant::now()),
            rx_queue: std::sync::Mutex::new(std::collections::BinaryHeap::new()),
            rx_seq: std::sync::atomic::AtomicU64::new(0),
        }
    }

    fn stamp(&self, len: usize) -> Duration {
        let ser = Duration::from_secs_f64(len as f64 / self.params.bytes_per_sec);
        let mut free = self.tx_free.lock().expect("tx mutex");
        let now = Instant::now();
        let start = (*free).max(now);
        *free = start + ser;
        (start + ser + self.params.latency) - now
    }
}

impl<T: Transport> Transport for RateLimited<T> {
    fn send(&self, frame: Bytes) -> Result<(), NvmeofError> {
        // Encode the delivery deadline as an 8-byte prefix of nanos offset
        // from the send instant, resolved at the receiver. Simpler and
        // cheaper: delay the *sender* for serialization (back-pressure) and
        // prefix the remaining latency for the receiver to honor.
        let wait = self.stamp(frame.len());
        // Serialization back-pressure happens inline.
        let ser_part = wait.saturating_sub(self.params.latency);
        if !ser_part.is_zero() {
            std::thread::sleep(ser_part);
        }
        let mut framed = Vec::with_capacity(8 + frame.len());
        framed.extend_from_slice(&self.params.latency.as_nanos().to_le_bytes()[..8]);
        framed.extend_from_slice(&frame);
        self.inner.send(Bytes::from(framed))
    }

    fn try_recv(&self) -> Result<Option<Bytes>, NvmeofError> {
        let now = Instant::now();
        // One queue-mutex acquisition per call: stage arrivals and check
        // the earliest deadline under the same lock.
        let mut q = self.rx_queue.lock().expect("rx mutex");
        while let Some(f) = self.inner.try_recv()? {
            let lat = u64::from_le_bytes(f[..8].try_into().expect("latency prefix"));
            q.push(std::cmp::Reverse(Delayed {
                deliver_at: now + Duration::from_nanos(lat),
                seq: self
                    .rx_seq
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed),
                frame: f.slice(8..),
            }));
        }
        match q.peek() {
            Some(std::cmp::Reverse(d)) if d.deliver_at <= Instant::now() => {
                Ok(q.pop().map(|std::cmp::Reverse(d)| d.frame))
            }
            _ => Ok(None),
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Bytes>, NvmeofError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(f) = self.try_recv()? {
                return Ok(Some(f));
            }
            if Instant::now() >= deadline {
                return Ok(None);
            }
            std::thread::sleep(Duration::from_micros(20));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_pair_is_duplex() {
        let (a, b) = MemTransport::pair();
        a.send(Bytes::from_static(b"ping")).unwrap();
        b.send(Bytes::from_static(b"pong")).unwrap();
        assert_eq!(b.try_recv().unwrap().unwrap(), Bytes::from_static(b"ping"));
        assert_eq!(a.try_recv().unwrap().unwrap(), Bytes::from_static(b"pong"));
        assert!(a.try_recv().unwrap().is_none());
    }

    #[test]
    fn closed_peer_reports_disconnect() {
        let (a, b) = MemTransport::pair();
        drop(b);
        assert!(matches!(
            a.send(Bytes::from_static(b"x")),
            Err(NvmeofError::TransportClosed)
        ));
        assert!(matches!(a.try_recv(), Err(NvmeofError::TransportClosed)));
    }

    #[test]
    fn recv_timeout_waits_and_returns() {
        let (a, b) = MemTransport::pair();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            b.send(Bytes::from_static(b"late")).unwrap();
            // Keep b alive long enough for the receive.
            std::thread::sleep(Duration::from_millis(50));
        });
        let got = a.recv_timeout(Duration::from_millis(500)).unwrap();
        assert_eq!(got.unwrap(), Bytes::from_static(b"late"));
        assert!(a.recv_timeout(Duration::from_millis(5)).unwrap().is_none());
        h.join().unwrap();
    }

    #[test]
    fn rate_limited_adds_latency() {
        let (a, b) = MemTransport::pair();
        let a = RateLimited::new(a, ShapeParams::gbps(10.0, Duration::from_millis(5)));
        let b = RateLimited::new(b, ShapeParams::gbps(10.0, Duration::from_millis(5)));
        let t0 = Instant::now();
        a.send(Bytes::from_static(b"hello")).unwrap();
        let got = b.recv_timeout(Duration::from_secs(1)).unwrap().unwrap();
        let elapsed = t0.elapsed();
        assert_eq!(got, Bytes::from_static(b"hello"));
        assert!(elapsed >= Duration::from_millis(5), "{elapsed:?}");
    }

    #[test]
    fn rate_limited_preserves_fifo_order() {
        let (a, b) = MemTransport::pair();
        let a = RateLimited::new(a, ShapeParams::gbps(100.0, Duration::from_micros(200)));
        let b = RateLimited::new(b, ShapeParams::gbps(100.0, Duration::from_micros(200)));
        for i in 0..50u32 {
            a.send(Bytes::from(i.to_le_bytes().to_vec())).unwrap();
        }
        for i in 0..50u32 {
            let f = b.recv_timeout(Duration::from_secs(1)).unwrap().unwrap();
            assert_eq!(u32::from_le_bytes(f[..].try_into().unwrap()), i);
        }
    }

    #[test]
    fn shm_transport_is_duplex_and_ordered() {
        let (a, b) = ShmTransport::pair(64 * 1024);
        for i in 0..100u32 {
            a.send(Bytes::from(i.to_le_bytes().to_vec())).unwrap();
        }
        b.send(Bytes::from_static(b"reverse")).unwrap();
        for i in 0..100u32 {
            let f = b.try_recv().unwrap().unwrap();
            assert_eq!(u32::from_le_bytes(f[..].try_into().unwrap()), i);
        }
        assert_eq!(
            a.try_recv().unwrap().unwrap(),
            Bytes::from_static(b"reverse")
        );
        assert!(a.try_recv().unwrap().is_none());
    }

    #[test]
    fn shm_transport_recv_timeout() {
        let (a, b) = ShmTransport::pair(4096);
        assert!(a.recv_timeout(Duration::from_millis(10)).unwrap().is_none());
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(15));
            b.send(Bytes::from_static(b"late")).unwrap();
        });
        let got = a.recv_timeout(Duration::from_secs(2)).unwrap().unwrap();
        assert_eq!(got, Bytes::from_static(b"late"));
        h.join().unwrap();
    }

    #[test]
    fn shm_transport_carries_whole_pdus() {
        use crate::nvme::command::NvmeCommand;
        use crate::pdu::{CapsuleCmd, DataRef, Pdu};
        let (a, b) = ShmTransport::pair(64 * 1024);
        let pdu = Pdu::CapsuleCmd(CapsuleCmd {
            cmd: NvmeCommand::write(3, 1, 64, 32),
            data: Some(DataRef::ShmSlot {
                slot: 9,
                len: 131072,
            }),
        });
        a.send(pdu.encode()).unwrap();
        let frame = b.try_recv().unwrap().unwrap();
        assert_eq!(Pdu::decode(frame).unwrap(), pdu);
    }

    #[test]
    fn shm_send_on_full_ring_reports_ring_full() {
        let (a, _b) = ShmTransport::pair(4096);
        // Nobody drains `_b`; the ring fills and send must fail with the
        // dedicated congestion error, not a stringified payload error.
        let frame = Bytes::from(vec![0u8; 1024]);
        let err = loop {
            match a.send(frame.clone()) {
                Ok(()) => continue,
                Err(e) => break e,
            }
        };
        assert!(matches!(err, NvmeofError::RingFull), "{err:?}");
    }

    #[test]
    fn shm_batch_roundtrip_borrowed_frames() {
        let (a, b) = ShmTransport::pair(64 * 1024);
        let mut burst: Vec<Bytes> = (0..20u32)
            .map(|i| Bytes::from(vec![i as u8; 16 + i as usize]))
            .collect();
        let expect = burst.clone();
        a.send_batch(&mut burst).unwrap();
        assert!(burst.is_empty());
        let mut seen = Vec::new();
        let n = b
            .recv_batch(&mut |frame| {
                assert!(matches!(frame, Frame::Borrowed(_)));
                seen.push(frame.as_slice().to_vec());
            })
            .unwrap();
        assert_eq!(n, 20);
        assert_eq!(seen, expect.iter().map(|b| b.to_vec()).collect::<Vec<_>>());
    }

    #[test]
    fn mem_batch_default_path_works() {
        let (a, b) = MemTransport::pair();
        let mut burst: Vec<Bytes> = (0..5u8).map(|i| Bytes::from(vec![i; 4])).collect();
        a.send_batch(&mut burst).unwrap();
        let mut count = 0;
        b.recv_batch(&mut |frame| {
            assert!(matches!(frame, Frame::Owned(_)));
            count += 1;
            let _ = frame.as_slice();
        })
        .unwrap();
        assert_eq!(count, 5);
    }

    #[test]
    fn recv_batch_drains_before_reporting_closure() {
        let (a, b) = MemTransport::pair();
        a.send(Bytes::from_static(b"x")).unwrap();
        a.send(Bytes::from_static(b"y")).unwrap();
        drop(a); // frames queued ahead of the hang-up must still arrive
        let mut n = 0;
        assert_eq!(b.recv_batch(&mut |_| n += 1).unwrap(), 2);
        assert_eq!(n, 2);
        assert!(matches!(
            b.recv_batch(&mut |_| {}),
            Err(NvmeofError::TransportClosed)
        ));
    }

    #[test]
    fn control_transport_dispatches_both_paths() {
        let (am, bm) = MemTransport::pair();
        let (asx, bsx) = ShmTransport::pair(16 * 1024);
        for (a, b) in [
            (ControlTransport::Mem(am), ControlTransport::Mem(bm)),
            (ControlTransport::Shm(asx), ControlTransport::Shm(bsx)),
        ] {
            a.send(Bytes::from_static(b"hi")).unwrap();
            assert_eq!(b.try_recv().unwrap().unwrap(), Bytes::from_static(b"hi"));
        }
    }

    #[test]
    fn rate_limited_serializes_large_frames() {
        let (a, b) = MemTransport::pair();
        // 1 MB at 100 MB/s = 10ms of serialization back-pressure.
        let a = RateLimited::new(
            a,
            ShapeParams {
                bytes_per_sec: 100e6,
                latency: Duration::ZERO,
            },
        );
        let t0 = Instant::now();
        a.send(Bytes::from(vec![0u8; 1_000_000])).unwrap();
        let sent_in = t0.elapsed();
        assert!(sent_in >= Duration::from_millis(9), "{sent_in:?}");
        let got = b.try_recv().unwrap().unwrap();
        assert_eq!(got.len(), 8 + 1_000_000); // b is unwrapped: sees prefix
    }
}
