//! Frame transports for the real (threaded) runtime.
//!
//! [`MemTransport`] is the control path of the in-process deployment: a
//! duplex, frame-oriented channel standing in for the TCP connection
//! between the client VM and the target VM. [`RateLimited`] wraps it with
//! a wall-clock token-bucket + latency model so examples can *feel* the
//! difference between a 10 Gbps and a 100 Gbps control path without a NIC.

use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};

use crate::error::NvmeofError;

/// A duplex, frame-oriented transport endpoint.
pub trait Transport: Send {
    /// Sends one frame to the peer.
    fn send(&self, frame: Bytes) -> Result<(), NvmeofError>;
    /// Receives a frame if one is ready.
    fn try_recv(&self) -> Result<Option<Bytes>, NvmeofError>;
    /// Receives a frame, waiting up to `timeout`.
    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Bytes>, NvmeofError>;
}

/// In-process duplex transport endpoint.
pub struct MemTransport {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
}

impl MemTransport {
    /// Creates a connected pair of endpoints.
    pub fn pair() -> (MemTransport, MemTransport) {
        let (a_tx, b_rx) = unbounded();
        let (b_tx, a_rx) = unbounded();
        (
            MemTransport { tx: a_tx, rx: a_rx },
            MemTransport { tx: b_tx, rx: b_rx },
        )
    }
}

impl Transport for MemTransport {
    fn send(&self, frame: Bytes) -> Result<(), NvmeofError> {
        self.tx
            .send(frame)
            .map_err(|_| NvmeofError::TransportClosed)
    }

    fn try_recv(&self) -> Result<Option<Bytes>, NvmeofError> {
        match self.rx.try_recv() {
            Ok(f) => Ok(Some(f)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(NvmeofError::TransportClosed),
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Bytes>, NvmeofError> {
        match self.rx.recv_timeout(timeout) {
            Ok(f) => Ok(Some(f)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(NvmeofError::TransportClosed),
        }
    }
}

/// Fully in-region control path: a duplex transport over two lock-free
/// [`ByteRing`](oaf_shmem::byte_ring::ByteRing)s in a shared-memory region (the paper's §5.5 future-work
/// direction — replacing even the TCP control hop). Each endpoint pushes
/// to its transmit ring and pops from its receive ring; wake-up is the
/// consumer's poll loop, exactly like the SPDK reactor.
pub struct ShmTransport {
    tx: oaf_shmem::byte_ring::ByteRing,
    rx: oaf_shmem::byte_ring::ByteRing,
}

impl ShmTransport {
    /// Builds a connected pair of endpoints over a fresh region with
    /// `capacity` data bytes per direction (a power of two).
    pub fn pair(capacity: u64) -> (ShmTransport, ShmTransport) {
        use oaf_shmem::byte_ring::ByteRing;
        let one = ByteRing::required_len(capacity);
        // Two rings back to back; required_len is cache-line aligned.
        let region = std::sync::Arc::new(oaf_shmem::ShmRegion::new(2 * one));
        let a = ByteRing::new(region.clone(), 0, capacity).expect("sized");
        let b = ByteRing::new(region, one, capacity).expect("sized");
        (
            ShmTransport {
                tx: a.clone(),
                rx: b.clone(),
            },
            ShmTransport { tx: b, rx: a },
        )
    }

    /// Largest frame the transport can carry.
    pub fn max_frame(&self) -> usize {
        self.tx.max_frame()
    }
}

impl Transport for ShmTransport {
    fn send(&self, frame: Bytes) -> Result<(), NvmeofError> {
        // Briefly spin on a full ring: the peer's poll loop drains fast.
        let mut spins = 0u32;
        loop {
            match self.tx.push(&frame) {
                Ok(()) => return Ok(()),
                Err(oaf_shmem::ShmError::RingFull) if spins < 10_000_000 => {
                    spins += 1;
                    std::hint::spin_loop();
                }
                Err(e) => return Err(NvmeofError::Payload(e.to_string())),
            }
        }
    }

    fn try_recv(&self) -> Result<Option<Bytes>, NvmeofError> {
        Ok(self.rx.pop().map(Bytes::from))
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Bytes>, NvmeofError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(f) = self.rx.pop() {
                return Ok(Some(Bytes::from(f)));
            }
            if Instant::now() >= deadline {
                return Ok(None);
            }
            std::hint::spin_loop();
        }
    }
}

/// Wall-clock rate/latency shaping parameters.
#[derive(Clone, Copy, Debug)]
pub struct ShapeParams {
    /// Sustained bandwidth in bytes per second.
    pub bytes_per_sec: f64,
    /// Fixed one-way latency added to every frame.
    pub latency: Duration,
}

impl ShapeParams {
    /// Shaping for an `n`-gigabit-per-second link with the given one-way
    /// latency.
    pub fn gbps(n: f64, latency: Duration) -> Self {
        ShapeParams {
            bytes_per_sec: n * 1e9 / 8.0,
            latency,
        }
    }
}

/// A transport wrapper that delays frame *delivery* according to a serial
/// link model: each frame becomes visible `latency + serialization` after
/// the previous frame's wire time.
pub struct RateLimited<T: Transport> {
    inner: T,
    params: ShapeParams,
    tx_free: std::sync::Mutex<Instant>,
    rx_queue: std::sync::Mutex<Vec<(Instant, Bytes)>>,
}

impl<T: Transport> RateLimited<T> {
    /// Wraps `inner` with shaping `params`.
    pub fn new(inner: T, params: ShapeParams) -> Self {
        RateLimited {
            inner,
            params,
            tx_free: std::sync::Mutex::new(Instant::now()),
            rx_queue: std::sync::Mutex::new(Vec::new()),
        }
    }

    fn stamp(&self, len: usize) -> Duration {
        let ser = Duration::from_secs_f64(len as f64 / self.params.bytes_per_sec);
        let mut free = self.tx_free.lock().expect("tx mutex");
        let now = Instant::now();
        let start = (*free).max(now);
        *free = start + ser;
        (start + ser + self.params.latency) - now
    }
}

impl<T: Transport> Transport for RateLimited<T> {
    fn send(&self, frame: Bytes) -> Result<(), NvmeofError> {
        // Encode the delivery deadline as an 8-byte prefix of nanos offset
        // from the send instant, resolved at the receiver. Simpler and
        // cheaper: delay the *sender* for serialization (back-pressure) and
        // prefix the remaining latency for the receiver to honor.
        let wait = self.stamp(frame.len());
        // Serialization back-pressure happens inline.
        let ser_part = wait.saturating_sub(self.params.latency);
        if !ser_part.is_zero() {
            std::thread::sleep(ser_part);
        }
        let mut framed = Vec::with_capacity(8 + frame.len());
        framed.extend_from_slice(&self.params.latency.as_nanos().to_le_bytes()[..8]);
        framed.extend_from_slice(&frame);
        self.inner.send(Bytes::from(framed))
    }

    fn try_recv(&self) -> Result<Option<Bytes>, NvmeofError> {
        let now = Instant::now();
        // Pull everything available into the reorder-free delivery queue.
        while let Some(f) = self.inner.try_recv()? {
            let lat = u64::from_le_bytes(f[..8].try_into().expect("latency prefix"));
            let deliver_at = now + Duration::from_nanos(lat);
            self.rx_queue
                .lock()
                .expect("rx mutex")
                .push((deliver_at, f.slice(8..)));
        }
        let mut q = self.rx_queue.lock().expect("rx mutex");
        if let Some(pos) = q.iter().position(|(t, _)| *t <= Instant::now()) {
            return Ok(Some(q.remove(pos).1));
        }
        Ok(None)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Bytes>, NvmeofError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(f) = self.try_recv()? {
                return Ok(Some(f));
            }
            if Instant::now() >= deadline {
                return Ok(None);
            }
            std::thread::sleep(Duration::from_micros(20));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_pair_is_duplex() {
        let (a, b) = MemTransport::pair();
        a.send(Bytes::from_static(b"ping")).unwrap();
        b.send(Bytes::from_static(b"pong")).unwrap();
        assert_eq!(b.try_recv().unwrap().unwrap(), Bytes::from_static(b"ping"));
        assert_eq!(a.try_recv().unwrap().unwrap(), Bytes::from_static(b"pong"));
        assert!(a.try_recv().unwrap().is_none());
    }

    #[test]
    fn closed_peer_reports_disconnect() {
        let (a, b) = MemTransport::pair();
        drop(b);
        assert!(matches!(
            a.send(Bytes::from_static(b"x")),
            Err(NvmeofError::TransportClosed)
        ));
        assert!(matches!(a.try_recv(), Err(NvmeofError::TransportClosed)));
    }

    #[test]
    fn recv_timeout_waits_and_returns() {
        let (a, b) = MemTransport::pair();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            b.send(Bytes::from_static(b"late")).unwrap();
            // Keep b alive long enough for the receive.
            std::thread::sleep(Duration::from_millis(50));
        });
        let got = a.recv_timeout(Duration::from_millis(500)).unwrap();
        assert_eq!(got.unwrap(), Bytes::from_static(b"late"));
        assert!(a.recv_timeout(Duration::from_millis(5)).unwrap().is_none());
        h.join().unwrap();
    }

    #[test]
    fn rate_limited_adds_latency() {
        let (a, b) = MemTransport::pair();
        let a = RateLimited::new(a, ShapeParams::gbps(10.0, Duration::from_millis(5)));
        let b = RateLimited::new(b, ShapeParams::gbps(10.0, Duration::from_millis(5)));
        let t0 = Instant::now();
        a.send(Bytes::from_static(b"hello")).unwrap();
        let got = b.recv_timeout(Duration::from_secs(1)).unwrap().unwrap();
        let elapsed = t0.elapsed();
        assert_eq!(got, Bytes::from_static(b"hello"));
        assert!(elapsed >= Duration::from_millis(5), "{elapsed:?}");
    }

    #[test]
    fn shm_transport_is_duplex_and_ordered() {
        let (a, b) = ShmTransport::pair(64 * 1024);
        for i in 0..100u32 {
            a.send(Bytes::from(i.to_le_bytes().to_vec())).unwrap();
        }
        b.send(Bytes::from_static(b"reverse")).unwrap();
        for i in 0..100u32 {
            let f = b.try_recv().unwrap().unwrap();
            assert_eq!(u32::from_le_bytes(f[..].try_into().unwrap()), i);
        }
        assert_eq!(
            a.try_recv().unwrap().unwrap(),
            Bytes::from_static(b"reverse")
        );
        assert!(a.try_recv().unwrap().is_none());
    }

    #[test]
    fn shm_transport_recv_timeout() {
        let (a, b) = ShmTransport::pair(4096);
        assert!(a.recv_timeout(Duration::from_millis(10)).unwrap().is_none());
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(15));
            b.send(Bytes::from_static(b"late")).unwrap();
        });
        let got = a.recv_timeout(Duration::from_secs(2)).unwrap().unwrap();
        assert_eq!(got, Bytes::from_static(b"late"));
        h.join().unwrap();
    }

    #[test]
    fn shm_transport_carries_whole_pdus() {
        use crate::nvme::command::NvmeCommand;
        use crate::pdu::{CapsuleCmd, DataRef, Pdu};
        let (a, b) = ShmTransport::pair(64 * 1024);
        let pdu = Pdu::CapsuleCmd(CapsuleCmd {
            cmd: NvmeCommand::write(3, 1, 64, 32),
            data: Some(DataRef::ShmSlot {
                slot: 9,
                len: 131072,
            }),
        });
        a.send(pdu.encode()).unwrap();
        let frame = b.try_recv().unwrap().unwrap();
        assert_eq!(Pdu::decode(frame).unwrap(), pdu);
    }

    #[test]
    fn rate_limited_serializes_large_frames() {
        let (a, b) = MemTransport::pair();
        // 1 MB at 100 MB/s = 10ms of serialization back-pressure.
        let a = RateLimited::new(
            a,
            ShapeParams {
                bytes_per_sec: 100e6,
                latency: Duration::ZERO,
            },
        );
        let t0 = Instant::now();
        a.send(Bytes::from(vec![0u8; 1_000_000])).unwrap();
        let sent_in = t0.elapsed();
        assert!(sent_in >= Duration::from_millis(9), "{sent_in:?}");
        let got = b.try_recv().unwrap().unwrap();
        assert_eq!(got.len(), 8 + 1_000_000); // b is unwrapped: sees prefix
    }
}
