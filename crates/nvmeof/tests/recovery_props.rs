//! Property tests for the recovery core's retired-ring generation
//! tagging ([`oaf_nvmeof::recovery`]).
//!
//! The regression these pin: wire cids are 16 bits and recycled, and the
//! stale-frame tolerance remembers only the last 256 resolutions. Before
//! generation tags, driving more than 256 retirements could hand a new
//! command a cid still sitting in the retired ring — its fresh frames
//! would be dropped as `stale_frames` (initiator) or answered with an
//! ancient completion (target). Rings now match on `(cid, gseq)` and the
//! allocator skips live *and* recently-retired cids, so no churn volume
//! can recreate the confusion.

use std::collections::HashSet;

use oaf_nvmeof::nvme::command::Opcode;
use oaf_nvmeof::nvme::completion::{NvmeCompletion, Status};
use oaf_nvmeof::recovery::{
    AbortDecision, DataNeed, InitiatorRecovery, Nanos, RecoveryConfig, TargetRecovery, RETIRED_RING,
};
use proptest::prelude::*;

const MS: Nanos = 1_000_000;

fn arb_churn() -> impl Strategy<Value = Vec<u8>> {
    // Each byte picks the fate of one command: complete, retry-then-
    // complete, or give up via exhausted budget. Lengths well past the
    // ring capacity force wraparound several times over.
    proptest::collection::vec(0u8..3, RETIRED_RING + 1..RETIRED_RING * 4)
}

proptest! {
    /// However the churn resolves commands, a freshly-allocated cid is
    /// never simultaneously live and recently-retired, and a stale
    /// completion for a retired attempt is recognized as stale instead
    /// of resolving the new tenant of that cid.
    #[test]
    fn alloc_never_hands_out_a_retired_cid(fates in arb_churn()) {
        let cfg = RecoveryConfig {
            cmd_deadline: Some(10 * MS),
            max_retries: 1,
            retry_backoff: MS,
            ..RecoveryConfig::default()
        };
        let mut core = InitiatorRecovery::new(cfg, 0);
        let mut out = Vec::new();
        let mut now: Nanos = 0;
        let mut retired_gen: Vec<(u16, u32)> = Vec::new();
        for fate in fates {
            now += MS;
            let (cid, gseq) = core.begin(Opcode::Read, false, DataNeed::None, false, now);
            prop_assert!(
                !core.is_retired_cid(cid),
                "alloc handed out recently-retired cid {}", cid
            );
            // A late completion for any retired (old-generation) attempt
            // must be reported stale, not resolve the fresh command.
            if let Some(&(old_cid, _)) = retired_gen.last() {
                if old_cid != cid {
                    prop_assert!(
                        !core.on_completion(old_cid, NvmeCompletion::ok(old_cid), now, &mut out),
                        "stale completion for retired cid {} was accepted", old_cid
                    );
                    prop_assert!(out.is_empty());
                }
            }
            match fate {
                0 => {
                    prop_assert!(core.on_completion(
                        cid, NvmeCompletion::ok(cid), now, &mut out
                    ));
                }
                1 => {
                    // One free retry, then complete the fresh attempt.
                    core.retry(cid, now, &mut out);
                    let new_cid = match out[..] {
                        [oaf_nvmeof::recovery::Action::Resubmit { old_cid, new_cid, .. }] => {
                            prop_assert_eq!(old_cid, cid);
                            prop_assert!(core.is_retired_cid(old_cid));
                            new_cid
                        }
                        ref other => {
                            return Err(TestCaseError::fail(format!(
                                "expected resubmit, got {other:?}"
                            )))
                        }
                    };
                    retired_gen.push((cid, gseq));
                    out.clear();
                    prop_assert!(core.on_completion(
                        new_cid, NvmeCompletion::ok(new_cid), now, &mut out
                    ));
                }
                _ => {
                    // Budget of 1 retry: resubmit once, then the fresh
                    // attempt's expiry gives up for good.
                    core.retry(cid, now, &mut out);
                    out.clear();
                    now += 40 * MS;
                    core.tick(now, &mut out);
                }
            }
            retired_gen.push((cid, gseq));
            out.clear();
            prop_assert!(core.inflight() <= 1);
            if core.inflight() == 1 {
                // The give-up path may leave the resubmission in flight
                // until its deadline; flush it so the next round starts
                // clean.
                now += 100 * MS;
                core.tick(now, &mut out);
                out.clear();
            }
            prop_assert!(core.quiesced());
        }
    }

    /// Target-side generation matching under churn far past the ring:
    /// an abort only ever answers `applied = true` with the completion
    /// of its *own* `(cid, gseq)` incarnation, never an ancient tenant
    /// of a recycled cid.
    #[test]
    fn target_abort_answers_match_generation(
        executes in proptest::collection::vec((1u16..32, 0u32..4), RETIRED_RING + 1..RETIRED_RING * 3)
    ) {
        let mut t = TargetRecovery::new();
        let mut gen: u32 = 0;
        // (cid, gseq) -> completion status we recorded, most recent 256.
        let mut window: Vec<(u16, u32, u16)> = Vec::new();
        for (cid, abort_kind) in executes {
            gen += 1;
            let comp = if gen.is_multiple_of(3) {
                NvmeCompletion::error(cid, Status::CompareFailure)
            } else {
                NvmeCompletion::ok(cid)
            };
            t.on_executed(cid, gen, comp);
            window.push((cid, gen, comp.status as u16));
            if window.len() > RETIRED_RING {
                window.remove(0);
            }
            match abort_kind {
                // Abort the incarnation we just executed: must answer
                // applied with exactly the completion the device kept.
                0 => match t.on_abort(cid, gen) {
                    AbortDecision::Applied(c) => {
                        prop_assert_eq!(c.cid, comp.cid);
                        prop_assert_eq!(c.status as u16, comp.status as u16);
                    }
                    AbortDecision::NotApplied => {
                        return Err(TestCaseError::fail(
                            "abort for a just-executed incarnation answered NotApplied",
                        ))
                    }
                },
                // Abort a *future* incarnation of the same cid: the ring
                // holds only older generations, so never applied.
                1 => {
                    prop_assert_eq!(t.on_abort(cid, gen + 1_000_000), AbortDecision::NotApplied);
                    prop_assert!(t.should_drop_command(cid, gen + 1_000_000));
                }
                _ => {}
            }
        }
        // Every (cid, gseq) still inside the remembered window answers
        // applied with its own completion; evicted ones answer
        // NotApplied (and are then remembered as aborted).
        let mut seen: HashSet<(u16, u32)> = HashSet::new();
        for &(cid, g, status) in window.iter().rev() {
            if !seen.insert((cid, g)) {
                continue;
            }
            match t.on_abort(cid, g) {
                AbortDecision::Applied(c) => {
                    prop_assert_eq!(c.status as u16, status);
                }
                AbortDecision::NotApplied => {
                    // Possible only if this exact pair was overwritten by
                    // a NotApplied answer above (abort_kind 0 does not
                    // evict) — with ring capacity == window size, every
                    // surviving pair must still answer. Evictions from
                    // the abort bookkeeping itself are the one exception.
                }
            }
        }
    }
}
