//! The real-socket NVMe/TCP data plane under duress (§4.5).
//!
//! Two kinds of pressure on the loopback transport:
//!
//! * **Partial-I/O torture.** Deliberately tiny `SO_SNDBUF`/`SO_RCVBUF`
//!   force short writes and short reads mid-header and mid-payload; the
//!   resumable framing state machine must reassemble every frame intact
//!   and in order.
//! * **Workload-adaptive busy polling.** Under a mixed read/write
//!   workload the per-direction EWMA controller must settle on a longer
//!   spin budget for writes than for reads (Fig. 10), observable through
//!   the published telemetry gauges.

use std::time::Duration;

use bytes::{Bytes, BytesMut};
use oaf_nvmeof::initiator::{Initiator, InitiatorOptions};
use oaf_nvmeof::nvme::controller::Controller;
use oaf_nvmeof::nvme::namespace::Namespace;
use oaf_nvmeof::pdu::{DataPdu, DataRef, Pdu};
use oaf_nvmeof::target::{spawn_target, TargetConfig};
use oaf_nvmeof::tcp::{TcpConfig, TcpTransport};
use oaf_nvmeof::transport::Transport;
use oaf_nvmeof::tune::PollClass;
use oaf_telemetry::Registry;

// Generous: these tests run concurrently on whatever cores the harness
// has (possibly one), and a torn 1 MiB transfer through tiny socket
// buffers is many scheduler round trips. The asserts below check
// behavior, not latency.
const TIMEOUT: Duration = Duration::from_secs(60);

fn controller() -> Controller {
    let mut c = Controller::new();
    c.add_namespace(Namespace::new(1, 4096, 2048));
    c
}

/// Small socket buffers so every large frame is short-written and
/// short-read many times over. 64 KiB (the kernel doubles it) is the
/// sweet spot: far smaller than the big frames below, but not so small
/// that Linux's silly-window avoidance stalls loopback bulk transfers
/// outright (the loopback MSS is ~64 KiB; a receive buffer below one MSS
/// suppresses window updates and wedges the flow at the TCP layer).
fn tiny_cfg() -> TcpConfig {
    TcpConfig {
        sndbuf: Some(64 * 1024),
        rcvbuf: Some(64 * 1024),
        ..TcpConfig::default()
    }
}

/// Raw transport-level torture: a mixed stream of coalesced and
/// vectored-split frames, sized from smaller than one socket buffer to
/// dozens of times larger, pushed through 4 KiB socket buffers. Every
/// frame must come out intact, in order, with the partial-I/O machinery
/// demonstrably engaged.
#[test]
fn tiny_buffers_reassemble_torn_frames_in_order() {
    let (tx, rx) = TcpTransport::loopback_pair(tiny_cfg()).expect("loopback sockets");
    let tx_tcp = tx.tcp_metrics().clone();
    let rx_tcp = rx.tcp_metrics().clone();

    const FRAMES: usize = 60;
    let sizes: Vec<usize> = (0..FRAMES)
        .map(|i| match i % 5 {
            0 => 1,              // sub-header-sized payloads
            1 => 512,            // fits the socket buffer
            2 => 9 * 1024,       // a bit over both buffers
            3 => 96 * 1024 + 13, // many short writes, odd tail
            _ => 300 * 1024 + 7, // larger than the rx window
        })
        .collect();

    let sender = std::thread::spawn(move || {
        let mut scratch = BytesMut::with_capacity(4096);
        for (i, &len) in sizes.iter().enumerate() {
            let payload = Bytes::from(vec![(i % 251) as u8; len]);
            let pdu = Pdu::C2HData(DataPdu {
                cid: i as u16,
                ttag: 0,
                offset: 0,
                last: true,
                data: DataRef::Inline(payload),
            });
            scratch.clear();
            // Alternate the coalesced and the vectored-split send path so
            // both get torn mid-header and mid-payload.
            if i % 2 == 0 {
                let tail = pdu
                    .encode_split_into(&mut scratch)
                    .expect("inline data pdu");
                tx.send_split(&scratch, tail).expect("split send");
            } else {
                pdu.encode_into(&mut scratch);
                tx.send_frame(&scratch).expect("send");
            }
        }
        // One-directional sender: nothing will ever flush the parked
        // tail for us (no receive path on this side), so drain it
        // explicitly before the thread exits.
        while !tx.flush().expect("flush") {
            std::thread::yield_now();
        }
        tx
    });

    let mut got = 0usize;
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while got < FRAMES {
        assert!(
            std::time::Instant::now() < deadline,
            "stalled after {got}/{FRAMES} frames"
        );
        let n = rx
            .recv_batch(&mut |frame| {
                let pdu = Pdu::decode_slice(frame.as_slice()).expect("decode");
                let Pdu::C2HData(d) = pdu else {
                    panic!("unexpected pdu at frame {got}");
                };
                assert_eq!(d.cid as usize, got, "frames out of order");
                let DataRef::Inline(data) = d.data else {
                    panic!("expected inline data");
                };
                let expect_len = match got % 5 {
                    0 => 1,
                    1 => 512,
                    2 => 9 * 1024,
                    3 => 96 * 1024 + 13,
                    _ => 300 * 1024 + 7,
                };
                assert_eq!(data.len(), expect_len, "frame {got} truncated");
                let stamp = (got % 251) as u8;
                assert!(
                    data.iter().all(|&b| b == stamp),
                    "frame {got} corrupted in reassembly"
                );
                got += 1;
            })
            .expect("recv");
        if n == 0 {
            // Yield, don't spin: on a single-core box a spinning receiver
            // starves the sender it is waiting on.
            std::thread::yield_now();
        }
    }
    let tx = sender.join().expect("sender");

    // The machinery this test exists to exercise actually engaged: the
    // sender parked and resumed mid-frame, the receiver resumed partial
    // frames, and the split path went out vectored.
    assert!(
        tx_tcp.partial_write_resumptions.get() > 0,
        "no partial writes: SO_SNDBUF shrink did not take"
    );
    assert!(
        rx_tcp.partial_read_resumptions.get() > 0,
        "no partial reads: SO_RCVBUF shrink did not take"
    );
    assert!(
        tx_tcp.vectored_sends.get() > 0,
        "split sends never vectored"
    );
    assert_eq!(tx.metrics().frames_sent.get(), FRAMES as u64);
    drop(tx);
}

/// Full end-to-end torture: an initiator/target pair whose control
/// connection rides 4 KiB socket buffers, moving 1 MiB payloads in both
/// directions with runtime chunking live. Data must survive bit-exact.
#[test]
fn end_to_end_io_survives_tiny_socket_buffers() {
    let (ct, tt) = TcpTransport::loopback_pair(tiny_cfg()).expect("loopback sockets");
    let ct_tcp = ct.tcp_metrics().clone();
    let handle = spawn_target(tt, controller(), TargetConfig::default(), None);
    let registry = Registry::new();
    let mut ini = Initiator::connect(
        ct,
        InitiatorOptions {
            write_chunk: 128 * 1024,
            ..InitiatorOptions::default()
        },
        None,
        TIMEOUT,
    )
    .expect("connect over tiny-buffer sockets");
    ini.metrics().register(&registry.scope("client"));

    const IO: usize = 1024 * 1024;
    const BLOCKS: u64 = (IO / 4096) as u64;
    for round in 0..3u8 {
        let pattern: Vec<u8> = (0..IO).map(|i| (i as u8) ^ round).collect();
        ini.write_blocking(1, 0, BLOCKS as u32, Bytes::from(pattern.clone()), TIMEOUT)
            .expect("1 MiB write");
        let back = ini
            .read_blocking(1, 0, BLOCKS as u32, IO, TIMEOUT)
            .expect("1 MiB read");
        assert_eq!(&back[..], &pattern[..], "round {round} corrupted");
    }

    // The write path chunked: 1 MiB at a 128 KiB write_chunk is 8 H2C
    // sub-PDUs per I/O, and the frames were torn on the wire.
    let snap = registry.snapshot();
    assert_eq!(snap.counter("client", "h2c_chunks"), 3 * 8);
    assert_eq!(snap.histo("client", "chunks_per_io").unwrap().count, 3);
    assert!(
        ct_tcp.partial_write_resumptions.get() > 0,
        "1 MiB writes through 4 KiB buffers never parked mid-frame"
    );

    ini.disconnect().expect("disconnect");
    handle.shutdown().expect("shutdown");
}

/// The Fig. 10 acceptance check, in two parts over one live connection.
///
/// 1. A real mixed workload (small reads, large chunked writes) runs
///    over the socket; the controller's budgets must stay consistent
///    with the published telemetry gauges, and the write budget must
///    never fall below the read budget.
/// 2. The paper's measured wait profile (reads ~28 µs, writes ~85 µs) is
///    replayed through [`Initiator::observe_wait_sample`] — timing-
///    independent, so it holds on any machine — and the controller must
///    settle on a strictly longer write budget, visible through the same
///    gauges an operator reads.
#[test]
fn busy_poll_budgets_settle_write_above_read() {
    let (ct, tt) = TcpTransport::loopback_pair(TcpConfig::default()).expect("loopback sockets");
    let handle = spawn_target(tt, controller(), TargetConfig::default(), None);
    let registry = Registry::new();
    let mut ini = Initiator::connect(
        ct,
        InitiatorOptions {
            write_chunk: 256 * 1024,
            ..InitiatorOptions::default()
        },
        None,
        TIMEOUT,
    )
    .expect("connect");
    ini.metrics().register(&registry.scope("client"));

    // Part 1: live mixed workload. Latency-bound 4 KiB reads,
    // bandwidth-bound 512 KiB writes through the R2T + chunking path.
    let blob = Bytes::from(vec![0xabu8; 512 * 1024]);
    for i in 0..40u64 {
        ini.read_blocking(1, i % 16, 1, 4096, TIMEOUT)
            .expect("read");
        if i % 4 == 0 {
            ini.write_blocking(1, 128, 128, blob.clone(), TIMEOUT)
                .expect("write");
        }
    }
    let read_budget = ini.busy_poll_budget(PollClass::Read);
    let write_budget = ini.busy_poll_budget(PollClass::Write);
    assert!(
        write_budget >= read_budget,
        "live workload inverted the budgets: read={read_budget:?} write={write_budget:?}"
    );
    let snap = registry.snapshot();
    let (read_us, _) = snap
        .gauge("client", "busy_poll_read_us")
        .expect("read gauge");
    let (write_us, _) = snap
        .gauge("client", "busy_poll_write_us")
        .expect("write gauge");
    assert_eq!(read_us, read_budget.as_micros() as i64);
    assert_eq!(write_us, write_budget.as_micros() as i64);

    // Part 2: replay the paper's wait profile until the EWMAs converge.
    // Reads must settle on a short budget, writes on the 100 µs rung.
    for _ in 0..400 {
        ini.observe_wait_sample(PollClass::Read, Duration::from_micros(28));
        ini.observe_wait_sample(PollClass::Write, Duration::from_micros(85));
    }
    assert_eq!(
        ini.busy_poll_budget(PollClass::Read),
        Duration::from_micros(50)
    );
    assert_eq!(
        ini.busy_poll_budget(PollClass::Write),
        Duration::from_micros(100)
    );
    let snap = registry.snapshot();
    let (read_us, _) = snap
        .gauge("client", "busy_poll_read_us")
        .expect("read gauge");
    let (write_us, _) = snap
        .gauge("client", "busy_poll_write_us")
        .expect("write gauge");
    assert!(
        write_us > read_us,
        "gauges failed to separate directions: read={read_us}µs write={write_us}µs"
    );

    ini.disconnect().expect("disconnect");
    handle.shutdown().expect("shutdown");
}
