//! Property tests of the per-shard SPSC admin mailbox
//! ([`oaf_nvmeof::spsc`]): under random operation interleavings and
//! under genuinely concurrent producer/consumer schedules — including a
//! shutdown racing in-flight commands — no command is ever lost,
//! duplicated, or reordered.
//!
//! These are the invariants the sharded runtime leans on: the control
//! plane pushes `Add(conn)` / `Shutdown` into a shard's mailbox and the
//! reactor drains it between poll passes; a lost `Add` strands a client,
//! a duplicated one would double-register a connection.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use oaf_nvmeof::spsc::{spsc, SpscReceiver, SpscSender};
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
enum Op {
    /// Try to enqueue the next sequence number.
    Push,
    /// Try to dequeue the oldest item.
    Pop,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            2 => Just(Op::Push),
            1 => Just(Op::Pop),
        ],
        1..300,
    )
}

proptest! {
    /// Random single-threaded interleavings against a model queue: the
    /// ring agrees with a `VecDeque` op for op — same accept/reject on
    /// push (bounded capacity), same value on pop (FIFO), same length.
    #[test]
    fn ring_matches_model_queue(ops in arb_ops(), capacity in 1usize..9) {
        let (tx, rx) = spsc::<u64>(capacity);
        let mut model: VecDeque<u64> = VecDeque::new();
        let mut next = 0u64;
        for op in ops {
            match op {
                Op::Push => {
                    let accepted = tx.push(next).is_ok();
                    prop_assert_eq!(
                        accepted,
                        model.len() < capacity,
                        "push accept/reject diverged from model"
                    );
                    if accepted {
                        model.push_back(next);
                        next += 1;
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(rx.pop(), model.pop_front());
                }
            }
            prop_assert_eq!(tx.len(), model.len());
            prop_assert_eq!(rx.len(), model.len());
        }
        // Drain: everything the model still holds comes out in order.
        while let Some(want) = model.pop_front() {
            prop_assert_eq!(rx.pop(), Some(want));
        }
        prop_assert_eq!(rx.pop(), None);
    }

    /// A real producer thread races a real consumer thread: every
    /// command pushed is popped exactly once, in FIFO order, regardless
    /// of ring capacity or schedule. Mirrors steady-state admin traffic
    /// into a polling shard.
    #[test]
    fn concurrent_handoff_neither_loses_nor_duplicates(
        capacity in 1usize..17,
        count in 1usize..2_000,
    ) {
        let (tx, rx) = spsc::<usize>(capacity);
        let producer = std::thread::spawn(move || {
            for v in 0..count {
                let mut item = v;
                loop {
                    match tx.push(item) {
                        Ok(()) => break,
                        Err(back) => {
                            item = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut seen = 0usize;
        while seen < count {
            if let Some(v) = rx.pop() {
                prop_assert_eq!(v, seen, "lost or reordered command");
                seen += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
        prop_assert_eq!(rx.pop(), None, "duplicated command after drain");
    }
}

/// A shard-shaped command: `Add` carries a drop-counted payload so the
/// test can prove every command's resources are released exactly once
/// even when shutdown races the queue.
#[derive(Debug)]
enum Cmd {
    Add(Payload),
    Shutdown,
}

#[derive(Debug)]
struct Payload {
    id: usize,
    drops: Arc<AtomicUsize>,
}

impl Drop for Payload {
    fn drop(&mut self) {
        self.drops.fetch_add(1, Ordering::Relaxed);
    }
}

/// Drives one shutdown race: the producer pushes `adds` commands then a
/// `Shutdown`; the consumer drains like a shard reactor loop — popping
/// between simulated poll passes — and stops at `Shutdown`. Returns how
/// many `Add`s the consumer adopted.
fn run_shutdown_race(
    tx: SpscSender<Cmd>,
    rx: SpscReceiver<Cmd>,
    adds: usize,
    drops: Arc<AtomicUsize>,
    consumer_lag: bool,
) -> Vec<usize> {
    let producer = std::thread::spawn(move || {
        for id in 0..adds {
            let mut cmd = Cmd::Add(Payload {
                id,
                drops: drops.clone(),
            });
            loop {
                match tx.push(cmd) {
                    Ok(()) => break,
                    Err(back) => {
                        cmd = back;
                        std::thread::yield_now();
                    }
                }
            }
        }
        let mut cmd = Cmd::Shutdown;
        loop {
            match tx.push(cmd) {
                Ok(()) => break,
                Err(back) => {
                    cmd = back;
                    std::thread::yield_now();
                }
            }
        }
    });
    let mut adopted = Vec::new();
    'reactor: loop {
        // Drain the mailbox like a shard does between poll passes.
        while let Some(cmd) = rx.pop() {
            match cmd {
                Cmd::Add(p) => adopted.push(p.id),
                Cmd::Shutdown => break 'reactor,
            }
        }
        if consumer_lag {
            // A busy reactor: mailbox backs up, producer spins on full.
            std::thread::yield_now();
        }
        std::thread::yield_now();
    }
    producer.join().unwrap();
    adopted
}

proptest! {
    /// Shutdown racing queued `Add`s: the consumer adopts *every*
    /// command enqueued before `Shutdown`, exactly once and in order,
    /// and every payload is dropped exactly once (adopted ones by the
    /// consumer, none stranded in the ring).
    #[test]
    fn shutdown_race_loses_no_commands(
        capacity in 1usize..9,
        adds in 0usize..200,
        consumer_lag in any::<bool>(),
    ) {
        let drops = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = spsc::<Cmd>(capacity);
        let adopted = run_shutdown_race(tx, rx, adds, drops.clone(), consumer_lag);
        // FIFO means Shutdown cannot overtake an Add: all of them arrive.
        prop_assert_eq!(adopted.len(), adds, "commands lost across shutdown");
        for (i, id) in adopted.iter().enumerate() {
            prop_assert_eq!(*id, i, "commands reordered or duplicated");
        }
        drop(adopted);
        prop_assert_eq!(
            drops.load(Ordering::Relaxed),
            adds,
            "payloads not released exactly once"
        );
    }
}
