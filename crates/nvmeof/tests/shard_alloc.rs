//! Steady-state budget of the sharded runtime: with telemetry live and
//! clients driving traffic into every shard, the shard reactor threads
//! perform **zero heap allocations** and **zero lock acquisitions** per
//! op — the "no lock crosses cores on the data path" contract of
//! [`oaf_nvmeof::shard`], enforced by a counting global allocator and
//! the vendored `parking_lot` acquisition probe.
//!
//! The dev box has one core, so the shards oversubscribe it; that is
//! exactly the point — exclusivity and lock-freedom are properties of
//! the code path, not of the core count, and they must hold under the
//! worst-case interleavings oversubscription produces.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use oaf_nvmeof::initiator::{Initiator, InitiatorOptions, IoResult};
use oaf_nvmeof::nvme::controller::Controller;
use oaf_nvmeof::nvme::namespace::Namespace;
use oaf_nvmeof::server::ConnectionSpec;
use oaf_nvmeof::shard::{spawn_sharded, ShardConfig};
use oaf_nvmeof::target::TargetConfig;
use oaf_nvmeof::transport::ShmTransport;
use oaf_telemetry::Registry;

/// Counts allocations made by shard threads while the measurement phase
/// is open; delegates to [`System`]. Two-keyed like the lock probe: the
/// shard opts its thread in (via the spawn hook), the harness opens the
/// phase gate only after warm-up.
struct CountingAlloc;

static PHASE_OPEN: AtomicBool = AtomicBool::new(false);
static SHARD_ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static ON_SHARD: Cell<bool> = const { Cell::new(false) };
}

fn note_alloc() {
    // try_with: alloc can be reached during TLS teardown.
    if PHASE_OPEN.load(Ordering::Relaxed) && ON_SHARD.try_with(Cell::get).unwrap_or(false) {
        SHARD_ALLOCS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_alloc();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const TIMEOUT: Duration = Duration::from_secs(5);
const LBA_SPAN: u64 = 32;

/// One client op with no payload buffers in flight (write-zeroes or
/// flush): the target-side cost is pure control path — decode, execute,
/// complete — which is the budget under test.
fn cycle(ini: &mut Initiator<ShmTransport>, done: &mut Vec<IoResult>, i: u64) {
    let cid = if i.is_multiple_of(2) {
        ini.submit_write_zeroes(1, i % LBA_SPAN, 1).expect("submit")
    } else {
        ini.submit_flush(1).expect("submit")
    };
    loop {
        done.clear();
        if ini.poll_into(done).expect("poll") > 0 {
            break;
        }
        std::thread::yield_now();
    }
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].cid, cid);
    assert!(done[0].status.is_ok(), "op failed: {:?}", done[0].status);
}

#[test]
fn sharded_steady_state_allocates_nothing_and_takes_no_locks() {
    let mut controller = Controller::new();
    controller.add_namespace(Namespace::new(1, 4096, 2048));

    // Two shards, one client each, full telemetry stack live.
    let registry = Registry::new();
    let (c1, t1) = ShmTransport::pair(256 * 1024);
    let (c2, t2) = ShmTransport::pair(256 * 1024);
    let spec = |t: ShmTransport| ConnectionSpec {
        transport: Box::new(t),
        cfg: TargetConfig::default(),
        payload: None,
        scope: None,
    };
    let mut cfg = ShardConfig::new(2);
    // First thing on each shard thread: opt into both probes. The
    // global phase gates stay shut until warm-up is done.
    cfg.thread_hook = Some(std::sync::Arc::new(|_shard| {
        ON_SHARD.with(|c| c.set(true));
        parking_lot::probe::arm_thread();
    }));
    let target = spawn_sharded(controller, vec![spec(t1), spec(t2)], cfg, Some(&registry));

    let mut a = Initiator::connect(c1, InitiatorOptions::default(), None, TIMEOUT).expect("a");
    let mut b = Initiator::connect(c2, InitiatorOptions::default(), None, TIMEOUT).expect("b");
    let mut done: Vec<IoResult> = Vec::with_capacity(16);

    // Warm-up: fault in scratch buffers, response staging, the namespace
    // blocks the write-zeroes ops touch, and the ring pages — off the
    // books. Covers every LBA the measured phase will revisit.
    for i in 0..2 * LBA_SPAN {
        cycle(&mut a, &mut done, i);
        cycle(&mut b, &mut done, i);
    }

    let ops_before = target.ops_per_shard();
    let admin_before: Vec<u64> = (0..2)
        .map(|s| target.shard_stats(s).admin_cmds.get())
        .collect();

    parking_lot::probe::reset();
    parking_lot::probe::set_counting(true);
    SHARD_ALLOCS.store(0, Ordering::SeqCst);
    PHASE_OPEN.store(true, Ordering::SeqCst);

    for i in 0..1000u64 {
        cycle(&mut a, &mut done, i);
        cycle(&mut b, &mut done, i);
    }

    PHASE_OPEN.store(false, Ordering::SeqCst);
    parking_lot::probe::set_counting(false);

    let allocs = SHARD_ALLOCS.load(Ordering::SeqCst);
    let locks = parking_lot::probe::acquisitions();
    assert_eq!(
        allocs, 0,
        "shard reactors must not allocate in steady state \
         (saw {allocs} allocations across 2000 ops)"
    );
    assert_eq!(
        locks, 0,
        "shard reactors must not take locks in steady state \
         (saw {locks} acquisitions across 2000 ops)"
    );

    // Both shards actually did the work the budget was measured over
    // (≥1000 frames each: one command frame per op), and no admin
    // traffic snuck into the measured window.
    let ops_after = target.ops_per_shard();
    for s in 0..2 {
        assert!(
            ops_after[s] - ops_before[s] >= 1000,
            "shard {s} ops delta: {} -> {}",
            ops_before[s],
            ops_after[s]
        );
        assert_eq!(target.shard_stats(s).admin_cmds.get(), admin_before[s]);
    }

    // Telemetry was live the whole time: the merged registry saw the
    // per-shard traffic.
    let snap = registry.snapshot();
    for s in 0..2 {
        assert!(snap.counter(&format!("shard{s}_reactor"), "ops") >= 1000);
    }

    a.disconnect().expect("a disconnect");
    b.disconnect().expect("b disconnect");
    target.shutdown().expect("shutdown");
}
