//! Steady-state allocation budget of the in-region control path.
//!
//! The hot-path contract (DESIGN.md §4): once a connection's scratch
//! buffers are warmed, a full command→completion PDU cycle over
//! [`ShmTransport`] — encode into scratch, `send_frame`, batched
//! borrowed receive, decode, respond — performs **zero** heap
//! allocations. A counting global allocator enforces it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use bytes::BytesMut;
use oaf_nvmeof::nvme::command::NvmeCommand;
use oaf_nvmeof::nvme::completion::NvmeCompletion;
use oaf_nvmeof::pdu::{CapsuleCmd, CapsuleResp, DataRef, Pdu};
use oaf_nvmeof::transport::{ShmTransport, Transport};

/// Counts allocations on threads that opted in; delegates to [`System`].
/// Thread-local so the test harness' own threads don't pollute the
/// count. `const`-initialized cells: the TLS access itself never
/// allocates.
struct CountingAlloc;

thread_local! {
    static TRACK: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn note_alloc() {
    // try_with: alloc can be reached during TLS teardown.
    let tracking = TRACK.try_with(Cell::get).unwrap_or(false);
    if tracking {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_alloc();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// One full control-plane round trip, playing both roles on the test
/// thread: client submits a write command referencing a shared-memory
/// slot, target drains/decodes/completes, client drains the completion.
fn cycle(
    client: &ShmTransport,
    target: &ShmTransport,
    c_scratch: &mut BytesMut,
    t_scratch: &mut BytesMut,
) {
    let cmd = Pdu::CapsuleCmd(CapsuleCmd {
        cmd: NvmeCommand::write(7, 1, 64, 32),
        data: Some(DataRef::ShmSlot {
            slot: 3,
            len: 128 * 1024,
        }),
    });
    c_scratch.clear();
    cmd.encode_into(c_scratch);
    client.send_frame(c_scratch).expect("client send");

    // Target side: borrowed frames straight off the ring, decoded in
    // place (ShmSlot data carries no buffer), response encoded into the
    // target's scratch.
    let served = target
        .recv_batch(&mut |frame| {
            let pdu = Pdu::decode_slice(frame.as_slice()).expect("decode cmd");
            let cid = match pdu {
                Pdu::CapsuleCmd(c) => c.cmd.cid,
                other => panic!("unexpected pdu: {other:?}"),
            };
            let resp = Pdu::CapsuleResp(CapsuleResp {
                completion: NvmeCompletion::ok(cid),
            });
            t_scratch.clear();
            resp.encode_into(t_scratch);
            target.send_frame(t_scratch).expect("target send");
        })
        .expect("target drain");
    assert_eq!(served, 1);

    let completed = client
        .recv_batch(
            &mut |frame| match Pdu::decode_slice(frame.as_slice()).expect("decode resp") {
                Pdu::CapsuleResp(r) => assert_eq!(r.completion.cid, 7),
                other => panic!("unexpected pdu: {other:?}"),
            },
        )
        .expect("client drain");
    assert_eq!(completed, 1);
}

#[test]
fn steady_state_pdu_cycle_allocates_nothing() {
    let (client, target) = ShmTransport::pair(256 * 1024);
    let mut c_scratch = BytesMut::with_capacity(512);
    let mut t_scratch = BytesMut::with_capacity(512);

    // Warm-up: grow scratch capacities, fault in the ring pages, let
    // one-time lazy init (TLS, ring caches) happen off the books.
    for _ in 0..64 {
        cycle(&client, &target, &mut c_scratch, &mut t_scratch);
    }

    TRACK.with(|t| t.set(true));
    ALLOCS.with(|c| c.set(0));
    for _ in 0..1000 {
        cycle(&client, &target, &mut c_scratch, &mut t_scratch);
    }
    TRACK.with(|t| t.set(false));
    let allocs = ALLOCS.with(Cell::get);

    assert_eq!(
        allocs, 0,
        "steady-state send/recv cycle must not allocate (saw {allocs} allocations over 1000 cycles)"
    );
}

/// The same steady-state contract with the full telemetry stack live:
/// every metric registered in a [`Registry`], ring stats attached, and an
/// explicit per-cycle latency-histogram + counter record on top of the
/// recording the transport already does internally. Observability must
/// ride the hot path for free — no heap, no locks.
#[test]
fn steady_state_cycle_with_telemetry_recording_allocates_nothing() {
    use oaf_telemetry::Registry;

    let (client, target) = ShmTransport::pair(256 * 1024);
    let registry = Registry::new();
    client
        .metrics()
        .register(&registry.scope("transport_client"));
    target
        .metrics()
        .register(&registry.scope("transport_target"));
    client
        .tx_ring_stats()
        .register(&registry.scope("ring_client"));
    target
        .tx_ring_stats()
        .register(&registry.scope("ring_target"));
    let app = registry.scope("app");
    let cycles = app.counter("cycles");
    let lat = app.histo("cycle_ns");

    let mut c_scratch = BytesMut::with_capacity(512);
    let mut t_scratch = BytesMut::with_capacity(512);
    for _ in 0..64 {
        cycle(&client, &target, &mut c_scratch, &mut t_scratch);
    }

    TRACK.with(|t| t.set(true));
    ALLOCS.with(|c| c.set(0));
    for _ in 0..1000 {
        let t0 = std::time::Instant::now();
        cycle(&client, &target, &mut c_scratch, &mut t_scratch);
        cycles.inc();
        lat.record_nanos(t0.elapsed());
    }
    TRACK.with(|t| t.set(false));
    let allocs = ALLOCS.with(Cell::get);

    assert_eq!(
        allocs, 0,
        "telemetry-instrumented steady-state cycle must not allocate \
         (saw {allocs} allocations over 1000 cycles)"
    );

    // The numbers the registry observed are consistent with the traffic:
    // 1064 cycles total (warm-up included), one command and one response
    // frame per cycle, flowing symmetrically.
    let snap = registry.snapshot();
    assert_eq!(snap.counter("app", "cycles"), 1000);
    assert_eq!(snap.histo("app", "cycle_ns").unwrap().count, 1000);
    for scope in ["transport_client", "transport_target"] {
        assert_eq!(snap.counter(scope, "frames_sent"), 1064);
        assert_eq!(snap.counter(scope, "frames_received"), 1064);
        assert_eq!(snap.counter(scope, "frames_borrowed"), 1064);
        assert_eq!(snap.counter(scope, "ring_full"), 0);
    }
    assert_eq!(snap.counter("ring_client", "frames"), 1064);
    assert_eq!(snap.counter("ring_target", "frames"), 1064);
    assert_eq!(
        snap.counter("transport_client", "bytes_sent"),
        snap.counter("transport_target", "bytes_received"),
    );
}
