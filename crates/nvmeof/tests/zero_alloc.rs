//! Steady-state allocation budget of the in-region control path.
//!
//! The hot-path contract (DESIGN.md §4): once a connection's scratch
//! buffers are warmed, a full command→completion PDU cycle over
//! [`ShmTransport`] — encode into scratch, `send_frame`, batched
//! borrowed receive, decode, respond — performs **zero** heap
//! allocations. A counting global allocator enforces it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use bytes::BytesMut;
use oaf_nvmeof::nvme::command::NvmeCommand;
use oaf_nvmeof::nvme::completion::NvmeCompletion;
use oaf_nvmeof::pdu::{CapsuleCmd, CapsuleResp, DataRef, Pdu};
use oaf_nvmeof::transport::{ShmTransport, Transport};

/// Counts allocations on threads that opted in; delegates to [`System`].
/// Thread-local so the test harness' own threads don't pollute the
/// count. `const`-initialized cells: the TLS access itself never
/// allocates.
struct CountingAlloc;

thread_local! {
    static TRACK: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn note_alloc() {
    // try_with: alloc can be reached during TLS teardown.
    let tracking = TRACK.try_with(Cell::get).unwrap_or(false);
    if tracking {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_alloc();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_alloc();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// One full control-plane round trip, playing both roles on the test
/// thread: client submits a write command referencing a shared-memory
/// slot, target drains/decodes/completes, client drains the completion.
fn cycle(
    client: &ShmTransport,
    target: &ShmTransport,
    c_scratch: &mut BytesMut,
    t_scratch: &mut BytesMut,
) {
    let cmd = Pdu::CapsuleCmd(CapsuleCmd {
        cmd: NvmeCommand::write(7, 1, 64, 32),
        data: Some(DataRef::ShmSlot {
            slot: 3,
            len: 128 * 1024,
        }),
    });
    c_scratch.clear();
    cmd.encode_into(c_scratch);
    client.send_frame(c_scratch).expect("client send");

    // Target side: borrowed frames straight off the ring, decoded in
    // place (ShmSlot data carries no buffer), response encoded into the
    // target's scratch.
    let served = target
        .recv_batch(&mut |frame| {
            let pdu = Pdu::decode_slice(frame.as_slice()).expect("decode cmd");
            let cid = match pdu {
                Pdu::CapsuleCmd(c) => c.cmd.cid,
                other => panic!("unexpected pdu: {other:?}"),
            };
            let resp = Pdu::CapsuleResp(CapsuleResp {
                completion: NvmeCompletion::ok(cid),
            });
            t_scratch.clear();
            resp.encode_into(t_scratch);
            target.send_frame(t_scratch).expect("target send");
        })
        .expect("target drain");
    assert_eq!(served, 1);

    let completed = client
        .recv_batch(
            &mut |frame| match Pdu::decode_slice(frame.as_slice()).expect("decode resp") {
                Pdu::CapsuleResp(r) => assert_eq!(r.completion.cid, 7),
                other => panic!("unexpected pdu: {other:?}"),
            },
        )
        .expect("client drain");
    assert_eq!(completed, 1);
}

#[test]
fn steady_state_pdu_cycle_allocates_nothing() {
    let (client, target) = ShmTransport::pair(256 * 1024);
    let mut c_scratch = BytesMut::with_capacity(512);
    let mut t_scratch = BytesMut::with_capacity(512);

    // Warm-up: grow scratch capacities, fault in the ring pages, let
    // one-time lazy init (TLS, ring caches) happen off the books.
    for _ in 0..64 {
        cycle(&client, &target, &mut c_scratch, &mut t_scratch);
    }

    TRACK.with(|t| t.set(true));
    ALLOCS.with(|c| c.set(0));
    for _ in 0..1000 {
        cycle(&client, &target, &mut c_scratch, &mut t_scratch);
    }
    TRACK.with(|t| t.set(false));
    let allocs = ALLOCS.with(Cell::get);

    assert_eq!(
        allocs, 0,
        "steady-state send/recv cycle must not allocate (saw {allocs} allocations over 1000 cycles)"
    );
}

/// The same steady-state budget over a real kernel socket (§4.5): a
/// full command→completion cycle on a live loopback [`TcpTransport`]
/// pair — one vectored split data frame and two coalesced frames per
/// cycle — performs zero heap allocations once the framing buffers are
/// warm. The receive window, the send backlog, and the scratch buffers
/// are all reused; the split payload is a refcount bump, not a copy.
///
/// [`TcpTransport`]: oaf_nvmeof::tcp::TcpTransport
#[test]
fn steady_state_tcp_socket_cycle_allocates_nothing() {
    use bytes::Bytes;
    use oaf_nvmeof::pdu::DataPdu;
    use oaf_nvmeof::tcp::{TcpConfig, TcpTransport};

    let (client, target) =
        TcpTransport::loopback_pair(TcpConfig::default()).expect("loopback sockets");
    let mut c_scratch = BytesMut::with_capacity(512);
    let mut t_scratch = BytesMut::with_capacity(512);
    // Built once: each send clones the inline `Bytes` payload into the
    // vectored tail — a refcount bump, never a copy or an allocation.
    let data_pdu = Pdu::C2HData(DataPdu {
        cid: 7,
        ttag: 0,
        offset: 0,
        last: true,
        data: DataRef::Inline(Bytes::from(vec![0xc7u8; 2048])),
    });
    let mut data_len = 0usize;

    let mut tcp_cycle = || {
        // Command out through the coalesced path.
        let cmd = Pdu::CapsuleCmd(CapsuleCmd {
            cmd: NvmeCommand::write(7, 1, 64, 32),
            data: Some(DataRef::ShmSlot {
                slot: 3,
                len: 128 * 1024,
            }),
        });
        c_scratch.clear();
        cmd.encode_into(&mut c_scratch);
        client.send_frame(&c_scratch).expect("client send");

        // Target side: borrowed receive off the socket window, decode in
        // place, answer with a vectored split data frame plus a coalesced
        // completion. Loopback delivery is synchronous but the frame may
        // land across fills, so poll until served.
        let mut served = 0;
        while served == 0 {
            served = target
                .recv_batch(&mut |frame| {
                    let pdu = Pdu::decode_slice(frame.as_slice()).expect("decode cmd");
                    let cid = match pdu {
                        Pdu::CapsuleCmd(c) => c.cmd.cid,
                        other => panic!("unexpected pdu: {other:?}"),
                    };
                    t_scratch.clear();
                    let tail = data_pdu
                        .encode_split_into(&mut t_scratch)
                        .expect("inline data pdu");
                    data_len = t_scratch.len() + tail.len();
                    target.send_split(&t_scratch, tail).expect("split send");
                    t_scratch.clear();
                    Pdu::CapsuleResp(CapsuleResp {
                        completion: NvmeCompletion::ok(cid),
                    })
                    .encode_into(&mut t_scratch);
                    target.send_frame(&t_scratch).expect("target send");
                })
                .expect("target drain");
            std::hint::spin_loop();
        }
        assert_eq!(served, 1);

        // Client side: the data frame is validated raw — decoding inline
        // data copies it into an owned buffer, which would allocate —
        // then the completion is decoded borrowed as usual.
        let mut seen = 0usize;
        while seen < 2 {
            client
                .recv_batch(&mut |frame| {
                    if seen == 0 {
                        assert_eq!(frame.as_slice().len(), data_len, "split frame torn");
                    } else {
                        match Pdu::decode_slice(frame.as_slice()).expect("decode resp") {
                            Pdu::CapsuleResp(r) => assert_eq!(r.completion.cid, 7),
                            other => panic!("unexpected pdu: {other:?}"),
                        }
                    }
                    seen += 1;
                })
                .expect("client drain");
            std::hint::spin_loop();
        }
        assert_eq!(seen, 2);
    };

    for _ in 0..64 {
        tcp_cycle();
    }

    TRACK.with(|t| t.set(true));
    ALLOCS.with(|c| c.set(0));
    for _ in 0..1000 {
        tcp_cycle();
    }
    TRACK.with(|t| t.set(false));
    let allocs = ALLOCS.with(Cell::get);

    assert_eq!(
        allocs, 0,
        "steady-state socket cycle must not allocate (saw {allocs} allocations over 1000 cycles)"
    );
    // The vectored path actually carried the data frames.
    assert_eq!(target.tcp_metrics().vectored_sends.get(), 1064);
    assert_eq!(client.metrics().frames_received.get(), 2 * 1064);
}

/// The same steady-state contract with the full telemetry stack live:
/// every metric registered in a [`Registry`], ring stats attached, and an
/// explicit per-cycle latency-histogram + counter record on top of the
/// recording the transport already does internally. Observability must
/// ride the hot path for free — no heap, no locks.
#[test]
fn steady_state_cycle_with_telemetry_recording_allocates_nothing() {
    use oaf_telemetry::Registry;

    let (client, target) = ShmTransport::pair(256 * 1024);
    let registry = Registry::new();
    client
        .metrics()
        .register(&registry.scope("transport_client"));
    target
        .metrics()
        .register(&registry.scope("transport_target"));
    client
        .tx_ring_stats()
        .register(&registry.scope("ring_client"));
    target
        .tx_ring_stats()
        .register(&registry.scope("ring_target"));
    let app = registry.scope("app");
    let cycles = app.counter("cycles");
    let lat = app.histo("cycle_ns");

    let mut c_scratch = BytesMut::with_capacity(512);
    let mut t_scratch = BytesMut::with_capacity(512);
    for _ in 0..64 {
        cycle(&client, &target, &mut c_scratch, &mut t_scratch);
    }

    TRACK.with(|t| t.set(true));
    ALLOCS.with(|c| c.set(0));
    for _ in 0..1000 {
        let t0 = std::time::Instant::now();
        cycle(&client, &target, &mut c_scratch, &mut t_scratch);
        cycles.inc();
        lat.record_nanos(t0.elapsed());
    }
    TRACK.with(|t| t.set(false));
    let allocs = ALLOCS.with(Cell::get);

    assert_eq!(
        allocs, 0,
        "telemetry-instrumented steady-state cycle must not allocate \
         (saw {allocs} allocations over 1000 cycles)"
    );

    // The numbers the registry observed are consistent with the traffic:
    // 1064 cycles total (warm-up included), one command and one response
    // frame per cycle, flowing symmetrically.
    let snap = registry.snapshot();
    assert_eq!(snap.counter("app", "cycles"), 1000);
    assert_eq!(snap.histo("app", "cycle_ns").unwrap().count, 1000);
    for scope in ["transport_client", "transport_target"] {
        assert_eq!(snap.counter(scope, "frames_sent"), 1064);
        assert_eq!(snap.counter(scope, "frames_received"), 1064);
        assert_eq!(snap.counter(scope, "frames_borrowed"), 1064);
        assert_eq!(snap.counter(scope, "ring_full"), 0);
    }
    assert_eq!(snap.counter("ring_client", "frames"), 1064);
    assert_eq!(snap.counter("ring_target", "frames"), 1064);
    assert_eq!(
        snap.counter("transport_client", "bytes_sent"),
        snap.counter("transport_target", "bytes_received"),
    );
}

/// The zero-copy data plane under the same budget: a full write+read
/// cycle through the lease-based Buffer Manager — client leases a slot,
/// fills it in place, publishes, the target consumes it borrowed, then
/// serves the read by leasing its own slot and the client borrows the
/// result — with every lease/transport metric registered in a live
/// [`Registry`]. Steady state must be allocation-free end to end.
#[test]
fn steady_state_lease_path_cycle_allocates_nothing() {
    use oaf_nvmeof::pdu::{DataPdu, Pdu};
    use oaf_shmem::channel::{ShmChannel, Side};
    use oaf_telemetry::Registry;

    const LEN: usize = 4096;
    let (ctl_client, ctl_target) = ShmTransport::pair(256 * 1024);
    let data = ShmChannel::allocate(8, 64 * 1024);
    let client_ep = data.endpoint(Side::Client);
    let target_ep = data.endpoint(Side::Target);

    let registry = Registry::new();
    ctl_client
        .metrics()
        .register(&registry.scope("transport_client"));
    ctl_target
        .metrics()
        .register(&registry.scope("transport_target"));
    client_ep
        .buffer_manager()
        .stats()
        .register(&registry.scope("bufmgr_client"));
    target_ep
        .buffer_manager()
        .stats()
        .register(&registry.scope("bufmgr_target"));
    let app = registry.scope("app");
    let cycles = app.counter("cycles");
    let lat = app.histo("cycle_ns");

    let mut c_scratch = BytesMut::with_capacity(512);
    let mut t_scratch = BytesMut::with_capacity(512);
    let mut write_sum = 0u64;
    let mut read_sum = 0u64;

    let mut lease_cycle = |write_sum: &mut u64, read_sum: &mut u64| {
        // Write half: the application's buffer IS the slot (§4.4.3).
        let mut lease = client_ep.lease_managed(LEN).expect("client lease");
        for (i, b) in lease.iter_mut().enumerate() {
            *b = i as u8;
        }
        let (slot, len) = lease.publish();
        let cmd = Pdu::CapsuleCmd(CapsuleCmd {
            cmd: NvmeCommand::write(11, 1, 0, 8),
            data: Some(DataRef::ShmSlot {
                slot: slot as u32,
                len: len as u32,
            }),
        });
        c_scratch.clear();
        cmd.encode_into(&mut c_scratch);
        ctl_client.send_frame(&c_scratch).expect("client send");

        let served = ctl_target
            .recv_batch(&mut |frame| {
                let pdu = Pdu::decode_slice(frame.as_slice()).expect("decode cmd");
                let Pdu::CapsuleCmd(c) = pdu else {
                    panic!("unexpected pdu");
                };
                let Some(DataRef::ShmSlot { slot, len }) = c.data else {
                    panic!("expected slot reference");
                };
                // Borrowed consume: the "device write" reads straight
                // out of the shared region; the guard frees the slot.
                let guard = target_ep
                    .recv(slot as usize, len as usize)
                    .expect("published");
                *write_sum += guard.as_slice().iter().map(|&b| b as u64).sum::<u64>();
                drop(guard);

                // Read half: the target leases its own transmit slot and
                // "reads the device" directly into it.
                let mut rlease = target_ep.lease_managed(LEN).expect("target lease");
                for b in rlease.iter_mut() {
                    *b = 0x5a;
                }
                let (rslot, rlen) = rlease.publish();
                t_scratch.clear();
                Pdu::C2HData(DataPdu {
                    cid: c.cmd.cid,
                    ttag: 0,
                    offset: 0,
                    last: true,
                    data: DataRef::ShmSlot {
                        slot: rslot as u32,
                        len: rlen as u32,
                    },
                })
                .encode_into(&mut t_scratch);
                ctl_target.send_frame(&t_scratch).expect("target data send");
                t_scratch.clear();
                Pdu::CapsuleResp(CapsuleResp {
                    completion: NvmeCompletion::ok(c.cmd.cid),
                })
                .encode_into(&mut t_scratch);
                ctl_target.send_frame(&t_scratch).expect("target resp send");
            })
            .expect("target drain");
        assert_eq!(served, 1);

        let completed = ctl_client
            .recv_batch(
                &mut |frame| match Pdu::decode_slice(frame.as_slice()).expect("decode") {
                    Pdu::C2HData(d) => {
                        let DataRef::ShmSlot { slot, len } = d.data else {
                            panic!("expected slot reference");
                        };
                        let guard = client_ep
                            .recv(slot as usize, len as usize)
                            .expect("published");
                        *read_sum += guard.as_slice().iter().map(|&b| b as u64).sum::<u64>();
                    }
                    Pdu::CapsuleResp(r) => assert_eq!(r.completion.cid, 11),
                    other => panic!("unexpected pdu: {other:?}"),
                },
            )
            .expect("client drain");
        assert_eq!(completed, 2);
    };

    for _ in 0..64 {
        lease_cycle(&mut write_sum, &mut read_sum);
    }

    TRACK.with(|t| t.set(true));
    ALLOCS.with(|c| c.set(0));
    for _ in 0..1000 {
        let t0 = std::time::Instant::now();
        lease_cycle(&mut write_sum, &mut read_sum);
        cycles.inc();
        lat.record_nanos(t0.elapsed());
    }
    TRACK.with(|t| t.set(false));
    let allocs = ALLOCS.with(Cell::get);

    assert_eq!(
        allocs, 0,
        "steady-state lease-path cycle must not allocate \
         (saw {allocs} allocations over 1000 cycles)"
    );

    // Payloads actually flowed: 0..256 pattern per write, 0x5a per read.
    let per_write: u64 = (0..LEN).map(|i| (i as u8) as u64).sum();
    assert_eq!(write_sum, 1064 * per_write);
    assert_eq!(read_sum, 1064 * 0x5a * LEN as u64);

    // The Buffer Managers saw one lease per cycle per side, every byte
    // of payload crossed zero-copy, and nothing leaked.
    let snap = registry.snapshot();
    assert_eq!(snap.counter("app", "cycles"), 1000);
    for scope in ["bufmgr_client", "bufmgr_target"] {
        assert_eq!(snap.counter(scope, "leases"), 1064);
        assert_eq!(snap.counter(scope, "zero_copy_bytes"), 1064 * LEN as u64);
        assert_eq!(snap.counter(scope, "copies_avoided"), 1064);
        assert_eq!(snap.counter(scope, "lease_denied"), 0);
        assert_eq!(snap.counter(scope, "lease_aborted"), 0);
        let (live, hwm) = snap.gauge(scope, "leases_live").expect("registered");
        assert_eq!(live, 0, "leaked leases in {scope}");
        assert_eq!(hwm, 1, "single-depth steady state in {scope}");
    }
}

/// The durable write path under the same budget: a [`Controller`] over a
/// file-backed [`FileDisk`] (MemVfs, so the "syscalls" are in-place
/// copies and the budget isolates the *store's* bookkeeping), with
/// [`StoreMetrics`] registered in a live [`Registry`]. Every journaled
/// op — plain write, FUA write, DSM deallocate, flush — encodes its
/// record header on the stack, appends through the Vfs, and records
/// telemetry without touching the heap. The log is sized so the tracked
/// window wraps it dozens of times: checkpoints (superblock rewrite +
/// epoch roll) must be allocation-free too.
///
/// [`FileDisk`]: oaf_store::FileDisk
/// [`StoreMetrics`]: oaf_store::StoreMetrics
#[test]
fn steady_state_durable_write_path_allocates_nothing() {
    use oaf_nvmeof::nvme::controller::Controller;
    use oaf_nvmeof::nvme::namespace::Namespace;
    use oaf_store::vfs::MemVfs;
    use oaf_store::FileDisk;
    use oaf_telemetry::Registry;

    let disk = FileDisk::create_on(Box::new(MemVfs::new()), 512, 256, 64 * 1024).expect("format");
    let registry = Registry::new();
    disk.metrics().register(&registry.scope("store"));
    let mut ctrl = Controller::new();
    ctrl.add_namespace(Namespace::with_file(1, disk));

    let payload = vec![0xabu8; 4 * 512];
    let cycle = |ctrl: &mut Controller, i: u64| {
        let lba = (i * 8) % 240;
        let (w, _) = ctrl.execute(&NvmeCommand::write(1, 1, lba, 4), Some(&payload));
        assert!(w.status.is_ok());
        let (f, _) = ctrl.execute(
            &NvmeCommand::write_fua(2, 1, lba + 4, 1),
            Some(&payload[..512]),
        );
        assert!(f.status.is_ok());
        let (t, _) = ctrl.execute(&NvmeCommand::trim(3, 1, lba, 2), None);
        assert!(t.status.is_ok());
        let (fl, _) = ctrl.execute(&NvmeCommand::flush(4, 1), None);
        assert!(fl.status.is_ok());
    };

    for i in 0..64 {
        cycle(&mut ctrl, i);
    }

    TRACK.with(|t| t.set(true));
    ALLOCS.with(|c| c.set(0));
    for i in 0..1000 {
        cycle(&mut ctrl, 64 + i);
    }
    TRACK.with(|t| t.set(false));
    let allocs = ALLOCS.with(Cell::get);

    assert_eq!(
        allocs, 0,
        "journaled write/FUA/DSM/flush cycle must not allocate \
         (saw {allocs} allocations over 1000 cycles)"
    );

    // Telemetry saw the traffic: four appends per cycle, a barrier per
    // FUA and per flush, a trim per cycle, and the log wrapped many
    // times without ever replaying or tearing anything.
    let snap = registry.snapshot();
    assert_eq!(snap.counter("store", "log_appends"), 1064 * 4);
    assert_eq!(snap.counter("store", "trims"), 1064);
    assert!(snap.counter("store", "fsyncs") >= 1064 * 2);
    assert!(
        snap.counter("store", "checkpoints") > 10,
        "log never wrapped"
    );
    assert_eq!(snap.counter("store", "torn_records"), 0);
    assert_eq!(snap.counter("store", "replay_ops"), 0);
    assert_eq!(
        snap.histo("store", "fsync_ns").expect("registered").count,
        snap.counter("store", "fsyncs")
    );
}

/// Cached read hits under the same budget — plus a *syscall* budget: a
/// [`Controller`] over a file-backed disk with a block cache sized to
/// the working set. After warm-up, every `read_into` is a cache hit and
/// must perform zero heap allocations **and zero Vfs reads** — the
/// whole point of the cache is that hits never reach the backing file.
/// A counting Vfs wrapper pins the syscall side the way the counting
/// allocator pins the heap side.
///
/// [`Controller`]: oaf_nvmeof::nvme::controller::Controller
#[test]
fn steady_state_cached_read_hits_allocate_nothing_and_skip_syscalls() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    use oaf_nvmeof::nvme::controller::Controller;
    use oaf_nvmeof::nvme::namespace::Namespace;
    use oaf_store::vfs::{MemVfs, Vfs};
    use oaf_store::FileDisk;
    use oaf_telemetry::Registry;

    /// [`MemVfs`] that counts `read_at` calls (relaxed atomics: no
    /// allocation, no lock).
    struct CountingVfs {
        inner: MemVfs,
        reads: Arc<AtomicU64>,
    }

    impl Vfs for CountingVfs {
        fn read_at(&self, off: u64, buf: &mut [u8]) -> std::io::Result<()> {
            self.reads.fetch_add(1, Ordering::Relaxed);
            self.inner.read_at(off, buf)
        }
        fn write_at(&mut self, off: u64, buf: &[u8]) -> std::io::Result<()> {
            self.inner.write_at(off, buf)
        }
        fn sync(&mut self) -> std::io::Result<()> {
            self.inner.sync()
        }
        fn len(&self) -> std::io::Result<u64> {
            self.inner.len()
        }
        fn set_len(&mut self, len: u64) -> std::io::Result<()> {
            self.inner.set_len(len)
        }
    }

    let reads = Arc::new(AtomicU64::new(0));
    let disk = FileDisk::create_on(
        Box::new(CountingVfs {
            inner: MemVfs::new(),
            reads: Arc::clone(&reads),
        }),
        512,
        256,
        64 * 1024,
    )
    .expect("format")
    .with_cache(64)
    .expect("cache");
    let registry = Registry::new();
    disk.metrics().register(&registry.scope("store"));
    let mut ctrl = Controller::new();
    ctrl.add_namespace(Namespace::with_file(1, disk));

    // Working set: 32 blocks, write-allocated into the 64-entry cache.
    let payload = vec![0x5au8; 512];
    for lba in 0..32u64 {
        let (w, _) = ctrl.execute(&NvmeCommand::write(1, 1, lba, 1), Some(&payload));
        assert!(w.status.is_ok());
    }
    let (fl, _) = ctrl.execute(&NvmeCommand::flush(2, 1), None);
    assert!(fl.status.is_ok());

    let mut out = vec![0u8; 4 * 512];
    let mut cycle = |ctrl: &Controller, i: u64| {
        let lba = (i * 4) % 32;
        let comp = ctrl.read_into(&NvmeCommand::read(3, 1, lba, 4), &mut out);
        assert!(comp.status.is_ok());
        assert!(
            out.iter().all(|&b| b == 0x5a),
            "cached read served stale bytes"
        );
    };

    for i in 0..64 {
        cycle(&ctrl, i);
    }

    let vfs_reads_before = reads.load(Ordering::Relaxed);
    TRACK.with(|t| t.set(true));
    ALLOCS.with(|c| c.set(0));
    for i in 0..1000 {
        cycle(&ctrl, 64 + i);
    }
    TRACK.with(|t| t.set(false));
    let allocs = ALLOCS.with(Cell::get);

    assert_eq!(
        allocs, 0,
        "cached read hits must not allocate (saw {allocs} over 1000 reads)"
    );
    assert_eq!(
        reads.load(Ordering::Relaxed),
        vfs_reads_before,
        "cached read hits must perform zero Vfs reads"
    );
    let snap = registry.snapshot();
    assert!(snap.counter("store", "cache_hits") >= 4000);
    assert_eq!(
        snap.counter("store", "cache_misses"),
        0,
        "the working set fits: every read must hit"
    );
}

/// The async durability pipeline under the same budget: a target
/// connection over an *offloaded* shared disk with a barrier completion
/// parked on the sync worker's ticket. Steady state — journaled writes,
/// write-zeroes, DSM trims flowing through the reactor path while every
/// pass probes the sync-done queue ([`TargetConnection::poll_parked`])
/// and finds the ticket still pending — must not allocate. The parked
/// ring is preallocated; the ticket poll is two atomic loads.
///
/// [`TargetConnection::poll_parked`]: oaf_nvmeof::target::TargetConnection::poll_parked
#[test]
fn steady_state_ops_with_parked_barrier_allocate_nothing() {
    use oaf_nvmeof::nvme::controller::Controller;
    use oaf_nvmeof::nvme::namespace::Namespace;
    use oaf_nvmeof::pdu::ICReq;
    use oaf_nvmeof::target::{TargetConfig, TargetConnection};
    use oaf_nvmeof::transport::Frame;
    use oaf_store::vfs::SharedMemVfs;
    use oaf_store::FileDisk;

    let vfs = SharedMemVfs::new();
    // The log is sized so the tracked window never wraps it: a wrap
    // checkpoints, and a checkpoint's superblock barrier would block on
    // the held sync gate below.
    let disk = FileDisk::create_on(Box::new(vfs.clone()), 512, 256, 4 * 1024 * 1024)
        .expect("format")
        .into_shared()
        .with_sync_worker(Box::new(vfs.clone()));
    let mut ctrl = Controller::new();
    ctrl.add_namespace(Namespace::with_shared_file(1, disk));
    let mut conn = TargetConnection::new(TargetConfig::default(), None);

    let mut out = Vec::with_capacity(16);
    let mut scratch = BytesMut::with_capacity(4096);
    let drive = |conn: &mut TargetConnection,
                 ctrl: &mut Controller,
                 out: &mut Vec<Pdu>,
                 scratch: &mut BytesMut,
                 frame: bytes::Bytes,
                 expect: usize| {
        conn.handle(Frame::Owned(frame), ctrl, out).expect("handle");
        assert_eq!(out.len(), expect);
        for pdu in out.drain(..) {
            scratch.clear();
            pdu.encode_into(scratch);
        }
    };

    drive(
        &mut conn,
        &mut ctrl,
        &mut out,
        &mut scratch,
        Pdu::ICReq(ICReq {
            pfv: 1,
            maxr2t: 4,
            af_caps: 0,
            host_id: 7,
        })
        .encode(),
        1,
    );

    // Pre-encoded command frames: a journaled write (in-capsule inline
    // payload — the owned decode path slices it, refcount only), a
    // write-zeroes and a trim. Cloning `Bytes` is a refcount bump.
    let write_frame = Pdu::CapsuleCmd(CapsuleCmd {
        cmd: NvmeCommand::write(21, 1, 8, 1),
        data: Some(DataRef::Inline(bytes::Bytes::from(vec![0x6bu8; 512]))),
    })
    .encode();
    let wz_frame = Pdu::CapsuleCmd(CapsuleCmd {
        cmd: NvmeCommand::write_zeroes(22, 1, 16, 2),
        data: None,
    })
    .encode();
    let trim_frame = Pdu::CapsuleCmd(CapsuleCmd {
        cmd: NvmeCommand::trim(23, 1, 32, 2),
        data: None,
    })
    .encode();

    let cycle = |conn: &mut TargetConnection,
                 ctrl: &mut Controller,
                 out: &mut Vec<Pdu>,
                 scratch: &mut BytesMut| {
        for f in [&write_frame, &wz_frame, &trim_frame] {
            drive(conn, ctrl, out, scratch, f.clone(), 1);
        }
        // The reactor's every-pass probe: the ticket is still pending,
        // nothing releases, nothing allocates.
        assert_eq!(conn.poll_parked(ctrl, out), 0);
    };

    // Warm-up with the gate open (the first rounds retire through the
    // worker normally), then park a flush behind a held sync.
    for _ in 0..64 {
        cycle(&mut conn, &mut ctrl, &mut out, &mut scratch);
    }
    vfs.hold_syncs(true);
    conn.handle(
        Frame::Owned(
            Pdu::CapsuleCmd(CapsuleCmd {
                cmd: NvmeCommand::flush(40, 1),
                data: None,
            })
            .encode(),
        ),
        &mut ctrl,
        &mut out,
    )
    .expect("flush parks");
    assert!(out.is_empty(), "flush completion must park: {out:?}");
    assert_eq!(conn.parked_barriers(), 1);

    TRACK.with(|t| t.set(true));
    ALLOCS.with(|c| c.set(0));
    for _ in 0..1000 {
        cycle(&mut conn, &mut ctrl, &mut out, &mut scratch);
    }
    TRACK.with(|t| t.set(false));
    let allocs = ALLOCS.with(Cell::get);

    assert_eq!(
        allocs, 0,
        "ops flowing past a parked barrier must not allocate \
         (saw {allocs} allocations over 1000 cycles)"
    );
    assert_eq!(conn.parked_barriers(), 1, "the barrier stayed parked");

    // Open the gate: the worker retires its round and the parked flush
    // releases through the same poll the loop above was running.
    vfs.hold_syncs(false);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        if conn.poll_parked(&ctrl, &mut out) > 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "parked flush never released"
        );
        std::hint::spin_loop();
    }
    let Some(Pdu::CapsuleResp(r)) = out.first() else {
        panic!("expected the parked flush completion, got {out:?}");
    };
    assert!(r.completion.status.is_ok());
    assert_eq!(r.completion.cid, 40);
    assert!(conn.metrics().barriers_parked.get() >= 1);
}

/// The recovery machinery's bookkeeping under the same budget: a real
/// [`Initiator`]/target pair over [`ShmTransport`] with per-command
/// deadlines and keep-alive enabled, every control frame CRC-stamped on
/// encode and verified on decode. Steady state — submit, deadline
/// arming, CRC on both directions, completion retirement, the
/// stale-watermark deadline sweep and keep-alive probing — must not
/// allocate on the initiator thread. (The target runs on its own,
/// untracked thread: this test pins the *initiator's* hot path.)
///
/// [`Initiator`]: oaf_nvmeof::initiator::Initiator
#[test]
fn steady_state_recovery_bookkeeping_allocates_nothing() {
    use std::time::Duration;

    use oaf_nvmeof::initiator::{Initiator, InitiatorOptions, IoResult, KeepAliveConfig};
    use oaf_nvmeof::nvme::controller::Controller;
    use oaf_nvmeof::nvme::namespace::Namespace;
    use oaf_nvmeof::target::{spawn_target, TargetConfig};

    let (ct, tt) = ShmTransport::pair(256 * 1024);
    let mut controller = Controller::new();
    controller.add_namespace(Namespace::new(1, 4096, 256));
    let handle = spawn_target(tt, controller, TargetConfig::default(), None);
    let mut ini = Initiator::connect(
        ct,
        InitiatorOptions {
            cmd_deadline: Some(Duration::from_millis(2)),
            // Short interval so probes actually fire during the 8ms
            // quiet stretches, but a generous grace: on a 1-core host a
            // scheduler slice can exceed the conventional 3x interval,
            // and this test pins the *bookkeeping* allocations, not
            // death detection (failure_injection covers that).
            keepalive: Some(KeepAliveConfig {
                interval: Duration::from_millis(5),
                grace: Duration::from_millis(500),
            }),
            ..InitiatorOptions::default()
        },
        None,
        Duration::from_secs(5),
    )
    .expect("connect");

    let mut done: Vec<IoResult> = Vec::with_capacity(16);
    let cycle = |ini: &mut Initiator<ShmTransport>, done: &mut Vec<IoResult>, i: u64| {
        let cid = if i.is_multiple_of(2) {
            ini.submit_write_zeroes(1, i % 256, 1).expect("submit wz")
        } else {
            ini.submit_flush(1).expect("submit flush")
        };
        // Every 32nd command: let the armed deadline expire while the
        // completion already sits in the ring, so the poll below first
        // resolves the command and then runs the stale-watermark
        // deadline sweep — the cold path must be allocation-free too.
        let quiet_cycle = i % 32 == 31;
        if quiet_cycle {
            std::thread::sleep(Duration::from_millis(8));
        }
        loop {
            done.clear();
            if ini.poll_into(done).expect("poll") > 0 {
                break;
            }
            std::hint::spin_loop();
        }
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].cid, cid);
        assert!(
            done[0].status.is_ok(),
            "command failed: {:?}",
            done[0].status
        );
        // A quiet stretch with nothing in flight: the keep-alive check
        // fires a probe (quiet ≥ interval), the ack comes back on a
        // later poll — both directions CRC-stamped, neither allocating.
        if quiet_cycle {
            std::thread::sleep(Duration::from_millis(8));
            ini.poll_into(done).expect("keep-alive poll");
        }
    };

    for i in 0..64 {
        cycle(&mut ini, &mut done, i);
    }

    TRACK.with(|t| t.set(true));
    ALLOCS.with(|c| c.set(0));
    for i in 0..1000 {
        cycle(&mut ini, &mut done, 64 + i);
    }
    TRACK.with(|t| t.set(false));
    let allocs = ALLOCS.with(Cell::get);

    assert_eq!(
        allocs, 0,
        "recovery bookkeeping (deadlines, keep-alive, CRC) must not allocate \
         (saw {allocs} allocations over 1000 cycles)"
    );

    ini.disconnect().expect("disconnect");
    handle.shutdown().expect("shutdown");
}
