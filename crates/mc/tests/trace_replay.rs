//! Closing the loop: a counterexample found by the model checker
//! converts into an `oaf-chaos` [`FaultScript`] and *reproduces its
//! violation on the real stack* — real initiator, real target reactor,
//! real transport — deterministically, on every run. The same script
//! against the unmutated protocol is harmless, proving the script
//! pins the bug and not some replay artifact.
//!
//! [`FaultScript`]: oaf_chaos::FaultScript
#![cfg(feature = "mc-mutations")]

use std::time::Duration;

use bytes::Bytes;
use oaf_chaos::{wrap_pair_scripted, FaultKind};
use oaf_mc::{
    CmdKind, Counterexample, Explorer, FaultBudget, FaultScripts, Scenario, Strategy, Violation,
};
use oaf_nvmeof::initiator::{Initiator, InitiatorOptions};
use oaf_nvmeof::nvme::controller::Controller;
use oaf_nvmeof::nvme::namespace::Namespace;
use oaf_nvmeof::target::{spawn_target, TargetConfig};
use oaf_nvmeof::transport::MemTransport;

const TIMEOUT: Duration = Duration::from_secs(10);
const BS: usize = 4096;
const PATTERN: u8 = 0xA5;

/// Model-checks the mutated (deliver-early) protocol over one read
/// with a single reorder and returns the minimal counterexample.
fn model_counterexample() -> Counterexample {
    let mut scenario = Scenario::new(
        "read-deliver-early",
        vec![CmdKind::Read],
        FaultBudget::only(FaultKind::Reorder, 1),
    );
    // One data frame per read, matching the real target's inline path
    // for a block-sized read (≤ `TargetConfig::read_chunk`), so model
    // frame indices and fabric frame indices line up one to one.
    scenario.data_chunks = 1;
    scenario.recovery.mutate_deliver_early = true;
    Explorer::new(scenario)
        .strategy(Strategy::IterativeDeepening)
        .run()
        .violation
        .expect("mutated read under a reorder must produce a counterexample")
}

/// Runs one seeded-write + scripted-read exchange on the real stack and
/// returns the bytes the read handed back.
fn read_under_script(scripts: &FaultScripts, mutated: bool) -> Vec<u8> {
    let (ct, tt) = MemTransport::pair();
    let (ct, tt, controls) =
        wrap_pair_scripted(ct, tt, scripts.initiator.clone(), scripts.target.clone());
    let mut controller = Controller::new();
    controller.add_namespace(Namespace::new(1, BS as u32, 64));
    let handle = spawn_target(tt, controller, TargetConfig::default(), None);

    let opts = InitiatorOptions {
        mc_deliver_early: mutated,
        ..InitiatorOptions::default()
    };
    let mut ini = Initiator::connect(ct, opts, None, TIMEOUT).expect("connect");

    // Seed the block before arming so the handshake and the seed write
    // consume no scripted frame indices: frame 0 at each endpoint is
    // the first frame of the modeled exchange, exactly as in the model.
    let w = ini
        .submit_write(1, 0, 1, Bytes::from(vec![PATTERN; BS]))
        .expect("submit seed write");
    assert!(ini.wait(w, TIMEOUT).expect("seed write").status.is_ok());

    controls.arm();
    let r = ini.submit_read(1, 0, 1, BS).expect("submit read");
    let res = ini.wait(r, TIMEOUT).expect("read completes");
    controls.disarm();
    assert!(res.status.is_ok(), "read status: {:?}", res.status);

    // A reordered data frame may still be parked in the chaos layer;
    // teardown tolerates whatever is left on the wire.
    let _ = ini.disconnect();
    let _ = handle.shutdown();
    res.data
}

#[test]
fn counterexample_replays_as_a_failing_chaos_script() {
    let cx = model_counterexample();
    assert!(matches!(cx.violation, Violation::StaleRead { .. }));
    let scripts = cx.to_fault_scripts();
    assert!(
        !scripts.initiator.faults.is_empty(),
        "conversion produced an empty script:\n{cx}"
    );

    // Deterministic reproduction: the script makes the mutated stack
    // return stale bytes (the read buffer, never filled) — on every
    // run, not at the mercy of a chaos seed.
    for _ in 0..3 {
        let stale = read_under_script(&scripts, true);
        assert_eq!(stale.len(), BS);
        assert!(
            stale.iter().all(|&b| b == 0),
            "mutated replay returned non-stale bytes; script did not reproduce"
        );
    }

    // The identical script against the correct protocol is harmless:
    // the completion is held until the reordered data lands.
    let good = read_under_script(&scripts, false);
    assert_eq!(good.len(), BS);
    assert!(
        good.iter().all(|&b| b == PATTERN),
        "correct protocol corrupted a read under the replayed script"
    );
}
