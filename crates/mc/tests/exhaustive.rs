//! The main-branch guarantee: every schedule of 2–3 in-flight commands
//! under each single-fault alphabet (drop / reorder / duplicate /
//! corrupt) upholds every invariant. These sweeps are *exhaustive*
//! within their budgets — `truncated` is asserted false, so a pass
//! means the whole space was closed, not sampled.

use oaf_chaos::FaultKind;
use oaf_mc::{Budget, CmdKind, Explorer, FaultBudget, McMetrics, Outcome, Scenario, Strategy};
use oaf_telemetry::Registry;

fn sweep(name: &'static str, commands: Vec<CmdKind>, faults: FaultBudget) -> Outcome {
    let outcome = Explorer::new(Scenario::new(name, commands, faults))
        .budget(Budget {
            max_states: 5_000_000,
            max_depth: 80,
        })
        .run();
    println!(
        "{name}: explored={} pruned={} max_depth={} truncated={}",
        outcome.explored, outcome.pruned, outcome.max_depth, outcome.truncated
    );
    if let Some(cx) = &outcome.violation {
        panic!("{name} found a violation:\n{cx}");
    }
    assert!(!outcome.truncated, "{name}: sweep hit its budget");
    outcome
}

#[test]
fn two_writes_survive_every_single_fault_schedule() {
    for kind in [
        FaultKind::Drop,
        FaultKind::Reorder,
        FaultKind::Duplicate,
        FaultKind::Corrupt,
    ] {
        let o = sweep(
            "write-write",
            vec![CmdKind::Write, CmdKind::Write],
            FaultBudget::only(kind, 1),
        );
        assert!(
            o.explored >= 100,
            "suspiciously small space for {kind:?}: {}",
            o.explored
        );
    }
}

#[test]
fn read_and_write_survive_every_single_fault_schedule() {
    for kind in [
        FaultKind::Drop,
        FaultKind::Reorder,
        FaultKind::Duplicate,
        FaultKind::Corrupt,
    ] {
        sweep(
            "read-write",
            vec![CmdKind::Read, CmdKind::Write],
            FaultBudget::only(kind, 1),
        );
    }
}

#[test]
fn fua_write_and_flush_barriers_survive_drops_and_reorders() {
    // Barrier-class commands pause the effective clock; the sweep
    // proves the pause can never wedge recovery (no Stuck states).
    sweep(
        "fua-flush",
        vec![CmdKind::WriteFua, CmdKind::Flush],
        FaultBudget::only(FaultKind::Drop, 1),
    );
    sweep(
        "fua-flush",
        vec![CmdKind::WriteFua, CmdKind::Flush],
        FaultBudget::only(FaultKind::Reorder, 2),
    );
}

/// The async durability pipeline, exhaustively: barrier completions
/// park on the offloaded sync worker and every interleaving of command
/// delivery, timer fires, aborts and sync drains (including the fsync
/// *error* drain) upholds every invariant. The dangerous reordering the
/// sweep closes out: an abort racing a parked barrier must never be
/// answered `not applied` (the journal append already happened), or the
/// resubmit double-applies.
#[test]
fn offloaded_sync_parking_survives_every_schedule() {
    for (faults, fail_budget) in [
        (FaultBudget::none(), 0),
        (FaultBudget::none(), 1),
        (FaultBudget::only(FaultKind::Drop, 1), 1),
        (FaultBudget::only(FaultKind::Reorder, 2), 1),
        (FaultBudget::only(FaultKind::Duplicate, 1), 1),
    ] {
        let scenario = Scenario::new(
            "offloaded-fua-flush",
            vec![CmdKind::WriteFua, CmdKind::Flush],
            faults,
        )
        .offloaded_sync(fail_budget);
        let outcome = Explorer::new(scenario)
            .budget(Budget {
                max_states: 5_000_000,
                max_depth: 80,
            })
            .run();
        println!(
            "offloaded-fua-flush (faults={faults:?} sync_fails={fail_budget}): \
             explored={} pruned={} max_depth={} truncated={}",
            outcome.explored, outcome.pruned, outcome.max_depth, outcome.truncated
        );
        if let Some(cx) = &outcome.violation {
            panic!("offloaded sweep found a violation:\n{cx}");
        }
        assert!(!outcome.truncated, "offloaded sweep hit its budget");
    }
}

/// Non-barrier traffic keeps flowing through the model while barriers
/// are parked: a read and a plain write interleave freely with a parked
/// FUA write and resolve independently of the sync drain order.
#[test]
fn offloaded_sync_reads_interleave_with_parked_barriers() {
    let scenario = Scenario::new(
        "offloaded-mixed",
        vec![CmdKind::WriteFua, CmdKind::Read, CmdKind::Write],
        FaultBudget::only(FaultKind::Drop, 1),
    )
    .offloaded_sync(1);
    let outcome = Explorer::new(scenario)
        .budget(Budget {
            max_states: 5_000_000,
            max_depth: 80,
        })
        .run();
    if let Some(cx) = &outcome.violation {
        panic!("offloaded mixed sweep found a violation:\n{cx}");
    }
    assert!(!outcome.truncated);
    assert!(
        outcome.explored >= 1_000,
        "suspiciously small space: {}",
        outcome.explored
    );
}

#[test]
fn three_commands_survive_reordering() {
    sweep(
        "read-read-flush",
        vec![CmdKind::Read, CmdKind::Read, CmdKind::Flush],
        FaultBudget::only(FaultKind::Reorder, 1),
    );
}

#[test]
fn write_zeroes_abort_path_survives_drop_plus_reorder() {
    // WriteZeroes is replayable-without-payload: its abort/resubmit
    // path is distinct from buffered writes. Two fault kinds at once.
    let o = sweep(
        "write-zeroes",
        vec![CmdKind::WriteZeroes, CmdKind::Read],
        FaultBudget {
            drops: 1,
            reorders: 1,
            ..FaultBudget::none()
        },
    );
    assert!(o.explored >= 1_000);
}

#[test]
fn keepalive_probing_survives_drops() {
    use oaf_nvmeof::recovery::KeepAliveNanos;
    const MS: u64 = 1_000_000;
    let mut scenario = Scenario::new(
        "write-keepalive",
        vec![CmdKind::Write],
        FaultBudget::only(FaultKind::Drop, 1),
    );
    scenario.recovery.keepalive = Some(KeepAliveNanos {
        interval: 20 * MS,
        grace: 60 * MS,
    });
    let outcome = Explorer::new(scenario).run();
    if let Some(cx) = &outcome.violation {
        panic!("keepalive sweep found a violation:\n{cx}");
    }
    assert!(!outcome.truncated);
}

#[test]
fn iterative_deepening_closes_the_same_space_clean() {
    let outcome = Explorer::new(Scenario::new(
        "write-write-id",
        vec![CmdKind::Write, CmdKind::Write],
        FaultBudget::only(FaultKind::Drop, 1),
    ))
    .strategy(Strategy::IterativeDeepening)
    .run();
    assert!(outcome.violation.is_none());
    assert!(!outcome.truncated);
}

#[test]
fn metrics_flow_through_the_telemetry_registry() {
    let registry = Registry::new();
    let metrics = McMetrics::new();
    metrics.register(&registry.scope("mc"));

    let outcome = Explorer::new(Scenario::new(
        "metrics",
        vec![CmdKind::Read, CmdKind::Write],
        FaultBudget::only(FaultKind::Reorder, 1),
    ))
    .run();
    metrics.observe(&outcome);

    let snap = registry.snapshot();
    assert!(snap.counter("mc", "explored_states") >= 100);
    assert!(snap.counter("mc", "pruned_states") >= 1);
    assert_eq!(snap.counter("mc", "violations"), 0);
    let (_, hwm) = snap.gauge("mc", "max_depth").expect("gauge registered");
    assert!(hwm >= 4, "max_depth high-water mark: {hwm}");
}
