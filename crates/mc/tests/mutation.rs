//! The mutation leg: re-break the protocol on purpose and prove the
//! checker finds the bug with a *minimal* counterexample. The mutation
//! is the PR 4 held-completion bug — success completions released
//! before the data they vouch for — re-introduced behind the
//! `mc-mutations` feature as `mutate_deliver_early`.
#![cfg(feature = "mc-mutations")]

use oaf_chaos::FaultKind;
use oaf_mc::model::Dir;
use oaf_mc::{CmdKind, Explorer, FaultBudget, Scenario, Strategy, Violation};

fn mutated_read_scenario() -> Scenario {
    let mut s = Scenario::new(
        "read-deliver-early",
        vec![CmdKind::Read],
        FaultBudget::only(FaultKind::Reorder, 1),
    );
    s.data_chunks = 1;
    s.recovery.mutate_deliver_early = true;
    s
}

#[test]
fn deliver_early_mutation_yields_a_minimal_stale_read() {
    let outcome = Explorer::new(mutated_read_scenario())
        .strategy(Strategy::IterativeDeepening)
        .run();
    let cx = outcome
        .violation
        .expect("a reorderable read against the deliver-early core must fail");
    println!("{cx}");

    match cx.violation {
        Violation::StaleRead { got, need, .. } => {
            assert!(got < need, "stale read with got={got} need={need}?");
        }
        ref other => panic!("expected StaleRead, found {other}"),
    }
    // Iterative deepening guarantees a shortest schedule: deliver the
    // command, then let the response overtake the data. Two steps.
    assert_eq!(
        cx.transitions.len(),
        2,
        "counterexample is not minimal:\n{cx}"
    );

    // And it converts into a deterministic chaos script: one reorder on
    // the first target→initiator frame (the data), nothing else.
    let scripts = cx.to_fault_scripts();
    assert!(scripts.target.faults.is_empty(), "{:?}", scripts.target);
    assert_eq!(scripts.initiator.faults.len(), 1, "{:?}", scripts.initiator);
    assert_eq!(scripts.initiator.faults[0].frame, 0);
    assert_eq!(scripts.initiator.faults[0].fault, FaultKind::Reorder);
    assert!(cx
        .faults
        .iter()
        .any(|&(d, s, f)| d == Dir::T2I && s == 0 && f == FaultKind::Reorder));
}

#[test]
fn the_correct_core_closes_the_same_space_clean() {
    let mut scenario = mutated_read_scenario();
    scenario.recovery.mutate_deliver_early = false;
    let outcome = Explorer::new(scenario).run();
    if let Some(cx) = &outcome.violation {
        panic!("unmutated core failed the mutation scenario:\n{cx}");
    }
    assert!(!outcome.truncated);
}

#[test]
fn plain_dfs_finds_the_mutation_too() {
    // DFS order gives no minimality guarantee, but the bug must still
    // be found — and still convert to a non-empty script.
    let outcome = Explorer::new(mutated_read_scenario()).run();
    let cx = outcome.violation.expect("DFS must also find the bug");
    assert!(matches!(cx.violation, Violation::StaleRead { .. }));
    assert!(!cx.to_fault_scripts().initiator.faults.is_empty());
}
