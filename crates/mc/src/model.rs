//! The model: two real recovery cores, two message queues, and a
//! transition relation over deliveries, faults and timer firings.
//!
//! The *shells* (payload buffers, shared-memory slots, wire codecs) are
//! abstracted into a handful of bookkeeping maps, but the *decisions*
//! are made by the exact [`InitiatorRecovery`]/[`TargetRecovery`] code
//! the production reactors run — the checker cannot drift from the
//! implementation because it executes the implementation.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};

use oaf_chaos::FaultKind;
use oaf_nvmeof::nvme::command::Opcode;
use oaf_nvmeof::nvme::completion::{NvmeCompletion, Status};
use oaf_nvmeof::recovery::{
    Action, DataArrival, DataNeed, InitiatorRecovery, Nanos, RecoveryConfig, TargetRecovery,
};

use crate::invariant::Violation;

/// Payload granularity of a modeled read: each controller→host data
/// frame carries one chunk of this many bytes.
pub const CHUNK: u32 = 2048;

/// The command shapes a scenario can put in flight. Each maps onto a
/// real opcode with the data-need and barrier semantics the initiator
/// shell would derive.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmdKind {
    /// A buffered read: owes `data_chunks × CHUNK` contiguous bytes
    /// before its success completion may be delivered.
    Read,
    /// A plain write (payload clone retained, so replayable after an
    /// abort round-trip).
    Write,
    /// A force-unit-access write: barrier-class, pauses the effective
    /// clock while in flight.
    WriteFua,
    /// A flush: barrier-class, no data either way.
    Flush,
    /// Write-zeroes: mutating but fully described by the command itself.
    WriteZeroes,
}

impl CmdKind {
    /// The NVMe opcode the shell would stamp.
    pub fn opcode(self) -> Opcode {
        match self {
            CmdKind::Read => Opcode::Read,
            CmdKind::Write | CmdKind::WriteFua => Opcode::Write,
            CmdKind::Flush => Opcode::Flush,
            CmdKind::WriteZeroes => Opcode::WriteZeroes,
        }
    }

    /// Force-unit-access flag.
    pub fn fua(self) -> bool {
        matches!(self, CmdKind::WriteFua)
    }

    /// Whether executing it changes namespace state (double-apply is a
    /// violation only for these).
    pub fn mutates(self) -> bool {
        self.opcode().mutates()
    }

    /// Payload owed by the controller before completion.
    pub fn need(self, data_chunks: u32) -> DataNeed {
        match self {
            CmdKind::Read => DataNeed::Bytes(data_chunks * CHUNK),
            _ => DataNeed::None,
        }
    }
}

/// Which way a queued message is traveling.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Initiator → target (commands, aborts, keep-alive probes).
    I2T,
    /// Target → initiator (data, responses, acks).
    T2I,
}

impl Dir {
    fn idx(self) -> usize {
        match self {
            Dir::I2T => 0,
            Dir::T2I => 1,
        }
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Dir::I2T => "i→t",
            Dir::T2I => "t→i",
        })
    }
}

/// An abstract wire frame. One model message corresponds to one real
/// fabric frame, so a fault on message `seq` converts into a scripted
/// fault on fresh-frame index `seq` at the receiving endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Msg {
    /// A command capsule for logical command `slot` under attempt
    /// `(cid, gseq)`.
    Cmd {
        /// Wire cid of this attempt.
        cid: u16,
        /// Generation tag of this attempt.
        gseq: u32,
        /// Logical command index in the scenario.
        slot: usize,
    },
    /// An abort capsule for attempt `(cid, gseq)`.
    Abort {
        /// Wire cid being aborted.
        cid: u16,
        /// Generation of the aborted attempt.
        gseq: u32,
    },
    /// A keep-alive probe.
    KeepAlive {
        /// Heartbeat sequence number.
        seq: u64,
    },
    /// One controller→host payload chunk for `cid`.
    Data {
        /// Wire cid the chunk belongs to.
        cid: u16,
        /// Byte offset within the transfer.
        offset: u32,
        /// Chunk length in bytes.
        len: u32,
    },
    /// A response capsule for `cid`.
    Resp {
        /// Wire cid being completed.
        cid: u16,
        /// Success or error status.
        ok: bool,
    },
    /// An abort acknowledgement for `cid`.
    AbortAck {
        /// Wire cid the abort named.
        cid: u16,
        /// Whether the original command had already executed.
        applied: bool,
        /// Status of the accompanying completion.
        ok: bool,
    },
    /// A keep-alive acknowledgement.
    KeepAliveAck,
}

impl fmt::Display for Msg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Msg::Cmd { cid, gseq, slot } => write!(f, "Cmd#{slot}(cid={cid},g={gseq})"),
            Msg::Abort { cid, gseq } => write!(f, "Abort(cid={cid},g={gseq})"),
            Msg::KeepAlive { seq } => write!(f, "KeepAlive(#{seq})"),
            Msg::Data { cid, offset, len } => write!(f, "Data(cid={cid},{offset}+{len})"),
            Msg::Resp { cid, ok } => write!(f, "Resp(cid={cid},ok={ok})"),
            Msg::AbortAck { cid, applied, .. } => {
                write!(f, "AbortAck(cid={cid},applied={applied})")
            }
            Msg::KeepAliveAck => write!(f, "KeepAliveAck"),
        }
    }
}

/// How many of each fault the schedule may spend. Small budgets keep
/// the state space finite while still covering every *placement* of the
/// faults among the interleavings.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct FaultBudget {
    /// Frames that may be silently discarded.
    pub drops: u8,
    /// Out-of-order deliveries (each message overtaken costs one).
    pub reorders: u8,
    /// Frames that may be delivered twice.
    pub duplicates: u8,
    /// Frames that may be corrupted (the CRC catches them, so the
    /// receiver sees a gap, not garbage).
    pub corrupts: u8,
}

/// How the modeled target makes barrier-class commands durable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SyncMode {
    /// The dispatch path syncs inline: a barrier's completion is queued
    /// the moment its command is delivered (the pre-offload target).
    #[default]
    Inline,
    /// The async durability pipeline: a delivered barrier *applies* but
    /// its completion parks until a [`Transition::SyncComplete`] drains
    /// the sync worker. `fail_budget` bounds how many drains may report
    /// an fsync error (each failed drain costs one).
    Offloaded {
        /// Sync drains the adversary may fail.
        fail_budget: u8,
    },
}

impl FaultBudget {
    /// No faults at all: pure interleaving + timer exploration.
    pub fn none() -> Self {
        FaultBudget::default()
    }

    /// `n` faults of exactly one kind.
    pub fn only(kind: FaultKind, n: u8) -> Self {
        let mut b = FaultBudget::none();
        match kind {
            FaultKind::Drop => b.drops = n,
            FaultKind::Reorder => b.reorders = n,
            FaultKind::Duplicate => b.duplicates = n,
            FaultKind::Corrupt => b.corrupts = n,
            _ => {}
        }
        b
    }
}

/// One checking job: which commands start in flight, how the recovery
/// core is tuned, and what the adversary may do to the wire.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Human-readable name, printed in counterexamples.
    pub name: &'static str,
    /// The logical commands, all submitted before exploration starts.
    pub commands: Vec<CmdKind>,
    /// Recovery tuning (deadlines, retry budget, keep-alive).
    pub recovery: RecoveryConfig,
    /// The adversary's fault budget.
    pub faults: FaultBudget,
    /// Payload chunks per read (transfer size = `data_chunks × CHUNK`).
    pub data_chunks: u32,
    /// Whether the target syncs barriers inline or parks their
    /// completions on an offloaded sync worker.
    pub sync: SyncMode,
}

impl Scenario {
    /// A scenario with sane defaults: deadlines on, two retries, no
    /// keep-alive (keep-alive multiplies the state space; enable it
    /// explicitly in scenarios that target it).
    pub fn new(name: &'static str, commands: Vec<CmdKind>, faults: FaultBudget) -> Self {
        const MS: Nanos = 1_000_000;
        Scenario {
            name,
            commands,
            // The struct update covers the cfg-gated mutation knob
            // (`mutate_deliver_early`), present only under the
            // `mc-mutations` feature.
            #[allow(clippy::needless_update)]
            recovery: RecoveryConfig {
                cmd_deadline: Some(10 * MS),
                max_retries: 2,
                retry_backoff: 2 * MS,
                keepalive: None,
                barrier_grace: 50 * MS,
                ..RecoveryConfig::default()
            },
            faults,
            data_chunks: 2,
            sync: SyncMode::Inline,
        }
    }

    /// Switches the target to the offloaded sync worker, allowing the
    /// adversary to fail up to `fail_budget` sync drains.
    pub fn offloaded_sync(mut self, fail_budget: u8) -> Self {
        self.sync = SyncMode::Offloaded { fail_budget };
        self
    }
}

/// One edge of the transition relation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Transition {
    /// Deliver the `i`-th queued message in `dir`. `i > 0` is an
    /// out-of-order delivery and costs one reorder per overtaken
    /// message.
    Deliver {
        /// Queue direction.
        dir: Dir,
        /// Queue index (0 = oldest).
        i: usize,
    },
    /// Discard the head message in `dir` (costs one drop).
    Drop {
        /// Queue direction.
        dir: Dir,
    },
    /// Deliver the head message in `dir` twice (costs one duplicate).
    Duplicate {
        /// Queue direction.
        dir: Dir,
    },
    /// Corrupt the head message in `dir`: the frame CRC catches it at
    /// the receiver, so it is consumed with no protocol effect (costs
    /// one corrupt).
    Corrupt {
        /// Queue direction.
        dir: Dir,
    },
    /// Advance the clock to the initiator's next armed timer and tick.
    Timer,
    /// The offloaded sync worker retires its in-flight fsync, draining
    /// every parked barrier completion in submission order. `ok = false`
    /// is an fsync error (costs one from the scenario's sync fail
    /// budget): the drained barriers complete with an error status.
    SyncComplete {
        /// Whether the fsync succeeded.
        ok: bool,
    },
}

/// How one logical command ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Resolution {
    /// Completed with a success status.
    Ok,
    /// Completed with an error status.
    Err,
    /// Retry budget exhausted; surfaced as timed out.
    TimedOut,
}

/// A full protocol state: both recovery cores, the wire, and the
/// harness bookkeeping the invariants read.
#[derive(Clone, Debug)]
pub struct World {
    /// The initiator's decision core (production code).
    pub ini: InitiatorRecovery,
    /// The target's decision core (production code).
    pub tgt: TargetRecovery,
    /// Model clock, nanoseconds.
    pub now: Nanos,
    /// Whether the initiator declared the peer dead.
    pub peer_dead: bool,
    /// Per-slot resolution as observed by the caller.
    pub resolved: Vec<Option<Resolution>>,
    /// Faults spent so far, as `(direction, frame seq, kind)` — the raw
    /// material for [`crate::trace::Counterexample::to_fault_scripts`].
    pub faults_spent: Vec<(Dir, u64, FaultKind)>,

    commands: Vec<CmdKind>,
    data_chunks: u32,
    queues: [Vec<(u64, Msg)>; 2],
    sent: [u64; 2],
    budget: FaultBudget,
    /// Live wire cid → logical slot.
    slot_of: HashMap<u16, usize>,
    /// The shell's own contiguous-payload watermark per live attempt —
    /// deliberately independent of the core's, so a core that releases
    /// a completion early (the mutation leg) is caught by the harness
    /// rather than trusted.
    data_got: HashMap<u16, u32>,
    /// Distinct generations applied at the target, per slot.
    applied_gens: Vec<Vec<u32>>,
    /// What the target answered each abort: `(cid, gseq)` → applied.
    abort_answers: HashMap<(u16, u32), bool>,
    /// Barrier completions parked on the offloaded sync worker, in
    /// submission order — the model twin of the target's
    /// `ParkedBarrier` queue: `(cid, gseq, slot, abort_requested)`.
    sync_pending: Vec<(u16, u32, usize, bool)>,
    sync: SyncMode,
    action_buf: Vec<Action>,
}

impl World {
    /// Builds the initial state: every scenario command submitted and
    /// its capsule queued initiator→target, clock at zero.
    pub fn new(scenario: &Scenario) -> Self {
        let mut w = World {
            ini: InitiatorRecovery::new(scenario.recovery.clone(), 0),
            tgt: TargetRecovery::new(),
            now: 0,
            peer_dead: false,
            resolved: vec![None; scenario.commands.len()],
            faults_spent: Vec::new(),
            commands: scenario.commands.clone(),
            data_chunks: scenario.data_chunks.max(1),
            queues: [Vec::new(), Vec::new()],
            sent: [0, 0],
            budget: scenario.faults,
            slot_of: HashMap::new(),
            data_got: HashMap::new(),
            applied_gens: vec![Vec::new(); scenario.commands.len()],
            abort_answers: HashMap::new(),
            sync_pending: Vec::new(),
            sync: scenario.sync,
            action_buf: Vec::new(),
        };
        for (slot, &kind) in scenario.commands.iter().enumerate() {
            let (cid, gseq) = w.ini.begin(
                kind.opcode(),
                kind.fua(),
                kind.need(w.data_chunks),
                true,
                w.now,
            );
            w.slot_of.insert(cid, slot);
            w.data_got.insert(cid, 0);
            w.push(Dir::I2T, Msg::Cmd { cid, gseq, slot });
        }
        w
    }

    fn push(&mut self, dir: Dir, msg: Msg) {
        let seq = self.sent[dir.idx()];
        self.sent[dir.idx()] += 1;
        self.queues[dir.idx()].push((seq, msg));
    }

    /// The queued messages in `dir`, oldest first.
    pub fn queue(&self, dir: Dir) -> &[(u64, Msg)] {
        &self.queues[dir.idx()]
    }

    /// Whether every command resolved (or the peer died, after which
    /// the shell fails all waiters and nothing further can resolve).
    pub fn done(&self) -> bool {
        self.peer_dead || self.resolved.iter().all(|r| r.is_some())
    }

    /// Every transition enabled in this state.
    pub fn transitions(&self) -> Vec<Transition> {
        let mut out = Vec::new();
        if self.peer_dead {
            return out;
        }
        for dir in [Dir::I2T, Dir::T2I] {
            let q = &self.queues[dir.idx()];
            for i in 0..q.len() {
                if i == 0 || self.budget.reorders as usize >= i {
                    out.push(Transition::Deliver { dir, i });
                }
            }
            if !q.is_empty() {
                if self.budget.drops > 0 {
                    out.push(Transition::Drop { dir });
                }
                if self.budget.duplicates > 0 {
                    out.push(Transition::Duplicate { dir });
                }
                if self.budget.corrupts > 0 {
                    out.push(Transition::Corrupt { dir });
                }
            }
        }
        if !self.done() && self.ini.next_timer(self.now).is_some() {
            out.push(Transition::Timer);
        }
        if !self.sync_pending.is_empty() {
            out.push(Transition::SyncComplete { ok: true });
            if let SyncMode::Offloaded { fail_budget } = self.sync {
                if fail_budget > 0 {
                    out.push(Transition::SyncComplete { ok: false });
                }
            }
        }
        out
    }

    /// A one-line human rendering of `t` in this state (used when
    /// printing counterexample schedules).
    pub fn describe(&self, t: Transition) -> String {
        let head = |dir: Dir| {
            self.queues[dir.idx()]
                .first()
                .map(|&(seq, m)| format!("{m} [frame {seq}]"))
                .unwrap_or_else(|| "<empty>".into())
        };
        match t {
            Transition::Deliver { dir, i } => match self.queues[dir.idx()].get(i) {
                Some(&(seq, m)) if i == 0 => format!("deliver {dir} {m} [frame {seq}]"),
                Some(&(seq, m)) => {
                    format!("deliver {dir} {m} [frame {seq}] overtaking {i} older frame(s)")
                }
                None => format!("deliver {dir} <empty>"),
            },
            Transition::Drop { dir } => format!("drop {dir} {}", head(dir)),
            Transition::Duplicate { dir } => format!("duplicate {dir} {}", head(dir)),
            Transition::Corrupt { dir } => format!("corrupt {dir} {}", head(dir)),
            Transition::Timer => {
                let t = self.ini.next_timer(self.now).unwrap_or(self.now);
                format!("timer fires at t={}us", t.max(self.now + 1) / 1_000)
            }
            Transition::SyncComplete { ok } => {
                let parked: Vec<String> = self
                    .sync_pending
                    .iter()
                    .map(|&(cid, gseq, slot, _)| format!("#{slot}(cid={cid},g={gseq})"))
                    .collect();
                format!(
                    "sync worker drains {} ({} parked: {})",
                    if ok { "ok" } else { "with fsync error" },
                    parked.len(),
                    parked.join(", ")
                )
            }
        }
    }

    /// Applies `t`, returning the first invariant violation it caused,
    /// if any. The caller clones first when branching.
    pub fn apply(&mut self, t: Transition) -> Option<Violation> {
        match t {
            Transition::Deliver { dir, i } => {
                if i > 0 {
                    // Each overtaken message costs one reorder and is
                    // recorded so the scripted replay holds exactly
                    // those frames back.
                    let cost = i.min(self.budget.reorders as usize);
                    if cost < i {
                        return None;
                    }
                    self.budget.reorders -= i as u8;
                    for k in 0..i {
                        let seq = self.queues[dir.idx()][k].0;
                        if !self
                            .faults_spent
                            .iter()
                            .any(|&(d, s, f)| d == dir && s == seq && f == FaultKind::Reorder)
                        {
                            self.faults_spent.push((dir, seq, FaultKind::Reorder));
                        }
                    }
                }
                let (_, msg) = self.queues[dir.idx()].remove(i);
                self.deliver(dir, msg)
            }
            Transition::Drop { dir } => {
                if self.queues[dir.idx()].is_empty() || self.budget.drops == 0 {
                    return None;
                }
                self.budget.drops -= 1;
                let (seq, _) = self.queues[dir.idx()].remove(0);
                self.faults_spent.push((dir, seq, FaultKind::Drop));
                None
            }
            Transition::Duplicate { dir } => {
                if self.queues[dir.idx()].is_empty() || self.budget.duplicates == 0 {
                    return None;
                }
                self.budget.duplicates -= 1;
                let (seq, msg) = self.queues[dir.idx()].remove(0);
                self.faults_spent.push((dir, seq, FaultKind::Duplicate));
                if let Some(v) = self.deliver(dir, msg) {
                    return Some(v);
                }
                self.deliver(dir, msg)
            }
            Transition::Corrupt { dir } => {
                // The receiver's frame CRC rejects the bytes before any
                // protocol state is touched: a corrupt is a drop that
                // the wire, not the adversary, owns up to.
                if self.queues[dir.idx()].is_empty() || self.budget.corrupts == 0 {
                    return None;
                }
                self.budget.corrupts -= 1;
                let (seq, _) = self.queues[dir.idx()].remove(0);
                self.faults_spent.push((dir, seq, FaultKind::Corrupt));
                None
            }
            Transition::Timer => {
                let target = self.ini.next_timer(self.now)?;
                self.now = target.max(self.now + 1);
                let now = self.now;
                let mut out = std::mem::take(&mut self.action_buf);
                out.clear();
                self.ini.tick(now, &mut out);
                let v = self.run_actions(&mut out);
                self.action_buf = out;
                v
            }
            Transition::SyncComplete { ok } => {
                if self.sync_pending.is_empty() {
                    return None;
                }
                if !ok {
                    match self.sync {
                        SyncMode::Offloaded { fail_budget } if fail_budget > 0 => {
                            self.sync = SyncMode::Offloaded {
                                fail_budget: fail_budget - 1,
                            };
                        }
                        _ => return None,
                    }
                }
                // The drain mirrors the target's `poll_parked`: every
                // parked completion releases in submission order, each
                // carrying the sync's verdict; a requested abort is
                // answered `applied = true` only now, alongside the
                // final completion.
                let parked = std::mem::take(&mut self.sync_pending);
                for (cid, gseq, _slot, abort_requested) in parked {
                    let comp = if ok {
                        NvmeCompletion::ok(cid)
                    } else {
                        NvmeCompletion::error(cid, Status::InternalError)
                    };
                    self.tgt.on_executed(cid, gseq, comp);
                    self.push(Dir::T2I, Msg::Resp { cid, ok });
                    if abort_requested {
                        let prev = self.abort_answers.insert((cid, gseq), true);
                        self.push(
                            Dir::T2I,
                            Msg::AbortAck {
                                cid,
                                applied: true,
                                ok,
                            },
                        );
                        if prev == Some(false) {
                            return Some(Violation::AbortAppliedAfterNotApplied { cid, gseq });
                        }
                    }
                }
                None
            }
        }
    }

    fn deliver(&mut self, dir: Dir, msg: Msg) -> Option<Violation> {
        match dir {
            Dir::I2T => self.deliver_to_target(msg),
            Dir::T2I => self.deliver_to_initiator(msg),
        }
    }

    fn deliver_to_target(&mut self, msg: Msg) -> Option<Violation> {
        match msg {
            Msg::Cmd { cid, gseq, slot } => {
                if self.tgt.should_drop_command(cid, gseq) {
                    // A late duplicate of an attempt already answered
                    // NotApplied: the protocol demands it be ignored.
                    return None;
                }
                let kind = self.commands[slot];
                if kind.mutates() && !self.applied_gens[slot].contains(&gseq) {
                    self.applied_gens[slot].push(gseq);
                    if self.applied_gens[slot].len() >= 2 {
                        return Some(Violation::DoubleApply {
                            slot,
                            gens: self.applied_gens[slot].clone(),
                        });
                    }
                }
                if matches!(self.sync, SyncMode::Offloaded { .. })
                    && matches!(kind, CmdKind::WriteFua | CmdKind::Flush)
                {
                    // The async durability pipeline: the journal append
                    // already happened (recorded above), but the
                    // completion parks until the sync worker drains —
                    // no `on_executed`, no response, yet.
                    self.sync_pending.push((cid, gseq, slot, false));
                    return None;
                }
                let comp = NvmeCompletion::ok(cid);
                self.tgt.on_executed(cid, gseq, comp);
                if kind == CmdKind::Read {
                    for k in 0..self.data_chunks {
                        self.push(
                            Dir::T2I,
                            Msg::Data {
                                cid,
                                offset: k * CHUNK,
                                len: CHUNK,
                            },
                        );
                    }
                }
                self.push(Dir::T2I, Msg::Resp { cid, ok: true });
                None
            }
            Msg::Abort { cid, gseq } => {
                // An abort naming a *parked* attempt defers: the write
                // is already in the journal, so answering `not applied`
                // now would invite a resubmit and a double-apply. The
                // ack rides out with the completion at drain time.
                if let Some(p) = self
                    .sync_pending
                    .iter_mut()
                    .find(|p| p.0 == cid && p.1 == gseq)
                {
                    p.3 = true;
                    return None;
                }
                let (applied, ok) = match self.tgt.on_abort(cid, gseq) {
                    oaf_nvmeof::recovery::AbortDecision::Applied(c) => (true, c.status.is_ok()),
                    oaf_nvmeof::recovery::AbortDecision::NotApplied => (false, false),
                };
                let prev = self.abort_answers.insert((cid, gseq), applied);
                self.push(Dir::T2I, Msg::AbortAck { cid, applied, ok });
                if prev == Some(false) && applied {
                    return Some(Violation::AbortAppliedAfterNotApplied { cid, gseq });
                }
                None
            }
            Msg::KeepAlive { .. } => {
                self.push(Dir::T2I, Msg::KeepAliveAck);
                None
            }
            other => Some(Violation::UnexpectedFrame {
                what: format!("{other} arrived at the target"),
            }),
        }
    }

    fn deliver_to_initiator(&mut self, msg: Msg) -> Option<Violation> {
        let now = self.now;
        self.ini.on_rx(now);
        let mut out = std::mem::take(&mut self.action_buf);
        out.clear();
        let mut v = None;
        match msg {
            Msg::Data { cid, offset, len } => {
                if let Some(got) = self.data_got.get_mut(&cid) {
                    // The shell's independent contiguous watermark: a
                    // chunk landing past the prefix does not advance it.
                    if offset <= *got {
                        *got = (*got).max(offset.saturating_add(len));
                    }
                    self.ini
                        .on_data(cid, DataArrival::Chunk { offset, len }, now, &mut out);
                } else if !self.ini.is_retired_cid(cid) {
                    v = Some(Violation::UnexpectedFrame {
                        what: format!("Data for cid {cid} which is neither live nor retired"),
                    });
                }
            }
            Msg::Resp { cid, ok } => {
                let comp = if ok {
                    NvmeCompletion::ok(cid)
                } else {
                    NvmeCompletion::error(cid, Status::InternalError)
                };
                if !self.ini.on_completion(cid, comp, now, &mut out)
                    && !self.ini.is_retired_cid(cid)
                {
                    v = Some(Violation::UnexpectedFrame {
                        what: format!("Resp for cid {cid} which is neither live nor retired"),
                    });
                }
            }
            Msg::AbortAck { cid, applied, ok } => {
                let comp = if ok {
                    NvmeCompletion::ok(cid)
                } else {
                    NvmeCompletion::error(cid, Status::InternalError)
                };
                // A stale AbortAck (raced by the real completion) is
                // dropped by the core; that is correct, not a violation.
                let _ = self.ini.on_abort_ack(cid, applied, comp, now, &mut out);
            }
            Msg::KeepAliveAck => self.ini.on_keepalive_ack(),
            other => {
                v = Some(Violation::UnexpectedFrame {
                    what: format!("{other} arrived at the initiator"),
                });
            }
        }
        let va = self.run_actions(&mut out);
        self.action_buf = out;
        v.or(va)
    }

    /// Carries out the core's queued decisions, checking the completion
    /// invariants the real shell's caller would experience.
    fn run_actions(&mut self, out: &mut Vec<Action>) -> Option<Violation> {
        let mut violation = None;
        // The handlers below need `&mut self` (they push frames and
        // resolve slots), so the pending actions move out first.
        let actions = std::mem::take(out);
        for a in actions {
            let v = match a {
                Action::Complete {
                    wire_cid,
                    completion,
                } => self.on_complete(wire_cid, completion),
                Action::GiveUp { wire_cid } => {
                    self.data_got.remove(&wire_cid);
                    match self.slot_of.remove(&wire_cid) {
                        Some(slot) => self.resolve(slot, Resolution::TimedOut),
                        None => None,
                    }
                }
                Action::Resubmit {
                    old_cid,
                    new_cid,
                    gseq,
                } => {
                    self.data_got.remove(&old_cid);
                    self.data_got.insert(new_cid, 0);
                    if let Some(slot) = self.slot_of.remove(&old_cid) {
                        self.slot_of.insert(new_cid, slot);
                        self.push(
                            Dir::I2T,
                            Msg::Cmd {
                                cid: new_cid,
                                gseq,
                                slot,
                            },
                        );
                    }
                    None
                }
                Action::SendAbort { cid, gseq } => {
                    self.push(Dir::I2T, Msg::Abort { cid, gseq });
                    None
                }
                Action::SendKeepAlive { seq, .. } => {
                    self.push(Dir::I2T, Msg::KeepAlive { seq });
                    None
                }
                Action::PeerDead => {
                    self.peer_dead = true;
                    None
                }
            };
            violation = violation.or(v);
        }
        violation
    }

    fn on_complete(&mut self, wire_cid: u16, completion: NvmeCompletion) -> Option<Violation> {
        let shell_got = self.data_got.remove(&wire_cid).unwrap_or(0);
        let slot = self.slot_of.remove(&wire_cid)?;
        let kind = self.commands[slot];
        if completion.status.is_ok() {
            if let DataNeed::Bytes(need) = kind.need(self.data_chunks) {
                if shell_got < need {
                    return Some(Violation::StaleRead {
                        slot,
                        got: shell_got,
                        need,
                    });
                }
            }
            if kind.mutates() && self.applied_gens[slot].is_empty() {
                return Some(Violation::AckedLostWrite { slot });
            }
        }
        self.resolve(
            slot,
            if completion.status.is_ok() {
                Resolution::Ok
            } else {
                Resolution::Err
            },
        )
    }

    fn resolve(&mut self, slot: usize, how: Resolution) -> Option<Violation> {
        if self.resolved[slot].is_some() {
            return Some(Violation::DoubleResolve { slot });
        }
        self.resolved[slot] = Some(how);
        None
    }

    /// The deadlock check: a live peer, unresolved commands, and no
    /// enabled transition means no execution can ever make progress.
    pub fn stuck(&self) -> Option<Violation> {
        if !self.done() && self.transitions().is_empty() {
            return Some(Violation::Stuck);
        }
        None
    }

    /// A canonical 64-bit fingerprint for visited-set pruning. Hashes
    /// both cores (times re-based so absolute clock value is
    /// irrelevant), the wire contents, remaining budgets and the
    /// harness maps in sorted order — but *not* frame sequence numbers
    /// or fault history, which only label traces and do not influence
    /// future behavior.
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.ini.fingerprint(self.now, &mut h);
        self.tgt.fingerprint(&mut h);
        for q in &self.queues {
            q.len().hash(&mut h);
            for &(_, m) in q {
                m.hash(&mut h);
            }
        }
        self.budget.hash(&mut h);
        self.peer_dead.hash(&mut h);
        let mut slots: Vec<(u16, usize)> = self.slot_of.iter().map(|(&c, &s)| (c, s)).collect();
        slots.sort_unstable();
        slots.hash(&mut h);
        let mut got: Vec<(u16, u32)> = self.data_got.iter().map(|(&c, &g)| (c, g)).collect();
        got.sort_unstable();
        got.hash(&mut h);
        self.resolved.hash(&mut h);
        self.applied_gens.hash(&mut h);
        let mut answers: Vec<((u16, u32), bool)> =
            self.abort_answers.iter().map(|(&k, &v)| (k, v)).collect();
        answers.sort_unstable();
        answers.hash(&mut h);
        self.sync_pending.hash(&mut h);
        self.sync.hash(&mut h);
        h.finish()
    }
}
