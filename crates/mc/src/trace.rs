//! Counterexample traces: minimal replayable schedules, printable for
//! humans and convertible into deterministic `oaf-chaos` fault scripts.

use std::fmt;

use oaf_chaos::{FaultKind, FaultScript, ScriptedFault};

use crate::invariant::Violation;
use crate::model::{Dir, Scenario, Transition, World};

/// The two per-endpoint fault schedules a counterexample converts into:
/// faults on initiator→target frames replay at the target's transport
/// wrapper, faults on target→initiator frames at the initiator's.
#[derive(Clone, Debug)]
pub struct FaultScripts {
    /// Script for the wrapper around the *initiator's* endpoint
    /// (faults on target→initiator frames).
    pub initiator: FaultScript,
    /// Script for the wrapper around the *target's* endpoint (faults
    /// on initiator→target frames).
    pub target: FaultScript,
}

/// A violating schedule, reconstructed by replaying the explorer's
/// transition path from the initial state so every step can be
/// rendered with full message context.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// Name of the scenario that produced it.
    pub scenario: &'static str,
    /// The invariant that broke at the end of the schedule.
    pub violation: Violation,
    /// The raw transitions, shortest-first (iterative deepening makes
    /// this a minimal schedule).
    pub transitions: Vec<Transition>,
    /// One human-readable line per transition.
    pub steps: Vec<String>,
    /// Every fault the schedule spent: `(direction, frame seq, kind)`.
    pub faults: Vec<(Dir, u64, FaultKind)>,
}

impl Counterexample {
    /// Replays `path` from the scenario's initial state, rendering each
    /// step and collecting the fault ledger.
    pub(crate) fn build(scenario: &Scenario, path: &[Transition], violation: Violation) -> Self {
        let mut world = World::new(scenario);
        let mut steps = Vec::with_capacity(path.len());
        for &t in path {
            steps.push(world.describe(t));
            let _ = world.apply(t);
        }
        Counterexample {
            scenario: scenario.name,
            violation,
            transitions: path.to_vec(),
            steps,
            faults: world.faults_spent.clone(),
        }
    }

    /// Converts the fault ledger into deterministic per-endpoint
    /// [`FaultScript`]s. Frame indices count *fresh armed frames* at
    /// the receiving endpoint, exactly as
    /// [`oaf_chaos::transport::ChaosTransport::wrap_scripted`] counts
    /// them — so a replay harness must arm the chaos controls before
    /// the first modeled frame crosses the wire and keep the frame↔
    /// message correspondence (one model message = one fabric frame).
    ///
    /// Known gap: the model's reorder lets one message overtake any
    /// number of older ones, while the scripted transport's
    /// [`FaultKind::Reorder`] holds a frame back a fixed two polls.
    /// Single-overtake reorders (the common minimal counterexample)
    /// convert exactly; deeper ones replay as an approximation.
    pub fn to_fault_scripts(&self) -> FaultScripts {
        let mut scripts = FaultScripts {
            initiator: FaultScript::empty(),
            target: FaultScript::empty(),
        };
        for &(dir, seq, fault) in &self.faults {
            let script = match dir {
                Dir::I2T => &mut scripts.target,
                Dir::T2I => &mut scripts.initiator,
            };
            // One fault per frame index: the scripted transport fires
            // at most one action per fresh frame.
            if script.fault_at(seq).is_none() {
                script.faults.push(ScriptedFault { frame: seq, fault });
            }
        }
        scripts.initiator.faults.sort_by_key(|f| f.frame);
        scripts.target.faults.sort_by_key(|f| f.frame);
        scripts
    }
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "counterexample for scenario `{}` ({} steps):",
            self.scenario,
            self.steps.len()
        )?;
        for (i, step) in self.steps.iter().enumerate() {
            writeln!(f, "  {i:>3}. {step}")?;
        }
        writeln!(f, "  => violation: {}", self.violation)?;
        if self.faults.is_empty() {
            write!(f, "  (no faults spent — pure interleaving)")
        } else {
            write!(f, "  faults spent:")?;
            for &(dir, seq, fault) in &self.faults {
                write!(f, " {fault:?}@{dir}#{seq}")?;
            }
            Ok(())
        }
    }
}
