//! `oaf-mc` — a deterministic model checker for the fabric's recovery
//! protocol.
//!
//! The chaos soak ([`oaf-chaos`]) samples hostile schedules at random;
//! it found the PR 4 held-completion reordering bug only by luck of the
//! seed. This crate *enumerates* the schedules instead. The recovery
//! decision logic lives in [`oaf_nvmeof::recovery`] as a pure state
//! machine with time and I/O injected, used unchanged by the real
//! initiator/target reactors — so the checker drives the very code that
//! ships, not a parallel model that can drift.
//!
//! A [`model::World`] holds one [`InitiatorRecovery`] core, one
//! [`TargetRecovery`] core, a model block device (per-command applied
//! generations) and the two in-flight message queues. Transitions
//! deliver, drop, reorder, duplicate or corrupt queued messages (under a
//! per-kind fault budget), fire the initiator's next timer, and — when
//! the scenario runs the target's offloaded sync worker
//! ([`model::SyncMode::Offloaded`]) — drain the worker's parked barrier
//! completions, successfully or with an fsync error. The
//! [`explore::Explorer`] walks every interleaving with DFS or
//! iterative-deepening DFS (minimal counterexamples), pruning revisited
//! states by a canonical fingerprint and stopping at a bounded
//! depth/state budget.
//!
//! Invariants checked at every state ([`invariant::Violation`]):
//!
//! * a write-class command is never applied under two generations
//!   (double-apply);
//! * no logical command resolves twice;
//! * a success completion is never delivered before the data it vouches
//!   for (stale read);
//! * an acknowledged write is never lost (ok completion with nothing
//!   applied);
//! * an abort is never answered `applied` after it was answered
//!   not-applied for the same `(cid, gseq)`;
//! * no reachable state is stuck (some execution continues toward
//!   quiescence unless the peer is genuinely dead).
//!
//! A violation produces a [`trace::Counterexample`]: a minimal,
//! human-readable schedule that also converts into deterministic
//! [`oaf_chaos::FaultScript`]s, so every model-found bug becomes a
//! pinned, replayable chaos regression.
//!
//! [`oaf-chaos`]: oaf_chaos
//! [`InitiatorRecovery`]: oaf_nvmeof::recovery::InitiatorRecovery
//! [`TargetRecovery`]: oaf_nvmeof::recovery::TargetRecovery

#![warn(missing_docs)]

pub mod explore;
pub mod invariant;
pub mod model;
pub mod trace;

pub use explore::{Budget, Explorer, Outcome, Strategy};
pub use invariant::Violation;
pub use model::{CmdKind, FaultBudget, Scenario, SyncMode, World};
pub use trace::{Counterexample, FaultScripts};

use oaf_telemetry::{Counter, Gauge, Scope};

/// Checker observability: explored/pruned state counts and the deepest
/// schedule reached, reported through `oaf-telemetry` like every other
/// subsystem so CI sweeps are inspectable.
#[derive(Default)]
pub struct McMetrics {
    /// States expanded (invariants evaluated).
    pub explored: Counter,
    /// States skipped because their fingerprint was already visited.
    pub pruned: Counter,
    /// Invariant violations found.
    pub violations: Counter,
    /// Deepest schedule prefix reached (high-water mark).
    pub max_depth: Gauge,
}

impl McMetrics {
    /// Fresh, detached counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes the metric handles into a registry scope.
    pub fn register(&self, scope: &Scope) {
        scope.adopt_counter("explored_states", &self.explored);
        scope.adopt_counter("pruned_states", &self.pruned);
        scope.adopt_counter("violations", &self.violations);
        scope.adopt_gauge("max_depth", &self.max_depth);
    }

    /// Folds one exploration outcome into the counters.
    pub fn observe(&self, outcome: &Outcome) {
        self.explored.add(outcome.explored);
        self.pruned.add(outcome.pruned);
        if outcome.violation.is_some() {
            self.violations.inc();
        }
        self.max_depth.observe_max(i64::from(outcome.max_depth));
    }
}
