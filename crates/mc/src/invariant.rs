//! Invariant predicates evaluated at every explored state.

use std::fmt;

/// A safety property the recovery protocol broke on some schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A write-class logical command was applied under two distinct
    /// generations — the original *and* a resubmission both landed. The
    /// abort round-trip exists precisely to make this impossible.
    DoubleApply {
        /// Logical command slot.
        slot: usize,
        /// The distinct generations that applied.
        gens: Vec<u32>,
    },
    /// One logical command resolved (completed or timed out) twice.
    DoubleResolve {
        /// Logical command slot.
        slot: usize,
    },
    /// A success completion was delivered before the data it vouches
    /// for had fully arrived — the caller would read a stale buffer.
    StaleRead {
        /// Logical command slot.
        slot: usize,
        /// Contiguous payload bytes that had actually arrived.
        got: u32,
        /// Bytes the transfer owes before completing.
        need: u32,
    },
    /// A write completed `ok` at the initiator but nothing was ever
    /// applied at the target (acknowledged-then-lost).
    AckedLostWrite {
        /// Logical command slot.
        slot: usize,
    },
    /// The target answered an Abort `applied = true` for a `(cid, gseq)`
    /// it had previously answered `applied = false` — the initiator has
    /// already resubmitted, so both attempts landed.
    AbortAppliedAfterNotApplied {
        /// Wire cid of the aborted attempt.
        cid: u16,
        /// Generation of the aborted attempt.
        gseq: u32,
    },
    /// A frame arrived that the protocol cannot account for (not even
    /// as a stale duplicate) — the shells would surface a protocol
    /// error and tear the connection down.
    UnexpectedFrame {
        /// Human-readable description of the frame and why.
        what: String,
    },
    /// No transition is enabled, the peer is alive, and at least one
    /// command can never resolve: the protocol deadlocked.
    Stuck,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::DoubleApply { slot, gens } => {
                write!(
                    f,
                    "double-apply: command #{slot} applied under generations {gens:?}"
                )
            }
            Violation::DoubleResolve { slot } => {
                write!(f, "double-resolve: command #{slot} resolved twice")
            }
            Violation::StaleRead { slot, got, need } => write!(
                f,
                "stale read: command #{slot} completed ok with {got}/{need} payload bytes arrived"
            ),
            Violation::AckedLostWrite { slot } => write!(
                f,
                "acknowledged-then-lost: write #{slot} completed ok but never applied"
            ),
            Violation::AbortAppliedAfterNotApplied { cid, gseq } => write!(
                f,
                "abort answered applied=true after applied=false for cid {cid} gseq {gseq}"
            ),
            Violation::UnexpectedFrame { what } => write!(f, "unexpected frame: {what}"),
            Violation::Stuck => write!(f, "stuck: no transition enabled yet commands unresolved"),
        }
    }
}
