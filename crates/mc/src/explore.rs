//! Schedule exploration: depth-first enumeration of every enabled
//! transition with visited-state pruning, plus an iterative-deepening
//! mode that finds *minimal* counterexamples.

use std::collections::HashMap;

use crate::model::{Scenario, Transition, World};
use crate::trace::Counterexample;

/// Hard limits on one exploration. The checker is exhaustive *within*
/// the budget; hitting a limit is reported, never silent.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Maximum states to expand before giving up.
    pub max_states: u64,
    /// Maximum schedule length to explore.
    pub max_depth: u32,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_states: 2_000_000,
            max_depth: 64,
        }
    }
}

/// How the schedule tree is walked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Plain depth-first search to `max_depth`. Fastest way to sweep
    /// the whole space when no violation is expected.
    Dfs,
    /// Depth-limited DFS at increasing limits. The first violation
    /// found is therefore a *shortest* schedule — the minimal
    /// counterexample the trace converter wants.
    IterativeDeepening,
}

/// What an exploration found.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// States expanded (invariants evaluated on each).
    pub explored: u64,
    /// Expansions skipped because an equivalent state was already
    /// visited at the same or shallower depth.
    pub pruned: u64,
    /// Deepest schedule prefix reached.
    pub max_depth: u32,
    /// Whether a budget limit stopped the sweep before it was
    /// exhaustive.
    pub truncated: bool,
    /// The first invariant violation, as a replayable counterexample.
    pub violation: Option<Counterexample>,
}

/// Walks every schedule of a [`Scenario`] within a [`Budget`].
pub struct Explorer {
    scenario: Scenario,
    budget: Budget,
    strategy: Strategy,
}

struct Search {
    budget: Budget,
    depth_limit: u32,
    /// Fingerprint → shallowest depth at which the state was expanded.
    /// A revisit at a *shallower* depth re-expands: with a depth limit
    /// in force, the shallower visit can reach successors the deeper
    /// one could not, and minimality depends on it.
    visited: HashMap<u64, u32>,
    explored: u64,
    pruned: u64,
    max_depth: u32,
    truncated: bool,
    path: Vec<Transition>,
    violation: Option<Counterexample>,
}

impl Explorer {
    /// An explorer with the default budget and plain DFS.
    pub fn new(scenario: Scenario) -> Self {
        Explorer {
            scenario,
            budget: Budget::default(),
            strategy: Strategy::Dfs,
        }
    }

    /// Overrides the exploration budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Overrides the walk strategy.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Runs the exploration to completion (or budget exhaustion).
    pub fn run(&self) -> Outcome {
        let mut total_explored = 0;
        let mut total_pruned = 0;
        let mut max_depth = 0;
        let mut truncated = false;
        let limits: Vec<u32> = match self.strategy {
            Strategy::Dfs => vec![self.budget.max_depth],
            Strategy::IterativeDeepening => (1..=self.budget.max_depth).collect(),
        };
        for limit in limits {
            let mut s = Search {
                budget: self.budget,
                depth_limit: limit,
                visited: HashMap::new(),
                explored: 0,
                pruned: 0,
                max_depth: 0,
                truncated: false,
                path: Vec::new(),
                violation: None,
            };
            let mut root = World::new(&self.scenario);
            s.visited.insert(root.fingerprint(), 0);
            s.dfs(&mut root, 0, &self.scenario);
            total_explored += s.explored;
            total_pruned += s.pruned;
            max_depth = max_depth.max(s.max_depth);
            truncated |= s.truncated;
            if s.violation.is_some() {
                return Outcome {
                    explored: total_explored,
                    pruned: total_pruned,
                    max_depth,
                    truncated,
                    violation: s.violation,
                };
            }
            // Iterative deepening converges once a limit goes unused:
            // deeper limits can only re-walk the same closed space.
            if self.strategy == Strategy::IterativeDeepening && s.max_depth < limit {
                break;
            }
        }
        Outcome {
            explored: total_explored,
            pruned: total_pruned,
            max_depth,
            truncated,
            violation: None,
        }
    }
}

impl Search {
    fn dfs(&mut self, world: &mut World, depth: u32, scenario: &Scenario) {
        if self.violation.is_some() || self.truncated {
            return;
        }
        self.explored += 1;
        self.max_depth = self.max_depth.max(depth);
        if self.explored >= self.budget.max_states {
            self.truncated = true;
            return;
        }
        let transitions = world.transitions();
        if transitions.is_empty() {
            if let Some(v) = world.stuck() {
                self.violation = Some(Counterexample::build(scenario, &self.path, v));
            }
            return;
        }
        if depth >= self.depth_limit {
            // A cut-off frontier means this limit was not exhaustive;
            // only plain DFS treats that as truncation (iterative
            // deepening will come back with a larger limit).
            if self.depth_limit == self.budget.max_depth {
                self.truncated = true;
            }
            return;
        }
        for t in transitions {
            let mut next = world.clone();
            let violation = next.apply(t);
            self.path.push(t);
            if let Some(v) = violation {
                self.violation = Some(Counterexample::build(scenario, &self.path, v));
                self.path.pop();
                return;
            }
            let fp = next.fingerprint();
            let next_depth = depth + 1;
            match self.visited.get(&fp) {
                Some(&seen) if seen <= next_depth => self.pruned += 1,
                _ => {
                    self.visited.insert(fp, next_depth);
                    self.dfs(&mut next, next_depth, scenario);
                }
            }
            self.path.pop();
            if self.violation.is_some() || self.truncated {
                return;
            }
        }
    }
}
