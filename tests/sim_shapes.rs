//! Integration: cross-fabric shape invariants of the simulation models —
//! the orderings every figure depends on, checked at low cost.

use nvme_oaf::oaf::sim::{run_uniform, FabricKind, Pattern, ShmVariant, WorkloadSpec};
use nvme_oaf::simnet::time::SimDuration;
use nvme_oaf::simnet::units::KIB;

fn wl(io: u64, reads: f64) -> WorkloadSpec {
    // Debug builds simulate much slower; shorten the virtual run to keep
    // plain `cargo test` usable (assertions carry wide margins).
    let ms = if cfg!(debug_assertions) { 40 } else { 150 };
    WorkloadSpec::new(io, reads).with_duration(SimDuration::from_millis(ms))
}

const OAF: FabricKind = FabricKind::Shm {
    variant: ShmVariant::ZeroCopy,
};

#[test]
fn read_bandwidth_ordering_matches_the_paper() {
    // oAF > RDMA > TCP-100G > TCP-25G > TCP-10G for 128K x 4 streams.
    let f = |fabric| run_uniform(fabric, 4, wl(128 * KIB, 1.0)).bandwidth_mib();
    let oaf = f(OAF);
    let rdma = f(FabricKind::RdmaIb);
    let t100 = f(FabricKind::TcpStock { gbps: 100.0 });
    let t25 = f(FabricKind::TcpStock { gbps: 25.0 });
    let t10 = f(FabricKind::TcpStock { gbps: 10.0 });
    assert!(
        oaf > rdma && rdma > t100 && t100 > t25 && t25 > t10,
        "ordering violated: oaf {oaf:.0} rdma {rdma:.0} t100 {t100:.0} t25 {t25:.0} t10 {t10:.0}"
    );
}

#[test]
fn shm_ablation_ladder_is_monotonic_in_bandwidth() {
    let f = |v| run_uniform(FabricKind::Shm { variant: v }, 1, wl(512 * KIB, 1.0)).bandwidth_mib();
    let baseline = f(ShmVariant::Baseline);
    let lock_free = f(ShmVariant::LockFree);
    let flow = f(ShmVariant::FlowCtl);
    let zero = f(ShmVariant::ZeroCopy);
    assert!(lock_free >= baseline * 0.9, "{lock_free} vs {baseline}");
    assert!(flow > lock_free * 1.3, "{flow} vs {lock_free}");
    assert!(zero >= flow * 0.95, "{zero} vs {flow}");
}

#[test]
fn adaptive_fabric_matches_its_resolved_channel() {
    let local = run_uniform(
        FabricKind::Adaptive {
            local: true,
            tcp_gbps: 25.0,
        },
        1,
        wl(128 * KIB, 1.0),
    )
    .bandwidth_mib();
    let shm = run_uniform(OAF, 1, wl(128 * KIB, 1.0)).bandwidth_mib();
    assert!((local / shm - 1.0).abs() < 1e-9, "local {local} shm {shm}");

    let remote = run_uniform(
        FabricKind::Adaptive {
            local: false,
            tcp_gbps: 25.0,
        },
        1,
        wl(128 * KIB, 1.0),
    )
    .bandwidth_mib();
    assert!(remote < local, "remote {remote} local {local}");
}

#[test]
fn random_pattern_only_penalizes_real_media() {
    // Emulated (RAM-backed) SSDs: random ~ sequential. Real media: slower.
    let seq = run_uniform(OAF, 1, wl(128 * KIB, 1.0)).bandwidth_mib();
    let rnd = run_uniform(OAF, 1, wl(128 * KIB, 1.0).with_pattern(Pattern::Random)).bandwidth_mib();
    assert!((rnd / seq - 1.0).abs() < 0.05, "seq {seq} rnd {rnd}");

    let seq = run_uniform(FabricKind::Roce, 1, wl(128 * KIB, 1.0)).bandwidth_mib();
    let rnd = run_uniform(
        FabricKind::Roce,
        1,
        wl(128 * KIB, 1.0).with_pattern(Pattern::Random),
    )
    .bandwidth_mib();
    assert!(
        rnd < seq,
        "random must be slower on real media: {rnd} vs {seq}"
    );
}

#[test]
fn tails_exceed_medians_everywhere() {
    for fabric in [FabricKind::TcpStock { gbps: 25.0 }, FabricKind::RdmaIb, OAF] {
        let m = run_uniform(fabric, 1, wl(128 * KIB, 0.7));
        let p = m.percentiles().expect("samples");
        assert!(p.p9999 >= p.p99 && p.p99 >= p.p50, "{fabric:?}");
        assert!(p.p9999 > p.p50, "{fabric:?} has no tail at all");
    }
}

#[test]
fn more_streams_never_reduce_aggregate_bandwidth() {
    for fabric in [FabricKind::TcpStock { gbps: 25.0 }, OAF] {
        let one = run_uniform(fabric, 1, wl(128 * KIB, 1.0)).bandwidth_mib();
        let four = run_uniform(fabric, 4, wl(128 * KIB, 1.0)).bandwidth_mib();
        assert!(
            four >= one * 0.95,
            "{fabric:?}: 1-stream {one} 4-stream {four}"
        );
    }
}
