//! End-to-end durability: an [`AfClient`] on real kernel sockets
//! (remote placement → NVMe/TCP loopback) driving a file-backed,
//! journaled namespace. The acceptance path for the durable store:
//! Write, Write+FUA, Flush and Dataset Management (TRIM) all cross the
//! wire as NVMe commands, land in the intent log, and survive tearing
//! the whole runtime down and reopening the backing file cold.
//!
//! [`AfClient`]: nvme_oaf::oaf::runtime::AfClient

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use nvme_oaf::nvmeof::nvme::controller::Controller;
use nvme_oaf::nvmeof::nvme::namespace::Namespace;
use nvme_oaf::oaf::conn::FabricSettings;
use nvme_oaf::oaf::endpoint::ChannelKind;
use nvme_oaf::oaf::locality::{HostRegistry, ProcessId};
use nvme_oaf::oaf::runtime::{launch, AfPair};
use nvme_oaf::ssd::BlockStore;
use nvme_oaf::store::FileDisk;

const TIMEOUT: Duration = Duration::from_secs(10);
const BS: usize = 4096;
const BLOCKS: u64 = 256;

/// A unique temp path per test; best-effort removed by [`TempPath`]'s
/// drop so reruns start clean even after a failure.
struct TempPath(PathBuf);

impl TempPath {
    fn new(tag: &str) -> TempPath {
        let mut p = std::env::temp_dir();
        p.push(format!("oaf-durable-{tag}-{}.img", std::process::id()));
        let _ = std::fs::remove_file(&p);
        TempPath(p)
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn launch_remote_file_backed(path: &PathBuf) -> AfPair {
    let disk = FileDisk::create(path, BS as u32, BLOCKS).expect("format backing file");
    let mut controller = Controller::new();
    controller.add_namespace(Namespace::with_file(1, disk));
    let registry = Arc::new(HostRegistry::new());
    // Different host ids: the fabric selects the real-socket NVMe/TCP
    // path, not shared memory.
    launch(
        &registry,
        (ProcessId(1), 20),
        (ProcessId(2), 21),
        controller,
        FabricSettings::default(),
    )
    .expect("fabric establishment")
}

fn pattern(lba: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|k| ((lba * 167 + k as u64 * 13) % 251) as u8)
        .collect()
}

#[test]
fn trim_flush_fua_roundtrip_over_real_sockets_survives_reopen() {
    let path = TempPath::new("e2e");
    let mut p = launch_remote_file_backed(&path.0);
    assert!(!p.client.shm_active());
    assert_eq!(p.client.endpoint().channel(), ChannelKind::Tcp);

    // Plain writes across a few extents.
    for (lba, nlb) in [(0u64, 4u32), (16, 8), (100, 2)] {
        let len = nlb as usize * BS;
        let mut buf = p.client.alloc(len).expect("alloc");
        buf.copy_from_slice(&pattern(lba, len));
        p.client.write(1, lba, nlb, buf, TIMEOUT).expect("write");
    }
    // A FUA write: durable the moment it completes.
    let mut buf = p.client.alloc(BS).expect("alloc");
    buf.copy_from_slice(&pattern(200, BS));
    p.client.write_fua(1, 200, 1, buf, TIMEOUT).expect("fua");
    // TRIM the middle extent, then a barrier over everything else.
    p.client.trim(1, 16, 8, TIMEOUT).expect("trim");
    p.client.flush(1, TIMEOUT).expect("flush");

    // Read back through the fabric: trimmed range zero, the rest intact.
    let back = p.client.read(1, 16, 8, 8 * BS, TIMEOUT).expect("read trim");
    assert!(back.iter().all(|&b| b == 0), "trimmed range must read zero");
    for (lba, nlb) in [(0u64, 4u32), (100, 2), (200, 1)] {
        let len = nlb as usize * BS;
        let back = p.client.read(1, lba, nlb, len, TIMEOUT).expect("read");
        assert_eq!(back, pattern(lba, len), "lba {lba}");
    }

    // The journal saw the traffic, via the runtime-registered scope.
    let snap = p.telemetry.snapshot();
    assert!(snap.counter("store_ns1", "log_appends") >= 6);
    assert_eq!(snap.counter("store_ns1", "trims"), 1);
    assert!(
        snap.counter("store_ns1", "fsyncs") >= 2,
        "FUA and Flush must both hit the sync barrier"
    );
    assert_eq!(snap.counter("store_ns1", "torn_records"), 0);

    p.client.disconnect().expect("disconnect");
    p.target.shutdown().expect("shutdown");

    // Cold reopen of the backing file: recovery replays the journal and
    // every acknowledged write is still there, the TRIM still holds.
    let reopened = FileDisk::open(&path.0).expect("reopen");
    let mut out = vec![0u8; 8 * BS];
    reopened.read(16, 8, &mut out).expect("read");
    assert!(out.iter().all(|&b| b == 0), "TRIM must survive reopen");
    for (lba, nlb) in [(0u64, 4u32), (100, 2), (200, 1)] {
        let len = nlb as usize * BS;
        let mut out = vec![0u8; len];
        reopened.read(lba, nlb, &mut out).expect("read");
        assert_eq!(out, pattern(lba, len), "lba {lba} lost across reopen");
    }
    assert!(
        reopened.metrics().replay_ops.get() >= 5,
        "recovery must replay the journaled ops"
    );
}

#[test]
fn restart_target_on_same_file_serves_previous_writes() {
    let path = TempPath::new("restart");

    // First life: write and flush, then tear everything down.
    {
        let mut p = launch_remote_file_backed(&path.0);
        let mut buf = p.client.alloc(2 * BS).expect("alloc");
        buf.copy_from_slice(&pattern(40, 2 * BS));
        p.client.write(1, 40, 2, buf, TIMEOUT).expect("write");
        p.client.flush(1, TIMEOUT).expect("flush");
        p.client.disconnect().expect("disconnect");
        p.target.shutdown().expect("shutdown");
    }

    // Second life: a fresh fabric over the *same* file (open, not
    // create) serves the first life's data through the wire.
    let disk = FileDisk::open(&path.0).expect("reopen backing file");
    let mut controller = Controller::new();
    controller.add_namespace(Namespace::with_file(1, disk));
    let registry = Arc::new(HostRegistry::new());
    let mut p = launch(
        &registry,
        (ProcessId(3), 30),
        (ProcessId(4), 31),
        controller,
        FabricSettings::default(),
    )
    .expect("second fabric");
    let back = p.client.read(1, 40, 2, 2 * BS, TIMEOUT).expect("read");
    assert_eq!(back, pattern(40, 2 * BS));
    p.client.disconnect().expect("disconnect");
    p.target.shutdown().expect("shutdown");
}
