//! The tentpole's headline number, pinned as a test: at QD≥8 mixed
//! read+FUA on a slow-sync device, offloading `fdatasync` to the store's
//! sync worker improves read p99 by **at least 5×** over the inline
//! dispatch path.
//!
//! The harness models one reactor thread the way the target runs it: a
//! FUA write is dispatched, then a queue-depth of reads that arrived
//! concurrently with it (same arrival instant) is served. Inline, the
//! dispatch blocks ~`SYNC_DELAY` in the sync before the first read is
//! answered, so every read's latency eats the fsync. Offloaded, the FUA
//! completion parks on a [`BarrierTicket`] and the reads are served
//! immediately; the barrier is drained (polled to `Durable`) before the
//! next round, so both modes retire identical durable work.
//!
//! [`BarrierTicket`]: nvme_oaf::nvmeof::nvme::namespace::BarrierTicket

use std::time::{Duration, Instant};

use nvme_oaf::nvmeof::nvme::command::NvmeCommand;
use nvme_oaf::nvmeof::nvme::controller::Controller;
use nvme_oaf::nvmeof::nvme::namespace::{BarrierPoll, Namespace};
use nvme_oaf::store::vfs::SharedMemVfs;
use nvme_oaf::store::FileDisk;

const BS: usize = 512;
const BLOCKS: u64 = 64;
const QD: usize = 8;
const ROUNDS: usize = 100;
/// A pessimistic-but-realistic device barrier: a few milliseconds, ~2
/// orders of magnitude above an in-memory read.
const SYNC_DELAY: Duration = Duration::from_millis(5);

fn controller(offloaded: bool) -> (SharedMemVfs, Controller) {
    let vfs = SharedMemVfs::new();
    vfs.set_sync_delay(SYNC_DELAY);
    let disk = FileDisk::create_on(Box::new(vfs.clone()), BS as u32, BLOCKS, 256 * 1024)
        .expect("format disk");
    let disk = if offloaded {
        disk.into_shared().with_sync_worker(Box::new(vfs.clone()))
    } else {
        disk.into_shared()
    };
    let mut ctrl = Controller::new();
    ctrl.add_namespace(Namespace::with_shared_file(1, disk));
    (vfs, ctrl)
}

/// Runs the mixed QD workload and returns every read's latency, where a
/// read's clock starts at the instant its round's FUA write was
/// dispatched — the reads were queued *behind* it at the reactor.
fn read_latencies(ctrl: &mut Controller) -> Vec<Duration> {
    let payload = vec![0xd7u8; BS];
    let mut out = vec![0u8; BS];
    let mut lat = Vec::with_capacity(ROUNDS * QD);
    // Seed the blocks the reads target.
    for lba in 0..QD as u64 {
        let (c, _) = ctrl.execute(&NvmeCommand::write(1, 1, lba, 1), Some(&payload));
        assert!(c.status.is_ok());
    }
    for round in 0..ROUNDS {
        let t0 = Instant::now();
        let (comp, _, ticket) = ctrl.execute_async(
            &NvmeCommand::write_fua(2, 1, (QD as u64) + (round as u64 % 8), 1),
            Some(&payload),
        );
        assert!(comp.status.is_ok());
        for q in 0..QD {
            let c = ctrl.read_into(&NvmeCommand::read(3, 1, q as u64, 1), &mut out);
            assert!(c.status.is_ok());
            lat.push(t0.elapsed());
        }
        // Drain the barrier before the next round so both modes carry
        // the same durable obligation per round.
        if let Some(t) = ticket {
            let deadline = Instant::now() + Duration::from_secs(5);
            loop {
                match ctrl.poll_barrier(1, t) {
                    BarrierPoll::Durable => break,
                    BarrierPoll::Failed => panic!("sync worker failed"),
                    BarrierPoll::Pending => {
                        assert!(Instant::now() < deadline, "barrier never drained");
                        std::thread::yield_now();
                    }
                }
            }
        }
    }
    lat
}

fn p99(lat: &mut [Duration]) -> Duration {
    lat.sort_unstable();
    lat[(lat.len() * 99).div_ceil(100) - 1]
}

#[test]
fn offloaded_sync_improves_read_p99_at_least_5x() {
    let (_vfs_i, mut inline_ctrl) = controller(false);
    let mut inline_lat = read_latencies(&mut inline_ctrl);

    let (_vfs_o, mut off_ctrl) = controller(true);
    let mut off_lat = read_latencies(&mut off_ctrl);

    let inline_p99 = p99(&mut inline_lat);
    let off_p99 = p99(&mut off_lat);
    eprintln!(
        "mixed read+FUA QD{QD} over a {SYNC_DELAY:?} sync: read p99 inline={inline_p99:?} \
         offloaded={off_p99:?} ({:.1}x)",
        inline_p99.as_secs_f64() / off_p99.as_secs_f64().max(f64::EPSILON)
    );

    // Inline dispatch cannot answer a queued read before the fsync it
    // is stuck in returns: its p99 is bounded below by the device
    // barrier itself.
    assert!(
        inline_p99 >= SYNC_DELAY,
        "inline read p99 {inline_p99:?} beat the sync delay — harness broken"
    );
    // The headline: ≥5× better read tail with the sync offloaded.
    assert!(
        off_p99 * 5 <= inline_p99,
        "offloaded read p99 {off_p99:?} is not ≥5x better than inline {inline_p99:?}"
    );
}
