//! Property-based tests over core data structures and protocol codecs.

use bytes::Bytes;
use nvme_oaf::nvmeof::nvme::command::NvmeCommand;
use nvme_oaf::nvmeof::nvme::completion::{NvmeCompletion, Status};
use nvme_oaf::nvmeof::pdu::{CapsuleCmd, CapsuleResp, DataPdu, DataRef, ICReq, ICResp, Pdu, R2T};
use nvme_oaf::shmem::channel::Side;
use nvme_oaf::shmem::ShmChannel;
use nvme_oaf::simnet::calendar::CalendarServer;
use nvme_oaf::simnet::stats::LatencyHistogram;
use nvme_oaf::simnet::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn arb_command() -> impl Strategy<Value = NvmeCommand> {
    (any::<u16>(), any::<u32>(), any::<u64>(), 1u32..1 << 20).prop_flat_map(
        |(cid, nsid, slba, nlb)| {
            prop_oneof![
                Just(NvmeCommand::read(cid, nsid, slba, nlb)),
                Just(NvmeCommand::write(cid, nsid, slba, nlb)),
                Just(NvmeCommand::flush(cid, nsid)),
            ]
        },
    )
}

fn arb_dataref() -> impl Strategy<Value = DataRef> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..4096)
            .prop_map(|v| DataRef::Inline(Bytes::from(v))),
        (any::<u32>(), any::<u32>()).prop_map(|(slot, len)| DataRef::ShmSlot { slot, len }),
    ]
}

fn arb_pdu() -> impl Strategy<Value = Pdu> {
    prop_oneof![
        (any::<u16>(), any::<u32>(), any::<u32>(), any::<u64>()).prop_map(
            |(pfv, maxr2t, af_caps, host_id)| Pdu::ICReq(ICReq {
                pfv,
                maxr2t,
                af_caps,
                host_id
            })
        ),
        (any::<u16>(), any::<u32>(), any::<u32>(), any::<u64>()).prop_map(
            |(pfv, ioccsz, af_caps, target_id)| Pdu::ICResp(ICResp {
                pfv,
                ioccsz,
                af_caps,
                target_id
            })
        ),
        (arb_command(), proptest::option::of(arb_dataref()))
            .prop_map(|(cmd, data)| Pdu::CapsuleCmd(CapsuleCmd { cmd, data })),
        (
            any::<u16>(),
            prop_oneof![Just(Status::Success), Just(Status::LbaOutOfRange)]
        )
            .prop_map(|(cid, status)| Pdu::CapsuleResp(CapsuleResp {
                completion: NvmeCompletion { cid, status }
            })),
        (any::<u16>(), any::<u16>(), any::<u32>(), any::<u32>()).prop_map(
            |(cid, ttag, offset, len)| Pdu::R2T(R2T {
                cid,
                ttag,
                offset,
                len
            })
        ),
        (
            any::<u16>(),
            any::<u16>(),
            any::<u32>(),
            any::<bool>(),
            arb_dataref()
        )
            .prop_map(|(cid, ttag, offset, last, data)| Pdu::H2CData(DataPdu {
                cid,
                ttag,
                offset,
                last,
                data
            })),
        (
            any::<u16>(),
            any::<u16>(),
            any::<u32>(),
            any::<bool>(),
            arb_dataref()
        )
            .prop_map(|(cid, ttag, offset, last, data)| Pdu::C2HData(DataPdu {
                cid,
                ttag,
                offset,
                last,
                data
            })),
    ]
}

proptest! {
    /// Every PDU survives an encode/decode roundtrip byte-exactly.
    #[test]
    fn pdu_codec_roundtrips(pdu in arb_pdu()) {
        let frame = pdu.encode();
        let back = Pdu::decode(frame).expect("decode");
        prop_assert_eq!(back, pdu);
    }

    /// Truncating a frame anywhere must produce an error, never a panic
    /// or a silently wrong PDU.
    #[test]
    fn truncated_pdus_error_cleanly(pdu in arb_pdu(), cut_frac in 0.0f64..1.0) {
        let frame = pdu.encode();
        let cut = ((frame.len() as f64) * cut_frac) as usize;
        if cut < frame.len() {
            prop_assert!(Pdu::decode(frame.slice(0..cut)).is_err());
        }
    }

    /// Random payloads round-trip through the lock-free channel without
    /// corruption, across both directions.
    #[test]
    fn shm_channel_roundtrips(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..2048), 1..24)
    ) {
        let ch = ShmChannel::allocate(4, 2048);
        let client = ch.endpoint(Side::Client);
        let target = ch.endpoint(Side::Target);
        for (i, p) in payloads.iter().enumerate() {
            let (tx, rx): (&_, &_) = if i % 2 == 0 {
                (&client, &target)
            } else {
                (&target, &client)
            };
            let (slot, len) = tx.send(p).expect("send");
            let guard = rx.recv(slot, len).expect("recv");
            prop_assert_eq!(guard.as_slice(), &p[..]);
        }
    }

    /// The calendar server never overlaps jobs, never starts before the
    /// arrival, and conserves total busy time.
    #[test]
    fn calendar_server_invariants(
        jobs in proptest::collection::vec((0u64..100_000, 1u64..5_000), 1..120)
    ) {
        let mut cal = CalendarServer::new();
        let mut placed: Vec<(u64, u64)> = Vec::new();
        let mut total = 0u64;
        for &(at, dur) in &jobs {
            let (start, done) = cal.submit(
                SimTime::from_micros(at),
                SimDuration::from_micros(dur),
            );
            prop_assert!(start >= SimTime::from_micros(at));
            prop_assert_eq!(done - start, SimDuration::from_micros(dur));
            placed.push((start.as_nanos(), done.as_nanos()));
            total += dur;
        }
        placed.sort();
        for w in placed.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "jobs overlap: {w:?}");
        }
        prop_assert_eq!(cal.busy_time(), SimDuration::from_micros(total));
    }

    /// Histogram quantiles are monotone and bounded by min/max.
    #[test]
    fn histogram_quantiles_are_sane(values in proptest::collection::vec(1u64..u32::MAX as u64, 1..400)) {
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let qs: Vec<u64> = [0.01, 0.25, 0.5, 0.75, 0.99, 1.0]
            .iter()
            .map(|&q| h.value_at_quantile(q).expect("non-empty"))
            .collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles not monotone: {qs:?}");
        }
        let max = *values.iter().max().expect("non-empty");
        prop_assert!(qs[5] <= max);
        // Bucketized values may round up, but never past ~4% relative error.
        let min = *values.iter().min().expect("non-empty");
        prop_assert!((qs[0] as f64) >= min as f64 * 0.95);
    }

    /// Trace coalescing preserves total bytes and never reorders kinds
    /// within a merged run.
    #[test]
    fn coalescing_conserves_bytes(
        lens in proptest::collection::vec(1u64..100_000, 1..60),
        batch in 1u64..1_000_000,
    ) {
        use nvme_oaf::h5::{IoKind, IoRecord, IoTrace};
        let mut t = IoTrace::new();
        let mut off = 0;
        for (i, &len) in lens.iter().enumerate() {
            t.push(IoRecord {
                kind: if i % 3 == 0 { IoKind::Read } else { IoKind::Write },
                offset: off,
                len,
                depth: 1,
            });
            // Half the records are adjacent, half leave gaps.
            off += len + if i % 2 == 0 { 0 } else { 64 };
        }
        let c = t.coalesce(batch, 32);
        prop_assert_eq!(c.total_bytes(), t.total_bytes());
        prop_assert!(c.len() <= t.len());
        for r in c.records() {
            prop_assert!(r.len <= batch.max(*lens.iter().max().expect("non-empty")));
            prop_assert_eq!(r.depth, 32);
        }
    }
}
