//! End-to-end telemetry consistency: real traffic through the threaded
//! runtime must leave the registry with numbers that agree across every
//! layer — frames sent on one side equal frames received on the other,
//! initiator submissions equal completions, target ops equal responses,
//! and the exported Prometheus/JSON forms round-trip losslessly.

use std::sync::Arc;
use std::time::Duration;

use nvme_oaf::nvmeof::nvme::controller::Controller;
use nvme_oaf::nvmeof::nvme::namespace::Namespace;
use nvme_oaf::oaf::conn::{ControlPath, FabricSettings};
use nvme_oaf::oaf::locality::{HostRegistry, ProcessId};
use nvme_oaf::oaf::runtime::{launch, launch_many, AfPair};
use oaf_telemetry::export;

const TIMEOUT: Duration = Duration::from_secs(10);

fn controller(blocks: u64) -> Controller {
    let mut c = Controller::new();
    c.add_namespace(Namespace::new(1, 4096, blocks));
    c
}

fn pair(local: bool) -> AfPair {
    let registry = Arc::new(HostRegistry::new());
    launch(
        &registry,
        (ProcessId(1), 1),
        (ProcessId(2), if local { 1 } else { 2 }),
        controller(4096),
        FabricSettings {
            // Ask for in-region control so a co-located pair exercises
            // the shared-memory ring; a remote pair falls back to TCP.
            control: ControlPath::InRegion,
            ..FabricSettings::default()
        },
    )
    .expect("fabric establishment")
}

#[test]
fn local_traffic_produces_consistent_counters_at_every_layer() {
    let mut p = pair(true);
    assert!(p.client.shm_active());

    const WRITES: u64 = 16;
    const READS: u64 = 16;
    let len = 4096;
    for lba in 0..WRITES {
        let mut buf = p.client.alloc(len).expect("alloc");
        buf.copy_from_slice(&vec![lba as u8; len]);
        p.client.write(1, lba, 1, buf, TIMEOUT).expect("write");
    }
    for lba in 0..READS {
        let back = p.client.read(1, lba, 1, len, TIMEOUT).expect("read");
        assert_eq!(back[0], lba as u8);
    }

    let snap = p.telemetry.snapshot();

    // Initiator accounting: everything submitted completed, no errors,
    // nothing left in flight, and the per-opcode latency histograms saw
    // exactly the synchronous ops we issued.
    let submitted = snap.counter("client", "submitted");
    assert_eq!(submitted, snap.counter("client", "completions"));
    assert_eq!(snap.counter("client", "errors"), 0);
    assert_eq!(snap.gauge("client", "inflight").map(|(v, _)| v), Some(0));
    assert_eq!(
        snap.histo("client", "lat_write_ns").map(|h| h.count),
        Some(WRITES)
    );
    assert_eq!(
        snap.histo("client", "lat_read_ns").map(|h| h.count),
        Some(READS)
    );

    // Target accounting: every op answered.
    let ops = snap.counter("target", "ops");
    assert_eq!(ops, snap.counter("target", "responses"));
    assert!(ops >= WRITES + READS);

    // Transport symmetry: the control rings carry each frame exactly
    // once, so what one endpoint sent the other received, in frames and
    // in bytes.
    for (tx, rx) in [
        ("transport_client", "transport_target"),
        ("transport_target", "transport_client"),
    ] {
        assert_eq!(
            snap.counter(tx, "frames_sent"),
            snap.counter(rx, "frames_received"),
            "{tx} -> {rx} frame symmetry"
        );
        assert_eq!(
            snap.counter(tx, "bytes_sent"),
            snap.counter(rx, "bytes_received"),
            "{tx} -> {rx} byte symmetry"
        );
    }
    // And the submission count is visible as client->target traffic.
    assert!(snap.counter("transport_client", "frames_sent") >= submitted);

    // Fabric decision record: a co-located pair picked the local path
    // and the in-region control channel.
    assert_eq!(snap.counter("fabric", "locality_local"), 1);
    assert_eq!(snap.counter("fabric", "locality_remote"), 0);
    assert_eq!(snap.counter("fabric", "control_in_region"), 1);
    // The in-region ring's producer-side stats saw every client frame.
    assert_eq!(
        snap.counter("control_ring_client", "frames"),
        snap.counter("transport_client", "frames_sent")
    );

    // App-level stats (the ClientStats shim) feed the same registry.
    assert_eq!(snap.counter("app", "writes"), WRITES);
    assert_eq!(snap.counter("app", "reads"), READS);
    assert_eq!(snap.counter("app", "bytes_written"), WRITES * len as u64);

    p.client.disconnect().expect("disconnect");
    p.target.shutdown().expect("shutdown");
}

#[test]
fn remote_traffic_reports_through_the_same_registry() {
    let mut p = pair(false);
    assert!(!p.client.shm_active());

    let len = 8192;
    let mut buf = p.client.alloc(len).expect("alloc");
    buf.copy_from_slice(&vec![7u8; len]);
    p.client.write(1, 0, 2, buf, TIMEOUT).expect("write");
    let back = p.client.read(1, 0, 2, len, TIMEOUT).expect("read");
    assert_eq!(back.len(), len);

    let snap = p.telemetry.snapshot();
    assert_eq!(
        snap.counter("client", "submitted"),
        snap.counter("client", "completions")
    );
    assert_eq!(
        snap.counter("transport_client", "frames_sent"),
        snap.counter("transport_target", "frames_received")
    );
    // A cross-host pair records the remote decision and a TCP-class
    // control path (no in-region ring).
    assert_eq!(snap.counter("fabric", "locality_remote"), 1);
    assert_eq!(snap.counter("fabric", "control_tcp"), 1);
    assert_eq!(snap.counter("fabric", "control_in_region"), 0);

    p.client.disconnect().expect("disconnect");
    p.target.shutdown().expect("shutdown");
}

#[test]
fn live_snapshot_round_trips_through_both_export_formats() {
    let mut p = pair(true);
    let len = 4096;
    for lba in 0..8u64 {
        let mut buf = p.client.alloc(len).expect("alloc");
        buf.copy_from_slice(&vec![lba as u8; len]);
        p.client.write(1, lba, 1, buf, TIMEOUT).expect("write");
    }
    let _ = p.client.read(1, 0, 1, len, TIMEOUT).expect("read");

    let snap = p.telemetry.snapshot();
    // A registry fed by live multi-layer traffic — counters, gauges with
    // high-water marks, latency histograms — survives both wire formats
    // byte-for-byte in value space.
    let prom = export::prometheus_text(&snap);
    let back = export::from_prometheus_text(&prom).expect("prometheus parse");
    assert_eq!(back, snap);

    let js = export::json(&snap);
    let back = export::from_json(&js).expect("json parse");
    assert_eq!(back, snap);

    p.client.disconnect().expect("disconnect");
    p.target.shutdown().expect("shutdown");
}

#[test]
fn scaled_out_group_reports_per_connection_scopes() {
    let registry = Arc::new(HostRegistry::new());
    let clients = [(ProcessId(10), 1), (ProcessId(11), 1), (ProcessId(12), 1)];
    let mut group = launch_many(
        &registry,
        &clients,
        (ProcessId(2), 1),
        controller(4096),
        FabricSettings::default(),
    )
    .expect("group establishment");

    let len = 4096;
    for (i, client) in group.clients.iter_mut().enumerate() {
        for lba in 0..(i as u64 + 1) {
            let mut buf = client.alloc(len).expect("alloc");
            buf.copy_from_slice(&vec![0xA0 + i as u8; len]);
            client.write(1, lba, 1, buf, TIMEOUT).expect("write");
        }
    }

    let snap = group.telemetry.snapshot();
    for i in 0..group.clients.len() {
        let client_scope = format!("client{i}");
        let conn_scope = format!("target_conn{i}");
        let expected = i as u64 + 1;
        // Each client's submissions completed, and its dedicated target
        // connection answered them — per-connection attribution, not a
        // single blended pool.
        assert_eq!(
            snap.counter(&client_scope, "submitted"),
            snap.counter(&client_scope, "completions"),
            "{client_scope} drained"
        );
        assert_eq!(
            snap.histo(&client_scope, "lat_write_ns").map(|h| h.count),
            Some(expected),
            "{client_scope} write count"
        );
        assert_eq!(
            snap.counter(&conn_scope, "ops"),
            snap.counter(&conn_scope, "responses"),
            "{conn_scope} answered everything"
        );
        assert_eq!(snap.counter(&format!("app{i}"), "writes"), expected);
    }

    for mut c in group.clients.drain(..) {
        c.disconnect().expect("disconnect");
    }
    group.target.shutdown().expect("shutdown");
}
