//! Integration: locality awareness, hot-plug announcements, flow-control
//! accounting, and fabric settings propagation across crates.

use std::sync::Arc;

use nvme_oaf::nvmeof::nvme::controller::Controller;
use nvme_oaf::nvmeof::nvme::namespace::Namespace;
use nvme_oaf::nvmeof::FlowMode;
use nvme_oaf::oaf::conn::{ConnectionManager, FabricSettings};
use nvme_oaf::oaf::flow::{control_messages, messages_saved, DataChannel, OpKind};
use nvme_oaf::oaf::locality::{poll_locality, HostRegistry, ProcessId};

fn controller() -> Controller {
    let mut c = Controller::new();
    c.add_namespace(Namespace::new(1, 4096, 256));
    c
}

#[test]
fn helper_process_announcements_follow_hotplug_lifecycle() {
    let reg = HostRegistry::new();
    let c = ProcessId(1);
    let t = ProcessId(2);
    let cflag = reg.register(c, 5);
    let tflag = reg.register(t, 5);

    // Nothing announced before hot-plug.
    assert!(poll_locality(&cflag).is_none());
    assert!(poll_locality(&tflag).is_none());

    let hp = reg.hotplug(c, t, 8, 4096).expect("co-located");
    let a = poll_locality(&cflag).expect("announced to client");
    let b = poll_locality(&tflag).expect("announced to target");
    assert_eq!(a.region_id, hp.region_id);
    assert_eq!(a.region_id, b.region_id);
    assert_eq!(a.host_id, 5);

    // Unplug clears both pages.
    reg.unplug(c, t);
    assert!(poll_locality(&cflag).is_none());
    assert!(poll_locality(&tflag).is_none());
}

#[test]
fn establish_uses_hotplug_only_when_co_located() {
    for (host_c, host_t, expect_shm) in [(9, 9, true), (9, 10, false)] {
        let reg = Arc::new(HostRegistry::new());
        reg.register(ProcessId(1), host_c);
        reg.register(ProcessId(2), host_t);
        let cm = ConnectionManager::new(reg.clone());
        let fabric = cm
            .establish(
                ProcessId(1),
                ProcessId(2),
                controller(),
                &FabricSettings::default(),
            )
            .expect("establish");
        assert_eq!(fabric.initiator.shm_active(), expect_shm);
        assert_eq!(
            reg.channel_for(ProcessId(1), ProcessId(2)).is_some(),
            expect_shm,
            "hotplug record mismatch"
        );
        cm.teardown(ProcessId(1), ProcessId(2), fabric)
            .expect("teardown");
        assert!(reg.channel_for(ProcessId(1), ProcessId(2)).is_none());
    }
}

#[test]
fn fabric_settings_control_slot_geometry() {
    let reg = Arc::new(HostRegistry::new());
    reg.register(ProcessId(1), 3);
    reg.register(ProcessId(2), 3);
    let cm = ConnectionManager::new(reg.clone());
    let settings = FabricSettings {
        depth: 4,
        slot_size: 8192,
        ..FabricSettings::default()
    };
    let fabric = cm
        .establish(ProcessId(1), ProcessId(2), controller(), &settings)
        .expect("establish");
    let hp = reg
        .channel_for(ProcessId(1), ProcessId(2))
        .expect("channel");
    assert_eq!(hp.channel.depth(), 4);
    assert_eq!(hp.channel.slot_size(), 8192);
    cm.teardown(ProcessId(1), ProcessId(2), fabric)
        .expect("teardown");
}

#[test]
fn flow_accounting_matches_the_papers_message_counts() {
    let cap = 8 * 1024;
    // Fig. 7's conservative shared-memory write: 4 control messages.
    assert_eq!(
        control_messages(
            OpKind::Write,
            16 * 1024,
            DataChannel::Shm,
            FlowMode::Conservative,
            cap
        ),
        4
    );
    // §4.4.2 eliminates two of them for every size.
    for size in [512usize, 16 * 1024, 1 << 21] {
        assert_eq!(messages_saved(OpKind::Write, size, cap), 2, "size {size}");
        assert_eq!(messages_saved(OpKind::Read, size, cap), 2, "size {size}");
    }
    // Stock TCP small writes were already in-capsule: nothing to save
    // relative to the optimized shm flow.
    assert_eq!(
        control_messages(
            OpKind::Write,
            4096,
            DataChannel::TcpInline,
            FlowMode::Conservative,
            cap
        ),
        control_messages(
            OpKind::Write,
            4096,
            DataChannel::Shm,
            FlowMode::InCapsule,
            cap
        ),
    );
}

#[test]
fn repeated_establish_teardown_cycles_are_stable() {
    let reg = Arc::new(HostRegistry::new());
    reg.register(ProcessId(1), 1);
    reg.register(ProcessId(2), 1);
    let cm = ConnectionManager::new(reg.clone());
    for round in 0..5 {
        let mut fabric = cm
            .establish(
                ProcessId(1),
                ProcessId(2),
                controller(),
                &FabricSettings::default(),
            )
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        assert!(fabric.initiator.shm_active(), "round {round}");
        // Do one I/O per cycle to prove the channel is live.
        fabric
            .initiator
            .write_blocking(
                1,
                0,
                1,
                bytes::Bytes::from(vec![round as u8; 4096]),
                std::time::Duration::from_secs(5),
            )
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        cm.teardown(ProcessId(1), ProcessId(2), fabric)
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
    }
}
