//! Integration: the paper's Fig. 1 architecture end to end — one storage
//! service, several client applications, mixed locality, isolated
//! per-client shared-memory channels — on the real threaded runtime.

use std::sync::Arc;
use std::time::Duration;

use nvme_oaf::nvmeof::nvme::controller::Controller;
use nvme_oaf::nvmeof::nvme::namespace::Namespace;
use nvme_oaf::oaf::conn::FabricSettings;
use nvme_oaf::oaf::locality::{HostRegistry, ProcessId};
use nvme_oaf::oaf::runtime::launch_many;

const TIMEOUT: Duration = Duration::from_secs(10);

fn controller() -> Controller {
    let mut c = Controller::new();
    c.add_namespace(Namespace::new(1, 4096, 4096));
    c
}

#[test]
fn mixed_locality_clients_share_one_service() {
    let registry = Arc::new(HostRegistry::new());
    let target_host = 1u64;
    // Two co-located clients, one remote.
    let clients = [
        (ProcessId(11), target_host),
        (ProcessId(12), target_host),
        (ProcessId(13), 2u64),
    ];
    let mut group = launch_many(
        &registry,
        &clients,
        (ProcessId(99), target_host),
        controller(),
        FabricSettings::default(),
    )
    .expect("launch_many");

    assert!(group.clients[0].shm_active());
    assert!(group.clients[1].shm_active());
    assert!(
        !group.clients[2].shm_active(),
        "remote client must fall back"
    );

    // Each client writes its own LBA range; all ranges must be intact
    // afterwards regardless of channel.
    for (i, client) in group.clients.iter_mut().enumerate() {
        let base = (i as u64) * 64;
        for k in 0..8u64 {
            let mut buf = client.alloc(4096).expect("alloc");
            buf.fill((i * 16 + k as usize) as u8);
            client
                .write(1, base + k, 1, buf, TIMEOUT)
                .unwrap_or_else(|e| panic!("client {i} write {k}: {e}"));
        }
    }
    for (i, client) in group.clients.iter_mut().enumerate() {
        let base = (i as u64) * 64;
        for k in 0..8u64 {
            let back = client.read(1, base + k, 1, 4096, TIMEOUT).expect("read");
            assert!(
                back.iter().all(|&b| b == (i * 16 + k as usize) as u8),
                "client {i} lba {k} corrupted"
            );
        }
    }

    // Cross-visibility: the service is shared storage, so client 0's data
    // is readable by client 2.
    let via_remote = group.clients[2].read(1, 0, 1, 4096, TIMEOUT).expect("read");
    assert!(via_remote.iter().all(|&b| b == 0));

    for c in &mut group.clients {
        c.disconnect().expect("disconnect");
    }
    group.target.shutdown().expect("service shutdown");
}

#[test]
fn per_client_channels_are_isolated_regions() {
    let registry = Arc::new(HostRegistry::new());
    let clients = [(ProcessId(21), 5u64), (ProcessId(22), 5u64)];
    let group = launch_many(
        &registry,
        &clients,
        (ProcessId(90), 5),
        controller(),
        FabricSettings::default(),
    )
    .expect("launch_many");

    // The helper process allocated distinct regions (§6: per-client
    // isolation so no tenant can snoop another's payloads).
    let a = registry
        .channel_for(ProcessId(21), ProcessId(90))
        .expect("channel a");
    let b = registry
        .channel_for(ProcessId(22), ProcessId(90))
        .expect("channel b");
    assert_ne!(a.region_id, b.region_id);

    drop(group);
}

#[test]
fn many_concurrent_clients_under_load() {
    let registry = Arc::new(HostRegistry::new());
    let clients: Vec<(ProcessId, u64)> = (0..4).map(|i| (ProcessId(30 + i), 7u64)).collect();
    let mut group = launch_many(
        &registry,
        &clients,
        (ProcessId(80), 7),
        controller(),
        FabricSettings::default(),
    )
    .expect("launch_many");

    // Pipelined traffic from every client interleaved.
    let mut cids: Vec<Vec<u16>> = vec![Vec::new(); 4];
    for round in 0..16u64 {
        for (i, client) in group.clients.iter_mut().enumerate() {
            let mut buf = client.alloc(4096).expect("alloc");
            buf.fill((round % 250) as u8);
            let lba = (i as u64) * 256 + round;
            cids[i].push(client.submit_write(1, lba, 1, buf).expect("submit"));
        }
    }
    for (i, client) in group.clients.iter_mut().enumerate() {
        for &cid in &cids[i] {
            let done = client.wait(cid, TIMEOUT).expect("completion");
            assert!(done.status.is_ok(), "client {i} cid {cid}");
        }
    }
    for c in &mut group.clients {
        c.disconnect().expect("disconnect");
    }
    group.target.shutdown().expect("shutdown");
}
