//! Integration: the thread-per-core sharded runtime end to end — 8
//! clients over 4 oversubscribed shards (the dev box has one core; the
//! shards time-slice it, which only makes the interleavings nastier),
//! one storage service behind all of them, near-uniform per-shard load,
//! merged telemetry, runtime connection adoption, clean shutdown.

use std::sync::Arc;
use std::time::Duration;

use nvme_oaf::nvmeof::nvme::controller::Controller;
use nvme_oaf::nvmeof::nvme::namespace::Namespace;
use nvme_oaf::oaf::conn::FabricSettings;
use nvme_oaf::oaf::locality::{HostRegistry, ProcessId};
use nvme_oaf::oaf::runtime::launch_many_sharded;

const TIMEOUT: Duration = Duration::from_secs(10);
const SHARDS: usize = 4;
const CLIENTS: usize = 8;

fn controller() -> Controller {
    let mut c = Controller::new();
    c.add_namespace(Namespace::new(1, 4096, 4096));
    c
}

#[test]
fn four_shards_serve_eight_clients_with_balanced_load() {
    let registry = Arc::new(HostRegistry::new());
    let target_host = 1u64;
    let clients: Vec<(ProcessId, u64)> = (0..CLIENTS as u64)
        .map(|i| (ProcessId(10 + i), target_host))
        .collect();
    let mut group = launch_many_sharded(
        &registry,
        &clients,
        (ProcessId(99), target_host),
        controller(),
        FabricSettings::default(),
        SHARDS,
    )
    .expect("launch_many_sharded");

    assert_eq!(group.target.shards(), SHARDS);
    // Round-robin steering: client i on shard i % SHARDS.
    let want: Vec<usize> = (0..CLIENTS).map(|i| i % SHARDS).collect();
    assert_eq!(group.shard_of, want);

    // Uniform per-client traffic into disjoint LBA ranges; every write
    // must be readable back through a client on a *different* shard —
    // one storage service behind all four reactors.
    const OPS: u64 = 50;
    for (i, client) in group.clients.iter_mut().enumerate() {
        let base = (i as u64) * 256;
        for k in 0..OPS {
            let mut buf = client.alloc(4096).expect("alloc");
            buf.fill((i as u8).wrapping_mul(31).wrapping_add(k as u8));
            client
                .write(1, base + (k % 64), 1, buf, TIMEOUT)
                .unwrap_or_else(|e| panic!("client {i} write {k}: {e}"));
        }
    }
    for i in 0..CLIENTS {
        let reader = (i + 1) % CLIENTS; // RR over 4 shards: always a different shard
        assert_ne!(group.shard_of[i], group.shard_of[reader]);
        let base = (i as u64) * 256;
        let last = OPS - 1;
        let back = group.clients[reader]
            .read(1, base + (last % 64), 1, 4096, TIMEOUT)
            .expect("cross-shard read");
        let want_byte = (i as u8).wrapping_mul(31).wrapping_add(last as u8);
        assert!(
            back.iter().all(|&b| b == want_byte),
            "client {i}'s write not visible from shard {}",
            group.shard_of[reader]
        );
    }

    // Near-uniform load: identical per-client traffic round-robined over
    // the shards must land near-evenly (ISSUE bound: max/min ≤ 1.5).
    let ops = group.target.ops_per_shard();
    let max = *ops.iter().max().unwrap();
    let min = *ops.iter().min().unwrap();
    assert!(min > 0, "an idle shard: {ops:?}");
    assert!(
        (max as f64) / (min as f64) <= 1.5,
        "per-shard ops skewed beyond 1.5x: {ops:?}"
    );

    // Merged telemetry: every shard's reactor scope and every
    // connection's scope (prefixed by its owning shard) is visible in
    // the one parent registry.
    let snap = group.telemetry.snapshot();
    for s in 0..SHARDS {
        assert!(
            snap.counter(&format!("shard{s}_reactor"), "ops") > 0,
            "missing merged scope shard{s}_reactor"
        );
    }
    for (i, &s) in group.shard_of.iter().enumerate() {
        assert!(
            snap.counter(&format!("shard{s}_target_conn{i}"), "ops") > 0,
            "missing merged scope shard{s}_target_conn{i}"
        );
    }
    // Client-side scopes stay flat — sharding is a target-side concern.
    for i in 0..CLIENTS {
        assert!(snap.counter(&format!("client{i}"), "completions") > 0);
    }

    for c in &mut group.clients {
        c.disconnect().expect("disconnect");
    }
    group.target.shutdown().expect("sharded shutdown");
}

#[test]
fn connection_adopted_at_runtime_is_served() {
    use nvme_oaf::nvmeof::initiator::{Initiator, InitiatorOptions};
    use nvme_oaf::nvmeof::server::ConnectionSpec;
    use nvme_oaf::nvmeof::target::TargetConfig;
    use nvme_oaf::nvmeof::transport::MemTransport;

    let registry = Arc::new(HostRegistry::new());
    let clients = [(ProcessId(11), 1u64), (ProcessId(12), 1u64)];
    let mut group = launch_many_sharded(
        &registry,
        &clients,
        (ProcessId(99), 1u64),
        controller(),
        FabricSettings::default(),
        2,
    )
    .expect("launch_many_sharded");

    // A connection arriving after launch: steered, built against its
    // shard's registry, delivered through the shard's admin mailbox.
    let (ct, tt) = MemTransport::pair();
    let shard = group
        .target
        .add_connection(ConnectionSpec {
            transport: Box::new(tt),
            cfg: TargetConfig::default(),
            payload: None,
            scope: None,
        })
        .expect("adopt connection");
    assert_eq!(shard, 2 % 2); // third connection, round-robin

    let mut late = Initiator::connect(ct, InitiatorOptions::default(), None, TIMEOUT)
        .expect("late client connect");
    late.write_blocking(1, 7, 1, bytes::Bytes::from(vec![0x5d; 4096]), TIMEOUT)
        .expect("late write");
    // Visible through a launched client on the other shard.
    let back = group.clients[1]
        .read(1, 7, 1, 4096, TIMEOUT)
        .expect("read late write");
    assert!(back.iter().all(|&b| b == 0x5d));

    late.disconnect().expect("late disconnect");
    for c in &mut group.clients {
        c.disconnect().expect("disconnect");
    }
    group.target.shutdown().expect("shutdown");
}
