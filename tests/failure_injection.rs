//! Failure injection: the runtime must fail loudly and cleanly — no
//! hangs, no silent corruption — when a peer dies, a frame is garbage, or
//! a deadline passes.

use std::time::Duration;

use bytes::Bytes;
use nvme_oaf::nvmeof::initiator::{Initiator, InitiatorOptions};
use nvme_oaf::nvmeof::nvme::controller::Controller;
use nvme_oaf::nvmeof::nvme::namespace::Namespace;
use nvme_oaf::nvmeof::target::{spawn_target, TargetConfig, TargetConnection};
use nvme_oaf::nvmeof::transport::{MemTransport, Transport};
use nvme_oaf::nvmeof::NvmeofError;

fn controller() -> Controller {
    let mut c = Controller::new();
    c.add_namespace(Namespace::new(1, 4096, 1024));
    c.add_namespace(Namespace::new(2, 512, 4096));
    c
}

const TIMEOUT: Duration = Duration::from_secs(5);

#[test]
fn target_death_surfaces_as_transport_closed() {
    let (ct, tt) = MemTransport::pair();
    let handle = spawn_target(tt, controller(), TargetConfig::default(), None);
    let mut ini = Initiator::connect(ct, InitiatorOptions::default(), None, TIMEOUT).unwrap();

    // Kill the target, then try to do I/O.
    handle.shutdown().unwrap();
    let result = (0..50).find_map(|_| {
        std::thread::sleep(Duration::from_millis(10));
        match ini.submit_read(1, 0, 1, 4096) {
            Err(NvmeofError::TransportClosed) => Some(Ok(())),
            Err(other) => Some(Err(other)),
            Ok(_) => match ini.poll() {
                Err(NvmeofError::TransportClosed) => Some(Ok(())),
                Err(other) => Some(Err(other)),
                Ok(_) => None,
            },
        }
    });
    assert!(
        matches!(result, Some(Ok(()))),
        "expected TransportClosed, got {result:?}"
    );
}

#[test]
fn connect_times_out_against_a_dead_listener() {
    let (ct, tt) = MemTransport::pair();
    // Keep the peer endpoint alive but never answer: connect must time
    // out rather than hang.
    match Initiator::connect(
        ct,
        InitiatorOptions::default(),
        None,
        Duration::from_millis(100),
    ) {
        Err(NvmeofError::Timeout) => {}
        Err(other) => panic!("expected Timeout, got {other}"),
        Ok(_) => panic!("connected against a dead listener"),
    }
    drop(tt);
}

#[test]
fn garbage_frames_are_rejected_not_crashed() {
    let mut ctrl = controller();
    let mut conn = TargetConnection::new(TargetConfig::default(), None);
    for garbage in [
        Bytes::new(),
        Bytes::from_static(b"x"),
        Bytes::from_static(b"\xff\xff\xff\xff\xff\xff\xff\xff"),
        Bytes::from(vec![0u8; 4096]),
    ] {
        let out = conn.on_frame(garbage, &mut ctrl);
        assert!(out.is_err(), "garbage accepted");
    }
    assert!(!conn.terminated());
}

#[test]
fn wait_times_out_when_target_is_stalled() {
    // A connected pair whose target never answers I/O (handshake done by
    // a connection state machine we then stop servicing).
    let (ct, tt) = MemTransport::pair();
    // Service only the handshake on a scratch thread, then stop.
    let h = std::thread::spawn(move || {
        let mut ctrl = controller();
        let mut conn = TargetConnection::new(TargetConfig::default(), None);
        let frame = loop {
            if let Some(f) = tt.recv_timeout(Duration::from_secs(5)).unwrap() {
                break f;
            }
        };
        for resp in conn.on_frame(frame, &mut ctrl).unwrap() {
            tt.send(resp).unwrap();
        }
        // Swallow the next frame and go silent (stalled target).
        let _ = tt.recv_timeout(Duration::from_secs(5));
        std::thread::sleep(Duration::from_millis(500));
    });
    let mut ini = Initiator::connect(ct, InitiatorOptions::default(), None, TIMEOUT).unwrap();
    let cid = ini.submit_read(1, 0, 1, 4096).unwrap();
    let err = ini.wait(cid, Duration::from_millis(150)).unwrap_err();
    assert!(matches!(err, NvmeofError::Timeout), "{err}");
    h.join().unwrap();
}

#[test]
fn multiple_namespaces_are_independent() {
    let (ct, tt) = MemTransport::pair();
    let handle = spawn_target(tt, controller(), TargetConfig::default(), None);
    let mut ini = Initiator::connect(ct, InitiatorOptions::default(), None, TIMEOUT).unwrap();

    // Same LBA, different namespaces and block sizes.
    ini.write_blocking(1, 3, 1, Bytes::from(vec![1u8; 4096]), TIMEOUT)
        .unwrap();
    ini.write_blocking(2, 3, 1, Bytes::from(vec![2u8; 512]), TIMEOUT)
        .unwrap();
    assert!(ini
        .read_blocking(1, 3, 1, 4096, TIMEOUT)
        .unwrap()
        .iter()
        .all(|&b| b == 1));
    assert!(ini
        .read_blocking(2, 3, 1, 512, TIMEOUT)
        .unwrap()
        .iter()
        .all(|&b| b == 2));

    // A namespace that does not exist fails cleanly.
    let err = ini.read_blocking(9, 0, 1, 4096, TIMEOUT).unwrap_err();
    assert!(err.to_string().contains("InvalidNamespace"), "{err}");
    handle.shutdown().unwrap();
}

#[test]
fn oversized_read_buffer_expectations_are_protocol_errors() {
    let (ct, tt) = MemTransport::pair();
    let handle = spawn_target(tt, controller(), TargetConfig::default(), None);
    let mut ini = Initiator::connect(ct, InitiatorOptions::default(), None, TIMEOUT).unwrap();
    // Expecting fewer bytes than the target returns must not corrupt the
    // connection: it is a protocol error, surfaced as Err.
    let result = ini.read_blocking(1, 0, 2, 4096, TIMEOUT);
    assert!(result.is_err());
    handle.shutdown().unwrap();
}
