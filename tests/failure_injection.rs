//! Failure injection: the runtime must fail loudly and cleanly — no
//! hangs, no silent corruption — when a peer dies, a frame is garbage, or
//! a deadline passes. The seeded chaos soaks at the bottom drive the full
//! recovery machinery (deadlines, retries, abort round-trips, keep-alive,
//! shm→TCP degradation, lease reclamation) under a reproducible fault
//! schedule: a failing run prints its seed, and
//! `OAF_CHAOS_SEED=<seed> cargo test` replays it.

use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use nvme_oaf::chaos::rng::ChaosRng;
use nvme_oaf::chaos::{wrap_pair, ChaosPayloadChannel, ChaosStats, FaultPlan, ALL_FAULTS};
use nvme_oaf::nvmeof::initiator::{Initiator, InitiatorOptions, KeepAliveConfig};
use nvme_oaf::nvmeof::nvme::controller::Controller;
use nvme_oaf::nvmeof::nvme::namespace::Namespace;
use nvme_oaf::nvmeof::payload::{MailboxChannel, PayloadChannel};
use nvme_oaf::nvmeof::pdu::AF_CAP_SHM;
use nvme_oaf::nvmeof::target::{spawn_target, TargetConfig, TargetConnection};
use nvme_oaf::nvmeof::transport::{MemTransport, Transport};
use nvme_oaf::nvmeof::{FlowMode, NvmeofError};

fn controller() -> Controller {
    let mut c = Controller::new();
    c.add_namespace(Namespace::new(1, 4096, 1024));
    c.add_namespace(Namespace::new(2, 512, 4096));
    c
}

const TIMEOUT: Duration = Duration::from_secs(5);

#[test]
fn target_death_surfaces_as_transport_closed() {
    let (ct, tt) = MemTransport::pair();
    let handle = spawn_target(tt, controller(), TargetConfig::default(), None);
    let mut ini = Initiator::connect(ct, InitiatorOptions::default(), None, TIMEOUT).unwrap();

    // Kill the target, then try to do I/O.
    handle.shutdown().unwrap();
    let result = (0..50).find_map(|_| {
        std::thread::sleep(Duration::from_millis(10));
        match ini.submit_read(1, 0, 1, 4096) {
            Err(NvmeofError::TransportClosed) => Some(Ok(())),
            Err(other) => Some(Err(other)),
            Ok(_) => match ini.poll() {
                Err(NvmeofError::TransportClosed) => Some(Ok(())),
                Err(other) => Some(Err(other)),
                Ok(_) => None,
            },
        }
    });
    assert!(
        matches!(result, Some(Ok(()))),
        "expected TransportClosed, got {result:?}"
    );
}

#[test]
fn connect_times_out_against_a_dead_listener() {
    let (ct, tt) = MemTransport::pair();
    // Keep the peer endpoint alive but never answer: connect must time
    // out rather than hang.
    match Initiator::connect(
        ct,
        InitiatorOptions::default(),
        None,
        Duration::from_millis(100),
    ) {
        Err(NvmeofError::Timeout { .. }) => {}
        Err(other) => panic!("expected Timeout, got {other}"),
        Ok(_) => panic!("connected against a dead listener"),
    }
    drop(tt);
}

#[test]
fn garbage_frames_are_dropped_not_crashed() {
    // Bit damage on the fabric is a *survivable* event: the target drops
    // the frame, counts it, and stays up — the client's deadline
    // machinery re-covers the loss.
    let mut ctrl = controller();
    let mut conn = TargetConnection::new(TargetConfig::default(), None);
    for garbage in [
        Bytes::new(),
        Bytes::from_static(b"x"),
        Bytes::from_static(b"\xff\xff\xff\xff\xff\xff\xff\xff"),
        Bytes::from(vec![0u8; 4096]),
    ] {
        let out = conn
            .on_frame(garbage, &mut ctrl)
            .expect("garbage must be tolerated");
        assert!(out.is_empty(), "garbage produced a response");
    }
    assert_eq!(conn.metrics().corrupt_frames.get(), 4);
    assert!(!conn.terminated());
}

#[test]
fn wait_times_out_when_target_is_stalled() {
    // A connected pair whose target never answers I/O (handshake done by
    // a connection state machine we then stop servicing).
    let (ct, tt) = MemTransport::pair();
    // Service only the handshake on a scratch thread, then stop.
    let h = std::thread::spawn(move || {
        let mut ctrl = controller();
        let mut conn = TargetConnection::new(TargetConfig::default(), None);
        let frame = loop {
            if let Some(f) = tt.recv_timeout(Duration::from_secs(5)).unwrap() {
                break f;
            }
        };
        for resp in conn.on_frame(frame, &mut ctrl).unwrap() {
            tt.send(resp).unwrap();
        }
        // Swallow the next frame and go silent (stalled target).
        let _ = tt.recv_timeout(Duration::from_secs(5));
        std::thread::sleep(Duration::from_millis(500));
    });
    let mut ini = Initiator::connect(ct, InitiatorOptions::default(), None, TIMEOUT).unwrap();
    let cid = ini.submit_read(1, 0, 1, 4096).unwrap();
    let err = ini.wait(cid, Duration::from_millis(150)).unwrap_err();
    assert!(matches!(err, NvmeofError::Timeout { .. }), "{err}");
    h.join().unwrap();
}

#[test]
fn multiple_namespaces_are_independent() {
    let (ct, tt) = MemTransport::pair();
    let handle = spawn_target(tt, controller(), TargetConfig::default(), None);
    let mut ini = Initiator::connect(ct, InitiatorOptions::default(), None, TIMEOUT).unwrap();

    // Same LBA, different namespaces and block sizes.
    ini.write_blocking(1, 3, 1, Bytes::from(vec![1u8; 4096]), TIMEOUT)
        .unwrap();
    ini.write_blocking(2, 3, 1, Bytes::from(vec![2u8; 512]), TIMEOUT)
        .unwrap();
    assert!(ini
        .read_blocking(1, 3, 1, 4096, TIMEOUT)
        .unwrap()
        .iter()
        .all(|&b| b == 1));
    assert!(ini
        .read_blocking(2, 3, 1, 512, TIMEOUT)
        .unwrap()
        .iter()
        .all(|&b| b == 2));

    // A namespace that does not exist fails cleanly.
    let err = ini.read_blocking(9, 0, 1, 4096, TIMEOUT).unwrap_err();
    assert!(err.to_string().contains("InvalidNamespace"), "{err}");
    handle.shutdown().unwrap();
}

#[test]
fn oversized_read_buffer_expectations_are_protocol_errors() {
    let (ct, tt) = MemTransport::pair();
    let handle = spawn_target(tt, controller(), TargetConfig::default(), None);
    let mut ini = Initiator::connect(ct, InitiatorOptions::default(), None, TIMEOUT).unwrap();
    // Expecting fewer bytes than the target returns must not corrupt the
    // connection: it is a protocol error, surfaced as Err.
    let result = ini.read_blocking(1, 0, 2, 4096, TIMEOUT);
    assert!(result.is_err());
    handle.shutdown().unwrap();
}

// ---------------------------------------------------------------------
// Recovery machinery under deterministic chaos.
// ---------------------------------------------------------------------

/// The seed the chaos soaks run with: `OAF_CHAOS_SEED` to replay a
/// failure, a fixed default otherwise.
fn chaos_seed() -> u64 {
    std::env::var("OAF_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FF_EED0_0D5E)
}

/// Which payload path a soak runs over, and which shm fault it injects.
/// The first shm fault degrades the channel to TCP for the rest of the
/// run, so each mode enables exactly one shm fault kind — together the
/// modes cover both.
#[derive(Clone, Copy, Debug)]
enum ShmMode {
    /// TCP payload path only (no shared memory negotiated).
    Off,
    /// Shared memory with injected consume failures.
    ConsumeFaults,
    /// Shared memory with injected publish failures.
    PublishFaults,
}

fn fatal_mid_soak(seed: u64, e: &NvmeofError) {
    if matches!(e, NvmeofError::PeerDead | NvmeofError::TransportClosed) {
        panic!("seed {seed}: connection-fatal error during recoverable chaos: {e}");
    }
}

/// Runs `iters` verified read/write ops against a chaos-wrapped fabric.
/// Every op either succeeds with correct data, or fails with a typed
/// error whose outcome uncertainty is tracked: a timed-out write may or
/// may not have applied, so reads accept either value until one is
/// observed. Returns the fault tally for coverage accounting.
fn chaos_soak(seed: u64, mode: ShmMode, iters: usize, heavy: bool) -> Arc<ChaosStats> {
    let (ct_raw, tt_raw) = MemTransport::pair();
    chaos_soak_on(seed, mode, iters, heavy, ct_raw, tt_raw)
}

/// [`chaos_soak`] over an explicit transport pair, so the same verified
/// fault schedule can run over the in-memory wire or real loopback TCP
/// sockets (`tcp-socket` mode).
fn chaos_soak_on<CT, TT>(
    seed: u64,
    mode: ShmMode,
    iters: usize,
    heavy: bool,
    ct_raw: CT,
    tt_raw: TT,
) -> Arc<ChaosStats>
where
    CT: Transport,
    TT: Transport + Send + 'static,
{
    let mut plan = if heavy {
        FaultPlan::heavy(seed)
    } else {
        FaultPlan::light(seed)
    };
    plan.shm_publish_fail_per_10k = 0;
    plan.shm_consume_fail_per_10k = 0;
    match mode {
        ShmMode::Off => {}
        // High rate: the single enabled shm fault must fire before the
        // first one degrades the channel and ends shm traffic.
        ShmMode::ConsumeFaults => plan.shm_consume_fail_per_10k = 800,
        ShmMode::PublishFaults => plan.shm_publish_fail_per_10k = 800,
    }
    let use_shm = !matches!(mode, ShmMode::Off);

    let (ct, tt, controls) = wrap_pair(ct_raw, tt_raw, &plan);
    let stats = controls.stats().clone();
    let payload = if use_shm {
        let (c, t) = MailboxChannel::pair(32);
        let cc = ChaosPayloadChannel::wrap(c, plan.child_seed(2), plan.clone(), stats.clone());
        let tc = ChaosPayloadChannel::wrap(t, plan.child_seed(3), plan.clone(), stats.clone());
        Some((cc, tc))
    } else {
        None
    };
    let handle = spawn_target(
        tt,
        controller(),
        TargetConfig::default(),
        payload
            .as_ref()
            .map(|(_, t)| t.clone() as Arc<dyn PayloadChannel>),
    );
    let opts = InitiatorOptions {
        af_caps: if use_shm { AF_CAP_SHM } else { 0 },
        flow: FlowMode::InCapsule,
        cmd_deadline: Some(Duration::from_millis(40)),
        max_retries: 10,
        retry_backoff: Duration::from_millis(5),
        keepalive: Some(KeepAliveConfig::with_interval(Duration::from_millis(250))),
        ..InitiatorOptions::default()
    };
    let mut ini = Initiator::connect(
        ct,
        opts,
        payload
            .as_ref()
            .map(|(c, _)| c.clone() as Arc<dyn PayloadChannel>),
        TIMEOUT,
    )
    .unwrap_or_else(|e| panic!("seed {seed}: connect failed: {e}"));
    assert_eq!(ini.shm_active(), use_shm);

    // Handshake done: open fire.
    controls.arm();
    if let Some((c, t)) = &payload {
        c.arm();
        t.arm();
    }

    const LBAS: u64 = 48;
    // Allowed contents per block: initially zero-filled; a write whose
    // outcome is uncertain (typed timeout after retries exhausted) adds
    // its stamp to the allowed set instead of replacing it.
    let mut allowed: Vec<Vec<u8>> = (0..LBAS).map(|_| vec![0u8]).collect();
    let mut rng = ChaosRng::new(seed ^ 0x50AC);
    let mut stamp = 0u8;
    for _ in 0..iters {
        let lba = rng.range(0, LBAS);
        if rng.chance(6_000) {
            stamp = stamp.wrapping_add(1);
            let data = Bytes::from(vec![stamp; 4096]);
            match ini.write_blocking(1, lba, 1, data, TIMEOUT) {
                Ok(()) => allowed[lba as usize] = vec![stamp],
                Err(e) => {
                    fatal_mid_soak(seed, &e);
                    allowed[lba as usize].push(stamp);
                }
            }
        } else {
            match ini.read_blocking(1, lba, 1, 4096, TIMEOUT) {
                Ok(buf) => {
                    let v = buf[0];
                    assert!(
                        buf.iter().all(|&b| b == v),
                        "seed {seed}: torn read at lba {lba} [{}]",
                        stats
                    );
                    assert!(
                        allowed[lba as usize].contains(&v),
                        "seed {seed}: lba {lba} read {v}, allowed {:?} [{}]",
                        allowed[lba as usize],
                        stats
                    );
                    allowed[lba as usize] = vec![v];
                }
                Err(e) => fatal_mid_soak(seed, &e),
            }
        }
    }

    // Quiesce and verify the whole surface end-to-end.
    controls.disarm();
    if let Some((c, t)) = &payload {
        c.disarm();
        t.disarm();
    }
    for lba in 0..LBAS {
        let mut buf = None;
        for _ in 0..3 {
            match ini.read_blocking(1, lba, 1, 4096, TIMEOUT) {
                Ok(b) => {
                    buf = Some(b);
                    break;
                }
                Err(e) => fatal_mid_soak(seed, &e),
            }
        }
        let buf = buf.unwrap_or_else(|| panic!("seed {seed}: lba {lba} unreadable after quiesce"));
        let v = buf[0];
        assert!(
            buf.iter().all(|&b| b == v),
            "seed {seed}: torn block {lba} after quiesce"
        );
        assert!(
            allowed[lba as usize].contains(&v),
            "seed {seed}: lba {lba} holds {v} after quiesce, allowed {:?}",
            allowed[lba as usize]
        );
    }
    // Tally for the EXPERIMENTS.md fault-injection table (visible with
    // `--nocapture`): what was injected and what the recovery paid.
    let m = ini.metrics();
    eprintln!(
        "chaos_soak seed={seed} mode={mode:?} iters={iters} injected[{stats}] \
         recovery[retries={} aborts={} timeouts={} degradations={} \
         stale_frames={} corrupt_frames={}]",
        m.retries.get(),
        m.aborts_sent.get(),
        m.timeouts.get(),
        m.degradations.get(),
        m.stale_frames.get(),
        m.corrupt_frames.get(),
    );
    let _ = ini.disconnect();
    let _ = handle.shutdown();
    stats
}

/// The headline chaos soak: ≥500 verified ops split across the TCP and
/// shm payload paths, asserting the run actually exercised at least 7 of
/// the 8 fault kinds (peer death is excluded here — it is by design
/// unrecoverable — and has its own test below).
#[test]
fn seeded_chaos_soak_recovers_every_fault() {
    let seed = chaos_seed();
    let runs = [
        chaos_soak(seed, ShmMode::Off, 250, false),
        chaos_soak(seed ^ 1, ShmMode::ConsumeFaults, 150, false),
        chaos_soak(seed ^ 2, ShmMode::PublishFaults, 150, false),
    ];
    let fired = ALL_FAULTS
        .iter()
        .filter(|&&k| runs.iter().map(|s| s.count(k)).sum::<u64>() > 0)
        .count();
    let total: u64 = runs.iter().map(|s| s.total()).sum();
    assert!(
        fired >= 7,
        "seed {seed}: only {fired} fault kinds fired over {total} injections \
         (replay with OAF_CHAOS_SEED={seed})"
    );
}

/// The `tcp-socket` soak: the same seeded, verified fault schedule, but
/// over real nonblocking loopback TCP sockets with deliberately tiny
/// `SO_SNDBUF`/`SO_RCVBUF`. Chaos rides *above* a byte stream that is
/// itself being short-written and short-read, so the recovery machinery
/// (deadlines, retries, aborts) and the resumable partial-I/O framing of
/// [`TcpTransport`] are exercised together.
///
/// [`TcpTransport`]: nvme_oaf::nvmeof::tcp::TcpTransport
#[test]
fn seeded_chaos_soak_recovers_over_loopback_tcp() {
    use nvme_oaf::nvmeof::tcp::{TcpConfig, TcpTransport};
    let seed = chaos_seed() ^ 3;
    let cfg = TcpConfig {
        sndbuf: Some(16 * 1024),
        rcvbuf: Some(16 * 1024),
        ..TcpConfig::default()
    };
    let (ct, tt) = TcpTransport::loopback_pair(cfg).expect("loopback sockets");
    let stats = chaos_soak_on(seed, ShmMode::Off, 200, false, ct, tt);
    assert!(
        stats.total() > 0,
        "seed {seed}: no faults fired over the tcp-socket soak \
         (replay with OAF_CHAOS_SEED={seed})"
    );
}

/// Heavy-rate chaos across a seed matrix — the CI `chaos` job runs this
/// in release; it is too slow for the debug test sweep.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "heavy chaos matrix runs in release (CI chaos job)"
)]
fn chaos_matrix_heavy_seeds() {
    let base = chaos_seed();
    for i in 0..4u64 {
        let seed = base.wrapping_add(i.wrapping_mul(0x9E37_79B9));
        chaos_soak(seed, ShmMode::Off, 120, true);
        chaos_soak(seed ^ 1, ShmMode::ConsumeFaults, 80, true);
        chaos_soak(seed ^ 2, ShmMode::PublishFaults, 80, true);
    }
}

#[test]
fn silent_peer_death_surfaces_as_peer_dead() {
    // An abrupt peer death with no FIN, no RST, no TermReq: only the
    // keep-alive machinery can tell, and it must say PeerDead — not hang.
    let plan = FaultPlan::quiet(0x9);
    let (ct_raw, tt_raw) = MemTransport::pair();
    let (ct, tt, controls) = wrap_pair(ct_raw, tt_raw, &plan);
    let handle = spawn_target(tt, controller(), TargetConfig::default(), None);
    let opts = InitiatorOptions {
        keepalive: Some(KeepAliveConfig::with_interval(Duration::from_millis(40))),
        ..InitiatorOptions::default()
    };
    let mut ini = Initiator::connect(ct, opts, None, TIMEOUT).unwrap();
    ini.write_blocking(1, 0, 1, Bytes::from(vec![7u8; 4096]), TIMEOUT)
        .unwrap();
    controls.kill(0); // black-hole the client endpoint, both directions
    let deadline = Instant::now() + TIMEOUT;
    let err = loop {
        if let Err(e) = ini.poll() {
            break e;
        }
        assert!(
            Instant::now() < deadline,
            "keep-alive never declared the silent peer dead"
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    assert!(matches!(err, NvmeofError::PeerDead), "{err}");
    assert!(ini.metrics().keepalive_misses.get() >= 1);
    let _ = handle.shutdown();
}

/// The sharded-runtime chaos soak: four shards, one chaos-wrapped
/// connection each, every shard drawing its faults from its own plan
/// seeded by [`FaultPlan::shard_seed`] — the whole per-shard fault tree
/// replays from the one printed root seed (`OAF_CHAOS_SEED=<seed>`).
/// Each client works a disjoint LBA range; every op either succeeds
/// with correct data or fails with a typed, tracked-uncertainty error,
/// and after quiesce every block on every shard verifies. A fault on
/// one shard must never disturb a sibling shard's data.
#[test]
fn sharded_chaos_soak_recovers_per_shard_plans() {
    use nvme_oaf::nvmeof::server::ConnectionSpec;
    use nvme_oaf::nvmeof::shard::{spawn_sharded, ShardConfig};

    const SHARDS: usize = 4;
    const LBAS_PER: u64 = 24;
    const ITERS: usize = 120;

    let seed = chaos_seed();
    let base = FaultPlan::quiet(seed);

    // Wire every shard's chaos-wrapped connection first: the handshake
    // needs a live reactor, so spawn comes before any connect.
    let mut specs = Vec::new();
    let mut client_sides = Vec::new();
    let mut all_controls = Vec::new();
    for s in 0..SHARDS {
        // Control-path faults only (the shm fault modes have their own
        // soaks above); each shard gets an independent plan derived from
        // the root seed.
        let mut plan = FaultPlan::light(base.shard_seed(s as u64));
        plan.shm_publish_fail_per_10k = 0;
        plan.shm_consume_fail_per_10k = 0;
        let (ct_raw, tt_raw) = MemTransport::pair();
        let (ct, tt, controls) = wrap_pair(ct_raw, tt_raw, &plan);
        specs.push(ConnectionSpec {
            transport: Box::new(tt),
            cfg: TargetConfig::default(),
            payload: None,
            scope: None,
        });
        client_sides.push(ct);
        all_controls.push(controls);
    }
    let target = spawn_sharded(controller(), specs, ShardConfig::new(SHARDS), None);
    let mut clients = Vec::new();
    for (s, ct) in client_sides.into_iter().enumerate() {
        let ini = Initiator::connect(
            ct,
            InitiatorOptions {
                cmd_deadline: Some(Duration::from_millis(40)),
                max_retries: 10,
                retry_backoff: Duration::from_millis(5),
                keepalive: Some(KeepAliveConfig::with_interval(Duration::from_millis(250))),
                ..InitiatorOptions::default()
            },
            None,
            TIMEOUT,
        )
        .unwrap_or_else(|e| panic!("seed {seed}: shard {s} connect failed: {e}"));
        clients.push(ini);
    }

    // Handshakes done: open fire everywhere.
    for c in &all_controls {
        c.arm();
    }

    // Disjoint LBA ranges: shard s owns [s*LBAS_PER, (s+1)*LBAS_PER).
    let mut allowed: Vec<Vec<Vec<u8>>> = (0..SHARDS)
        .map(|_| (0..LBAS_PER).map(|_| vec![0u8]).collect())
        .collect();
    let mut rng = ChaosRng::new(seed ^ 0x54A2);
    let mut stamp = 0u8;
    for _ in 0..ITERS {
        for s in 0..SHARDS {
            let lba_rel = rng.range(0, LBAS_PER);
            let lba = s as u64 * LBAS_PER + lba_rel;
            if rng.chance(6_000) {
                stamp = stamp.wrapping_add(1);
                let data = Bytes::from(vec![stamp; 4096]);
                match clients[s].write_blocking(1, lba, 1, data, TIMEOUT) {
                    Ok(()) => allowed[s][lba_rel as usize] = vec![stamp],
                    Err(e) => {
                        fatal_mid_soak(seed, &e);
                        allowed[s][lba_rel as usize].push(stamp);
                    }
                }
            } else {
                match clients[s].read_blocking(1, lba, 1, 4096, TIMEOUT) {
                    Ok(buf) => {
                        let v = buf[0];
                        assert!(
                            buf.iter().all(|&b| b == v),
                            "seed {seed}: shard {s} torn read at lba {lba}"
                        );
                        assert!(
                            allowed[s][lba_rel as usize].contains(&v),
                            "seed {seed}: shard {s} lba {lba} read {v}, allowed {:?}",
                            allowed[s][lba_rel as usize]
                        );
                        allowed[s][lba_rel as usize] = vec![v];
                    }
                    Err(e) => fatal_mid_soak(seed, &e),
                }
            }
        }
    }

    // Quiesce and verify every shard's whole range.
    for c in &all_controls {
        c.disarm();
    }
    for s in 0..SHARDS {
        for lba_rel in 0..LBAS_PER {
            let lba = s as u64 * LBAS_PER + lba_rel;
            let mut buf = None;
            for _ in 0..3 {
                match clients[s].read_blocking(1, lba, 1, 4096, TIMEOUT) {
                    Ok(b) => {
                        buf = Some(b);
                        break;
                    }
                    Err(e) => fatal_mid_soak(seed, &e),
                }
            }
            let buf = buf.unwrap_or_else(|| {
                panic!("seed {seed}: shard {s} lba {lba} unreadable after quiesce")
            });
            let v = buf[0];
            assert!(
                buf.iter().all(|&b| b == v),
                "seed {seed}: shard {s} torn block {lba} after quiesce"
            );
            assert!(
                allowed[s][lba_rel as usize].contains(&v),
                "seed {seed}: shard {s} lba {lba} holds {v} after quiesce, allowed {:?}",
                allowed[s][lba_rel as usize]
            );
        }
    }

    // Every shard both served ops and actually absorbed faults — the
    // plans were independent, not one stream fanned out.
    let ops = target.ops_per_shard();
    for (s, controls) in all_controls.iter().enumerate() {
        assert!(ops[s] > 0, "seed {seed}: shard {s} served nothing: {ops:?}");
        assert!(
            controls.stats().total() > 0,
            "seed {seed}: shard {s}'s plan injected nothing \
             (replay with OAF_CHAOS_SEED={seed})"
        );
        eprintln!(
            "sharded_chaos_soak seed={seed} shard={s} shard_seed={:#x} ops={} injected[{}]",
            base.shard_seed(s as u64),
            ops[s],
            controls.stats()
        );
    }
    for mut c in clients {
        let _ = c.disconnect();
    }
    let _ = target.shutdown();
}

#[test]
fn forced_shm_failure_mid_workload_degrades_to_tcp() {
    // Kill the shared-memory channel while a workload is mid-flight: the
    // connection must degrade to the TCP payload path and finish the
    // workload with correct data.
    let plan = FaultPlan::quiet(0x7);
    let stats = Arc::new(ChaosStats::default());
    let (c, t) = MailboxChannel::pair(16);
    let cc = ChaosPayloadChannel::wrap(c, 1, plan.clone(), stats.clone());
    let tc = ChaosPayloadChannel::wrap(t, 2, plan, stats);
    let (ct, tt) = MemTransport::pair();
    let handle = spawn_target(
        tt,
        controller(),
        TargetConfig::default(),
        Some(tc.clone() as Arc<dyn PayloadChannel>),
    );
    let opts = InitiatorOptions {
        af_caps: AF_CAP_SHM,
        flow: FlowMode::InCapsule,
        cmd_deadline: Some(Duration::from_millis(50)),
        ..InitiatorOptions::default()
    };
    let mut ini = Initiator::connect(
        ct,
        opts,
        Some(cc.clone() as Arc<dyn PayloadChannel>),
        TIMEOUT,
    )
    .unwrap();
    assert!(ini.shm_active());

    for lba in 0..8u64 {
        ini.write_blocking(1, lba, 1, Bytes::from(vec![lba as u8 + 1; 4096]), TIMEOUT)
            .unwrap();
    }
    // The region vanishes out from under the connection.
    cc.fail_from_now();
    tc.fail_from_now();
    for lba in 8..16u64 {
        ini.write_blocking(1, lba, 1, Bytes::from(vec![lba as u8 + 1; 4096]), TIMEOUT)
            .unwrap();
    }
    assert!(!ini.shm_active(), "channel should have degraded to TCP");
    assert!(ini.metrics().degradations.get() >= 1);
    // Every block — written before and after the failure — reads back
    // correctly over the degraded path.
    for lba in 0..16u64 {
        let buf = ini.read_blocking(1, lba, 1, 4096, TIMEOUT).unwrap();
        assert!(
            buf.iter().all(|&b| b == lba as u8 + 1),
            "lba {lba} corrupted across shm→TCP degradation"
        );
    }
    ini.disconnect().unwrap();
    handle.shutdown().unwrap();
}
