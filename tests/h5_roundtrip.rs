//! Integration: the h5bench kernels over the *real* NVMe-oAF runtime —
//! the full co-design stack (VOL → container format → block extent →
//! adaptive fabric → NVMe-oF target → RAM-backed namespace).

use std::cell::Cell;
use std::rc::Rc;
use std::sync::Arc;

use nvme_oaf::h5::kernel::{run_read, run_write, KernelConfig};
use nvme_oaf::h5::vol::{BlockExtent, H5Vol, VolConnector};
use nvme_oaf::nvmeof::nvme::controller::Controller;
use nvme_oaf::nvmeof::nvme::namespace::Namespace;
use nvme_oaf::oaf::conn::FabricSettings;
use nvme_oaf::oaf::locality::{HostRegistry, ProcessId};
use nvme_oaf::oaf::runtime::launch;

fn vol_over_fabric(
    local: bool,
    blocks: u64,
) -> (H5Vol<BlockExtent>, nvme_oaf::nvmeof::target::TargetHandle) {
    let mut controller = Controller::new();
    controller.add_namespace(Namespace::new(1, 4096, blocks));
    let registry = Arc::new(HostRegistry::new());
    let pair = launch(
        &registry,
        (ProcessId(1), 1),
        (ProcessId(2), if local { 1 } else { 2 }),
        controller,
        FabricSettings::default(),
    )
    .expect("fabric establishment");
    let extent = BlockExtent::new(pair.client, 1).expect("block extent");
    (H5Vol::create(extent).expect("container"), pair.target)
}

#[test]
fn kernels_roundtrip_over_local_fabric() {
    let cfg = KernelConfig {
        datasets: 2,
        particles: 128 * 1024,
        dtype_size: 4,
        h5d_buffer: 128 * 1024,
        timesteps: 1,
    };
    let (mut vol, target) = vol_over_fabric(true, 2048);
    let hint = Rc::new(Cell::new(1usize));
    let w = run_write(&mut vol, &cfg, &hint).expect("write kernel");
    assert_eq!(w.bytes, cfg.total_bytes());
    // Full verified read: every byte must match what the write kernel
    // produced, across the whole stack.
    run_read(&mut vol, &cfg, &hint, true).expect("verified read kernel");
    target.shutdown().expect("shutdown");
}

#[test]
fn kernels_roundtrip_over_tcp_fallback() {
    let cfg = KernelConfig {
        datasets: 1,
        particles: 64 * 1024,
        dtype_size: 4,
        h5d_buffer: 64 * 1024,
        timesteps: 1,
    };
    let (mut vol, target) = vol_over_fabric(false, 1024);
    let hint = Rc::new(Cell::new(1usize));
    run_write(&mut vol, &cfg, &hint).expect("write kernel");
    run_read(&mut vol, &cfg, &hint, true).expect("verified read kernel");
    target.shutdown().expect("shutdown");
}

#[test]
fn container_survives_reopen_over_fabric() {
    let mut controller = Controller::new();
    controller.add_namespace(Namespace::new(1, 4096, 1024));
    let registry = Arc::new(HostRegistry::new());
    let pair = launch(
        &registry,
        (ProcessId(1), 1),
        (ProcessId(2), 1),
        controller,
        FabricSettings::default(),
    )
    .expect("fabric establishment");

    let extent = BlockExtent::new(pair.client, 1).expect("block extent");
    let mut vol = H5Vol::create(extent).expect("container");
    vol.create_dataset("survivor", 8, 512).expect("dataset");
    vol.dataset_write("survivor", 64, &[0xabu8; 256])
        .expect("write");

    // "Reopen" by parsing the superblock again from the same device.
    let mut vol = H5Vol::open(extract_extent(vol)).expect("reopen");
    let ds = vol.datasets();
    assert_eq!(ds.len(), 1);
    assert_eq!(ds[0].name, "survivor");
    assert_eq!(ds[0].dtype_size, 8);
    let mut out = vec![0u8; 256];
    vol.dataset_read("survivor", 64, &mut out).expect("read");
    assert!(out.iter().all(|&b| b == 0xab));
    pair.target.shutdown().expect("shutdown");
}

fn extract_extent(vol: H5Vol<BlockExtent>) -> BlockExtent {
    // H5Vol does not expose its extent by value; recreate the view by
    // consuming the vol. (Test-only helper using the public `into_extent`.)
    vol.into_extent()
}

#[test]
fn unaligned_dataset_io_uses_read_modify_write() {
    let (mut vol, target) = vol_over_fabric(true, 1024);
    vol.create_dataset("x", 1, 10_000).expect("dataset");
    // Offsets and lengths that straddle 4 KiB block boundaries.
    vol.dataset_write("x", 4090, &[7u8; 100])
        .expect("unaligned write");
    vol.dataset_write("x", 4095, &[9u8; 2])
        .expect("tiny straddle");
    let mut out = vec![0u8; 100];
    vol.dataset_read("x", 4090, &mut out)
        .expect("unaligned read");
    assert_eq!(out[0..5], [7, 7, 7, 7, 7]);
    assert_eq!(out[5], 9);
    assert_eq!(out[6], 9);
    assert!(out[7..].iter().all(|&b| b == 7));
    target.shutdown().expect("shutdown");
}
