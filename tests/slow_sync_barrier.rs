//! Regression pin for the PR 8 follow-on hazard: a slow group-commit
//! `fdatasync` on the target reactor thread stalls every in-flight
//! command for the duration of the barrier. With a short command
//! deadline and keep-alive grace tuned for a fast fabric, that stall
//! used to blow the deadline sweep (spurious retries → `Timeout`) and
//! the keep-alive staleness check (spurious `PeerDead`) even though the
//! connection was perfectly healthy — it was just waiting on durability.
//!
//! The recovery core now freezes its *effective clock* while a
//! barrier-class command (Flush, or FUA + mutating) is in flight, for up
//! to `InitiatorOptions::barrier_grace` per episode, so local-barrier
//! time is excluded from both the deadline sweep and keep-alive
//! staleness. This test drives a FUA write (plus a concurrent read)
//! through a file-backed namespace whose `sync` takes far longer than
//! the command deadline and pins that nothing spurious fires.

use std::io;
use std::time::Duration;

use bytes::Bytes;
use nvme_oaf::nvmeof::initiator::{Initiator, InitiatorOptions, KeepAliveConfig};
use nvme_oaf::nvmeof::nvme::controller::Controller;
use nvme_oaf::nvmeof::nvme::namespace::Namespace;
use nvme_oaf::nvmeof::target::{spawn_target, TargetConfig};
use nvme_oaf::nvmeof::transport::MemTransport;
use nvme_oaf::store::vfs::{MemVfs, Vfs};
use nvme_oaf::store::FileDisk;

const TIMEOUT: Duration = Duration::from_secs(10);
const BS: usize = 4096;
const BLOCKS: u64 = 64;

/// Every durability barrier takes `delay` — a pessimistic stand-in for a
/// deep group-commit `fdatasync` on a busy disk.
struct SlowSyncVfs {
    inner: MemVfs,
    delay: Duration,
}

impl Vfs for SlowSyncVfs {
    fn read_at(&self, off: u64, buf: &mut [u8]) -> io::Result<()> {
        self.inner.read_at(off, buf)
    }

    fn write_at(&mut self, off: u64, buf: &[u8]) -> io::Result<()> {
        self.inner.write_at(off, buf)
    }

    fn sync(&mut self) -> io::Result<()> {
        std::thread::sleep(self.delay);
        self.inner.sync()
    }

    fn len(&self) -> io::Result<u64> {
        self.inner.len()
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.inner.set_len(len)
    }
}

fn slow_sync_controller(delay: Duration) -> Controller {
    let vfs = SlowSyncVfs {
        inner: MemVfs::new(),
        delay,
    };
    let disk =
        FileDisk::create_on(Box::new(vfs), BS as u32, BLOCKS, 64 * 1024).expect("format disk");
    let mut controller = Controller::new();
    controller.add_namespace(Namespace::with_file(1, disk));
    controller
}

/// Deadline and keep-alive tuned an order of magnitude *below* the sync
/// stall: without barrier-time exclusion, the 80 ms fsync would fire
/// several deadline sweeps and exhaust the 30 ms keep-alive grace.
fn twitchy_options() -> InitiatorOptions {
    InitiatorOptions {
        cmd_deadline: Some(Duration::from_millis(10)),
        max_retries: 2,
        retry_backoff: Duration::from_millis(2),
        keepalive: Some(KeepAliveConfig {
            interval: Duration::from_millis(10),
            grace: Duration::from_millis(30),
        }),
        // Generous enough to cover the whole stall; the cap is what a
        // real deployment tunes to its worst-case fsync.
        barrier_grace: Duration::from_millis(500),
        ..InitiatorOptions::default()
    }
}

#[test]
fn slow_fsync_does_not_fire_timeout_or_peer_death() {
    let (ct, tt) = MemTransport::pair();
    let handle = spawn_target(
        tt,
        slow_sync_controller(Duration::from_millis(80)),
        TargetConfig::default(),
        None,
    );

    let mut ini = Initiator::connect(ct, twitchy_options(), None, TIMEOUT).expect("connect");

    // A FUA write: the target must fsync (80 ms) before completing, so
    // the initiator sits behind a local barrier ~8× its command deadline
    // and ~2.7× its keep-alive grace.
    let data = Bytes::from(vec![0xA5u8; BS]);
    let w = ini.submit_write_fua(1, 3, 1, data).expect("submit fua");
    // A plain read rides along in the same window: its deadline must
    // also be excluded while the barrier is in flight (the reactor
    // cannot answer it any sooner).
    let r = ini.submit_read(1, 0, 1, BS).expect("submit read");

    let wres = ini.wait(w, TIMEOUT).expect("fua write survives slow sync");
    assert!(wres.status.is_ok(), "fua write status: {:?}", wres.status);
    let rres = ini.wait(r, TIMEOUT).expect("read survives slow sync");
    assert!(rres.status.is_ok(), "read status: {:?}", rres.status);

    // Back-to-back barriers must each get their own grace episode.
    for _ in 0..2 {
        let f = ini.submit_flush(1).expect("submit flush");
        let fres = ini.wait(f, TIMEOUT).expect("flush survives slow sync");
        assert!(fres.status.is_ok());
    }

    let m = ini.metrics();
    assert_eq!(m.timeouts.get(), 0, "spurious Timeout fired");
    assert_eq!(m.retries.get(), 0, "spurious deadline retry fired");
    assert_eq!(m.aborts_sent.get(), 0, "spurious abort round-trip fired");
    assert_eq!(m.degradations.get(), 0, "spurious degradation fired");
    assert!(ini.take_timed_out().is_empty());

    ini.disconnect().expect("disconnect");
    handle.shutdown().expect("target shutdown");
}

/// The async durability pipeline removes the stall the test above has
/// to *excuse*: with the store's `fdatasync` offloaded to its sync
/// worker, the reactor keeps serving non-barrier commands while an
/// 80 ms sync is in flight. Pad mode keeps those reads on live 10 ms
/// deadlines — nothing is excluded from recovery timing, and still
/// nothing fires: no retry, no timeout, no degrade, no peer death.
#[test]
fn offloaded_sync_keeps_reads_flowing_during_barrier() {
    use nvme_oaf::nvmeof::recovery::BarrierGraceMode;
    use nvme_oaf::nvmeof::target::spawn_target_observed;
    use nvme_oaf::store::vfs::SharedMemVfs;

    let vfs = SharedMemVfs::new();
    vfs.set_sync_delay(Duration::from_millis(80));
    let disk = FileDisk::create_on(Box::new(vfs.clone()), BS as u32, BLOCKS, 256 * 1024)
        .expect("format disk")
        .into_shared()
        .with_sync_worker(Box::new(vfs));
    let mut controller = Controller::new();
    controller.add_namespace(Namespace::with_shared_file(1, disk));

    let registry = oaf_telemetry::Registry::new();
    let (ct, tt) = MemTransport::pair();
    let handle = spawn_target_observed(
        tt,
        controller,
        TargetConfig::default(),
        None,
        Some(&registry),
    );

    let opts = InitiatorOptions {
        barrier_grace_mode: BarrierGraceMode::PadBarrierDeadline,
        ..twitchy_options()
    };
    let mut ini = Initiator::connect(ct, opts, None, TIMEOUT).expect("connect");

    // Seed blocks so the reads below return data.
    ini.write_blocking(1, 0, 1, Bytes::from(vec![0x11u8; BS]), TIMEOUT)
        .expect("seed write");

    // The FUA write parks at the target with its 80 ms fsync in flight
    // on the sync worker…
    let w = ini
        .submit_write_fua(1, 3, 1, Bytes::from(vec![0xA5u8; BS]))
        .expect("submit fua");
    // …and while it is parked, a burst of reads is served on *live*
    // 10 ms deadlines. If the reactor were blocked in the sync (or the
    // reads queued behind the barrier), every one of these would burn
    // retries and the metrics below would catch it.
    let mut reads = Vec::new();
    for i in 0..8u64 {
        reads.push(ini.submit_read(1, i % 4, 1, BS).expect("submit read"));
    }
    for r in reads {
        let res = ini.wait(r, TIMEOUT).expect("read survives in-flight sync");
        assert!(res.status.is_ok(), "read status: {:?}", res.status);
    }
    let wres = ini.wait(w, TIMEOUT).expect("fua completes once durable");
    assert!(wres.status.is_ok(), "fua status: {:?}", wres.status);

    let m = ini.metrics();
    assert_eq!(m.timeouts.get(), 0, "spurious Timeout fired");
    assert_eq!(
        m.retries.get(),
        0,
        "a non-barrier command queued behind the offloaded barrier"
    );
    assert_eq!(m.aborts_sent.get(), 0, "spurious abort round-trip fired");
    assert_eq!(m.degradations.get(), 0, "spurious degradation fired");
    assert!(ini.take_timed_out().is_empty());

    ini.disconnect().expect("disconnect");
    handle.shutdown().expect("target shutdown");

    let snap = registry.snapshot();
    assert!(
        snap.counter("target", "barriers_parked") >= 1,
        "the FUA barrier never took the parked path"
    );
}

/// The exclusion is a *bounded* grace, not a free pass: when the
/// barrier outlives `barrier_grace`, the effective clock resumes and a
/// peer wedged inside its fsync is still declared dead.
#[test]
fn keepalive_still_detects_a_peer_wedged_past_the_grace() {
    use nvme_oaf::nvmeof::NvmeofError;

    let (ct, tt) = MemTransport::pair();
    // The sync wedges the target reactor for 2 s — far past the 50 ms
    // barrier grace below, so this is a genuinely dead peer, not a slow
    // one the exclusion should forgive.
    let handle = spawn_target(
        tt,
        slow_sync_controller(Duration::from_secs(2)),
        TargetConfig::default(),
        None,
    );

    let opts = InitiatorOptions {
        barrier_grace: Duration::from_millis(50),
        ..twitchy_options()
    };
    let mut ini = Initiator::connect(ct, opts, None, TIMEOUT).expect("connect");
    let f = ini.submit_flush(1).expect("submit flush");

    let deadline = std::time::Instant::now() + TIMEOUT;
    let died = loop {
        match ini.poll() {
            Err(NvmeofError::PeerDead) => break true,
            Err(e) => panic!("unexpected error: {e}"),
            Ok(_) => {}
        }
        if std::time::Instant::now() >= deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(1));
    };
    assert!(died, "keep-alive failed to declare a wedged peer dead");
    let _ = f;

    // The reactor wakes from its fsync and sees the stop flag.
    drop(ini);
    let _ = handle.shutdown();
}
