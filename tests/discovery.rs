//! Integration: NVMe-oF discovery drives the adaptive channel choice —
//! an initiator consults the discovery log, picks the best transport for
//! its locality, and the fabric it then establishes matches the record.

use std::sync::Arc;
use std::time::Duration;

use nvme_oaf::nvmeof::discovery::{DiscoveryController, DiscoveryRecord, TransportKind};
use nvme_oaf::nvmeof::nvme::controller::Controller;
use nvme_oaf::nvmeof::nvme::namespace::Namespace;
use nvme_oaf::oaf::conn::FabricSettings;
use nvme_oaf::oaf::locality::{HostRegistry, ProcessId};
use nvme_oaf::oaf::runtime::launch;

const SUBNQN: &str = "nqn.2026-07.io.oaf:testing:ssd1";

fn controller() -> Controller {
    let mut c = Controller::new();
    c.add_namespace(Namespace::new(1, 4096, 512));
    c
}

fn advertise(dc: &DiscoveryController, target_host: u64) {
    // A target advertises TCP reachability always, plus shared-memory
    // reachability on its own host.
    dc.register(
        DiscoveryRecord::new(SUBNQN, TransportKind::Tcp, "10.0.0.2:4420", target_host).unwrap(),
    );
    dc.register(
        DiscoveryRecord::new(
            SUBNQN,
            TransportKind::Shm,
            format!("host-{target_host}"),
            target_host,
        )
        .unwrap(),
    );
}

#[test]
fn discovery_selection_matches_established_channel() {
    let target_host = 7u64;
    let dc = DiscoveryController::new();
    advertise(&dc, target_host);

    for (client_host, expect_shm) in [(7u64, true), (8, false)] {
        // 1. The initiator consults discovery for its locality.
        let record = dc.select(SUBNQN, client_host).expect("subsystem found");
        let discovery_says_shm = record.transport == TransportKind::Shm;
        assert_eq!(discovery_says_shm, expect_shm, "discovery choice");

        // 2. Establishing the fabric agrees with the discovery verdict.
        let registry = Arc::new(HostRegistry::new());
        let mut pair = launch(
            &registry,
            (ProcessId(1), client_host),
            (ProcessId(2), target_host),
            controller(),
            FabricSettings::default(),
        )
        .expect("launch");
        assert_eq!(pair.client.shm_active(), discovery_says_shm);

        // 3. The connection works either way.
        let mut buf = pair.client.alloc(4096).expect("alloc");
        buf.fill(0x3c);
        pair.client
            .write(1, 0, 1, buf, Duration::from_secs(5))
            .expect("write");
        let back = pair
            .client
            .read(1, 0, 1, 4096, Duration::from_secs(5))
            .expect("read");
        assert!(back.iter().all(|&b| b == 0x3c));

        pair.client.disconnect().expect("disconnect");
        pair.target.shutdown().expect("shutdown");
    }
}

#[test]
fn log_page_travels_as_bytes_between_processes() {
    // The log page is a wire format: what the target-side controller
    // serves must parse identically on the initiator side.
    let dc = DiscoveryController::new();
    advertise(&dc, 3);
    let wire_bytes = dc.log_page().encode();

    let parsed = nvme_oaf::nvmeof::discovery::DiscoveryLog::decode(wire_bytes).expect("parse");
    assert_eq!(parsed.records.len(), 2);
    assert!(parsed
        .records
        .iter()
        .any(|r| r.transport == TransportKind::Shm && r.host_id == 3));
}

#[test]
fn unregistered_subsystem_disappears_from_selection() {
    let dc = DiscoveryController::new();
    advertise(&dc, 1);
    assert!(dc.select(SUBNQN, 1).is_some());
    dc.unregister(SUBNQN);
    assert!(dc.select(SUBNQN, 1).is_none());
}
