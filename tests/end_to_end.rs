//! Cross-crate integration tests: the real (threaded) NVMe-oAF runtime
//! moving actual bytes end to end over both channels.

use std::sync::Arc;
use std::time::Duration;

use nvme_oaf::nvmeof::nvme::controller::Controller;
use nvme_oaf::nvmeof::nvme::namespace::Namespace;
use nvme_oaf::oaf::conn::FabricSettings;
use nvme_oaf::oaf::endpoint::ChannelKind;
use nvme_oaf::oaf::locality::{HostRegistry, ProcessId};
use nvme_oaf::oaf::runtime::{launch, AfPair};

const TIMEOUT: Duration = Duration::from_secs(10);

fn controller(blocks: u64) -> Controller {
    let mut c = Controller::new();
    c.add_namespace(Namespace::new(1, 4096, blocks));
    c
}

fn pair(local: bool) -> AfPair {
    let registry = Arc::new(HostRegistry::new());
    launch(
        &registry,
        (ProcessId(1), 1),
        (ProcessId(2), if local { 1 } else { 2 }),
        controller(4096),
        FabricSettings::default(),
    )
    .expect("fabric establishment")
}

fn pattern(i: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|k| ((i * 131 + k as u64 * 7) % 251) as u8)
        .collect()
}

#[test]
fn local_fabric_selects_shm_and_roundtrips() {
    let mut p = pair(true);
    assert!(p.client.shm_active());
    assert_eq!(p.client.endpoint().channel(), ChannelKind::Shm);

    for (lba, blocks) in [(0u64, 1u32), (8, 4), (64, 32)] {
        let len = blocks as usize * 4096;
        let data = pattern(lba, len);
        let mut buf = p.client.alloc(len).expect("alloc");
        assert!(buf.is_zero_copy(), "local buffers must be zero-copy");
        buf.copy_from_slice(&data);
        p.client.write(1, lba, blocks, buf, TIMEOUT).expect("write");
        let back = p.client.read(1, lba, blocks, len, TIMEOUT).expect("read");
        assert_eq!(back, data, "lba {lba} x {blocks}");
    }
    p.client.disconnect().expect("disconnect");
    p.target.shutdown().expect("shutdown");
}

#[test]
fn remote_fabric_falls_back_to_tcp_and_roundtrips() {
    let mut p = pair(false);
    assert!(!p.client.shm_active());
    assert_eq!(p.client.endpoint().channel(), ChannelKind::Tcp);

    let len = 128 * 1024;
    let data = pattern(3, len);
    let mut buf = p.client.alloc(len).expect("alloc");
    assert!(!buf.is_zero_copy());
    buf.copy_from_slice(&data);
    p.client.write(1, 16, 32, buf, TIMEOUT).expect("write");
    let back = p.client.read(1, 16, 32, len, TIMEOUT).expect("read");
    assert_eq!(back, data);
    p.client.disconnect().expect("disconnect");
    p.target.shutdown().expect("shutdown");
}

#[test]
fn pipelined_qd_traffic_is_consistent() {
    let mut p = pair(true);
    let qd = 32usize;
    let blocks = 4u32;
    let len = blocks as usize * 4096;

    // Submit a full window of writes, each to its own LBA range.
    let mut cids = Vec::new();
    for i in 0..qd {
        let mut buf = p.client.alloc(len).expect("alloc");
        buf.copy_from_slice(&pattern(i as u64, len));
        let cid = p
            .client
            .submit_write(1, (i as u64) * u64::from(blocks), blocks, buf)
            .expect("submit");
        cids.push(cid);
    }
    for cid in cids {
        let done = p.client.wait(cid, TIMEOUT).expect("completion");
        assert!(done.status.is_ok());
    }
    // Verify all ranges.
    for i in 0..qd {
        let back = p
            .client
            .read(1, (i as u64) * u64::from(blocks), blocks, len, TIMEOUT)
            .expect("read");
        assert_eq!(back, pattern(i as u64, len), "window {i}");
    }
    p.client.disconnect().expect("disconnect");
    p.target.shutdown().expect("shutdown");
}

#[test]
fn mixed_interleaved_reads_and_writes() {
    let mut p = pair(true);
    let len = 4096;
    // Interleave writes and reads over overlapping LBAs; the last write
    // to an LBA must win.
    for round in 0..20u64 {
        let mut buf = p.client.alloc(len).expect("alloc");
        buf.copy_from_slice(&pattern(round, len));
        p.client
            .write(1, round % 5, 1, buf, TIMEOUT)
            .expect("write");
        let back = p.client.read(1, round % 5, 1, len, TIMEOUT).expect("read");
        assert_eq!(back, pattern(round, len));
    }
    p.client.disconnect().expect("disconnect");
    p.target.shutdown().expect("shutdown");
}

#[test]
fn out_of_range_io_surfaces_nvme_error() {
    let mut p = pair(true);
    let err = p.client.read(1, 1 << 40, 1, 4096, TIMEOUT).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("LbaOutOfRange"), "got: {msg}");
    // The connection must survive the error.
    let back = p
        .client
        .read(1, 0, 1, 4096, TIMEOUT)
        .expect("read after error");
    assert_eq!(back.len(), 4096);
    p.client.disconnect().expect("disconnect");
    p.target.shutdown().expect("shutdown");
}

#[test]
fn client_stats_reflect_traffic() {
    let mut p = pair(true);
    let observer = p.client.stats_handle();
    assert_eq!(observer.snapshot().ops(), 0);

    let len = 8192;
    let mut buf = p.client.alloc(len).expect("alloc");
    buf.copy_from_slice(&pattern(1, len));
    p.client.write(1, 0, 2, buf, TIMEOUT).expect("write");
    p.client.read(1, 0, 2, len, TIMEOUT).expect("read");
    // An error counts as an error, not an op.
    let _ = p.client.read(1, 1 << 40, 1, 4096, TIMEOUT);

    let snap = observer.snapshot();
    assert_eq!(snap.writes, 1);
    assert_eq!(snap.reads, 1);
    assert_eq!(snap.bytes_written, len as u64);
    assert_eq!(snap.bytes_read, len as u64);
    assert_eq!(snap.errors, 1);
    assert_eq!(snap.zero_copy_writes, 1, "local write must be zero-copy");
    assert!(snap.mean_blocking_latency().expect("ops > 0") > Duration::ZERO);

    p.client.disconnect().expect("disconnect");
    p.target.shutdown().expect("shutdown");
}

#[test]
fn two_clients_get_isolated_channels() {
    let registry = Arc::new(HostRegistry::new());
    let mut a = launch(
        &registry,
        (ProcessId(11), 1),
        (ProcessId(12), 1),
        controller(1024),
        FabricSettings::default(),
    )
    .expect("fabric a");
    let mut b = launch(
        &registry,
        (ProcessId(21), 1),
        (ProcessId(22), 1),
        controller(1024),
        FabricSettings::default(),
    )
    .expect("fabric b");
    assert!(a.client.shm_active() && b.client.shm_active());

    let da = pattern(100, 4096);
    let db = pattern(200, 4096);
    let mut ba = a.client.alloc(4096).expect("alloc");
    ba.copy_from_slice(&da);
    a.client.write(1, 0, 1, ba, TIMEOUT).expect("write a");
    let mut bb = b.client.alloc(4096).expect("alloc");
    bb.copy_from_slice(&db);
    b.client.write(1, 0, 1, bb, TIMEOUT).expect("write b");

    assert_eq!(a.client.read(1, 0, 1, 4096, TIMEOUT).expect("read a"), da);
    assert_eq!(b.client.read(1, 0, 1, 4096, TIMEOUT).expect("read b"), db);

    a.client.disconnect().expect("disconnect");
    b.client.disconnect().expect("disconnect");
    a.target.shutdown().expect("shutdown");
    b.target.shutdown().expect("shutdown");
}
