//! Integration: the fully in-region configuration (§5.5 future work) —
//! control PDUs over lock-free byte rings *and* payloads over the
//! double-buffer channel. Not a single byte crosses a socket.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use nvme_oaf::nvmeof::initiator::{Initiator, InitiatorOptions};
use nvme_oaf::nvmeof::nvme::controller::Controller;
use nvme_oaf::nvmeof::nvme::namespace::Namespace;
use nvme_oaf::nvmeof::payload::PayloadChannel;
use nvme_oaf::nvmeof::pdu::AF_CAP_SHM;
use nvme_oaf::nvmeof::target::{spawn_target, TargetConfig};
use nvme_oaf::nvmeof::transport::ShmTransport;
use nvme_oaf::nvmeof::FlowMode;
use nvme_oaf::oaf::payload_impl::ShmPayloadChannel;
use nvme_oaf::shmem::channel::Side;
use nvme_oaf::shmem::ShmChannel;

const TIMEOUT: Duration = Duration::from_secs(5);

fn controller() -> Controller {
    let mut c = Controller::new();
    c.add_namespace(Namespace::new(1, 4096, 1024));
    c
}

#[test]
fn control_and_data_both_in_region() {
    // Control path: duplex byte rings. Data path: the double buffer.
    let (ct, tt) = ShmTransport::pair(256 * 1024);
    let data = ShmChannel::allocate(32, 128 * 1024);
    let client_ch = ShmPayloadChannel::new(&data, Side::Client);
    let target_ch = ShmPayloadChannel::new(&data, Side::Target);

    let handle = spawn_target(
        tt,
        controller(),
        TargetConfig::default(),
        Some(target_ch as Arc<dyn PayloadChannel>),
    );
    let mut ini = Initiator::connect(
        ct,
        InitiatorOptions {
            af_caps: AF_CAP_SHM,
            flow: FlowMode::InCapsule,
            ..InitiatorOptions::default()
        },
        Some(client_ch as Arc<dyn PayloadChannel>),
        TIMEOUT,
    )
    .expect("connect over byte rings");
    assert!(ini.shm_active());

    // Full write/read cycle, 128 KiB payloads via slots.
    let payload = Bytes::from(
        (0..128 * 1024)
            .map(|i| (i % 241) as u8)
            .collect::<Vec<u8>>(),
    );
    ini.write_blocking(1, 0, 32, payload.clone(), TIMEOUT)
        .expect("write");
    let back = ini
        .read_blocking(1, 0, 32, 128 * 1024, TIMEOUT)
        .expect("read");
    assert_eq!(back, payload);

    ini.disconnect().expect("disconnect");
    handle.shutdown().expect("shutdown");
}

#[test]
fn in_region_control_sustains_pipelined_load() {
    let (ct, tt) = ShmTransport::pair(512 * 1024);
    let data = ShmChannel::allocate(64, 32 * 1024);
    let client_ch = ShmPayloadChannel::new(&data, Side::Client);
    let target_ch = ShmPayloadChannel::new(&data, Side::Target);
    let handle = spawn_target(
        tt,
        controller(),
        TargetConfig::default(),
        Some(target_ch as Arc<dyn PayloadChannel>),
    );
    let mut ini = Initiator::connect(
        ct,
        InitiatorOptions {
            af_caps: AF_CAP_SHM,
            flow: FlowMode::InCapsule,
            ..InitiatorOptions::default()
        },
        Some(client_ch as Arc<dyn PayloadChannel>),
        TIMEOUT,
    )
    .expect("connect");

    let qd = 32usize;
    let mut cids = Vec::new();
    for i in 0..qd {
        let body = Bytes::from(vec![i as u8; 4096]);
        cids.push(ini.submit_write(1, i as u64, 1, body).expect("submit"));
    }
    for cid in cids {
        assert!(ini.wait(cid, TIMEOUT).expect("completion").status.is_ok());
    }
    for i in 0..qd {
        let back = ini
            .read_blocking(1, i as u64, 1, 4096, TIMEOUT)
            .expect("read");
        assert!(back.iter().all(|&b| b == i as u8), "lba {i}");
    }
    ini.disconnect().expect("disconnect");
    handle.shutdown().expect("shutdown");
}
